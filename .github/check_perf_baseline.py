"""Soft regression check of the perf-engine benchmark report.

Compares the speedup ratios of a fresh ``BENCH_perf_engine.json`` against
the committed ``benchmarks/BENCH_perf_engine.baseline.json``.  Ratios are
compared (not wall clocks) so the check is meaningful across machines,
and a regression beyond the threshold only emits a GitHub warning
annotation: shared CI runners are far too noisy for a hard gate.
"""

import json
import sys
from pathlib import Path

THRESHOLD = 0.25  # warn when a speedup ratio drops by more than 25 %

ROOT = Path(__file__).resolve().parent.parent
REPORT = ROOT / "BENCH_perf_engine.json"
BASELINE = ROOT / "benchmarks" / "BENCH_perf_engine.baseline.json"

RATIOS = [
    ("ac_kernel", "speedup"),
    ("dc_kernel", "speedup"),
    ("sparse_kernel", "dc_speedup"),
    ("sparse_kernel", "ac_speedup"),
    ("large_template", "speedup"),
    ("table1_optimize", "speedup"),
    ("batched_mc", "speedup"),
    ("cold_mc", "speedup"),
]


def main() -> int:
    if not REPORT.exists():
        print(f"::warning::no benchmark report at {REPORT}")
        return 0
    report = json.loads(REPORT.read_text())
    baseline = json.loads(BASELINE.read_text())
    for section, field in RATIOS:
        new = report.get(section, {}).get(field)
        old = baseline.get(section, {}).get(field)
        if new is None or old is None or old <= 0:
            continue
        drop = (old - new) / old
        line = f"{section}.{field}: baseline {old:.2f}x, now {new:.2f}x"
        if drop > THRESHOLD:
            print(f"::warning::perf regression suspected — {line} "
                  f"({drop:.0%} drop)")
        else:
            print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
