"""Tests for the content-addressed result store of ``repro.serve``."""

import json
import os

import pytest

from repro.errors import ArtifactError
from repro.serve import ResultStore, make_provenance, wrap_result
from repro.statistics import wilson_interval
from repro.yieldsim import SufficientStats, YieldResult
from repro.yieldsim.result import KIND_BINOMIAL

KEY = "ab" + "0" * 62


def artifact(k=7, n=10):
    stats = SufficientStats(kind=KIND_BINOMIAL, n=n, successes=k,
                            failed=0, w_sum=float(n), w_sq_sum=float(n),
                            w_pass_sum=float(k), w_sq_pass_sum=float(k))
    low, high = wilson_interval(k, n, 0.95)
    result = YieldResult(estimator="mc", estimate=k / n, n_samples=n,
                         simulations=n, ci_low=low, ci_high=high,
                         ci_level=0.95, ess=float(n), failed_samples=0,
                         stats=stats)
    return wrap_result(result, make_provenance(
        template="ota", seed=3, estimator="mc", n_samples=n,
        command="yield"))


class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        assert KEY not in store
        assert store.get(KEY) is None
        path = store.put(KEY, artifact())
        assert os.path.exists(path)
        # git-style two-level fan-out
        assert os.path.basename(os.path.dirname(path)) == KEY[:2]
        assert KEY in store
        assert store.get(KEY) == artifact()
        assert len(store) == 1
        stats = store.stats()
        assert stats["hits"] == 1 and stats["writes"] == 1
        assert stats["objects"] == 1
        assert stats["root"] == store.root

    def test_reopen_persists(self, tmp_path):
        root = str(tmp_path / "store")
        ResultStore(root).put(KEY, artifact())
        assert ResultStore(root).get(KEY) == artifact()

    def test_overwrite_is_last_writer_wins(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        store.put(KEY, artifact(k=1))
        store.put(KEY, artifact(k=9))
        assert store.get(KEY)["result"]["estimate"] == 0.9
        assert len(store) == 1

    @pytest.mark.parametrize("key", ["", "ab", "xyz" * 20, "AB" + "0" * 62])
    def test_rejects_malformed_keys(self, tmp_path, key):
        store = ResultStore(str(tmp_path / "store"))
        with pytest.raises(ArtifactError, match="malformed store key"):
            store.get(key)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        path = store.put(KEY, artifact())
        with open(path, "w") as handle:
            handle.write("{truncated")
        assert store.get(KEY) is None
        assert store.stats()["invalid"] == 1
        # the corrupt file stays in place for forensics
        assert os.path.exists(path)

    def test_contract_violating_entry_is_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        path = store.put(KEY, artifact())
        broken = artifact()
        del broken["provenance"]
        with open(path, "w") as handle:
            json.dump(broken, handle)
        assert store.get(KEY) is None
        assert store.stats()["invalid"] == 1

    def test_put_validates_before_writing(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        with pytest.raises(ArtifactError):
            store.put(KEY, {"not": "an artifact"})
        assert KEY not in store
        assert len(store) == 0

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        for index in range(5):
            store.put(f"{index:02x}" + "0" * 62, artifact())
        leftovers = [name for _, _, files in os.walk(store.root)
                     for name in files if name.endswith(".tmp")]
        assert leftovers == []

    def test_job_file_paths_reject_traversal(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        for name in ("../evil", "a/b", "", "x y"):
            with pytest.raises(ArtifactError, match="malformed job id"):
                store.checkpoint_path(name)
        assert store.checkpoint_path("job-1.a_b").endswith(
            "checkpoints/job-1.a_b.json")
        assert store.heartbeat_path("job-1").endswith(
            "heartbeats/job-1")
        assert store.wal_path() == os.path.join(store.root, "wal.jsonl")


class TestStoreGC:
    def keys(self, count):
        return [f"{index:02x}" + "1" * 62 for index in range(count)]

    def test_unbounded_store_never_evicts(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        store.put(KEY, artifact())
        assert store.gc() == 0
        assert KEY in store

    def test_age_bound_evicts_old_unprotected_entries(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"),
                            max_age_s=3600.0)
        old, fresh = self.keys(2)
        old_path = store.put(old, artifact())
        store.put(fresh, artifact())
        past = 10_000.0
        os.utime(old_path, (past, past))
        assert store.gc(now=past + 7200.0 + 1.0) == 1
        assert old not in store and fresh in store
        assert store.stats()["evictions"] == 1

    def test_size_bound_evicts_least_recently_accessed(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        keys = self.keys(4)
        paths = {key: store.put(key, artifact()) for key in keys}
        # bound the store to roughly two artifacts
        store.max_bytes = 2 * os.path.getsize(paths[keys[0]]) + 1
        # stamp an explicit access order: keys[0] oldest ... keys[3]
        # newest, then touch keys[0] via get() (the LRU refresh)
        for index, key in enumerate(keys):
            os.utime(paths[key], (1000.0 + index, 1000.0 + index))
        assert store.get(keys[0]) is not None
        evicted = store.gc()
        assert evicted == 2
        # the get() refreshed keys[0]; keys[1] and keys[2] were the
        # least recently accessed
        assert keys[0] in store and keys[3] in store
        assert keys[1] not in store and keys[2] not in store

    def test_protected_paths_survive_any_pressure(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"), max_bytes=1,
                            max_age_s=0.001)
        live = store.checkpoint_path("live-job")
        with open(live, "w") as handle:
            handle.write("{}")
        dead = store.checkpoint_path("dead-job")
        with open(dead, "w") as handle:
            handle.write("{}")
        import time
        time.sleep(0.01)
        store.gc(protect=[live])
        assert os.path.exists(live)
        assert not os.path.exists(dead)

    def test_gc_never_touches_the_wal(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"), max_bytes=0,
                            max_age_s=0.0)
        with open(store.wal_path(), "w") as handle:
            handle.write('{"event":"submit"}\n')
        store.put(KEY, artifact())
        store.gc(now=1e12)
        assert os.path.exists(store.wal_path())
        assert KEY not in store
