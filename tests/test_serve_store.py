"""Tests for the content-addressed result store of ``repro.serve``."""

import json
import os

import pytest

from repro.errors import ArtifactError
from repro.serve import ResultStore, make_provenance, wrap_result
from repro.statistics import wilson_interval
from repro.yieldsim import SufficientStats, YieldResult
from repro.yieldsim.result import KIND_BINOMIAL

KEY = "ab" + "0" * 62


def artifact(k=7, n=10):
    stats = SufficientStats(kind=KIND_BINOMIAL, n=n, successes=k,
                            failed=0, w_sum=float(n), w_sq_sum=float(n),
                            w_pass_sum=float(k), w_sq_pass_sum=float(k))
    low, high = wilson_interval(k, n, 0.95)
    result = YieldResult(estimator="mc", estimate=k / n, n_samples=n,
                         simulations=n, ci_low=low, ci_high=high,
                         ci_level=0.95, ess=float(n), failed_samples=0,
                         stats=stats)
    return wrap_result(result, make_provenance(
        template="ota", seed=3, estimator="mc", n_samples=n,
        command="yield"))


class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        assert KEY not in store
        assert store.get(KEY) is None
        path = store.put(KEY, artifact())
        assert os.path.exists(path)
        # git-style two-level fan-out
        assert os.path.basename(os.path.dirname(path)) == KEY[:2]
        assert KEY in store
        assert store.get(KEY) == artifact()
        assert len(store) == 1
        stats = store.stats()
        assert stats["hits"] == 1 and stats["writes"] == 1
        assert stats["objects"] == 1
        assert stats["root"] == store.root

    def test_reopen_persists(self, tmp_path):
        root = str(tmp_path / "store")
        ResultStore(root).put(KEY, artifact())
        assert ResultStore(root).get(KEY) == artifact()

    def test_overwrite_is_last_writer_wins(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        store.put(KEY, artifact(k=1))
        store.put(KEY, artifact(k=9))
        assert store.get(KEY)["result"]["estimate"] == 0.9
        assert len(store) == 1

    @pytest.mark.parametrize("key", ["", "ab", "xyz" * 20, "AB" + "0" * 62])
    def test_rejects_malformed_keys(self, tmp_path, key):
        store = ResultStore(str(tmp_path / "store"))
        with pytest.raises(ArtifactError, match="malformed store key"):
            store.get(key)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        path = store.put(KEY, artifact())
        with open(path, "w") as handle:
            handle.write("{truncated")
        assert store.get(KEY) is None
        assert store.stats()["invalid"] == 1
        # the corrupt file stays in place for forensics
        assert os.path.exists(path)

    def test_contract_violating_entry_is_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        path = store.put(KEY, artifact())
        broken = artifact()
        del broken["provenance"]
        with open(path, "w") as handle:
            json.dump(broken, handle)
        assert store.get(KEY) is None
        assert store.stats()["invalid"] == 1

    def test_put_validates_before_writing(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        with pytest.raises(ArtifactError):
            store.put(KEY, {"not": "an artifact"})
        assert KEY not in store
        assert len(store) == 0

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        for index in range(5):
            store.put(f"{index:02x}" + "0" * 62, artifact())
        leftovers = [name for _, _, files in os.walk(store.root)
                     for name in files if name.endswith(".tmp")]
        assert leftovers == []
