"""Tests for the DC sweep analysis and the PVT corner report."""

import numpy as np
import pytest

from helpers import LinearTemplate
from repro.circuit import Circuit, dc_sweep, temperature_sweep
from repro.errors import NetlistError
from repro.evaluation import Evaluator, corner_analysis
from repro.circuits import MillerOpamp
from repro.pdk.generic035 import NMOS


def cs_stage():
    c = Circuit("cs")
    c.vsource("VDD", "vdd", "0", dc=3.3)
    c.vsource("VG", "g", "0", dc=0.0)
    c.resistor("RD", "vdd", "d", 10e3)
    c.mosfet("M1", "d", "g", "0", "0", NMOS, w=10e-6, l=1e-6)
    return c


class TestDcSweep:
    def test_transfer_curve_is_monotone_inverter(self):
        circuit = cs_stage()
        sweep = dc_sweep(circuit, "VG", np.linspace(0.0, 2.0, 21))
        vout = sweep.voltage("d")
        assert vout[0] == pytest.approx(3.3, abs=0.01)  # device off
        assert vout[-1] < 0.5  # device hard on
        assert np.all(np.diff(vout) <= 1e-9)  # monotone falling

    def test_current_tracking(self):
        circuit = cs_stage()
        sweep = dc_sweep(circuit, "VG", [0.0, 1.0, 1.5])
        ids = sweep.device_current("M1")
        assert ids[0] < 1e-9
        assert ids[2] > ids[1] > 0

    def test_region_changes_detected(self):
        circuit = cs_stage()
        sweep = dc_sweep(circuit, "VG", np.linspace(0.0, 2.5, 51))
        changes = sweep.region_changes("M1")
        regions = [c[2] for c in changes]
        assert "saturation" in regions  # cutoff -> saturation
        assert "triode" in regions  # saturation -> triode at high VG

    def test_source_value_restored(self):
        circuit = cs_stage()
        dc_sweep(circuit, "VG", [0.5, 1.0])
        assert circuit.device("VG").dc == 0.0

    def test_current_source_sweep(self):
        c = Circuit("diode")
        c.vsource("VDD", "vdd", "0", dc=3.3)
        c.isource("IB", "vdd", "d", dc=10e-6)
        c.mosfet("M1", "d", "d", "0", "0", NMOS, w=20e-6, l=1e-6)
        sweep = dc_sweep(c, "IB", [5e-6, 20e-6, 80e-6])
        vgs = sweep.voltage("d")
        assert np.all(np.diff(vgs) > 0)  # vgs grows with current

    def test_non_source_rejected(self):
        circuit = cs_stage()
        with pytest.raises(NetlistError):
            dc_sweep(circuit, "RD", [1.0])

    def test_temperature_sweep(self):
        c = Circuit("diode")
        c.vsource("VDD", "vdd", "0", dc=3.3)
        c.resistor("R1", "vdd", "d", 100e3)
        c.mosfet("M1", "d", "d", "0", "0", NMOS, w=20e-6, l=1e-6)
        sweep = temperature_sweep(c, [-40.0, 27.0, 125.0])
        vgs = sweep.voltage("d")
        assert len(sweep) == 3
        assert vgs[0] != pytest.approx(vgs[2], abs=1e-3)


class TestCornerAnalysis:
    def test_fake_template_worst_corner(self):
        template = LinearTemplate(offset=1.0, cs=np.array([1.0, 0.0]),
                                  ct=0.01)
        evaluator = Evaluator(template)
        report = corner_analysis(evaluator, {"d0": 0.0, "d1": 0.0},
                                 sigma_level=3.0)
        worst = report.worst["f>="]
        # f = 1 + 0.01*temp + s0: worst at temp low and g0 at -3 sigma.
        assert worst.value == pytest.approx(1.0 + 0.0 - 3.0, abs=1e-9)
        assert worst.corner == "g0-3"
        assert worst.theta["temp"] == 0.0
        assert not report.passes()
        assert report.failing_specs() == ["f>="]

    def test_simulation_count(self):
        template = LinearTemplate()
        evaluator = Evaluator(template, cache=False)
        report = corner_analysis(evaluator, {"d0": 1.0, "d1": 0.0})
        # (2 globals * 2 + typ) corners x (2 + 1) operating points.
        assert report.simulations == 5 * 3

    def test_summary_renders(self):
        template = LinearTemplate()
        evaluator = Evaluator(template)
        report = corner_analysis(evaluator, {"d0": 1.0, "d1": 0.0})
        text = report.summary()
        assert "worst value" in text
        assert "f>=" in text

    @pytest.mark.slow
    def test_miller_corner_report(self):
        """The initial Miller design fails its slew-rate spec at a low
        supply / sheet-resistance-high corner — consistent with the
        Monte-Carlo picture of Table 6."""
        template = MillerOpamp()
        evaluator = Evaluator(template)
        report = corner_analysis(evaluator, template.initial_design())
        assert "sr>=" in report.failing_specs()
        worst_sr = report.worst["sr>="]
        assert worst_sr.theta["vdd"] == 3.0
        assert worst_sr.corner.startswith("gres")
