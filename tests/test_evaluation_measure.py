"""Tests for the open-loop opamp measurement bench on an ideal (VCVS)
opamp, where every measured quantity has a closed form."""

import math

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.evaluation.measure import (FEEDBACK_INDUCTANCE,
                                      OpenLoopOpampBench,
                                      add_openloop_bench)


def ideal_opamp_bench(gain=1000.0, pole_hz=1e3, cm_gain=0.05, vcm=1.5):
    """Ideal single-pole opamp: out = (A*(v+ - v-) + Acm*vcm_in) * pole.

    Built from controlled sources plus an output RC for the pole.  The
    common-mode path uses an averaging VCVS pair.
    """
    c = Circuit("ideal-opamp")
    c.vsource("VDD", "vdd", "0", dc=3.3)
    c.resistor("RDUMMY", "vdd", "0", 3.3e3)  # 1 mA supply draw
    # Differential stage: e_dm = gain*(inp - inn); cm path via two 0.5
    # gains summed by series sources.
    c.vcvs("EDM", "x1", "0", "inp", "inn", gain)
    c.vcvs("ECMP", "x2", "x1", "inp", "0", cm_gain / 2)
    c.vcvs("ECMN", "xsum", "x2", "inn", "0", cm_gain / 2)
    # Output pole.
    r, cap = 1e3, 1.0 / (2 * math.pi * pole_hz * 1e3)
    c.resistor("RP", "xsum", "out", r)
    c.capacitor("CP", "out", "0", cap)
    add_openloop_bench(c, inp="inp", inn="inn", out="out", vcm=vcm)
    return OpenLoopOpampBench(c, out="out", supply_source="VDD")


class TestIdealOpampMeasurements:
    def test_dc_point_follows_common_mode(self):
        bench = ideal_opamp_bench(vcm=1.5)
        # Unity feedback: out settles at ~vcm (+ cm-gain induced offset).
        assert bench.op.voltage("out") == pytest.approx(1.5, abs=0.2)

    def test_differential_gain(self):
        bench = ideal_opamp_bench(gain=1000.0)
        assert abs(bench.differential_gain()) == pytest.approx(1000.0,
                                                               rel=0.01)

    def test_common_mode_gain_and_cmrr(self):
        bench = ideal_opamp_bench(gain=1000.0, cm_gain=0.05)
        meas = bench.measure(vdd=3.3)
        assert abs(bench.common_mode_gain()) == pytest.approx(0.05,
                                                              rel=0.05)
        expected_cmrr = 20 * math.log10(1000.0 / 0.05)
        assert meas.cmrr_db == pytest.approx(expected_cmrr, abs=0.5)

    def test_transit_frequency_is_gbw(self):
        bench = ideal_opamp_bench(gain=1000.0, pole_hz=1e3)
        # Single pole: f_t = A0 * f_pole.
        assert bench.transit_frequency() == pytest.approx(1e6, rel=0.01)

    def test_phase_margin_single_pole(self):
        bench = ideal_opamp_bench(gain=1000.0, pole_hz=1e3)
        assert bench.phase_margin() == pytest.approx(90.0, abs=1.0)

    def test_supply_power(self):
        bench = ideal_opamp_bench()
        assert bench.supply_power(3.3) == pytest.approx(3.3e-3, rel=0.01)

    def test_measure_bundle(self):
        bench = ideal_opamp_bench(gain=1000.0)
        meas = bench.measure(vdd=3.3)
        assert meas.a0_db == pytest.approx(60.0, abs=0.1)
        assert meas.ft_hz == pytest.approx(1e6, rel=0.02)
        assert meas.pm_deg == pytest.approx(90.0, abs=1.5)
        assert meas.output_dc == pytest.approx(1.5, abs=0.2)

    def test_ac_systems_cached_per_drive(self):
        bench = ideal_opamp_bench()
        bench.differential_gain()
        bench.differential_gain(10.0)
        bench.common_mode_gain()
        assert len(bench._systems) == 2

    def test_feedback_inductor_present(self):
        bench = ideal_opamp_bench()
        lfb = bench.circuit.device("LFB")
        assert lfb.inductance == FEEDBACK_INDUCTANCE
