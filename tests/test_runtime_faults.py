"""Fault-injection tests for the :mod:`repro.runtime` layer.

Covers the fault policy (classification, retry-with-jitter), the
fault-tolerant evaluator facade (lenient/strict modes, counters), the
deterministic fault injector, run budgets, checkpoint round-trips and
resume determinism, and the optimizer's behaviour under injected faults
(recovery, count-as-fail accounting, abort with partial trace).
"""

import copy
import json
import os

import numpy as np
import pytest

from helpers import LinearTemplate, QuadraticTemplate
from repro.core.optimizer import (IterationRecord, OptimizerConfig,
                                  YieldOptimizer)
from repro.core.feasible_point import find_feasible_point
from repro.errors import (ConvergenceError, ExtractionError,
                          FeasibilityError, NetlistError, ReproError,
                          SingularMatrixError)
from repro.evaluation import Evaluator
from repro.reporting.tables import optimization_trace_table
from repro.runtime import (CheckpointError, FaultAction,
                           FaultInjectingEvaluator, FaultPolicy,
                           FaultTolerantEvaluator, RetryConfig, RunBudget,
                           STOP_ABORTED_PREFIX, STOP_CONVERGED,
                           STOP_DEADLINE, STOP_MAX_ITERATIONS,
                           STOP_SIM_BUDGET, load_checkpoint, point_digest,
                           save_checkpoint)
from repro.yieldsim import OperationalMC

D = {"d0": 1.0, "d1": 0.0}
THETA = {"temp": 27.0}
S0 = np.zeros(2)


def quick_config(**overrides):
    defaults = dict(max_iterations=3, n_samples_linear=500,
                    n_samples_verify=100, seed=7)
    defaults.update(overrides)
    return OptimizerConfig(**defaults)


class PoisonedTemplate(LinearTemplate):
    """Raises ``error`` whenever the statistical point equals ``poison``
    exactly — a jittered retry lands epsilon away and succeeds."""

    def __init__(self, poison, error=ConvergenceError, **kwargs):
        super().__init__(**kwargs)
        self.poison = np.asarray(poison, dtype=float)
        self.error = error

    def evaluate(self, d, s_hat, theta):
        if np.array_equal(np.asarray(s_hat, dtype=float), self.poison):
            raise self.error("poisoned statistical point")
        return super().evaluate(d, s_hat, theta)


class AlwaysFailingTemplate(LinearTemplate):
    def __init__(self, error=ConvergenceError, **kwargs):
        super().__init__(**kwargs)
        self.error = error

    def evaluate(self, d, s_hat, theta):
        raise self.error("permanent failure")


# -- policy -------------------------------------------------------------------
class TestRetryConfig:
    def test_validation(self):
        with pytest.raises(ReproError):
            RetryConfig(attempts=-1)
        with pytest.raises(ReproError):
            RetryConfig(jitter=-1e-9)
        with pytest.raises(ReproError):
            RetryConfig(backoff=0.5)

    def test_magnitude_backoff(self):
        retry = RetryConfig(attempts=3, jitter=1e-6, backoff=8.0)
        assert retry.magnitude(0) == pytest.approx(1e-6)
        assert retry.magnitude(1) == pytest.approx(8e-6)
        assert retry.magnitude(2) == pytest.approx(64e-6)


class TestFaultPolicy:
    def test_default_classification(self):
        policy = FaultPolicy()
        assert policy.classify(ConvergenceError("x")) is FaultAction.RETRY
        assert policy.classify(SingularMatrixError("x")) is \
            FaultAction.RETRY
        assert policy.classify(ExtractionError("x")) is \
            FaultAction.COUNT_AS_FAIL
        assert policy.classify(NetlistError("x")) is FaultAction.ABORT
        # Other ReproErrors and foreign exceptions abort.
        assert policy.classify(FeasibilityError("x")) is FaultAction.ABORT
        assert policy.classify(RuntimeError("x")) is FaultAction.ABORT

    def test_overrides_extend_defaults(self):
        policy = FaultPolicy(
            actions={ConvergenceError: FaultAction.COUNT_AS_FAIL})
        assert policy.classify(ConvergenceError("x")) is \
            FaultAction.COUNT_AS_FAIL
        # Sibling subclass keeps the AnalysisError default.
        assert policy.classify(SingularMatrixError("x")) is \
            FaultAction.RETRY

    def test_jitter_deterministic_in_point(self):
        policy = FaultPolicy()
        a = policy.jittered(D, S0, THETA, attempt=0)
        b = policy.jittered(D, S0, THETA, attempt=0)
        assert np.array_equal(a, b)
        # Different attempts jitter differently (and further).
        c = policy.jittered(D, S0, THETA, attempt=1)
        assert not np.array_equal(a, c)
        assert np.linalg.norm(c - S0) > np.linalg.norm(a - S0)

    def test_jitter_never_compounds(self):
        # Attempt k perturbs the *original* point, bounded by magnitude.
        policy = FaultPolicy(retry=RetryConfig(attempts=3, jitter=1e-6))
        for attempt in range(3):
            moved = policy.jittered(D, S0, THETA, attempt)
            assert np.linalg.norm(moved - S0) < \
                10 * policy.retry.magnitude(attempt)

    def test_describe_names_actions(self):
        table = FaultPolicy().describe()
        assert table["AnalysisError"] == "retry"
        assert table["NetlistError"] == "abort"


class TestPointDigest:
    def test_stable_and_sensitive(self):
        base = point_digest(D, S0, THETA)
        assert point_digest(D, S0, THETA) == base
        assert point_digest(D, S0 + 1e-12, THETA) != base
        assert point_digest({**D, "d0": 2.0}, S0, THETA) != base
        assert point_digest(D, S0, {"temp": 28.0}) != base
        assert point_digest(D, S0, THETA, salt=1) != base


# -- fault-tolerant evaluator -------------------------------------------------
class TestFaultTolerantEvaluator:
    def test_retry_recovers_and_counts(self):
        template = PoisonedTemplate(poison=S0)
        guarded = FaultTolerantEvaluator(Evaluator(template))
        values = guarded.evaluate(D, S0, THETA)
        assert np.isfinite(values["f"])
        assert guarded.retried_evaluations == 1
        assert guarded.recovered_evaluations == 1
        assert guarded.failed_evaluations == 0

    def test_exhausted_retries_raise_in_strict_mode(self):
        guarded = FaultTolerantEvaluator(
            Evaluator(AlwaysFailingTemplate()),
            FaultPolicy(retry=RetryConfig(attempts=2)))
        with pytest.raises(ConvergenceError):
            guarded.evaluate(D, S0, THETA)
        assert guarded.retried_evaluations == 2
        assert guarded.failed_evaluations == 1
        assert guarded.recovered_evaluations == 0

    def test_exhausted_retries_are_nan_in_lenient_mode(self):
        guarded = FaultTolerantEvaluator(
            Evaluator(AlwaysFailingTemplate()),
            FaultPolicy(retry=RetryConfig(attempts=1)))
        with guarded.lenient():
            values = guarded.evaluate(D, S0, THETA)
        assert set(values) == {"f"}
        assert np.isnan(values["f"])
        assert guarded.failed_evaluations == 1
        # The mode is restored on context exit.
        with pytest.raises(ConvergenceError):
            guarded.evaluate(D, S0, THETA)

    def test_count_as_fail_skips_retries(self):
        guarded = FaultTolerantEvaluator(
            Evaluator(AlwaysFailingTemplate(error=ExtractionError)))
        with guarded.lenient():
            values = guarded.evaluate(D, S0, THETA)
        assert np.isnan(values["f"])
        assert guarded.retried_evaluations == 0

    def test_abort_errors_propagate_even_in_lenient_mode(self):
        guarded = FaultTolerantEvaluator(
            Evaluator(AlwaysFailingTemplate(error=NetlistError)))
        with guarded.lenient():
            with pytest.raises(NetlistError):
                guarded.evaluate(D, S0, THETA)
        assert guarded.failed_evaluations == 0

    def test_delegates_to_inner_evaluator(self):
        evaluator = Evaluator(LinearTemplate())
        guarded = FaultTolerantEvaluator(evaluator)
        guarded.evaluate(D, S0, THETA)
        assert guarded.simulation_count == evaluator.simulation_count == 1
        assert guarded.template is evaluator.template
        assert guarded.inner is evaluator


# -- fault injection ----------------------------------------------------------
class TestFaultInjection:
    def test_rate_validation(self):
        with pytest.raises(ReproError):
            FaultInjectingEvaluator(Evaluator(LinearTemplate()), rate=1.5)

    def test_scheduled_faults_hit_exact_requests(self):
        injector = FaultInjectingEvaluator(Evaluator(LinearTemplate()),
                                           schedule=[2])
        injector.evaluate(D, S0, THETA)
        with pytest.raises(ConvergenceError):
            injector.evaluate(D, S0, THETA)
        injector.evaluate(D, S0, THETA)
        assert injector.injected_count == 1
        assert injector.request_index == 3

    def test_probabilistic_faults_are_call_order_independent(self):
        rng = np.random.default_rng(0)
        points = [rng.standard_normal(2) for _ in range(40)]

        def failing_points(order):
            injector = FaultInjectingEvaluator(
                Evaluator(LinearTemplate()), rate=0.2, seed=11)
            failed = set()
            for i in order:
                try:
                    injector.evaluate(D, points[i], THETA)
                except ConvergenceError:
                    failed.add(i)
            return failed

        forward = failing_points(range(40))
        backward = failing_points(reversed(range(40)))
        assert forward == backward
        assert 0 < len(forward) < 40

    def test_rate_extremes(self):
        calm = FaultInjectingEvaluator(Evaluator(LinearTemplate()),
                                       rate=0.0, seed=3)
        calm.evaluate(D, S0, THETA)
        assert calm.injected_count == 0
        storm = FaultInjectingEvaluator(Evaluator(LinearTemplate()),
                                        rate=1.0, seed=3)
        with pytest.raises(ConvergenceError):
            storm.evaluate(D, S0, THETA)
        assert storm.injected_count == 1

    def test_custom_error_factory(self):
        injector = FaultInjectingEvaluator(
            Evaluator(LinearTemplate()), schedule=[1],
            error=lambda: NetlistError("boom"))
        with pytest.raises(NetlistError):
            injector.evaluate(D, S0, THETA)

    def test_retry_recovers_injected_faults(self):
        # The jittered retry point hashes differently, so a RETRY policy
        # recovers a rate-injected fault.
        injector = FaultInjectingEvaluator(Evaluator(LinearTemplate()),
                                           rate=1e-3, seed=0)
        guarded = FaultTolerantEvaluator(injector)
        rng = np.random.default_rng(1)
        while injector.injected_count == 0:
            guarded.evaluate(D, rng.standard_normal(2), THETA)
        assert guarded.recovered_evaluations == injector.injected_count
        assert guarded.failed_evaluations == 0


# -- budgets ------------------------------------------------------------------
class TestRunBudget:
    def test_validation(self):
        with pytest.raises(ReproError):
            RunBudget(deadline_s=-1.0)
        with pytest.raises(ReproError):
            RunBudget(max_simulations=0)

    def test_unlimited(self):
        assert RunBudget().unlimited
        assert not RunBudget(deadline_s=1.0).unlimited

    def test_deadline_binds_before_sim_budget(self):
        budget = RunBudget(deadline_s=1.0, max_simulations=10)
        assert budget.exhausted(2.0, 100) == STOP_DEADLINE
        assert budget.exhausted(0.5, 100) == STOP_SIM_BUDGET
        assert budget.exhausted(0.5, 5) is None

    def test_optimizer_stops_on_deadline_with_partial_trace(self):
        result = YieldOptimizer(LinearTemplate(),
                                quick_config(min_improvement=-1.0),
                                budget=RunBudget(deadline_s=0.0)).run()
        # Iteration 1 always completes (the gate waits for a record),
        # then the deadline trips at the next iteration boundary.
        assert result.stop_reason == STOP_DEADLINE
        assert not result.converged
        assert len(result.records) == 2

    def test_optimizer_stops_on_sim_budget(self):
        result = YieldOptimizer(LinearTemplate(),
                                quick_config(min_improvement=-1.0),
                                budget=RunBudget(max_simulations=1)).run()
        assert result.stop_reason == STOP_SIM_BUDGET
        assert len(result.records) == 2


# -- feasibility errors -------------------------------------------------------
class TestFeasibilityDiagnostics:
    def test_feasibility_error_names_offending_constraint(self):
        # min_d0 beyond the d0 upper bound: no feasible point exists.
        template = LinearTemplate(min_d0=20.0)
        with pytest.raises(FeasibilityError) as info:
            find_feasible_point(Evaluator(template),
                                template.initial_design())
        message = str(info.value)
        assert "'c0'" in message
        assert template.name in message


# -- checkpoint / resume ------------------------------------------------------
class TestCheckpoint:
    def run_with_checkpoint(self, tmp_path, **overrides):
        path = str(tmp_path / "ck.json")
        config = quick_config(min_improvement=-1.0, **overrides)
        result = YieldOptimizer(LinearTemplate(), config,
                                checkpoint_path=path).run()
        return path, config, result

    def test_round_trip_is_bit_identical(self, tmp_path):
        path, _, result = self.run_with_checkpoint(tmp_path)
        state = load_checkpoint(path, LinearTemplate())
        assert state.iteration == len(result.records) - 1
        assert state.d_f == result.d_final
        for original, restored in zip(result.records, state.records):
            assert restored.d == original.d
            assert restored.margins == original.margins
            assert restored.bad_samples == original.bad_samples
            assert restored.yield_linear == original.yield_linear
            assert restored.yield_mc == original.yield_mc
            assert restored.gamma == original.gamma
            assert restored.failed_samples == original.failed_samples
            assert restored.simulations == original.simulations
            for key, wc in original.worst_case.items():
                other = restored.worst_case[key]
                assert np.array_equal(other.s_wc, wc.s_wc)
                assert other.beta_wc == wc.beta_wc
                assert np.array_equal(other.gradient, wc.gradient)
            if original.mc is not None:
                assert restored.mc.to_dict() == original.mc.to_dict()

    def test_rejects_wrong_template(self, tmp_path):
        path, _, _ = self.run_with_checkpoint(tmp_path)
        with pytest.raises(CheckpointError):
            load_checkpoint(path, QuadraticTemplate())

    def test_rejects_wrong_version(self, tmp_path):
        path, _, _ = self.run_with_checkpoint(tmp_path)
        with open(path) as handle:
            payload = json.load(handle)
        payload["version"] = 999
        with open(path, "w") as handle:
            json.dump(payload, handle)
        with pytest.raises(CheckpointError):
            load_checkpoint(path, LinearTemplate())

    def test_rejects_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path), LinearTemplate())
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path / "missing.json"),
                            LinearTemplate())

    def test_resume_rejects_seed_mismatch(self, tmp_path):
        path, config, _ = self.run_with_checkpoint(tmp_path)
        other = copy.deepcopy(config)
        other.seed = config.seed + 1
        with pytest.raises(ReproError):
            YieldOptimizer(LinearTemplate(), other, checkpoint_path=path,
                           resume=True).run()

    def test_resume_reproduces_uninterrupted_run(self, tmp_path):
        config = quick_config(min_improvement=-1.0)
        reference = YieldOptimizer(LinearTemplate(),
                                   copy.deepcopy(config)).run()
        assert len(reference.records) == 4

        # "Kill" the run after iteration 1, then resume to the end.
        path = str(tmp_path / "ck.json")
        partial_config = quick_config(min_improvement=-1.0,
                                      max_iterations=1)
        YieldOptimizer(LinearTemplate(), partial_config,
                       checkpoint_path=path).run()
        resumed = YieldOptimizer(LinearTemplate(), copy.deepcopy(config),
                                 checkpoint_path=path, resume=True).run()
        assert resumed.d_final == reference.d_final
        assert len(resumed.records) == len(reference.records)
        for a, b in zip(reference.records, resumed.records):
            assert a.d == b.d
            assert a.margins == b.margins
            assert a.yield_linear == b.yield_linear
            assert a.yield_mc == b.yield_mc
            assert a.gamma == b.gamma
        assert resumed.stop_reason == reference.stop_reason

    def test_resume_from_converged_checkpoint_returns_immediately(
            self, tmp_path):
        path = str(tmp_path / "ck.json")
        config = quick_config()  # default min_improvement: converges
        reference = YieldOptimizer(QuadraticTemplate(),
                                   copy.deepcopy(config),
                                   checkpoint_path=path).run()
        assert reference.stop_reason == STOP_CONVERGED
        resumed = YieldOptimizer(QuadraticTemplate(),
                                 copy.deepcopy(config),
                                 checkpoint_path=path, resume=True).run()
        assert resumed.converged
        assert resumed.stop_reason == STOP_CONVERGED
        assert len(resumed.records) == len(reference.records)
        assert resumed.d_final == reference.d_final

    def test_save_is_atomic(self, tmp_path):
        path, _, _ = self.run_with_checkpoint(tmp_path)
        # No temp-file droppings next to the checkpoint.
        leftovers = [name for name in os.listdir(tmp_path)
                     if name.endswith(".tmp")]
        assert leftovers == []

    def test_legacy_mc_summary_round_trips(self):
        """A record whose verification result is the legacy
        ``MonteCarloResult`` (no ``to_dict``) used to be silently
        dropped from the checkpoint; it must round-trip through the
        ``legacy-summary`` stub instead, so ``--resume`` keeps the
        verification data."""
        from repro.core.montecarlo import MonteCarloResult
        from repro.runtime import record_from_dict, record_to_dict
        legacy = MonteCarloResult(
            yield_estimate=0.75, n_samples=40,
            bad_fraction={"f>=": 0.25}, simulations=40,
            performance_mean={"f>=": 1.25},
            performance_std={"f>=": 0.5})
        record = IterationRecord(
            index=1, d={"d0": 1.0, "d1": 0.0}, margins={"f>=": 2.0},
            bad_samples={"f>=": 0.1}, yield_linear=0.8, yield_mc=0.75,
            mc=legacy, worst_case={}, simulations=40,
            constraint_simulations=0)
        data = json.loads(json.dumps(record_to_dict(record)))
        assert data["mc"]["kind"] == "legacy-summary"
        restored = record_from_dict(data, LinearTemplate())
        assert isinstance(restored.mc, MonteCarloResult)
        assert restored.mc.yield_estimate == legacy.yield_estimate
        assert restored.mc.n_samples == legacy.n_samples
        assert restored.mc.bad_fraction == legacy.bad_fraction
        assert restored.mc.simulations == legacy.simulations
        assert restored.mc.performance_mean == legacy.performance_mean
        assert restored.mc.performance_std == legacy.performance_std


# -- optimizer under injected faults ------------------------------------------
class TestOptimizerUnderFaults:
    def test_recovers_from_transient_convergence_faults(self):
        template = LinearTemplate()
        injector = FaultInjectingEvaluator(Evaluator(template),
                                           rate=0.05, seed=13)
        result = YieldOptimizer(template,
                                quick_config(min_improvement=-1.0),
                                evaluator=injector).run()
        assert injector.injected_count > 0
        assert not result.aborted
        assert result.stop_reason == STOP_MAX_ITERATIONS
        assert len(result.records) == 4  # all iterations completed
        assert result.total_retried_evaluations >= \
            injector.injected_count

    def test_structural_fault_aborts_with_partial_trace(self):
        # Find how many evaluations one full iteration consumes, then
        # schedule a NetlistError shortly into iteration 2.
        template = LinearTemplate()
        probe = FaultInjectingEvaluator(Evaluator(template))
        YieldOptimizer(template,
                       quick_config(min_improvement=-1.0,
                                    max_iterations=1),
                       evaluator=probe).run()
        kill_at = probe.request_index + 3

        injector = FaultInjectingEvaluator(
            Evaluator(LinearTemplate()), schedule=[kill_at],
            error=lambda: NetlistError("shorted net"))
        result = YieldOptimizer(LinearTemplate(),
                                quick_config(min_improvement=-1.0),
                                evaluator=injector).run()
        assert result.aborted
        assert result.stop_reason.startswith(
            STOP_ABORTED_PREFIX + "NetlistError")
        assert len(result.records) == 2  # initial + iteration 1

    def test_counters_consistent_after_mid_verification_fault(self):
        template = LinearTemplate()
        evaluator = Evaluator(template)
        injector = FaultInjectingEvaluator(evaluator, rate=0.05, seed=13)
        YieldOptimizer(template, quick_config(min_improvement=-1.0),
                       evaluator=injector).run()
        # Every answered request is either a cache hit or a miss; the
        # injector raises *before* the inner evaluator sees the request.
        assert evaluator.request_count == \
            evaluator.cache_hits + evaluator.cache_misses
        assert evaluator.simulation_count == evaluator.cache_misses

    def test_failed_samples_surface_in_result_and_trace(self):
        # ExtractionError is count-as-fail: no retry can absorb it, so
        # lenient verification records genuine failed samples.
        template = LinearTemplate()
        injector = FaultInjectingEvaluator(
            Evaluator(template), rate=0.02, seed=29,
            error=lambda: ExtractionError("no unity-gain crossing"))
        guarded = FaultTolerantEvaluator(injector)
        with guarded.lenient():
            result = OperationalMC().estimate(guarded, D, {"f>=": THETA},
                                              n_samples=200, seed=5)
        assert result.failed_samples > 0
        assert result.failed_samples == guarded.failed_evaluations
        assert result.report.failed_samples == result.failed_samples
        # A failed sample counts as spec-violating in Eq. 6-7.
        assert result.estimate <= \
            1.0 - result.failed_samples / result.n_samples

    def test_trace_table_reports_failed_samples(self):
        template = LinearTemplate()
        result = YieldOptimizer(template, quick_config()).run()
        record = result.records[-1]
        record.failed_samples = 3
        text = optimization_trace_table(template, result)
        assert "failed samples = 3" in text
        assert "counted as spec-violating" in text
