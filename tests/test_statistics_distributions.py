"""Unit tests for repro.statistics.distributions (Sec. 2 transform)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.statistics import LogNormal, Normal, Uniform


class TestNormal:
    def test_identity_for_standard(self):
        d = Normal(0.0, 1.0)
        assert d.from_normal(1.7) == pytest.approx(1.7)
        assert d.to_normal(-0.3) == pytest.approx(-0.3)

    @given(z=st.floats(-6, 6), mean=st.floats(-10, 10),
           sigma=st.floats(0.01, 10))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip(self, z, mean, sigma):
        d = Normal(mean, sigma)
        assert d.to_normal(d.from_normal(z)) == pytest.approx(z, abs=1e-9)

    def test_invalid_sigma(self):
        with pytest.raises(ReproError):
            Normal(0.0, 0.0)


class TestLogNormal:
    @given(z=st.floats(-6, 6))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, z):
        d = LogNormal(mu=0.5, sigma=0.3)
        assert d.to_normal(d.from_normal(z)) == pytest.approx(z, abs=1e-9)

    def test_samples_are_positive(self):
        d = LogNormal(0.0, 1.0)
        for z in (-5, -1, 0, 1, 5):
            assert d.from_normal(z) > 0

    def test_non_positive_sample_rejected(self):
        with pytest.raises(ReproError):
            LogNormal(0.0, 1.0).to_normal(-1.0)

    def test_transform_reproduces_distribution(self):
        """Mapping N(0,1) draws through from_normal gives log-normal
        moments (the Sec. 2 claim: everything reduces to a Gaussian)."""
        rng = np.random.default_rng(0)
        d = LogNormal(mu=0.0, sigma=0.25)
        samples = np.array([d.from_normal(z)
                            for z in rng.standard_normal(20000)])
        expected_mean = math.exp(0.25**2 / 2)
        assert samples.mean() == pytest.approx(expected_mean, rel=0.02)


class TestUniform:
    @given(z=st.floats(-5, 5))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, z):
        d = Uniform(-2.0, 3.0)
        assert d.to_normal(d.from_normal(z)) == pytest.approx(z, abs=1e-6)

    def test_samples_stay_in_interval(self):
        d = Uniform(1.0, 2.0)
        for z in (-8, -1, 0, 1, 8):
            assert 1.0 <= d.from_normal(z) <= 2.0

    def test_median_maps_to_zero(self):
        d = Uniform(0.0, 10.0)
        assert d.to_normal(5.0) == pytest.approx(0.0, abs=1e-12)

    def test_out_of_range_rejected(self):
        with pytest.raises(ReproError):
            Uniform(0.0, 1.0).to_normal(1.5)

    def test_degenerate_interval_rejected(self):
        with pytest.raises(ReproError):
            Uniform(1.0, 1.0)

    def test_boundary_maps_to_finite_quantile(self):
        d = Uniform(0.0, 1.0)
        assert math.isfinite(d.to_normal(0.0))
        assert math.isfinite(d.to_normal(1.0))
