"""Tests for the two-stage segmented-array template: the large
benchmark circuit of the sparse MNA backend.

Beyond the usual template sanity (plausible nominals, feasible initial
sizing, mismatch physics of the matched pairs), these tests pin down the
properties the template exists for: an MNA system large enough that the
``auto`` backend picks sparse, sparse/dense agreement on the full
evaluation path, and end-to-end operation through the yield-estimation
and sharded-verification pipelines.
"""

import numpy as np
import pytest

from repro.circuit.linsolve import AUTO_SPARSE_MIN_NODES
from repro.circuits import TwoStageArrayOpamp
from repro.circuits.two_stage_array import MATCHED_PAIRS, N_SEGMENTS

TEMPLATE = TwoStageArrayOpamp()
D = TEMPLATE.initial_design()
THETA = TEMPLATE.operating_range.nominal()
S0 = TEMPLATE.statistical_space.nominal()
NOMINAL = TEMPLATE.evaluate(D, S0, THETA)


class TestSize:
    def test_mna_size_exceeds_sparse_floor(self):
        size = TEMPLATE.nominal_mna_size()
        assert size >= AUTO_SPARSE_MIN_NODES
        assert size >= 250  # the >= 120 floor with headroom to spare

    def test_assert_large_passes(self):
        TEMPLATE.assert_large()

    def test_auto_backend_resolves_to_sparse(self):
        from repro.circuit.linsolve import SPARSE, resolve_backend
        assert resolve_backend("auto",
                               TEMPLATE.nominal_mna_size()) is SPARSE


class TestNominal:
    def test_values_in_plausible_ranges(self):
        assert 75.0 < NOMINAL["a0"] < 100.0
        assert 3.0 < NOMINAL["ft"] < 15.0
        assert 70.0 < NOMINAL["cmrr"] < 120.0
        assert 1.5 < NOMINAL["sr"] < 6.0
        assert 0.3 < NOMINAL["power"] < 2.0

    def test_initial_design_is_feasible(self):
        values = TEMPLATE.constraints(D)
        assert min(values.values()) >= 0.0

    def test_initial_design_meets_specs(self):
        for spec in TEMPLATE.specs:
            assert spec.passes(NOMINAL[spec.performance])

    def test_statistical_space_shape(self):
        space = TEMPLATE.statistical_space
        # globals + (vth + beta) for the two matched pairs only: the
        # local space stays 8-dimensional regardless of segment count.
        n_globals = space.dim - 8
        assert len(space.local_variations) == 8
        assert n_globals >= 1
        assert len(TEMPLATE.local_vth_names()) == 4

    def test_variants(self):
        local_only = TwoStageArrayOpamp(with_global=False)
        assert local_only.statistical_space.dim == 8
        global_only = TwoStageArrayOpamp(with_local=False)
        assert len(global_only.statistical_space.local_variations) == 0

    def test_matched_pairs_listed(self):
        assert ("M1", "M2") in MATCHED_PAIRS
        assert ("M3", "M4") in MATCHED_PAIRS


class TestBackendEquivalence:
    def test_dense_and_sparse_full_evaluations_agree(self):
        """The acceptance tolerance of the backend layer, exercised on
        the full evaluate() path (DC homotopy + warm start + AC
        measurements) of the large template itself."""
        results = {}
        for backend in ("dense", "sparse"):
            t = TwoStageArrayOpamp()
            t.linsolve = backend
            rng = np.random.default_rng(11)
            s = rng.standard_normal(t.statistical_space.dim)
            results[backend] = t.evaluate(t.initial_design(), s, THETA)
        for key, dense_value in results["dense"].items():
            assert results["sparse"][key] == pytest.approx(
                dense_value, rel=1e-6), key


class TestMismatchPhysics:
    def _with_vth_mismatch(self, device_a, device_b, delta):
        space = TEMPLATE.statistical_space
        s = np.zeros(space.dim)
        names = [lv.name for lv in space.local_variations]
        sig_a = space.local_variations[names.index(
            f"dvt_{device_a}")].sigma(TEMPLATE.process, D)
        sig_b = space.local_variations[names.index(
            f"dvt_{device_b}")].sigma(TEMPLATE.process, D)
        s[space.index(f"dvt_{device_a}")] = delta / sig_a
        s[space.index(f"dvt_{device_b}")] = -delta / sig_b
        return TEMPLATE.evaluate(D, s, THETA)

    def test_mirror_pair_mismatch_degrades_cmrr(self):
        plus = self._with_vth_mismatch("M3", "M4", 2e-3)
        minus = self._with_vth_mismatch("M4", "M3", 2e-3)
        assert min(plus["cmrr"], minus["cmrr"]) < NOMINAL["cmrr"] - 5.0

    def test_input_pair_beta_mismatch_shifts_cmrr(self):
        """Input-pair vth mismatch is pure offset (absorbed by the
        bench); its *gain-factor* mismatch unbalances gm and moves CMRR
        by a signed few dB."""
        space = TEMPLATE.statistical_space
        shifts = []
        for sign in (1.0, -1.0):
            s = np.zeros(space.dim)
            s[space.index("dbeta_M1")] = 3.0 * sign
            s[space.index("dbeta_M2")] = -3.0 * sign
            shifts.append(TEMPLATE.evaluate(D, s, THETA)["cmrr"]
                          - NOMINAL["cmrr"])
        assert all(abs(shift) > 1.0 for shift in shifts)
        assert min(shifts) < 0.0 < max(shifts)

    def test_mismatch_leaves_power_alone(self):
        tilted = self._with_vth_mismatch("M1", "M2", 2e-3)
        assert tilted["power"] == pytest.approx(NOMINAL["power"],
                                                rel=0.05)


class TestDesignBehaviour:
    def test_bigger_miller_cap_lowers_ft_and_sr(self):
        d = dict(D)
        d["cc"] = D["cc"] * 2.0
        result = TEMPLATE.evaluate(d, S0, THETA)
        assert result["ft"] < NOMINAL["ft"]
        assert result["sr"] < NOMINAL["sr"]

    def test_segment_widths_scale_power(self):
        d = dict(D)
        d["wp"] = D["wp"] * 1.5
        d["wn"] = D["wn"] * 1.5
        result = TEMPLATE.evaluate(d, S0, THETA)
        assert result["power"] > NOMINAL["power"]

    def test_segment_count_constant(self):
        """The netlist really instantiates every segment (device count
        grows with N_SEGMENTS)."""
        space = TEMPLATE.statistical_space
        pv = space.to_physical(D, S0)
        circuit = TEMPLATE.build(D, pv, THETA)
        names = {dev.name for dev in circuit.devices}
        for k in range(1, N_SEGMENTS + 1):
            assert f"MP{k}" in names
            assert f"MN{k}" in names


class TestEndToEnd:
    def test_yield_estimation_runs(self):
        from repro.evaluation import Evaluator
        from repro.spec.operating import spec_key
        from repro.yieldsim import make_estimator

        t = TwoStageArrayOpamp()
        evaluator = Evaluator(t)
        d = t.initial_design()
        theta = {spec_key(s): dict(THETA) for s in t.specs}
        estimator = make_estimator("mc")
        result = estimator.estimate(evaluator, d, theta, n_samples=12,
                                    seed=7)
        assert result.n_samples == 12
        assert 0.0 <= result.estimate <= 1.0
        assert result.report.simulations > 0

    def test_sharded_runs_merge_to_unsharded(self):
        from repro.evaluation import Evaluator
        from repro.spec.operating import spec_key
        from repro.yieldsim import ShardPlan, make_estimator, merge_results

        theta = {spec_key(s): dict(THETA) for s in TEMPLATE.specs}
        results = []
        for index in (0, 1):
            t = TwoStageArrayOpamp()
            estimator = make_estimator("mc")
            results.append(estimator.estimate(
                Evaluator(t), t.initial_design(), theta, n_samples=10,
                seed=7, shard=ShardPlan(index, 2)))
        merged = merge_results(results)
        t = TwoStageArrayOpamp()
        unsharded = make_estimator("mc").estimate(
            Evaluator(t), t.initial_design(), theta, n_samples=10, seed=7)
        assert merged.estimate == pytest.approx(unsharded.estimate)
        assert merged.n_samples == unsharded.n_samples

    def test_cli_registration(self):
        from repro.cli import CIRCUITS
        assert CIRCUITS["two-stage-array"] is TwoStageArrayOpamp
