"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_circuit_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["optimize", "nonsense"])

    def test_optimize_defaults(self):
        args = build_parser().parse_args(["optimize", "miller"])
        assert args.iterations == 5
        assert args.samples == 10000
        assert not args.no_constraints

    def test_ablation_flags(self):
        args = build_parser().parse_args(
            ["optimize", "folded-cascode", "--no-constraints",
             "--nominal-linearization"])
        assert args.no_constraints
        assert args.nominal_linearization


class TestEvaluateCommand:
    def test_prints_performances(self, capsys):
        assert main(["evaluate", "ota"]) == 0
        out = capsys.readouterr().out
        assert "nominal performances" in out
        assert "a0" in out and "noise" in out
        assert "PASS" in out
        assert "sizing rules" in out


class TestSimulateCommand:
    def test_netlist_file(self, tmp_path, capsys):
        netlist = tmp_path / "divider.sp"
        netlist.write_text(
            "divider\nV1 in 0 DC 2.0\nR1 in out 1k\nR2 out 0 1k\n.end\n")
        assert main(["simulate", str(netlist)]) == 0
        out = capsys.readouterr().out
        assert "V(out) = 1.000000" in out

    def test_ac_readout(self, tmp_path, capsys):
        netlist = tmp_path / "rc.sp"
        netlist.write_text(
            "rc\nV1 in 0 DC 0 AC 1\nR1 in out 1k\nC1 out 0 1u\n.end\n")
        assert main(["simulate", str(netlist), "--node", "out",
                     "--ac", "159.155"]) == 0
        out = capsys.readouterr().out
        assert "-3.0 dB" in out


@pytest.mark.slow
class TestAnalysisCommands:
    def test_corners_exit_code_signals_failures(self, capsys):
        # The OTA initial sizing fails a0 at a hot corner -> exit code 1.
        code = main(["corners", "ota"])
        out = capsys.readouterr().out
        assert "worst value" in out
        assert code in (0, 1)

    def test_analyze_local_only(self, capsys):
        assert main(["analyze", "ota", "--local-only"]) == 0
        out = capsys.readouterr().out
        assert "worst-case distances" in out

    def test_optimize_quick(self, capsys):
        code = main(["optimize", "ota", "--iterations", "1",
                     "--samples", "2000", "--verify-samples", "30",
                     "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Y_tilde" in out
        assert "stop reason:" in out

    def test_optimize_with_faults_and_checkpoint(self, tmp_path, capsys):
        checkpoint = tmp_path / "run.ckpt.json"
        # The fault seed must inject faults without ever exhausting the
        # retry budget on one point: model building runs strict, so a
        # point whose original and jittered probes all fault aborts the
        # run (by design).  Injection is point-deterministic, so the
        # safe seeds shift whenever evaluation values move the search
        # trajectory at all.
        args = ["optimize", "ota", "--iterations", "1",
                "--samples", "2000", "--verify-samples", "30",
                "--seed", "3", "--inject-faults", "0.05",
                "--fault-seed", "2", "--checkpoint", str(checkpoint)]
        code = main(args)
        assert code == 0
        out = capsys.readouterr().out
        assert "stop reason:" in out
        assert checkpoint.exists()
        # Resuming from the finished run's checkpoint replays the same
        # trace without re-optimizing.
        code = main(args + ["--resume"])
        assert code == 0
        resumed = capsys.readouterr().out
        assert "stop reason:" in resumed
        assert "final design" in out
