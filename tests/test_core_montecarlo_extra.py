"""Additional coverage: Monte-Carlo details, optimizer records on real
circuits reused from cheap fixtures, and table rendering round trips."""

import numpy as np
import pytest

from helpers import LinearTemplate, tiny_process
from repro.core import (OptimizerConfig, YieldOptimizer, build_spec_models,
                        find_all_worst_case_points, wcd_yield_report)
from repro.core.estimator import LinearizedYieldEstimator
from repro.evaluation import Evaluator
from repro.statistics import SampleSet

THETA = {"temp": 27.0}


class TestOptimizerEdgeCases:
    def test_zero_max_iterations_rejected_gracefully(self):
        """max_iterations=0 still yields a result object (no records)."""
        t = LinearTemplate()
        result = YieldOptimizer(
            t, OptimizerConfig(max_iterations=0, n_samples_linear=100,
                               verify=False)).run()
        assert result.records == []
        assert result.converged is False

    def test_single_sample_budget(self):
        t = LinearTemplate()
        result = YieldOptimizer(
            t, OptimizerConfig(max_iterations=1, n_samples_linear=1,
                               n_samples_verify=1, seed=1,
                               trust_radius=0.0)).run()
        assert 0.0 <= result.final.yield_linear <= 1.0

    def test_seed_reproducibility(self):
        t1 = LinearTemplate()
        t2 = LinearTemplate()
        config = OptimizerConfig(max_iterations=2, n_samples_linear=500,
                                 n_samples_verify=50, seed=9,
                                 trust_radius=0.0)
        r1 = YieldOptimizer(t1, config).run()
        r2 = YieldOptimizer(t2, config).run()
        assert r1.d_final == r2.d_final
        assert r1.final.yield_mc == r2.final.yield_mc

    def test_already_perfect_design_converges_immediately(self):
        t = LinearTemplate(offset=100.0)  # passes by ~100 sigma
        result = YieldOptimizer(
            t, OptimizerConfig(max_iterations=4, n_samples_linear=500,
                               n_samples_verify=30, seed=1,
                               trust_radius=0.0)).run()
        assert result.converged
        assert len(result.records) == 2  # initial + one no-gain iteration
        assert result.final.yield_mc == 1.0

    def test_evaluator_shared_across_runs(self):
        """An externally supplied evaluator keeps its cache/counters."""
        t = LinearTemplate()
        evaluator = Evaluator(t)
        config = OptimizerConfig(max_iterations=1, n_samples_linear=100,
                                 n_samples_verify=10, seed=1)
        YieldOptimizer(t, config, evaluator=evaluator).run()
        first_count = evaluator.simulation_count
        YieldOptimizer(t, config, evaluator=evaluator).run()
        # Second run hits the cache for most points.
        assert evaluator.simulation_count < 2 * first_count


class TestEstimatorMirrorInteraction:
    def test_mirror_models_tighten_the_wcd_report(self):
        """Consistency across the two yield views: for the tent template
        the two-sided Phi(beta) estimate matches the two-model linearized
        Monte-Carlo estimate."""
        from helpers import QuadraticTemplate
        t = QuadraticTemplate(peak=10.0, curvature=1.0, bound=2.0, dim=3)
        ev = Evaluator(t)
        theta_map = {"f>=": THETA}
        wc = find_all_worst_case_points(ev, {"d0": 0.0}, theta_map, seed=3)
        models = build_spec_models(ev, {"d0": 0.0}, wc, theta_map)
        assert len(models) == 2  # primary + mirror
        samples = SampleSet.draw(20000, 3, seed=4)
        estimator = LinearizedYieldEstimator(models, samples)
        y_linear = estimator.yield_estimate({"d0": 0.0})
        report = wcd_yield_report(wc, two_sided_keys={"f>="})
        assert y_linear == pytest.approx(report.independent_estimate,
                                         abs=0.02)


class TestRecordsSerialization:
    def test_records_carry_worst_case_data(self):
        t = LinearTemplate()
        result = YieldOptimizer(
            t, OptimizerConfig(max_iterations=1, n_samples_linear=200,
                               n_samples_verify=20, seed=2)).run()
        wc = result.initial.worst_case["f>="]
        assert wc.spec.performance == "f"
        assert np.isfinite(wc.beta_wc)

    def test_cumulative_counts_monotone(self):
        t = LinearTemplate()
        result = YieldOptimizer(
            t, OptimizerConfig(max_iterations=3, n_samples_linear=200,
                               n_samples_verify=20, seed=2,
                               trust_radius=0.0)).run()
        counts = [r.simulations for r in result.records]
        assert counts == sorted(counts)
        assert result.total_simulations >= counts[-1]
