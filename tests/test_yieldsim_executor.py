"""Tests for the batched parallel execution engine: chunking,
deterministic ordering, counter accounting, the timeout/retry path, and
degradation to serial execution when the pool dies (wedged worker or
``BrokenProcessPool``)."""

import multiprocessing
import os
import time

import numpy as np
import pytest

from helpers import LinearTemplate
from repro.errors import ReproError
from repro.evaluation import Evaluator
from repro.yieldsim import BatchExecutor, ExecutionConfig

THETAS = [{"temp": 27.0}]
D = {"d0": 1.0, "d1": 0.0}


class SlowTemplate(LinearTemplate):
    """Sleeps on every evaluation — drives the per-chunk timeout path."""

    def __init__(self, delay=0.2):
        super().__init__()
        self.delay = delay

    def evaluate(self, d, s_hat, theta):
        time.sleep(self.delay)
        return super().evaluate(d, s_hat, theta)


class FailInWorkerTemplate(LinearTemplate):
    """Raises in any process other than the one that built it — drives
    the pool-failure/in-parent-retry path deterministically."""

    def __init__(self):
        super().__init__()
        self.home_pid = os.getpid()

    def evaluate(self, d, s_hat, theta):
        if os.getpid() != self.home_pid:
            raise RuntimeError("worker-side failure")
        return super().evaluate(d, s_hat, theta)


class WedgeInWorkerTemplate(LinearTemplate):
    """Sleeps (near-)forever in worker processes, evaluates instantly in
    the parent — a wedged worker that ``Future.cancel`` cannot stop."""

    def __init__(self, delay=60.0):
        super().__init__()
        self.home_pid = os.getpid()
        self.delay = delay

    def evaluate(self, d, s_hat, theta):
        if os.getpid() != self.home_pid:
            time.sleep(self.delay)
        return super().evaluate(d, s_hat, theta)


class DieInWorkerTemplate(LinearTemplate):
    """Kills its worker process outright — drives ``BrokenProcessPool``."""

    def __init__(self):
        super().__init__()
        self.home_pid = os.getpid()

    def evaluate(self, d, s_hat, theta):
        if os.getpid() != self.home_pid:
            os._exit(17)
        return super().evaluate(d, s_hat, theta)


def run(template, config, n=12):
    evaluator = Evaluator(template)
    matrix = np.random.default_rng(3).standard_normal((n, 2))
    outcome = BatchExecutor(config).run(evaluator, D, THETAS, matrix)
    return evaluator, matrix, outcome


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ReproError):
            ExecutionConfig(jobs=0)
        with pytest.raises(ReproError):
            ExecutionConfig(chunk_size=0)
        with pytest.raises(ReproError):
            ExecutionConfig(retries=-1)

    def test_rejects_bad_matrix(self):
        evaluator = Evaluator(LinearTemplate())
        with pytest.raises(ReproError):
            BatchExecutor().run(evaluator, D, THETAS, np.zeros(3))
        with pytest.raises(ReproError):
            BatchExecutor().run(evaluator, D, [], np.zeros((3, 2)))


class TestSerialBackend:
    def test_values_ordered_and_counted(self):
        evaluator, matrix, outcome = run(LinearTemplate(),
                                         ExecutionConfig())
        assert outcome.backend == "serial"
        assert len(outcome.values) == 12
        t = LinearTemplate()
        for row, per_theta in zip(matrix, outcome.values):
            assert per_theta[0]["f"] == pytest.approx(
                t.value(D, row, THETAS[0]))
        assert outcome.simulations == 12
        assert evaluator.simulation_count == 12

    def test_cache_hits_reported(self):
        template = LinearTemplate()
        evaluator = Evaluator(template)
        matrix = np.zeros((5, 2))  # identical rows -> 1 miss + 4 hits
        outcome = BatchExecutor().run(evaluator, D, THETAS, matrix)
        assert outcome.simulations == 1
        assert outcome.cache_hits == 4
        assert evaluator.cache_hits == 4
        assert evaluator.cache_misses == 1


class TestProcessPoolBackend:
    def test_matches_serial_bitwise(self):
        _, _, serial = run(LinearTemplate(), ExecutionConfig(), n=23)
        _, _, parallel = run(LinearTemplate(),
                             ExecutionConfig(jobs=2, chunk_size=5), n=23)
        assert parallel.backend == "process-pool"
        assert parallel.chunks == 5
        assert parallel.values == serial.values

    def test_chunk_size_invariance(self):
        outcomes = [run(LinearTemplate(),
                        ExecutionConfig(jobs=2, chunk_size=size), n=17)[2]
                    for size in (1, 4, 17)]
        assert outcomes[0].values == outcomes[1].values == \
            outcomes[2].values

    def test_parent_counters_absorb_worker_effort(self):
        evaluator, _, outcome = run(LinearTemplate(),
                                    ExecutionConfig(jobs=2, chunk_size=4),
                                    n=12)
        assert outcome.simulations == 12
        assert evaluator.simulation_count == 12
        assert evaluator.request_count == 12

    def test_timeout_retries_in_parent(self):
        template = SlowTemplate(delay=0.2)
        evaluator = Evaluator(template)
        matrix = np.random.default_rng(1).standard_normal((2, 2))
        config = ExecutionConfig(jobs=2, chunk_size=1, timeout_s=0.02)
        outcome = BatchExecutor(config).run(evaluator, D, THETAS, matrix)
        assert outcome.timed_out_chunks >= 1
        assert outcome.retried_chunks >= 1
        reference = BatchExecutor().run(Evaluator(SlowTemplate(0.0)), D,
                                        THETAS, matrix)
        assert outcome.values == reference.values

    def test_worker_failure_retries_in_parent(self):
        template = FailInWorkerTemplate()
        evaluator = Evaluator(template)
        matrix = np.random.default_rng(2).standard_normal((6, 2))
        config = ExecutionConfig(jobs=2, chunk_size=3)
        outcome = BatchExecutor(config).run(evaluator, D, THETAS, matrix)
        assert outcome.retried_chunks == 2
        assert outcome.timed_out_chunks == 0
        reference = BatchExecutor().run(Evaluator(LinearTemplate()), D,
                                        THETAS, matrix)
        assert outcome.values == reference.values
        # Retried effort landed on the parent evaluator.
        assert evaluator.simulation_count == 6

    def test_exhausted_retries_raise(self):
        template = FailInWorkerTemplate()
        template.home_pid = -1  # fails in the parent too
        evaluator = Evaluator(template)
        matrix = np.zeros((4, 2))
        config = ExecutionConfig(jobs=2, chunk_size=2, retries=1)
        with pytest.raises(ReproError):
            BatchExecutor(config).run(evaluator, D, THETAS, matrix)

    def test_single_sample_stays_serial(self):
        _, _, outcome = run(LinearTemplate(), ExecutionConfig(jobs=4), n=1)
        assert outcome.backend == "serial"


class TestPoolDegradation:
    """When the pool dies the batch must still finish: workers are
    killed, finished chunks are harvested, and the remainder runs
    serially in the parent."""

    def test_wedged_worker_is_killed_not_awaited(self):
        # Every worker-side evaluation sleeps 60 s; the whole batch must
        # still finish far sooner than any single hung chunk, which
        # proves the pool was torn down rather than drained.
        template = WedgeInWorkerTemplate(delay=60.0)
        evaluator = Evaluator(template)
        matrix = np.random.default_rng(4).standard_normal((6, 2))
        config = ExecutionConfig(jobs=2, chunk_size=2, timeout_s=0.2)
        started = time.monotonic()
        outcome = BatchExecutor(config).run(evaluator, D, THETAS, matrix)
        elapsed = time.monotonic() - started
        assert elapsed < 30.0
        assert outcome.degraded_to_serial
        assert outcome.timed_out_chunks == 1
        # The remaining chunks were not waited on against the dead pool.
        assert outcome.retried_chunks >= 1
        reference = BatchExecutor().run(Evaluator(LinearTemplate()), D,
                                        THETAS, matrix)
        assert outcome.values == reference.values

    def test_wedged_worker_leaves_no_live_children(self):
        template = WedgeInWorkerTemplate(delay=60.0)
        evaluator = Evaluator(template)
        matrix = np.random.default_rng(5).standard_normal((4, 2))
        config = ExecutionConfig(jobs=2, chunk_size=2, timeout_s=0.2)
        BatchExecutor(config).run(evaluator, D, THETAS, matrix)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and \
                any(p.is_alive() for p in multiprocessing.active_children()):
            time.sleep(0.05)
        leaked = [p for p in multiprocessing.active_children()
                  if p.is_alive()]
        assert not leaked, f"wedged workers outlived the run: {leaked}"

    def test_broken_pool_degrades_to_serial(self):
        template = DieInWorkerTemplate()
        evaluator = Evaluator(template)
        matrix = np.random.default_rng(6).standard_normal((6, 2))
        config = ExecutionConfig(jobs=2, chunk_size=2)
        outcome = BatchExecutor(config).run(evaluator, D, THETAS, matrix)
        assert outcome.degraded_to_serial
        assert outcome.timed_out_chunks == 0
        assert outcome.retried_chunks >= 1
        reference = BatchExecutor().run(Evaluator(LinearTemplate()), D,
                                        THETAS, matrix)
        assert outcome.values == reference.values
        # Serial re-runs counted on the parent evaluator; every sample
        # is accounted for exactly once overall.
        assert evaluator.simulation_count == 6
