"""Shared test fixtures: cheap analytic circuit templates.

The core-algorithm tests (worst-case search, linearization, estimator,
optimizer) need a black box ``f(d, s, theta)`` whose true worst-case
points, gradients and yields are known in closed form.  These fake
templates provide that without any circuit simulation, so the algorithm
tests run in milliseconds and assert against exact analytic answers.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

import numpy as np

from repro.evaluation.template import CircuitTemplate, DesignParameter
from repro.pdk.process import GlobalVariation, Process
from repro.pdk.generic035 import NMOS, PMOS
from repro.spec.operating import OperatingParameter, OperatingRange
from repro.spec.specification import Performance, Spec
from repro.statistics.space import StatisticalSpace


def tiny_process(n_globals: int = 2) -> Process:
    """A minimal process with ``n_globals`` independent unit-free globals."""
    targets = ["vth_nmos", "vth_pmos", "beta_nmos", "beta_pmos", "res"]
    variations = tuple(
        GlobalVariation(f"g{i}", targets[i % len(targets)], sigma=1.0)
        for i in range(n_globals))
    return Process(
        name="tiny",
        nmos=NMOS,
        pmos=PMOS,
        vdd_nominal=3.3,
        temp_nominal=27.0,
        global_variations=variations,
        global_correlation=np.eye(n_globals),
    )


def trivial_operating_range() -> OperatingRange:
    """One operating axis with a degenerate-ish span."""
    return OperatingRange([OperatingParameter("temp", 0.0, 100.0, 27.0)])


class LinearTemplate(CircuitTemplate):
    """Analytic template: every performance is affine in (d, s, theta).

        f(d, s, theta) = offset + cd . d + cs . s + ct * theta_temp

    Worst-case distances, gradients, and linearized yields are exact, so
    algorithm tests can assert closed-form answers.  One constraint
    ``c(d) = d0 - min_d0 >= 0`` bounds the feasible region.
    """

    name = "linear-fake"

    def __init__(self, offset: float = 5.0,
                 cd: Optional[Dict[str, float]] = None,
                 cs: Optional[np.ndarray] = None,
                 ct: float = 0.0,
                 bound: float = 0.0,
                 kind: str = ">=",
                 min_d0: float = 0.0):
        process = tiny_process(2)
        space = StatisticalSpace(process, with_global=True)
        self.offset = offset
        self.cd = cd if cd is not None else {"d0": 1.0, "d1": 0.0}
        self.cs = np.asarray(cs if cs is not None else [1.0, 0.5])
        self.ct = ct
        self.min_d0 = min_d0
        parameters = [
            DesignParameter("d0", -10.0, 10.0, 1.0),
            DesignParameter("d1", -10.0, 10.0, 0.0),
        ]
        super().__init__(
            parameters,
            [Performance("f", "")],
            [Spec("f", kind, bound)],
            trivial_operating_range(),
            space,
            constraint_names=["c0"],
        )
        self.evaluations = 0

    def value(self, d: Mapping[str, float], s_hat: np.ndarray,
              theta: Mapping[str, float]) -> float:
        result = self.offset + self.ct * theta["temp"]
        for name, slope in self.cd.items():
            result += slope * d[name]
        result += float(self.cs @ np.asarray(s_hat))
        return result

    def evaluate(self, d, s_hat, theta):
        self.evaluations += 1
        return {"f": self.value(d, s_hat, theta)}

    def constraints(self, d, theta=None):
        return {"c0": d["d0"] - self.min_d0}


class QuadraticTemplate(CircuitTemplate):
    """Analytic tent-shaped (mismatch-type) template:

        f(d, s) = peak - curvature * (s0 - s1)^2 + slope_d * d0

    mimicking Fig. 1: a ridge along the neutral line ``s0 = s1`` and
    degradation along the mismatch line ``s0 = -s1``.  The worst-case
    points of the spec ``f >= bound`` are at ``s = +-(t, -t, 0, ...)`` with
    ``2 curvature (2 t^2)... = peak - bound`` exactly:
    ``t = sqrt((peak + slope_d*d0 - bound) / (4 curvature))``.
    """

    name = "quadratic-fake"

    def __init__(self, peak: float = 10.0, curvature: float = 1.0,
                 bound: float = 2.0, slope_d: float = 0.0,
                 dim: int = 3):
        process = tiny_process(dim)
        space = StatisticalSpace(process, with_global=True)
        self.peak = peak
        self.curvature = curvature
        self.slope_d = slope_d
        parameters = [DesignParameter("d0", -10.0, 10.0, 0.0)]
        super().__init__(
            parameters,
            [Performance("f", "")],
            [Spec("f", ">=", bound)],
            trivial_operating_range(),
            space,
            constraint_names=["c0"],
        )

    def expected_wc_norm(self, d0: float = 0.0) -> float:
        """Exact ||s_wc|| of the boundary point."""
        margin = self.peak + self.slope_d * d0 - self.specs[0].bound
        # minimum-norm point on f = bound lies along (1, -1)/sqrt(2):
        # f = peak - curvature*(2t/sqrt(2))^2 ... with s = t*(1,-1)/sqrt(2),
        # (s0 - s1) = 2t/sqrt(2) = t*sqrt(2), so f = peak - 2*curvature*t^2.
        return math.sqrt(margin / (2.0 * self.curvature))

    def evaluate(self, d, s_hat, theta):
        s_hat = np.asarray(s_hat)
        diff = s_hat[0] - s_hat[1]
        return {"f": self.peak - self.curvature * diff * diff
                + self.slope_d * d["d0"]}

    def constraints(self, d, theta=None):
        return {"c0": 1.0}
