"""Unit tests for the transient engine (repro.circuit.transient)."""

import math

import numpy as np
import pytest

from repro.circuit import Circuit, solve_dc, solve_transient
from repro.circuit.transient import pulse_waveform, step_waveform
from repro.pdk.generic035 import NMOS


class TestWaveforms:
    def test_step_levels(self):
        w = step_waveform(1e-6, 0.0, 1.0)
        assert w(0.0) == 0.0
        assert w(0.99e-6) == 0.0
        assert w(1.01e-6) == 1.0

    def test_step_linear_rise(self):
        w = step_waveform(0.0, 0.0, 2.0, t_rise=1e-6)
        assert w(0.5e-6) == pytest.approx(1.0)
        assert w(2e-6) == 2.0

    def test_pulse_shape(self):
        w = pulse_waveform(0.0, 1.0, t_delay=1e-6, t_width=2e-6,
                           t_edge=0.5e-6)
        assert w(0.5e-6) == 0.0
        assert w(1.25e-6) == pytest.approx(0.5)
        assert w(2.0e-6) == 1.0
        assert w(3.75e-6) == pytest.approx(0.5)
        assert w(5.0e-6) == 0.0


class TestLinearTransient:
    def test_rc_step_response(self):
        """V(out) = 1 - exp(-t/RC), within backward-Euler accuracy."""
        r, c = 1e3, 1e-9
        tau = r * c
        ckt = Circuit("rc-step")
        ckt.vsource("V1", "in", "0", dc=0.0,
                    waveform=step_waveform(0.0, 0.0, 1.0))
        ckt.resistor("R1", "in", "out", r)
        ckt.capacitor("C1", "out", "0", c)
        result = solve_transient(ckt, t_stop=5 * tau, dt=tau / 200)
        v = result.voltage("out")
        t = result.times
        expected = 1.0 - np.exp(-t / tau)
        assert np.max(np.abs(v - expected)) < 0.01

    def test_rl_current_rise(self):
        """Inductor current approaches V/R with time constant L/R."""
        r, l = 100.0, 1e-3
        tau = l / r
        ckt = Circuit("rl-step")
        ckt.vsource("V1", "in", "0", dc=0.0,
                    waveform=step_waveform(0.0, 0.0, 1.0))
        ckt.resistor("R1", "in", "mid", r)
        ckt.inductor("L1", "mid", "0", l)
        result = solve_transient(ckt, t_stop=5 * tau, dt=tau / 200)
        # V(mid) decays to 0 as the inductor current saturates.
        v_mid = result.voltage("mid")
        assert v_mid[-1] == pytest.approx(0.0, abs=0.01)
        assert v_mid[1] == pytest.approx(1.0, abs=0.05)

    def test_initial_condition_override(self):
        ckt = Circuit("ic")
        ckt.resistor("R1", "a", "0", 1e3)
        ckt.capacitor("C1", "a", "0", 1e-9, ic=2.0)
        ckt.resistor("Rbig", "a", "0", 1e9)  # keeps DC solvable
        result = solve_transient(ckt, t_stop=1e-8, dt=1e-9)
        # The capacitor starts from its IC and discharges through R1.
        assert result.voltage("a")[1] == pytest.approx(2.0, rel=0.1)

    def test_slew_rate_helper(self):
        ckt = Circuit("ramp")
        ckt.vsource("V1", "in", "0", dc=0.0,
                    waveform=step_waveform(0.0, 0.0, 1.0, t_rise=1e-6))
        ckt.resistor("R1", "in", "out", 1.0)
        ckt.capacitor("C1", "out", "0", 1e-15)
        result = solve_transient(ckt, t_stop=2e-6, dt=1e-8)
        assert result.slew_rate("out") == pytest.approx(1e6, rel=0.05)
        assert result.slew_rate("out", polarity=-1) <= 0.01e6


class TestMosTransient:
    def test_nmos_inverter_switches(self):
        """Resistor-load inverter: output falls when the input steps up."""
        ckt = Circuit("inverter")
        ckt.vsource("VDD", "vdd", "0", dc=3.3)
        ckt.vsource("VIN", "g", "0", dc=0.0,
                    waveform=step_waveform(1e-9, 0.0, 3.3, t_rise=1e-10))
        ckt.resistor("RD", "vdd", "d", 10e3)
        ckt.capacitor("CL", "d", "0", 100e-15)
        ckt.mosfet("M1", "d", "g", "0", "0", NMOS, w=10e-6, l=1e-6)
        result = solve_transient(ckt, t_stop=20e-9, dt=0.05e-9)
        v = result.voltage("d")
        assert v[0] == pytest.approx(3.3, abs=0.01)  # off initially
        assert v[-1] < 0.5  # pulled low after the step

    def test_unknown_node_raises(self):
        ckt = Circuit("x")
        ckt.vsource("V1", "a", "0", dc=1.0)
        ckt.resistor("R1", "a", "0", 1e3)
        result = solve_transient(ckt, t_stop=1e-9, dt=1e-10)
        with pytest.raises(KeyError):
            result.voltage("nope")
        assert np.all(result.voltage("0") == 0.0)


class TestDegenerateSlew:
    """Degenerate waveforms must raise ExtractionError from slew_rate
    (so fault policies can classify them), never a bare numpy error."""

    def _result(self, times, volts):
        from repro.circuit.transient import TranResult

        class _Layout:
            node_index = {"out": 0}

        return TranResult(Circuit("stub"), _Layout(),
                          np.asarray(times, dtype=float),
                          np.asarray(volts, dtype=float).reshape(-1, 1))

    def test_single_point_waveform(self):
        from repro.errors import ExtractionError
        with pytest.raises(ExtractionError, match="at least 2 time points"):
            self._result([0.0], [1.0]).slew_rate("out")

    def test_empty_waveform(self):
        from repro.errors import ExtractionError
        with pytest.raises(ExtractionError, match="at least 2 time points"):
            self._result([], []).slew_rate("out")

    def test_duplicate_timesteps(self):
        from repro.errors import ExtractionError
        with pytest.raises(ExtractionError, match="non-increasing"):
            self._result([0.0, 1e-9, 1e-9, 2e-9],
                         [0.0, 1.0, 2.0, 3.0]).slew_rate("out")

    def test_two_points_still_work(self):
        result = self._result([0.0, 1e-6], [0.0, 1.0])
        assert result.slew_rate("out") == pytest.approx(1e6)
        assert result.slew_rate("out", polarity=-1) == pytest.approx(-1e6)
