"""Tests for the five-transistor OTA template (incl. the noise spec)."""

import numpy as np
import pytest

from repro.circuits import FiveTransistorOta
from repro.core import OptimizerConfig, YieldOptimizer
from repro.evaluation import Evaluator, corner_analysis

TEMPLATE = FiveTransistorOta()
D = TEMPLATE.initial_design()
THETA = TEMPLATE.operating_range.nominal()
S0 = TEMPLATE.statistical_space.nominal()
NOMINAL = TEMPLATE.evaluate(D, S0, THETA)


class TestNominal:
    def test_values_in_plausible_ranges(self):
        assert 35.0 < NOMINAL["a0"] < 55.0
        assert 30.0 < NOMINAL["ft"] < 120.0
        assert 55.0 < NOMINAL["cmrr"] < 90.0
        assert 20.0 < NOMINAL["sr"] < 80.0
        assert 0.1 < NOMINAL["power"] < 1.0
        assert 2.0 < NOMINAL["noise"] < 15.0  # nV/sqrt(Hz)

    def test_initial_design_is_feasible(self):
        assert min(TEMPLATE.constraints(D).values()) >= 0.0

    def test_statistical_dimensions(self):
        # 5 globals + (vth + beta) x 5 transistors.
        assert TEMPLATE.statistical_space.dim == 15
        assert len(TEMPLATE.local_vth_names()) == 5


class TestNoiseSpec:
    def test_bigger_input_pair_is_quieter(self):
        """gm up -> channel noise referred to the input drops."""
        d = dict(D)
        d["w1"] = D["w1"] * 3
        quieter = TEMPLATE.evaluate(d, S0, THETA)
        assert quieter["noise"] < NOMINAL["noise"]

    def test_noise_grows_with_temperature(self):
        hot = TEMPLATE.evaluate(D, S0, {"temp": 125.0, "vdd": 3.3})
        cold = TEMPLATE.evaluate(D, S0, {"temp": -40.0, "vdd": 3.3})
        assert hot["noise"] > cold["noise"]

    def test_noise_spec_is_declared_upper_bound(self):
        spec = TEMPLATE.spec_for("noise")
        assert spec.kind == "<="


class TestMismatchBehaviour:
    def test_pair_mismatch_moves_cmrr(self):
        """The OTA's CMRR is dominated by the *systematic* mirror gain
        error, so pair mismatch shifts it by a few dB (signed, one
        polarity cancels) rather than collapsing it like the folded
        cascode's."""
        space = TEMPLATE.statistical_space
        s = np.zeros(space.dim)
        s[space.index("dvt_M3")] = 6.0
        s[space.index("dvt_M4")] = -6.0
        plus = TEMPLATE.evaluate(D, s, THETA)
        minus = TEMPLATE.evaluate(D, -s, THETA)
        assert min(plus["cmrr"], minus["cmrr"]) < NOMINAL["cmrr"] - 2.0
        assert max(plus["cmrr"], minus["cmrr"]) > NOMINAL["cmrr"]


class TestCornerBehaviour:
    @pytest.mark.slow
    def test_corner_report_runs_clean_or_flags_marginal_specs(self):
        evaluator = Evaluator(TEMPLATE)
        report = corner_analysis(evaluator, D)
        # a0 is the tightest spec of this sizing; whatever fails must be
        # in the marginal set, never e.g. power.
        assert set(report.failing_specs()) <= {"a0>=", "cmrr>=", "noise<="}


@pytest.mark.slow
class TestYieldOptimization:
    def test_optimizer_improves_or_holds_yield(self):
        config = OptimizerConfig(n_samples_linear=4000,
                                 n_samples_verify=60,
                                 max_iterations=2, seed=3)
        result = YieldOptimizer(TEMPLATE, config).run()
        assert result.final.yield_mc >= result.initial.yield_mc - 0.05
        assert result.final.yield_mc > 0.5


class TestDeadCircuitSentinels:
    def test_dead_circuit_fails_every_spec(self):
        """A sample whose testbench cannot be measured must violate every
        spec — including upper-bounded ones like noise and power."""
        from repro.circuits.base import DEAD_CIRCUIT_PERFORMANCES
        for spec in TEMPLATE.specs:
            value = DEAD_CIRCUIT_PERFORMANCES.get(spec.performance, 0.0)
            assert not spec.passes(value), spec
