"""Unit tests for the evaluation layer: evaluator, gradients, template."""

import numpy as np
import pytest

from helpers import LinearTemplate, QuadraticTemplate
from repro.errors import ReproError
from repro.evaluation import (Evaluator, all_gradients_d, all_gradients_s,
                              constraint_jacobian, performance_gradient_d,
                              performance_gradient_s)
from repro.evaluation.template import DesignParameter

THETA = {"temp": 27.0}


class TestDesignParameter:
    def test_clip(self):
        p = DesignParameter("w", 1.0, 10.0, 5.0)
        assert p.clip(0.0) == 1.0
        assert p.clip(20.0) == 10.0
        assert p.clip(7.0) == 7.0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ReproError):
            DesignParameter("w", 5.0, 1.0, 3.0)
        with pytest.raises(ReproError):
            DesignParameter("w", 1.0, 5.0, 9.0)


class TestTemplateBasics:
    def test_design_vector_roundtrip(self):
        t = LinearTemplate()
        d = {"d0": 2.0, "d1": -1.0}
        assert t.design_dict(t.design_vector(d)) == d

    def test_clip_design(self):
        t = LinearTemplate()
        clipped = t.clip_design({"d0": 99.0, "d1": -99.0})
        assert clipped == {"d0": 10.0, "d1": -10.0}

    def test_initial_design_uses_parameter_initials(self):
        t = LinearTemplate()
        assert t.initial_design() == {"d0": 1.0, "d1": 0.0}

    def test_spec_for(self):
        t = LinearTemplate()
        assert t.spec_for("f").performance == "f"
        with pytest.raises(ReproError):
            t.spec_for("ghost")

    def test_unknown_spec_performance_rejected(self):
        """A spec that references an undeclared performance must fail at
        template construction time."""
        from repro.evaluation.template import CircuitTemplate
        from repro.spec import Spec
        from repro.spec.specification import Performance

        template = LinearTemplate()
        with pytest.raises(ReproError):
            CircuitTemplate.__init__(
                template, template.design_parameters, [Performance("f")],
                [Spec("ghost", ">=", 0.0)], template.operating_range,
                template.statistical_space, [])


class TestEvaluatorCounting:
    def test_cache_hits_do_not_resimulate(self):
        t = LinearTemplate()
        ev = Evaluator(t)
        s = np.zeros(2)
        ev.evaluate({"d0": 1.0, "d1": 0.0}, s, THETA)
        ev.evaluate({"d0": 1.0, "d1": 0.0}, s, THETA)
        assert ev.request_count == 2
        assert ev.simulation_count == 1
        assert t.evaluations == 1
        assert ev.cache_size == 1

    def test_distinct_points_simulate(self):
        t = LinearTemplate()
        ev = Evaluator(t)
        s = np.zeros(2)
        ev.evaluate({"d0": 1.0, "d1": 0.0}, s, THETA)
        ev.evaluate({"d0": 1.1, "d1": 0.0}, s, THETA)
        ev.evaluate({"d0": 1.0, "d1": 0.0}, s + 0.5, THETA)
        ev.evaluate({"d0": 1.0, "d1": 0.0}, s, {"temp": 50.0})
        assert ev.simulation_count == 4

    def test_cache_disabled(self):
        t = LinearTemplate()
        ev = Evaluator(t, cache=False)
        s = np.zeros(2)
        ev.evaluate({"d0": 1.0, "d1": 0.0}, s, THETA)
        ev.evaluate({"d0": 1.0, "d1": 0.0}, s, THETA)
        assert ev.simulation_count == 2

    def test_reset_counters_keeps_cache(self):
        t = LinearTemplate()
        ev = Evaluator(t)
        ev.evaluate({"d0": 1.0, "d1": 0.0}, np.zeros(2), THETA)
        ev.reset_counters()
        assert ev.simulation_count == 0
        ev.evaluate({"d0": 1.0, "d1": 0.0}, np.zeros(2), THETA)
        assert ev.simulation_count == 0  # served from cache

    def test_constraint_counting(self):
        t = LinearTemplate()
        ev = Evaluator(t)
        ev.constraints({"d0": 1.0, "d1": 0.0})
        ev.constraints({"d0": 1.0, "d1": 0.0})
        assert ev.constraint_count == 2

    def test_margins_use_per_spec_theta(self):
        t = LinearTemplate(ct=0.1)  # f grows with temperature
        ev = Evaluator(t)
        theta_map = {"f>=": {"temp": 0.0}}
        margins = ev.margins({"d0": 1.0, "d1": 0.0}, np.zeros(2), theta_map)
        # f = 5 + 1*d0 + 0.1*0 = 6, bound 0 -> margin 6
        assert margins["f>="] == pytest.approx(6.0)


class TestGradients:
    def test_gradient_s_matches_analytic(self):
        t = LinearTemplate(cs=np.array([2.0, -3.0]))
        ev = Evaluator(t)
        grad = performance_gradient_s(ev, "f", {"d0": 1.0, "d1": 0.0},
                                      np.zeros(2), THETA)
        assert grad == pytest.approx(np.array([2.0, -3.0]), rel=1e-6)

    def test_gradient_d_matches_analytic(self):
        t = LinearTemplate(cd={"d0": 4.0, "d1": -0.5})
        ev = Evaluator(t)
        grad = performance_gradient_d(ev, "f", {"d0": 1.0, "d1": 2.0},
                                      np.zeros(2), THETA)
        assert grad["d0"] == pytest.approx(4.0, rel=1e-5)
        assert grad["d1"] == pytest.approx(-0.5, rel=1e-5)

    def test_gradient_d_at_upper_bound_steps_backwards(self):
        t = LinearTemplate(cd={"d0": 4.0, "d1": 0.0})
        ev = Evaluator(t)
        grad = performance_gradient_d(ev, "f", {"d0": 10.0, "d1": 0.0},
                                      np.zeros(2), THETA)
        assert grad["d0"] == pytest.approx(4.0, rel=1e-5)

    def test_all_gradients_share_probes(self):
        t = LinearTemplate()
        ev = Evaluator(t)
        all_gradients_s(ev, {"d0": 1.0, "d1": 0.0}, np.zeros(2), THETA)
        assert ev.simulation_count == 2 + 1  # dim(s) + base

    def test_all_gradients_d_cost(self):
        t = LinearTemplate()
        ev = Evaluator(t)
        all_gradients_d(ev, {"d0": 1.0, "d1": 0.0}, np.zeros(2), THETA)
        assert ev.simulation_count == 2 + 1  # dim(d) + base

    def test_quadratic_gradient_vanishes_on_neutral_line(self):
        t = QuadraticTemplate(dim=3)
        ev = Evaluator(t)
        grad = performance_gradient_s(ev, "f", {"d0": 0.0},
                                      np.array([1.0, 1.0, 0.0]), THETA,
                                      step=1e-5)
        # On the neutral line s0 == s1 the tent is flat to first order:
        # every forward-difference slope is O(step), i.e. essentially zero.
        assert grad[2] == pytest.approx(0.0, abs=1e-6)
        assert abs(grad[0]) < 1e-4
        assert abs(grad[1]) < 1e-4

    def test_constraint_jacobian_matches_analytic(self):
        t = LinearTemplate(min_d0=0.5)
        ev = Evaluator(t)
        c0, jac = constraint_jacobian(ev, {"d0": 1.0, "d1": 0.0})
        assert c0["c0"] == pytest.approx(0.5)
        assert jac["c0"]["d0"] == pytest.approx(1.0, rel=1e-5)
        assert jac["c0"]["d1"] == pytest.approx(0.0, abs=1e-9)
