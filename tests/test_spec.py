"""Unit tests for repro.spec: specifications and operating ranges."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecificationError
from repro.spec import (OperatingParameter, OperatingRange, Spec,
                        check_unique_performances,
                        find_worst_case_operating_points, group_by_theta,
                        spec_key)


class TestSpec:
    def test_lower_bound_margin(self):
        spec = Spec("a0", ">=", 40.0)
        assert spec.margin(45.0) == pytest.approx(5.0)
        assert spec.margin(38.0) == pytest.approx(-2.0)
        assert spec.passes(40.0)
        assert not spec.passes(39.999)

    def test_upper_bound_margin(self):
        spec = Spec("power", "<=", 3.5)
        assert spec.margin(3.0) == pytest.approx(0.5)
        assert spec.margin(4.0) == pytest.approx(-0.5)
        assert spec.passes(3.5)

    def test_invalid_kind_rejected(self):
        with pytest.raises(SpecificationError):
            Spec("x", "==", 1.0)

    @given(value=st.floats(-1e3, 1e3), bound=st.floats(-1e3, 1e3),
           kind=st.sampled_from([">=", "<="]))
    @settings(max_examples=80, deadline=None)
    def test_normalized_view_preserves_margin(self, value, bound, kind):
        """margin(f) == normalize(f) - normalized_bound for either kind —
        the property that lets the core handle only lower bounds."""
        spec = Spec("f", kind, bound)
        assert spec.margin(value) == pytest.approx(
            spec.normalize(value) - spec.normalized_bound, abs=1e-9)

    @given(value=st.floats(-1e3, 1e3))
    @settings(max_examples=40, deadline=None)
    def test_denormalize_inverts_normalize(self, value):
        spec = Spec("f", "<=", 1.0)
        assert spec.denormalize(spec.normalize(value)) == \
            pytest.approx(value)

    def test_spec_key_and_str(self):
        spec = Spec("cmrr", ">=", 80.0)
        assert spec_key(spec) == "cmrr>="
        assert str(spec) == "cmrr >= 80"

    def test_duplicate_direction_rejected(self):
        with pytest.raises(SpecificationError):
            check_unique_performances((Spec("a", ">=", 1.0),
                                       Spec("a", ">=", 2.0)))

    def test_two_sided_bounds_allowed(self):
        check_unique_performances((Spec("a", ">=", 1.0),
                                   Spec("a", "<=", 2.0)))


class TestOperatingRange:
    def test_corner_enumeration(self):
        rng = OperatingRange([
            OperatingParameter("temp", -40.0, 125.0, 27.0),
            OperatingParameter("vdd", 3.0, 3.6, 3.3),
        ])
        corners = rng.corners()
        assert len(corners) == 4
        assert {"temp": -40.0, "vdd": 3.0} in corners
        assert {"temp": 125.0, "vdd": 3.6} in corners
        assert rng.nominal() == {"temp": 27.0, "vdd": 3.3}

    def test_nominal_outside_bounds_rejected(self):
        with pytest.raises(SpecificationError):
            OperatingParameter("temp", 0.0, 10.0, 20.0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(SpecificationError):
            OperatingRange([OperatingParameter("t", 0, 1, 0.5),
                            OperatingParameter("t", 0, 1, 0.5)])

    def test_corner_key_is_hashable_identity(self):
        rng = OperatingRange([OperatingParameter("temp", 0, 100, 50)])
        key = rng.corner_key({"temp": 100.0})
        assert key == (100.0,)
        assert hash(key) == hash((100.0,))


class TestWorstCaseOperatingPoints:
    def _range(self):
        return OperatingRange([
            OperatingParameter("temp", -40.0, 125.0, 27.0),
            OperatingParameter("vdd", 3.0, 3.6, 3.3),
        ])

    def test_monotone_performance_picks_extreme_corner(self):
        rng = self._range()
        specs = [Spec("speed", ">=", 1.0), Spec("power", "<=", 2.0)]

        def evaluate(theta):
            # speed degrades with temperature, power grows with supply
            return {"speed": 10.0 - 0.05 * theta["temp"],
                    "power": theta["vdd"]}

        wc = find_worst_case_operating_points(evaluate, specs, rng)
        assert wc["speed>="]["temp"] == 125.0
        assert wc["power<="]["vdd"] == 3.6

    def test_missing_performance_rejected(self):
        rng = self._range()
        with pytest.raises(SpecificationError):
            find_worst_case_operating_points(
                lambda theta: {"other": 1.0}, [Spec("speed", ">=", 1.0)],
                rng)

    def test_grouping_shares_corners(self):
        rng = self._range()
        wc = {
            "a>=": {"temp": 125.0, "vdd": 3.0},
            "b>=": {"temp": 125.0, "vdd": 3.0},
            "c<=": {"temp": -40.0, "vdd": 3.6},
        }
        groups = group_by_theta(wc, rng)
        assert len(groups) == 2
        sizes = sorted(len(keys) for keys in groups.values())
        assert sizes == [1, 2]

    def test_evaluation_count_matches_bound(self):
        """Corner search costs 2^dim + 1 evaluations (Sec. 2 bound)."""
        rng = self._range()
        calls = []

        def evaluate(theta):
            calls.append(theta)
            return {"f": 1.0}

        find_worst_case_operating_points(evaluate, [Spec("f", ">=", 0.0)],
                                         rng)
        assert len(calls) == 2**2 + 1
