"""End-to-end tests for the ``repro.serve`` daemon: HTTP API, shard
orchestration, the content-addressed cache, budgets, and the CLI client
commands."""

import asyncio
import json

import pytest

from repro.cli import main
from repro.errors import ServeError
from repro.serve import (ResultStore, ServeApp, ServeClient, ServerThread,
                         YieldRequest, cache_key, execute_yield)

#: one cheap, deterministic request used throughout (qmc: shard-stream
#: invariant, so the sharded run must reproduce the unsharded one)
REQUEST = {"circuit": "ota", "estimator": "qmc", "n_samples": 16,
           "seed": 3}

#: result fields that must match the direct CLI run exactly (the same
#: key set the sharded-verification CI gate compares)
EXACT_KEYS = ("estimate", "ci_low", "ci_high", "ess", "n_samples",
              "simulations", "failed_samples", "bad_fraction")


def run_app(coro_fn, **app_kwargs):
    """Drive a ServeApp coroutine on a fresh event loop."""
    async def runner():
        app = ServeApp(**app_kwargs)
        try:
            return await coro_fn(app)
        finally:
            await app.close()
    return asyncio.run(runner())


class TestSubmitValidation:
    def submit_error(self, tmp_path, payload):
        async def scenario(app):
            with pytest.raises(ServeError) as err:
                await app.submit(payload)
            return str(err.value)
        return run_app(scenario, store=ResultStore(str(tmp_path / "s")))

    def test_rejects_non_yield_kinds(self, tmp_path):
        message = self.submit_error(
            tmp_path, {"kind": "espresso", "request": REQUEST})
        assert "unsupported job kind" in message

    def test_rejects_explicit_shard_labels(self, tmp_path):
        request = dict(REQUEST, shard="1/2")
        message = self.submit_error(
            tmp_path, {"kind": "yield", "request": request})
        assert "orchestrates the shard fan-out" in message

    def test_rejects_bad_shard_counts(self, tmp_path):
        message = self.submit_error(
            tmp_path, {"kind": "yield", "request": REQUEST, "shards": 0})
        assert "shards must be >= 1" in message
        message = self.submit_error(
            tmp_path, {"kind": "yield", "request": REQUEST, "shards": 99})
        assert "non-empty shards" in message

    def test_rejects_unknown_circuit_and_bad_budget(self, tmp_path):
        message = self.submit_error(
            tmp_path,
            {"kind": "yield", "request": dict(REQUEST, circuit="nope")})
        assert "unknown circuit" in message
        message = self.submit_error(
            tmp_path,
            {"kind": "yield", "request": REQUEST, "budget": "5s"})
        assert "budget" in message


class TestAppExecution:
    def test_deadline_budget_fails_the_job(self, tmp_path):
        async def scenario(app):
            job = await app.submit({
                "kind": "yield", "request": REQUEST,
                "budget": {"deadline_s": 1e-4}})
            await app.wait_idle()
            return app.status(job["id"])
        record = run_app(scenario,
                         store=ResultStore(str(tmp_path / "s")), workers=1)
        assert record["state"] == "failed"
        assert record["error"] == "deadline exceeded"

    def test_max_simulation_budget_is_flagged_not_truncated(self, tmp_path):
        async def scenario(app):
            job = await app.submit({
                "kind": "yield", "request": REQUEST,
                "budget": {"max_simulations": 1}})
            await app.wait_idle()
            return app.status(job["id"]), app.result(job["id"])
        record, artifact = run_app(
            scenario, store=ResultStore(str(tmp_path / "s")), workers=1)
        assert record["state"] == "done"
        assert record["budget_exceeded"] is True
        # the estimate itself is the full, untruncated batch
        assert artifact["result"]["n_samples"] == REQUEST["n_samples"]

    def test_splice_checkpoint_after_sharded_verification(self, tmp_path):
        from helpers import LinearTemplate
        from repro.core.optimizer import OptimizerConfig, YieldOptimizer
        ckpt = str(tmp_path / "ckpt.json")
        YieldOptimizer(LinearTemplate(),
                       OptimizerConfig(max_iterations=2,
                                       n_samples_linear=400,
                                       n_samples_verify=60, multistart=1,
                                       seed=7),
                       checkpoint_path=ckpt).run()

        async def scenario(app):
            job = await app.submit({
                "kind": "yield", "request": REQUEST, "shards": 2,
                "splice_checkpoint": ckpt})
            await app.wait_idle()
            return app.status(job["id"]), app.result(job["id"])
        record, artifact = run_app(
            scenario, store=ResultStore(str(tmp_path / "s")), workers=2)
        assert record["state"] == "done"
        with open(ckpt) as handle:
            payload = json.load(handle)
        last = payload["records"][-1]
        assert last["yield_mc"] == artifact["result"]["estimate"]
        assert last["mc"]["data"]["merged_from"] == 2


class TestServiceEndToEnd:
    def test_sharded_job_matches_cli_and_resubmit_hits_cache(
            self, tmp_path, capsys):
        # ground truth: the equivalent direct CLI run
        assert main(["yield", REQUEST["circuit"], "--estimator",
                     REQUEST["estimator"], "--samples",
                     str(REQUEST["n_samples"]), "--seed",
                     str(REQUEST["seed"]), "--json"]) == 0
        direct = json.loads(capsys.readouterr().out)

        store_dir = str(tmp_path / "store")
        with ServerThread(store_dir, workers=2) as server:
            client = ServeClient(server.url)
            assert client.health()["status"] == "ok"

            # a 2-way sharded job through the API ...
            job = client.submit({"kind": "yield", "request": REQUEST,
                                 "shards": 2, "tenant": "ci"})
            assert job["state"] in ("queued", "running")
            final = client.wait(job["id"], timeout_s=300)
            assert final["state"] == "done", final["error"]
            assert final["cache_hit"] is False
            assert final["simulations"] > 0
            artifact = client.result(job["id"])
            # ... merges to exactly the unsharded CLI estimate
            for key in EXACT_KEYS:
                assert artifact["result"][key] == direct[key], key
            assert artifact["result"]["merged_from"] == 2
            assert artifact["provenance"]["template"] == REQUEST["circuit"]
            assert artifact["provenance"]["job"]["simulations"] == \
                final["simulations"]

            # identical resubmission: served from the store, no fresh
            # simulations, recorded as such in the provenance
            again = client.submit({"kind": "yield", "request": REQUEST,
                                   "shards": 2, "tenant": "ci"})
            assert again["state"] == "done"
            assert again["cache_hit"] is True
            assert again["simulations"] == 0
            cached = client.result(again["id"])
            assert cached["provenance"]["job"]["cache_hit"] is True
            assert cached["provenance"]["job"]["simulations"] == 0
            assert cached["result"] == artifact["result"]

            # qmc sharding is cache-transparent: the unsharded request
            # resolves to the same stored object
            unsharded = client.submit({"kind": "yield",
                                       "request": REQUEST})
            assert unsharded["state"] == "done"
            assert unsharded["cache_hit"] is True

            stats = client.stats()
            assert stats["queue"]["cache_hits"] == 2
            assert stats["store"]["objects"] == 1

            # error mapping: unknown ids are 404, bad submissions 400
            with pytest.raises(ServeError, match="404"):
                client.status("doesnotexist")
            with pytest.raises(ServeError, match="400"):
                client.submit({"kind": "yield",
                               "request": {"circuit": "nope"}})
            # cancelling a finished job is a harmless no-op
            assert client.cancel(job["id"])["state"] == "done"

        # the store outlives the daemon: a fresh server serves the
        # result without recomputing
        with ServerThread(store_dir, workers=1) as server:
            job = ServeClient(server.url).submit(
                {"kind": "yield", "request": REQUEST, "shards": 2})
            assert job["state"] == "done" and job["cache_hit"] is True

    def test_cli_client_commands(self, tmp_path, capsys):
        with ServerThread(str(tmp_path / "store"), workers=1) as server:
            assert main(["submit", REQUEST["circuit"],
                         "--estimator", REQUEST["estimator"],
                         "--samples", str(REQUEST["n_samples"]),
                         "--seed", str(REQUEST["seed"]),
                         "--server", server.url, "--wait",
                         "--timeout", "300"]) == 0
            artifact = json.loads(capsys.readouterr().out)
            assert artifact["kind"] == "yield-result"
            job_id = artifact["provenance"]["job"]["id"]

            assert main(["status", job_id, "--server", server.url]) == 0
            record = json.loads(capsys.readouterr().out)
            assert record["state"] == "done"

            out = str(tmp_path / "result.json")
            assert main(["result", job_id, "--server", server.url,
                         "--out", out]) == 0
            capsys.readouterr()
            with open(out) as handle:
                assert json.load(handle)["result"] == artifact["result"]

            assert main(["cancel", job_id, "--server", server.url]) == 0
            assert json.loads(capsys.readouterr().out)["state"] == "done"

            # daemon-level status renders the telemetry table
            assert main(["status", "--server", server.url]) == 0
            rendered = capsys.readouterr().out
            assert "Jobs (1 total)" in rendered
            assert "cache hits" in rendered

    def test_cli_client_reports_unreachable_daemon(self):
        with pytest.raises(SystemExit, match="cannot reach serve daemon"):
            main(["status", "--server", "http://127.0.0.1:1"])


class TestExecutionParity:
    def test_execute_yield_matches_cli_json(self, capsys):
        assert main(["yield", "ota", "--estimator", "qmc", "--samples",
                     "16", "--seed", "3", "--json"]) == 0
        direct = json.loads(capsys.readouterr().out)
        request = YieldRequest(circuit="ota", estimator="qmc",
                               n_samples=16, seed=3)
        ours = execute_yield(request).to_dict()
        # the telemetry report carries wall-clock phase timings; every
        # other field is a deterministic function of the request
        ours_report = ours.pop("report")
        direct_report = direct.pop("report")
        assert ours == direct
        assert ours_report["simulations"] == direct_report["simulations"]

    def test_policy_wrapped_execution_matches_bare_run(self):
        # With no faults occurring, a fault-policy-guarded job must
        # produce the identical estimate (the policy only changes what
        # happens when a simulation fails).
        bare = execute_yield(YieldRequest(**REQUEST))
        guarded = execute_yield(YieldRequest(
            **REQUEST, policy={"lenient": True, "retry_attempts": 2}))
        assert guarded.estimate == bare.estimate
        assert guarded.stats.to_dict() == bare.stats.to_dict()
        assert guarded.failed_samples == 0

    def test_cache_key_stability_across_processes(self):
        # the key must be a pure function of the request (no per-process
        # salt), or the persistent store could never hit
        import os
        import subprocess
        import sys
        request = YieldRequest(**REQUEST)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        code = ("from repro.serve import YieldRequest, cache_key; "
                f"print(cache_key(YieldRequest(**{REQUEST!r}), shards=2))")
        env = dict(os.environ, PYTHONPATH=os.path.join(root, "src"))
        fresh = subprocess.run([sys.executable, "-c", code],
                               capture_output=True, text=True, check=True,
                               cwd=root, env=env).stdout.strip()
        assert fresh == cache_key(request, shards=2)


class TestWaitPollFloor:
    """Regression: near its deadline ``ServeClient.wait`` used to clamp
    the sleep to the time remaining with no lower bound, so the last
    stretch before a timeout degenerated into a zero-sleep busy loop of
    status requests.  Every sleep must respect the minimum floor."""

    def test_sleeps_never_collapse_below_floor(self, monkeypatch):
        from repro.serve import client as client_mod

        client = ServeClient("http://serve.invalid")
        monkeypatch.setattr(client, "status",
                            lambda job_id: {"state": "running"})
        clock = {"t": 0.0}
        sleeps = []

        def fake_sleep(seconds):
            sleeps.append(seconds)
            clock["t"] += seconds

        monkeypatch.setattr(client_mod.time, "monotonic",
                            lambda: clock["t"])
        monkeypatch.setattr(client_mod.time, "sleep", fake_sleep)
        with pytest.raises(ServeError, match="still 'running'"):
            client.wait("job-1", timeout_s=1.0, poll_s=0.2,
                        max_poll_s=0.5)
        assert sleeps, "wait() must sleep between polls"
        assert min(sleeps) >= client_mod._MIN_SLEEP_S
        # The floor bounds the number of polls a timeout can cost.
        assert len(sleeps) <= 1.0 / client_mod._MIN_SLEEP_S + 1
