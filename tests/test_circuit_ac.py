"""Unit tests for the AC analysis engine (repro.circuit.ac)."""

import math

import numpy as np
import pytest

from repro.circuit import Circuit, solve_dc, solve_ac, transfer_at
from repro.circuit.ac import (AcSystem, log_sweep, phase_margin,
                              unity_gain_frequency)
from repro.errors import ExtractionError
from repro.pdk.generic035 import NMOS


def rc_lowpass(r=1e3, c=1e-6):
    ckt = Circuit("rc")
    ckt.vsource("V1", "in", "0", dc=0.0, ac=1.0)
    ckt.resistor("R1", "in", "out", r)
    ckt.capacitor("C1", "out", "0", c)
    return ckt, 1.0 / (2 * math.pi * r * c)


class TestFirstOrder:
    def test_pole_magnitude_and_phase(self):
        ckt, fc = rc_lowpass()
        op = solve_dc(ckt)
        h = transfer_at(ckt, op, "out", fc)
        assert abs(h) == pytest.approx(1 / math.sqrt(2), rel=1e-3)
        assert math.degrees(math.atan2(h.imag, h.real)) == \
            pytest.approx(-45.0, abs=0.1)

    def test_asymptotic_rolloff(self):
        ckt, fc = rc_lowpass()
        op = solve_dc(ckt)
        h1 = abs(transfer_at(ckt, op, "out", 100 * fc))
        h2 = abs(transfer_at(ckt, op, "out", 1000 * fc))
        assert h1 / h2 == pytest.approx(10.0, rel=1e-2)

    def test_inductor_highpass(self):
        ckt = Circuit("rl")
        ckt.vsource("V1", "in", "0", ac=1.0)
        ckt.resistor("R1", "in", "out", 1e3)
        ckt.inductor("L1", "out", "0", 1e-3)
        op = solve_dc(ckt)
        fc = 1e3 / (2 * math.pi * 1e-3)
        h = transfer_at(ckt, op, "out", fc)
        assert abs(h) == pytest.approx(1 / math.sqrt(2), rel=1e-3)

    def test_rlc_resonance(self):
        ckt = Circuit("rlc")
        ckt.vsource("V1", "in", "0", ac=1.0)
        ckt.resistor("R1", "in", "out", 100.0)
        ckt.inductor("L1", "out", "mid", 1e-3)
        ckt.capacitor("C1", "mid", "0", 1e-9)
        op = solve_dc(ckt)
        f0 = 1.0 / (2 * math.pi * math.sqrt(1e-3 * 1e-9))
        # At resonance the series LC from "out" to ground is a short, so
        # the output is pulled to (nearly) zero through the divider.
        h_res = abs(transfer_at(ckt, op, "out", f0))
        h_low = abs(transfer_at(ckt, op, "out", f0 / 100))
        assert h_res < 1e-3
        assert h_low == pytest.approx(1.0, rel=1e-2)


class TestAcSystem:
    def test_matches_one_shot_api(self):
        ckt, fc = rc_lowpass()
        op = solve_dc(ckt)
        system = AcSystem(ckt, op)
        for freq in (0.1 * fc, fc, 10 * fc):
            assert system.transfer("out", freq) == \
                pytest.approx(transfer_at(ckt, op, "out", freq), rel=1e-12)

    def test_solve_ac_grid(self):
        ckt, fc = rc_lowpass()
        op = solve_dc(ckt)
        freqs = log_sweep(fc / 100, fc * 100, 5)
        result = solve_ac(ckt, op, freqs)
        mags = np.abs(result.voltage("out"))
        assert mags[0] == pytest.approx(1.0, rel=1e-3)
        assert np.all(np.diff(mags) < 0)  # monotone lowpass

    def test_ground_node_is_zero(self):
        ckt, _ = rc_lowpass()
        op = solve_dc(ckt)
        result = solve_ac(ckt, op, [1.0, 10.0])
        assert np.all(result.voltage("0") == 0)

    def test_unknown_node_raises(self):
        ckt, _ = rc_lowpass()
        op = solve_dc(ckt)
        result = solve_ac(ckt, op, [1.0])
        with pytest.raises(KeyError):
            result.voltage("ghost")


class TestSweepHelpers:
    def test_log_sweep_endpoints(self):
        grid = log_sweep(1.0, 1e6, 10)
        assert grid[0] == pytest.approx(1.0)
        assert grid[-1] == pytest.approx(1e6)
        assert len(grid) == 61

    def test_log_sweep_rejects_bad_range(self):
        with pytest.raises(ExtractionError):
            log_sweep(0.0, 10.0)
        with pytest.raises(ExtractionError):
            log_sweep(10.0, 1.0)


class TestUnityGainAndPhase:
    def _integrator(self, gm=1e-3, c=1e-9):
        """VCCS integrator: H(s) = gm/(sC) -> f_t = gm/(2 pi C), PM = 90."""
        ckt = Circuit("integrator")
        ckt.vsource("V1", "in", "0", ac=1.0)
        ckt.vccs("G1", "0", "out", "in", "0", gm=gm)
        ckt.capacitor("C1", "out", "0", c)
        ckt.resistor("R1", "out", "0", 1e9)  # DC path
        return ckt, gm / (2 * math.pi * c)

    def test_unity_gain_frequency_of_integrator(self):
        ckt, ft_expected = self._integrator()
        op = solve_dc(ckt)
        system = AcSystem(ckt, op)
        ft = unity_gain_frequency(system, "out")
        assert ft == pytest.approx(ft_expected, rel=1e-3)

    def test_phase_margin_of_single_pole(self):
        ckt, _ = self._integrator()
        op = solve_dc(ckt)
        system = AcSystem(ckt, op)
        assert phase_margin(system, "out") == pytest.approx(90.0, abs=1.0)

    def test_two_pole_phase_margin_is_lower(self):
        ckt, _ = self._integrator()
        # Add a second pole a decade above f_t via an RC stage... simplest:
        # larger series R into a second cap node measured at "out2".
        ckt.resistor("R2", "out", "out2", 1e3)
        ckt.capacitor("C2", "out2", "0", 1e-9)
        op = solve_dc(ckt)
        system = AcSystem(ckt, op)
        pm_two_pole = phase_margin(system, "out2")
        pm_one_pole = phase_margin(system, "out")
        assert pm_two_pole < pm_one_pole

    def test_no_crossing_raises(self):
        ckt, _ = rc_lowpass()  # gain never exceeds 1
        op = solve_dc(ckt)
        system = AcSystem(ckt, op)
        with pytest.raises(ExtractionError):
            unity_gain_frequency(system, "out")

    def test_mos_common_source_gain_matches_op(self):
        ckt = Circuit("cs")
        ckt.vsource("VDD", "vdd", "0", dc=3.3)
        ckt.vsource("VG", "g", "0", dc=0.9, ac=1.0)
        ckt.resistor("RD", "vdd", "d", 10e3)
        ckt.mosfet("M1", "d", "g", "0", "0", NMOS, w=10e-6, l=1e-6)
        op = solve_dc(ckt)
        gain = abs(transfer_at(ckt, op, "d", 1.0))
        dev = op.op("M1")
        expected = dev["gm"] / (1e-4 + dev["gds"])
        assert gain == pytest.approx(expected, rel=1e-6)
