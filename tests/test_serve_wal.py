"""Tests for the serve layer's write-ahead log: append/replay
round-trips, torn-line tolerance, compaction, queue integration, and
the daemon-construction recovery path."""

import os

import pytest

from repro.errors import ServeError
from repro.serve import ResultStore, ServeApp, WriteAheadLog
from repro.serve.queue import (CANCELLED, DONE, FAILED, Job, JobQueue,
                               QUEUED, RUNNING)


def job(job_id="j1", **overrides):
    fields = dict(id=job_id, kind="yield",
                  request={"circuit": "ota", "n_samples": 8},
                  cache_key="ab" + "0" * 62)
    fields.update(overrides)
    return Job(**fields)


class TestWriteAheadLog:
    def test_append_replay_round_trip(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.jsonl"))
        wal.append("submit", job=job().to_dict())
        wal.append("start", id="j1", attempt=1)
        wal.append("finish", id="j1", state="done", simulations=42)
        (replayed,) = wal.replay()
        assert replayed["id"] == "j1"
        assert replayed["state"] == "done"
        assert replayed["simulations"] == 42
        assert wal.entries() == 3
        assert wal.orphans() == []

    def test_replay_folds_retry_and_cancel(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.jsonl"))
        wal.append("submit", job=job("a").to_dict())
        wal.append("submit", job=job("b").to_dict())
        wal.append("start", id="a", attempt=1)
        wal.append("retry", id="a", attempt=2, error="pool died")
        wal.append("cancel", id="b", stop_reason="cancelled")
        by_id = {record["id"]: record for record in wal.replay()}
        assert by_id["a"]["state"] == QUEUED
        assert by_id["a"]["attempt"] == 2
        assert by_id["a"]["error"] == "pool died"
        assert by_id["b"]["state"] == CANCELLED
        assert by_id["b"]["stop_reason"] == "cancelled"
        assert wal.orphans() == [("a", QUEUED)]

    def test_missing_log_replays_empty(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.jsonl"))
        assert wal.replay() == []
        assert wal.entries() == 0

    def test_torn_final_line_is_tolerated_and_counted(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        wal = WriteAheadLog(path)
        wal.append("submit", job=job().to_dict())
        wal.append("start", id="j1", attempt=1)
        with open(path, "a") as handle:
            handle.write('{"at": 1.0, "event": "fini')  # crash mid-write
        (replayed,) = wal.replay()
        assert replayed["state"] == RUNNING
        assert wal.torn_lines == 1

    def test_torn_middle_line_raises(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        wal = WriteAheadLog(path)
        wal.append("submit", job=job().to_dict())
        with open(path, "a") as handle:
            handle.write('{"broken\n')
        wal.append("start", id="j1", attempt=1)
        with pytest.raises(ServeError, match="corrupt"):
            wal.replay()

    def test_unknown_events_and_ids_are_skipped(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.jsonl"))
        wal.append("submit", job=job().to_dict())
        wal.append("newer-format-event", id="j1", payload="x")
        wal.append("finish", id="ghost", state="done")
        (replayed,) = wal.replay()
        assert replayed["id"] == "j1"
        assert replayed["state"] == QUEUED

    def test_compaction_preserves_replay_and_is_atomic(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        wal = WriteAheadLog(path)
        wal.append("submit", job=job("a").to_dict())
        wal.append("start", id="a", attempt=1)
        wal.append("finish", id="a", state="done")
        wal.append("submit", job=job("b").to_dict())
        before = wal.replay()
        wal.compact(before)
        after = wal.replay()
        assert [r["id"] for r in after] == [r["id"] for r in before]
        assert {r["id"]: r["state"] for r in after} == \
            {"a": "done", "b": QUEUED}
        # one snapshot line per job, no temp droppings
        assert wal.entries() == 2
        assert [name for name in os.listdir(tmp_path)
                if name.endswith(".tmp")] == []


class TestQueueWalIntegration:
    def make(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.jsonl"))
        return JobQueue(wal=wal), wal

    def test_every_transition_is_logged_before_applied(self, tmp_path):
        queue, wal = self.make(tmp_path)
        queue.submit(job("a"))
        queue.submit(job("b"))
        popped = queue.pop_next()
        queue.finish(popped.id)
        queue.cancel("b")
        states = {r["id"]: r["state"] for r in wal.replay()}
        assert states == {"a": DONE, "b": CANCELLED}

    def test_requeue_bumps_attempt_in_log_and_memory(self, tmp_path):
        queue, wal = self.make(tmp_path)
        queue.submit(job("a"))
        queue.pop_next()
        requeued = queue.requeue("a", error="worker wedged")
        assert requeued.attempt == 2
        assert requeued.state == QUEUED
        assert requeued.started_at is None
        (replayed,) = wal.replay()
        assert replayed["attempt"] == 2
        assert replayed["state"] == QUEUED
        # the job is dispatchable again
        assert queue.pop_next().id == "a"

    def test_requeue_and_finish_respect_terminal_states(self, tmp_path):
        queue, wal = self.make(tmp_path)
        queue.submit(job("a"))
        queue.pop_next()
        queue.cancel("a")
        assert queue.requeue("a").state == CANCELLED
        assert queue.finish("a").state == CANCELLED
        (replayed,) = wal.replay()
        assert replayed["state"] == CANCELLED

    def test_failed_attempt_logs_error(self, tmp_path):
        queue, wal = self.make(tmp_path)
        queue.submit(job("a"))
        queue.pop_next()
        queue.finish("a", error="NetlistError: no such node")
        (replayed,) = wal.replay()
        assert replayed["state"] == FAILED
        assert "NetlistError" in replayed["error"]


class TestAppRecovery:
    def seed_wal(self, store, jobs_and_events):
        wal = WriteAheadLog(store.wal_path())
        for event, fields in jobs_and_events:
            wal.append(event, **fields)
        return wal

    def test_construction_replays_and_requeues(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        self.seed_wal(store, [
            ("submit", {"job": job("done-job", state=DONE,
                                   cache_hit=True).to_dict()}),
            ("submit", {"job": job("queued-job").to_dict()}),
            ("submit", {"job": job(
                "running-job", kind="optimize",
                checkpoint=store.checkpoint_path("running-job"),
                request={"circuit": "ota", "iterations": 2}).to_dict()}),
            ("start", {"id": "running-job", "attempt": 1}),
        ])
        app = ServeApp(store, workers=1)
        done = app.queue.get("done-job")
        assert done.state == DONE and not done.recovered
        queued = app.queue.get("queued-job")
        assert queued.state == QUEUED and queued.recovered
        assert queued.attempt == 1
        # the interrupted attempt is re-enqueued as attempt 2
        running = app.queue.get("running-job")
        assert running.state == QUEUED
        assert running.attempt == 2
        assert running.recovered is True
        assert running.started_at is None
        assert running.checkpoint == \
            store.checkpoint_path("running-job")
        assert set(app.recovered_jobs) == {"queued-job", "running-job"}
        # recovery compacts: the log is now one snapshot per job
        assert app.wal.entries() == 3
        assert app.queue.stats()["recovered"] == 2
