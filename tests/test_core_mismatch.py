"""Unit tests for the mismatch measure (Sec. 3, Eq. 9)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import QuadraticTemplate
from repro.core.mismatch import (analyze_mismatch, eta_weight,
                                 mismatch_measure, phi_window,
                                 rank_matching_pairs)
from repro.core.worst_case import WorstCaseResult, find_worst_case_point
from repro.errors import ReproError
from repro.evaluation import Evaluator
from repro.spec import Spec


def make_result(s_wc, beta, spec=None):
    s_wc = np.asarray(s_wc, dtype=float)
    return WorstCaseResult(
        spec=spec or Spec("cmrr", ">=", 80.0),
        s_wc=s_wc, beta_wc=beta, gradient=-s_wc,
        g_wc=80.0, g_nominal=85.0, on_boundary=True, iterations=1,
        method="test")


class TestPhiWindow:
    def test_full_credit_on_mismatch_line(self):
        assert phi_window(-math.pi / 4) == 1.0

    def test_zero_on_neutral_line(self):
        assert phi_window(math.pi / 4) == 0.0

    def test_zero_on_axes(self):
        assert phi_window(0.0) == 0.0
        assert phi_window(math.pi / 2) == 0.0

    def test_linear_falloff(self):
        d1, d2 = math.radians(5), math.radians(15)
        mid = -math.pi / 4 + d1 + d2 / 2
        assert phi_window(mid, d1, d2) == pytest.approx(0.5)

    @given(angle=st.floats(-math.pi / 2, math.pi / 2))
    @settings(max_examples=60, deadline=None)
    def test_range_zero_to_one(self, angle):
        assert 0.0 <= phi_window(angle) <= 1.0

    def test_invalid_widths_rejected(self):
        with pytest.raises(ReproError):
            phi_window(0.0, delta1=-0.1)
        with pytest.raises(ReproError):
            phi_window(0.0, delta2=0.0)


class TestEtaWeight:
    def test_half_at_zero(self):
        assert eta_weight(0.0) == pytest.approx(0.5)

    def test_limits(self):
        assert eta_weight(1000.0) == pytest.approx(0.0, abs=1e-3)
        assert eta_weight(-1000.0) == pytest.approx(1.0, abs=1e-3)

    def test_continuity_at_zero(self):
        eps = 1e-9
        assert eta_weight(-eps) == pytest.approx(eta_weight(eps), abs=1e-8)

    @given(beta=st.floats(-50, 50))
    @settings(max_examples=60, deadline=None)
    def test_monotone_decreasing_and_bounded(self, beta):
        """Requirement 4: more robust (larger beta) -> smaller weight."""
        assert 0.0 < eta_weight(beta) < 1.0
        assert eta_weight(beta) >= eta_weight(beta + 0.1) - 1e-12


class TestMismatchMeasure:
    def test_perfect_pair_scores_high(self):
        """Requirement 1: opposite-sign equal-magnitude dominant components
        lie on the mismatch line."""
        result = make_result([2.0, -2.0, 0.01, 0.0], beta=0.0)
        m = mismatch_measure(result.s_wc, result.beta_wc, 0, 1)
        assert m == pytest.approx(0.5)  # eta(0) * 1 * 1

    def test_same_sign_pair_scores_zero(self):
        result = make_result([2.0, 2.0, 0.0, 0.0], beta=0.0)
        assert mismatch_measure(result.s_wc, result.beta_wc, 0, 1) == 0.0

    def test_small_components_score_zero(self):
        result = make_result([2.0, -2.0, 1e-6, -1e-6], beta=0.0)
        assert mismatch_measure(result.s_wc, result.beta_wc, 2, 3) == 0.0

    @given(sk=st.floats(-3, 3), sl=st.floats(-3, 3),
           beta=st.floats(-5, 5))
    @settings(max_examples=80, deadline=None)
    def test_range_zero_to_one(self, sk, sl, beta):
        """Requirement 2: the measure is in [0, 1]."""
        s = np.array([sk, sl, 1.0])
        m = mismatch_measure(s, beta, 0, 1)
        assert 0.0 <= m <= 1.0

    def test_magnitude_weighting(self):
        """Bigger deviations weigh more (2nd factor of Eq. 9)."""
        s = np.array([3.0, -3.0, 1.0, -1.0])
        big = mismatch_measure(s, 0.0, 0, 1)
        small = mismatch_measure(s, 0.0, 2, 3)
        assert big > small

    def test_robust_spec_scores_lower(self):
        """Requirement 4 via eta."""
        s = [2.0, -2.0, 0.0]
        fragile = mismatch_measure(np.array(s), -1.0, 0, 1)
        robust = mismatch_measure(np.array(s), +3.0, 0, 1)
        assert fragile > robust

    def test_candidate_restriction_changes_normalization(self):
        s = np.array([1.0, -1.0, 10.0])
        unrestricted = mismatch_measure(s, 0.0, 0, 1)
        restricted = mismatch_measure(s, 0.0, 0, 1,
                                      candidate_indices=[0, 1])
        assert restricted > unrestricted

    def test_identical_indices_rejected(self):
        with pytest.raises(ReproError):
            mismatch_measure(np.array([1.0, -1.0]), 0.0, 1, 1)

    def test_zero_point_scores_zero(self):
        assert mismatch_measure(np.zeros(3), 0.0, 0, 1) == 0.0


class TestRanking:
    NAMES = ["dvt_M1", "dvt_M2", "dvt_M3", "dvt_M4"]

    def test_dominant_pair_ranks_first(self):
        result = make_result([2.0, -2.0, 0.5, -0.5], beta=0.5)
        pairs = rank_matching_pairs(result, self.NAMES)
        assert pairs[0].parameter_k == "dvt_M1"
        assert pairs[0].parameter_l == "dvt_M2"
        assert pairs[0].measure > pairs[1].measure

    def test_devices_extracted_from_names(self):
        result = make_result([2.0, -2.0, 0.0, 0.0], beta=0.0)
        pairs = rank_matching_pairs(result, self.NAMES, top=1)
        assert pairs[0].devices == ("M1", "M2")

    def test_top_truncation(self):
        result = make_result([2.0, -2.0, 0.5, -0.5], beta=0.0)
        assert len(rank_matching_pairs(result, self.NAMES, top=2)) == 2
        assert len(rank_matching_pairs(result, self.NAMES)) == 6  # C(4,2)

    def test_candidate_subset(self):
        result = make_result([2.0, -2.0, 0.5, -0.5], beta=0.0)
        pairs = rank_matching_pairs(result, self.NAMES,
                                    candidate_names=["dvt_M3", "dvt_M4"])
        assert len(pairs) == 1
        assert pairs[0].devices == ("M3", "M4")

    def test_name_count_mismatch_rejected(self):
        result = make_result([1.0, -1.0], beta=0.0)
        with pytest.raises(ReproError):
            rank_matching_pairs(result, self.NAMES)

    def test_unknown_candidate_rejected(self):
        result = make_result([1.0, -1.0, 0.0, 0.0], beta=0.0)
        with pytest.raises(ReproError):
            rank_matching_pairs(result, self.NAMES,
                                candidate_names=["ghost"])

    def test_analyze_mismatch_thresholds(self):
        strong = make_result([2.0, -2.0, 0.0, 0.0], beta=0.0)
        weak = make_result([0.0, 0.0, 0.0, 2.0], beta=0.0)
        report = analyze_mismatch({"a>=": strong, "b>=": weak},
                                  self.NAMES, threshold=0.05)
        assert len(report["a>="]) >= 1
        assert report["b>="] == []  # single-component point: no pair


class TestEndToEndOnTent:
    def test_worst_case_point_reveals_the_pair(self):
        """Full Sec. 3 pipeline on the analytic tent: the worst-case point
        search plus the measure identify (s0, s1) as the matching pair."""
        t = QuadraticTemplate(dim=4)
        ev = Evaluator(t)
        wc = find_worst_case_point(ev, t.specs[0], {"d0": 0.0},
                                   {"temp": 27.0}, seed=5)
        names = [f"s{i}" for i in range(4)]
        pairs = rank_matching_pairs(wc, names, top=1)
        assert {pairs[0].parameter_k, pairs[0].parameter_l} == {"s0", "s1"}
        # measure = eta(beta) * 1 * 1 with beta = expected_wc_norm() = 2.
        from repro.core.mismatch import eta_weight
        assert pairs[0].measure == pytest.approx(
            eta_weight(t.expected_wc_norm()), rel=1e-2)
