"""Tests for the multi-tenant priority job queue of ``repro.serve``."""

import pytest

from repro.errors import ServeError
from repro.serve import (CANCELLED, DONE, FAILED, Job, JobQueue, QUEUED,
                         RUNNING)


def job(job_id, **overrides):
    fields = dict(id=job_id, kind="yield", request={"circuit": "ota"})
    fields.update(overrides)
    return Job(**fields)


class TestScheduling:
    def test_priority_order_fifo_within_level(self):
        queue = JobQueue()
        queue.submit(job("low-1", priority=0))
        queue.submit(job("high", priority=5))
        queue.submit(job("low-2", priority=0))
        order = [queue.pop_next().id for _ in range(3)]
        assert order == ["high", "low-1", "low-2"]
        assert queue.pop_next() is None

    def test_pop_marks_running_and_stamps_start(self):
        queue = JobQueue()
        queue.submit(job("a"))
        popped = queue.pop_next()
        assert popped.state == RUNNING
        assert popped.started_at is not None

    def test_cancelled_while_queued_never_dispatches(self):
        queue = JobQueue()
        queue.submit(job("a", priority=1))
        queue.submit(job("b"))
        queue.cancel("a")
        assert queue.pop_next().id == "b"
        assert queue.pop_next() is None
        assert queue.get("a").state == CANCELLED


class TestLifecycle:
    def test_finish_success_and_failure(self):
        queue = JobQueue()
        queue.submit(job("ok"))
        queue.submit(job("bad"))
        queue.pop_next(), queue.pop_next()
        assert queue.finish("ok").state == DONE
        failed = queue.finish("bad", error="boom")
        assert failed.state == FAILED and failed.error == "boom"
        assert failed.finished_at is not None

    def test_cancel_running_wins_over_late_finish(self):
        queue = JobQueue()
        queue.submit(job("a"))
        queue.pop_next()
        queue.cancel("a")
        # the in-flight worker reporting afterwards must not resurrect it
        assert queue.finish("a").state == CANCELLED

    def test_cancel_terminal_is_a_no_op(self):
        queue = JobQueue()
        queue.submit(job("a"))
        queue.pop_next()
        queue.finish("a")
        assert queue.cancel("a").state == DONE

    def test_unknown_and_duplicate_ids(self):
        queue = JobQueue()
        queue.submit(job("a"))
        with pytest.raises(ServeError, match="unknown job id"):
            queue.get("nope")
        with pytest.raises(ServeError, match="duplicate job id"):
            queue.submit(job("a"))


class TestTenancy:
    def test_per_tenant_queue_cap(self):
        queue = JobQueue(max_queued_per_tenant=2)
        queue.submit(job("a1", tenant="alice"))
        queue.submit(job("a2", tenant="alice"))
        queue.submit(job("b1", tenant="bob"))  # other tenants unaffected
        with pytest.raises(ServeError, match="per-tenant limit"):
            queue.submit(job("a3", tenant="alice"))
        # capacity frees up once a job leaves the queued state
        queue.pop_next()
        queue.submit(job("a4", tenant="alice"))

    def test_stats_aggregation(self):
        queue = JobQueue()
        queue.submit(job("a", tenant="alice"))
        queue.submit(job("b", tenant="bob"))
        running = queue.pop_next()
        running.cache_hit = True
        running.simulations = 48
        queue.finish(running.id)
        stats = queue.stats()
        assert stats["jobs"] == 2
        assert stats["by_state"] == {DONE: 1, QUEUED: 1}
        assert set(stats["by_tenant"]) == {"alice", "bob"}
        assert stats["cache_hits"] == 1
        assert stats["simulations"] == 48
