"""Tests for the worst-case-distance yield report."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.stats import norm

from helpers import LinearTemplate
from repro.core import (find_all_worst_case_points, operational_monte_carlo,
                        partial_yield, wcd_yield_report)
from repro.core.worst_case import WorstCaseResult
from repro.evaluation import Evaluator
from repro.spec import Spec

THETA = {"temp": 27.0}


def wc(key, beta):
    return WorstCaseResult(
        spec=Spec(key.rstrip("<>="), ">=", 0.0), s_wc=np.array([beta]),
        beta_wc=beta, gradient=np.array([1.0]), g_wc=0.0, g_nominal=beta,
        on_boundary=True, iterations=1, method="test")


class TestPartialYield:
    def test_matches_gaussian_cdf(self):
        assert partial_yield(0.0) == pytest.approx(0.5)
        assert partial_yield(3.0) == pytest.approx(norm.cdf(3.0))
        assert partial_yield(-2.0) == pytest.approx(norm.cdf(-2.0))

    def test_two_sided(self):
        assert partial_yield(0.0, two_sided=True) == pytest.approx(0.0)
        assert partial_yield(3.0, two_sided=True) == \
            pytest.approx(2 * norm.cdf(3.0) - 1)

    @given(beta=st.floats(-8, 8))
    @settings(max_examples=40, deadline=None)
    def test_two_sided_never_exceeds_one_sided(self, beta):
        assert partial_yield(beta, two_sided=True) <= \
            partial_yield(beta) + 1e-12


class TestReport:
    def _report(self):
        return wcd_yield_report({
            "a>=": wc("a>=", 3.0),
            "b>=": wc("b>=", 0.5),
            "c>=": wc("c>=", 2.0),
        })

    def test_bounds_are_ordered(self):
        report = self._report()
        assert report.lower_bound <= report.independent_estimate \
            <= report.upper_bound + 1e-12

    def test_upper_bound_is_weakest_spec(self):
        report = self._report()
        assert report.upper_bound == pytest.approx(norm.cdf(0.5))

    def test_dominant_loss(self):
        report = self._report()
        assert report.dominant_loss().key == "b>="

    def test_summary_renders(self):
        text = self._report().summary()
        assert "beta_wc" in text
        assert "b>=" in text
        assert "total yield in" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            wcd_yield_report({})

    @given(betas=st.lists(st.floats(-4, 6), min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_bounds_property(self, betas):
        report = wcd_yield_report({
            f"s{i}>=": wc(f"s{i}>=", beta)
            for i, beta in enumerate(betas)})
        # 1 - (1 - x) != x at the ulp level, so compare with a tolerance.
        assert 0.0 <= report.lower_bound <= report.upper_bound + 1e-12
        assert report.upper_bound <= 1.0
        assert report.lower_bound - 1e-12 <= report.independent_estimate


class TestAgainstMonteCarlo:
    def test_linear_template_wcd_yield_matches_mc(self):
        """For an affine performance the Phi(beta) estimate IS the exact
        yield; check it against the sampled one."""
        t = LinearTemplate(offset=1.2, cs=np.array([1.0, 0.5]))
        ev = Evaluator(t)
        theta_map = {"f>=": THETA}
        worst_case = find_all_worst_case_points(
            ev, {"d0": 0.0, "d1": 0.0}, theta_map)
        report = wcd_yield_report(worst_case)
        mc = operational_monte_carlo(ev, {"d0": 0.0, "d1": 0.0},
                                     theta_map, n_samples=4000, seed=5)
        assert report.independent_estimate == pytest.approx(
            mc.yield_estimate, abs=0.02)
