"""Crash-recovery acceptance tests: SIGKILL a real ``repro serve``
daemon process mid-job, restart it on the same store, and require that
every interrupted job completes with zero intervention — with the
recovered optimize trajectory bit-identical (modulo wall-clock
telemetry) to an uninterrupted run.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.serve import (OptimizeRequest, ResultStore, ServeClient,
                         WriteAheadLog, YieldRequest, execute_optimize,
                         execute_yield, optimize_result_dict,
                         trace_fingerprint)
from repro.serve.contract import KIND_OPTIMIZE

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: sized so one iteration takes a couple of seconds: the kill lands
#: after the first checkpoint write but well before convergence
OPT_REQUEST = {"circuit": "ota", "iterations": 2, "samples_linear": 400,
               "samples_verify": 24, "seed": 11}

#: a plain Monte-Carlo batch slow enough (~seconds) to be killed mid-run
YIELD_REQUEST = {"circuit": "ota", "estimator": "mc", "n_samples": 600,
                 "seed": 17}

EXACT_KEYS = ("estimate", "ci_low", "ci_high", "ess", "n_samples",
              "simulations", "failed_samples", "bad_fraction")


@pytest.fixture(scope="module")
def direct_optimize_fingerprint():
    """Ground truth: the uninterrupted in-process optimize trace."""
    result = execute_optimize(OptimizeRequest(**OPT_REQUEST))
    return trace_fingerprint(optimize_result_dict(result))


class Daemon:
    """A real ``repro serve`` subprocess (the thing we SIGKILL)."""

    def __init__(self, store_dir, workers=1):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(ROOT, "src")
        self.proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "serve",
             "--store", store_dir, "--port", "0",
             "--workers", str(workers)],
            cwd=ROOT, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        self.banner = self._await_banner()
        self.url = re.search(r"listening on (http://\S+)",
                             self.banner).group(1)

    def _await_banner(self):
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line and self.proc.poll() is not None:
                raise RuntimeError(
                    f"daemon exited rc={self.proc.returncode}")
            if "listening on" in line:
                return line
        raise RuntimeError("daemon never announced its port")

    def kill9(self):
        os.kill(self.proc.pid, signal.SIGKILL)
        self.proc.wait(timeout=30)

    def sigterm(self):
        self.proc.send_signal(signal.SIGTERM)
        output = self.proc.stdout.read()
        self.proc.wait(timeout=30)
        return output

    def cleanup(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=30)


def poll(predicate, timeout_s=60.0, message="condition",
         interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() >= deadline:
            raise AssertionError(f"timed out waiting for {message}")
        time.sleep(interval_s)


class TestCrashRecovery:
    def test_sigkill_mid_optimize_recovers_bit_identical(
            self, tmp_path, direct_optimize_fingerprint):
        store_dir = str(tmp_path / "store")
        store = ResultStore(store_dir)
        daemon = Daemon(store_dir, workers=1)
        try:
            client = ServeClient(daemon.url)
            opt = client.submit({"kind": "optimize",
                                 "request": OPT_REQUEST})
            assert opt["state"] in ("queued", "running")
            # a yield job queued behind the single worker: the crash
            # must not lose it either
            pending = client.submit({"kind": "yield",
                                     "request": YIELD_REQUEST})

            # kill -9 once the optimizer has durably checkpointed its
            # first iteration (mid-optimize by construction)
            checkpoint = store.checkpoint_path(opt["id"])
            poll(lambda: os.path.exists(checkpoint),
                 message="first optimizer checkpoint")
            if client.status(opt["id"])["state"] == "done":
                pytest.skip("optimize finished before the kill landed")
            daemon.kill9()
        finally:
            daemon.cleanup()

        # restart on the same store: both jobs must complete with zero
        # intervention
        revived = Daemon(store_dir, workers=1)
        try:
            assert "recovered: 2 job(s)" in revived.banner
            client = ServeClient(revived.url)
            final_opt = client.wait(opt["id"], timeout_s=600,
                                    poll_s=0.1)
            assert final_opt["state"] == "done", final_opt["error"]
            assert final_opt["attempt"] >= 2
            assert final_opt["recovered"] is True

            final_yield = client.wait(pending["id"], timeout_s=600,
                                      poll_s=0.1)
            assert final_yield["state"] == "done", final_yield["error"]
            assert final_yield["recovered"] is True

            # the recovered trajectory is bit-identical to the
            # uninterrupted run (volatile wall-clock telemetry aside)
            artifact = client.result(opt["id"])
            assert artifact["kind"] == KIND_OPTIMIZE
            assert trace_fingerprint(artifact["result"]) == \
                direct_optimize_fingerprint
            job_stamp = artifact["provenance"]["job"]
            assert job_stamp["attempt"] >= 2
            assert job_stamp["recovered"] is True

            # the resumed trace spans the full trajectory
            assert len(artifact["result"]["records"]) >= 1
            assert artifact["result"]["stop_reason"]

            # and the yield batch matches its direct execution exactly
            direct = execute_yield(
                YieldRequest(**YIELD_REQUEST)).to_dict()
            served = client.result(pending["id"])["result"]
            for key in EXACT_KEYS:
                assert served[key] == direct[key], key

            # no orphaned WAL entries survive: every job folded to a
            # terminal state
            assert WriteAheadLog(store.wal_path()).orphans() == []

            # graceful shutdown drains and announces it
            output = revived.sigterm()
            assert "draining" in output
            assert revived.proc.returncode == 0
        finally:
            revived.cleanup()

    def test_sigkill_mid_yield_recomputes_exactly(self, tmp_path):
        store_dir = str(tmp_path / "store")
        daemon = Daemon(store_dir, workers=1)
        try:
            client = ServeClient(daemon.url)
            job = client.submit({"kind": "yield",
                                 "request": YIELD_REQUEST})
            poll(lambda: client.status(job["id"])["state"]
                 in ("running", "done"), message="job to start")
            if client.status(job["id"])["state"] == "done":
                pytest.skip("yield finished before the kill landed")
            daemon.kill9()
        finally:
            daemon.cleanup()

        revived = Daemon(store_dir, workers=1)
        try:
            client = ServeClient(revived.url)
            final = client.wait(job["id"], timeout_s=600, poll_s=0.1)
            assert final["state"] == "done", final["error"]
            assert final["attempt"] >= 2
            assert final["recovered"] is True
            direct = execute_yield(
                YieldRequest(**YIELD_REQUEST)).to_dict()
            served = client.result(job["id"])["result"]
            for key in EXACT_KEYS:
                assert served[key] == direct[key], key
            store = ResultStore(store_dir)
            assert WriteAheadLog(store.wal_path()).orphans() == []
        finally:
            revived.cleanup()
