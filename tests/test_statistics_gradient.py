"""Tests for the Pelgrom distance-term (die gradient) extension.

The paper neglects the distance term of the Pelgrom law (Sec. 3, citing
its ref. [1]); ``StatisticalSpace(with_gradient=True)`` provides it as an
opt-in: a random linear threshold gradient across the die, realized by two
extra statistical parameters, reproducing

    sigma^2(dVth_pair) = A_VT^2 / (W L) + S_VT^2 * D^2
"""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.pdk import GENERIC035
from repro.statistics import (DeviceGeometry, LocalVariation,
                              StatisticalSpace)

D = {"w": 10e-6, "l": 1e-6}


def make_space(separation=100e-6, with_gradient=True):
    lvs = (
        LocalVariation("dvt_M1", "M1", "vth", 1,
                       DeviceGeometry(w="w", l="l", x=0.0, y=0.0)),
        LocalVariation("dvt_M2", "M2", "vth", 1,
                       DeviceGeometry(w="w", l="l", x=separation, y=0.0)),
    )
    return StatisticalSpace(GENERIC035, lvs, with_global=False,
                            with_gradient=with_gradient)


class TestStructure:
    def test_dimension_and_names(self):
        space = make_space()
        assert space.dim == 4
        assert space.names[-2:] == ("grad_vth_x", "grad_vth_y")

    def test_gradient_requires_locals(self):
        with pytest.raises(ReproError):
            StatisticalSpace(GENERIC035, (), with_global=False,
                             with_gradient=True)

    def test_default_space_has_no_gradient(self):
        space = make_space(with_gradient=False)
        assert space.dim == 2
        assert space.n_gradient == 0

    def test_transform_still_factorizes_covariance(self):
        space = make_space()
        g = space.transform_matrix(D)
        c = space.covariance(D)
        assert np.allclose(g @ g.T, c, atol=1e-24)


class TestPhysics:
    def test_gradient_shifts_scale_with_position(self):
        space = make_space(separation=50e-6)
        s = np.zeros(space.dim)
        s[space.index("grad_vth_x")] = 1.0
        pv = space.to_physical(D, s)
        svt = GENERIC035.pelgrom.svt
        assert pv.delta_vto("M1") == pytest.approx(0.0)
        assert pv.delta_vto("M2") == pytest.approx(svt * 50e-6)

    def test_y_gradient_ignores_x_separation(self):
        space = make_space(separation=50e-6)
        s = np.zeros(space.dim)
        s[space.index("grad_vth_y")] = 1.0
        pv = space.to_physical(D, s)
        assert pv.delta_vto("M2") == pytest.approx(0.0)

    def test_pair_variance_matches_full_pelgrom_law(self):
        """Sampled sigma^2(dVth_M1 - dVth_M2) = A^2/(WL) + S^2 D^2."""
        separation = 200e-6
        space = make_space(separation=separation)
        rng = np.random.default_rng(0)
        samples = rng.standard_normal((40000, space.dim))
        g = space.transform_matrix(D)
        diffs = []
        for s_hat in samples:
            pv = space.to_physical(D, s_hat)
            diffs.append(pv.delta_vto("M1") - pv.delta_vto("M2"))
        measured_var = np.var(diffs)
        avt = GENERIC035.pelgrom.avt_nmos
        svt = GENERIC035.pelgrom.svt
        expected = avt**2 / (10e-6 * 1e-6) + svt**2 * separation**2
        assert measured_var == pytest.approx(expected, rel=0.05)

    def test_colocated_pair_sees_area_term_only(self):
        space = make_space(separation=0.0)
        rng = np.random.default_rng(1)
        diffs = []
        for s_hat in rng.standard_normal((20000, space.dim)):
            pv = space.to_physical(D, s_hat)
            diffs.append(pv.delta_vto("M1") - pv.delta_vto("M2"))
        avt = GENERIC035.pelgrom.avt_nmos
        expected = avt**2 / (10e-6 * 1e-6)
        assert np.var(diffs) == pytest.approx(expected, rel=0.05)

    def test_distant_pairs_mismatch_more(self):
        """The design guidance the distance term encodes: placing a
        matched pair further apart increases its mismatch spread."""
        def pair_sigma(separation):
            space = make_space(separation=separation)
            rng = np.random.default_rng(2)
            diffs = []
            for s_hat in rng.standard_normal((8000, space.dim)):
                pv = space.to_physical(D, s_hat)
                diffs.append(pv.delta_vto("M1") - pv.delta_vto("M2"))
            return np.std(diffs)

        assert pair_sigma(1e-3) > 1.3 * pair_sigma(10e-6)
