"""Tests for worker supervision in ``repro.serve``: heartbeats,
bounded fault-classified retry, wedge detection, running-job
cancellation, graceful drain, and the client's polling backoff.

The retry/wedge/cancel scenarios monkeypatch the pool worker function
(``repro.serve.server.execute_yield_job``) with deterministic stand-ins
defined at module top level — the pool pickles them by reference, and
the forked children import this module off the test path.
"""

import asyncio
import os
import time

import pytest

from repro.errors import AnalysisError, NetlistError
from repro.serve import (ResultStore, ServeApp, ServeClient, ServerThread,
                         WriteAheadLog, make_provenance, worker_heartbeat,
                         wrap_result)
from repro.serve.queue import CANCELLED, DONE, FAILED, QUEUED, RUNNING
from repro.statistics import wilson_interval
from repro.yieldsim import SufficientStats, YieldResult
from repro.yieldsim.result import KIND_BINOMIAL

REQUEST = {"circuit": "ota", "estimator": "qmc", "n_samples": 8,
           "seed": 3}


def stub_artifact():
    """A minimal contract-valid yield artifact for stub workers."""
    k, n = 7, 10
    stats = SufficientStats(kind=KIND_BINOMIAL, n=n, successes=k,
                            failed=0, w_sum=float(n), w_sq_sum=float(n),
                            w_pass_sum=float(k), w_sq_pass_sum=float(k))
    low, high = wilson_interval(k, n, 0.95)
    result = YieldResult(estimator="mc", estimate=k / n, n_samples=n,
                         simulations=n, ci_low=low, ci_high=high,
                         ci_level=0.95, ess=float(n), failed_samples=0,
                         stats=stats)
    return wrap_result(result, make_provenance(
        template="ota", seed=3, estimator="mc", n_samples=n,
        command="yield"))


# -- pool worker stand-ins (top level: must pickle by reference) -----------
def flaky_worker(payload):
    """Transient fault on the first attempt, clean result after."""
    if payload["attempt"] == 1:
        raise AnalysisError("transient solver blow-up")
    with worker_heartbeat(payload.get("heartbeat"), interval_s=0.05):
        return stub_artifact()


def structural_worker(payload):
    raise NetlistError("no such node: vout")


def always_transient_worker(payload):
    raise AnalysisError("still broken")


def sleepy_worker(payload):
    """Heartbeats, then blocks far longer than any test timeout."""
    with worker_heartbeat(payload.get("heartbeat"), interval_s=0.05):
        time.sleep(60.0)
    return stub_artifact()


def wedged_then_ok_worker(payload):
    """First attempt wedges silently (no heartbeat); retry succeeds."""
    if payload["attempt"] == 1:
        time.sleep(60.0)
    with worker_heartbeat(payload.get("heartbeat"), interval_s=0.05):
        return stub_artifact()


def fast_worker(payload):
    with worker_heartbeat(payload.get("heartbeat"), interval_s=0.05):
        return stub_artifact()


def run_app(coro_fn, **app_kwargs):
    async def runner():
        app = ServeApp(**app_kwargs)
        try:
            return await coro_fn(app)
        finally:
            await app.close()
    return asyncio.run(runner())


async def poll_until(predicate, timeout_s=30.0, message="condition"):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() >= deadline:
            raise AssertionError(f"timed out waiting for {message}")
        await asyncio.sleep(0.01)


class TestWorkerHeartbeat:
    def test_touches_file_until_exit(self, tmp_path):
        path = str(tmp_path / "beat")
        with worker_heartbeat(path, interval_s=0.02):
            time.sleep(0.1)
            assert os.path.exists(path)
            first = os.stat(path).st_mtime
            time.sleep(0.1)
            assert os.stat(path).st_mtime > first
        stopped = os.stat(path).st_mtime
        time.sleep(0.1)
        assert os.stat(path).st_mtime == stopped

    def test_none_path_is_a_no_op(self):
        with worker_heartbeat(None, interval_s=0.01):
            pass


class TestRetryPolicy:
    def test_transient_fault_is_retried_with_backoff(
            self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.serve.server.execute_yield_job",
                            flaky_worker)

        async def scenario(app):
            job = await app.submit({"kind": "yield", "request": REQUEST})
            await app.wait_idle()
            return app.status(job["id"]), app.stats()
        record, stats = run_app(
            scenario, store=ResultStore(str(tmp_path / "s")), workers=1,
            retry_backoff_s=0.01)
        assert record["state"] == DONE, record["error"]
        assert record["attempt"] == 2
        # the successful attempt clears the transient error
        assert record["error"] is None
        assert stats["queue"]["retries"] == 1

    def test_structural_fault_fails_on_first_attempt(
            self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.serve.server.execute_yield_job",
                            structural_worker)

        async def scenario(app):
            job = await app.submit({"kind": "yield", "request": REQUEST})
            await app.wait_idle()
            return app.status(job["id"])
        record = run_app(
            scenario, store=ResultStore(str(tmp_path / "s")), workers=1,
            retry_backoff_s=0.01)
        assert record["state"] == FAILED
        assert record["attempt"] == 1
        assert "NetlistError" in record["error"]

    def test_retries_are_bounded_by_max_attempts(
            self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.serve.server.execute_yield_job",
                            always_transient_worker)

        async def scenario(app):
            job = await app.submit({"kind": "yield", "request": REQUEST})
            await app.wait_idle()
            return app.status(job["id"]), app.stats()
        record, stats = run_app(
            scenario, store=ResultStore(str(tmp_path / "s")), workers=1,
            max_attempts=2, retry_backoff_s=0.01)
        assert record["state"] == FAILED
        assert record["attempt"] == 2
        assert stats["queue"]["retries"] == 1


class TestCancellation:
    def test_cancel_running_job_kills_the_worker(
            self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.serve.server.execute_yield_job",
                            sleepy_worker)
        store = ResultStore(str(tmp_path / "s"))

        async def scenario(app):
            job = await app.submit({"kind": "yield", "request": REQUEST})
            job_id = job["id"]
            # wait for the worker to actually pick the task up (it
            # heartbeats as its first act)
            await poll_until(
                lambda: os.path.exists(store.heartbeat_path(job_id)),
                message="worker heartbeat")
            record = app.cancel(job_id)
            assert record["state"] == CANCELLED
            assert record["stop_reason"] == "cancelled"
            await app.wait_idle()

            # the pool was killed to enforce the cancellation, and a
            # fresh pool serves the next job
            assert app.pool_kills >= 1
            monkeypatch.setattr("repro.serve.server.execute_yield_job",
                                fast_worker)
            replacement = await app.submit(
                {"kind": "yield",
                 "request": dict(REQUEST, seed=4)})
            await app.wait_idle()
            return app.status(job_id), app.status(replacement["id"])
        cancelled, replacement = run_app(scenario, store=store, workers=1)
        assert cancelled["state"] == CANCELLED
        assert replacement["state"] == DONE, replacement["error"]


class TestWedgeDetection:
    def test_stale_heartbeat_kills_pool_and_retries(
            self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.serve.server.execute_yield_job",
                            wedged_then_ok_worker)

        async def scenario(app):
            job = await app.submit({"kind": "yield", "request": REQUEST})
            await app.wait_idle()
            return app.status(job["id"]), app.pool_kills
        record, pool_kills = run_app(
            scenario, store=ResultStore(str(tmp_path / "s")), workers=1,
            heartbeat_timeout_s=0.5, supervise_interval_s=0.05,
            retry_backoff_s=0.01)
        assert record["state"] == DONE, record["error"]
        assert record["attempt"] == 2
        assert pool_kills >= 1


class TestDrain:
    def test_drain_leaves_interrupted_jobs_recoverable(
            self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.serve.server.execute_yield_job",
                            sleepy_worker)
        store_dir = str(tmp_path / "s")

        async def scenario():
            store = ResultStore(store_dir)
            app = ServeApp(store, workers=1)
            job = await app.submit({"kind": "yield", "request": REQUEST})
            job_id = job["id"]
            await poll_until(
                lambda: os.path.exists(store.heartbeat_path(job_id)),
                message="worker heartbeat")
            await app.drain(grace_s=0.1)
            # draining daemons reject new work
            from repro.errors import ServeError
            with pytest.raises(ServeError, match="draining"):
                await app.submit({"kind": "yield", "request": REQUEST})
            await app.close()

            # the WAL still carries the job as running: an orphan for
            # the next daemon start to recover
            orphans = WriteAheadLog(store.wal_path()).orphans()
            assert (job_id, RUNNING) in orphans

            monkeypatch.setattr("repro.serve.server.execute_yield_job",
                                fast_worker)
            revived = ServeApp(ResultStore(store_dir), workers=1)
            recovered = revived.queue.get(job_id)
            assert recovered.state == QUEUED
            assert recovered.attempt == 2
            assert recovered.recovered is True
            assert job_id in revived.recovered_jobs
            revived.start()
            try:
                await revived.wait_idle()
                return revived.status(job_id)
            finally:
                await revived.close()
        record = asyncio.run(scenario())
        assert record["state"] == DONE, record["error"]
        assert record["attempt"] == 2
        assert record["recovered"] is True


class TestClientBackoff:
    def test_jitter_bounds_without_retry_after(self):
        client = ServeClient("http://example.invalid")
        for _ in range(100):
            value = client.next_poll_s(1.0, max_poll_s=5.0)
            assert 0.75 <= value <= 1.25

    def test_retry_after_acts_as_a_floor(self):
        client = ServeClient("http://example.invalid")
        client.last_headers = {"retry-after": "3"}
        assert client.retry_after_s() == 3.0
        for _ in range(100):
            value = client.next_poll_s(0.2, max_poll_s=5.0)
            assert 2.25 <= value <= 3.75

    def test_retry_after_is_capped_by_max_poll(self):
        client = ServeClient("http://example.invalid")
        client.last_headers = {"retry-after": "60"}
        for _ in range(100):
            value = client.next_poll_s(0.2, max_poll_s=5.0)
            assert 3.75 <= value <= 6.25

    def test_malformed_retry_after_is_ignored(self):
        client = ServeClient("http://example.invalid")
        client.last_headers = {"retry-after": "soon"}
        assert client.retry_after_s() is None

    def test_server_sends_retry_after_on_pending_jobs(self, tmp_path):
        with ServerThread(str(tmp_path / "store"), workers=1) as server:
            client = ServeClient(server.url)
            job = client.submit({"kind": "yield", "request": REQUEST})
            if job["state"] in ("queued", "running"):
                assert client.retry_after_s() == 1.0
            final = client.wait(job["id"], timeout_s=300, poll_s=0.05)
            assert final["state"] == DONE, final.get("error")
            # terminal responses carry no Retry-After
            assert client.retry_after_s() is None
