"""Tests of the pluggable linear-solver backend layer.

The load-bearing property is backend *equivalence*: the sparse
factorization-reusing backend must produce the same DC operating points
and AC transfers as the dense LAPACK path on any well-posed circuit —
including nonlinear (MOSFET) circuits whose Newton iterations re-stamp
the matrix, mixed AC grids containing ``freq = 0``, and multi-rhs
shared-matrix solves.  Failure modes must match too: a singular MNA
system raises the same :class:`SingularMatrixError` from both backends.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Circuit, solve_dc
from repro.circuit.ac import (AcSystem, shared_matrix_transfers,
                              transfer_at)
from repro.circuit.dc import WarmStartCache
from repro.circuit.linsolve import (AUTO_SPARSE_MIN_NODES, DENSE, SPARSE,
                                    DenseDcSystem, SparseDcSystem,
                                    SparsePattern, get_pattern,
                                    resolve_backend)
from repro.errors import AnalysisError, ReproError, SingularMatrixError
from repro.pdk.generic035 import NMOS

resistances = st.floats(1e3, 1e5)
widths = st.floats(2e-6, 50e-6)
biases = st.floats(0.8, 1.6)


def _cs_chain(stages, vdd=3.3, vg=1.1):
    """A chain of common-source NMOS stages with resistive loads and
    node capacitors — nonlinear, multi-node, always well-posed."""
    c = Circuit("cs-chain")
    c.vsource("VDD", "vdd", "0", dc=vdd)
    c.vsource("VG", "g0", "0", dc=vg, ac=1.0)
    gate = "g0"
    for k, (rd, w) in enumerate(stages, start=1):
        drain = f"d{k}"
        c.resistor(f"RD{k}", "vdd", drain, rd)
        c.mosfet(f"M{k}", drain, gate, "0", "0", NMOS, w=w, l=1e-6)
        c.capacitor(f"C{k}", drain, "0", 1e-12)
        gate = drain
    return c, gate


class TestDcEquivalence:
    @given(stages=st.lists(st.tuples(resistances, widths),
                           min_size=1, max_size=4),
           vg=biases)
    @settings(max_examples=30, deadline=None)
    def test_sparse_matches_dense_on_random_nonlinear_circuits(
            self, stages, vg):
        circuit, _ = _cs_chain(stages, vg=vg)
        dense = solve_dc(circuit, backend="dense")
        circuit2, _ = _cs_chain(stages, vg=vg)
        sparse = solve_dc(circuit2, backend="sparse")
        assert np.allclose(sparse.x, dense.x, rtol=1e-6, atol=1e-7)

    @given(stages=st.lists(st.tuples(resistances, widths),
                           min_size=1, max_size=3))
    @settings(max_examples=15, deadline=None)
    def test_operating_points_match(self, stages):
        circuit, _ = _cs_chain(stages)
        dense = solve_dc(circuit, backend="dense")
        circuit2, _ = _cs_chain(stages)
        sparse = solve_dc(circuit2, backend="sparse")
        for name in (f"M{k}" for k in range(1, len(stages) + 1)):
            assert sparse.op(name)["ids"] == pytest.approx(
                dense.op(name)["ids"], rel=1e-6, abs=1e-12)

    def test_pmos_region_swap_rebuilds_pattern(self):
        """A MOSFET swaps its drain/source stamp indices with the sign
        of vds, so successive solves of one topology can legitimately
        present different triplet fingerprints — the cached pattern must
        rebuild, not corrupt."""
        c = Circuit("swap")
        c.vsource("VDD", "vdd", "0", dc=3.3)
        c.vsource("VG", "g", "0", dc=1.5)
        c.resistor("RS", "vdd", "s", 1e3)
        c.resistor("RD", "d", "0", 1e3)
        c.mosfet("M1", "d", "g", "s", "0", NMOS, w=10e-6, l=1e-6)
        dense = solve_dc(c, backend="dense")
        c2 = Circuit("swap")
        c2.vsource("VDD", "vdd", "0", dc=3.3)
        c2.vsource("VG", "g", "0", dc=1.5)
        c2.resistor("RS", "vdd", "s", 1e3)
        c2.resistor("RD", "d", "0", 1e3)
        c2.mosfet("M1", "d", "g", "s", "0", NMOS, w=10e-6, l=1e-6)
        sparse = solve_dc(c2, backend="sparse")
        assert np.allclose(sparse.x, dense.x, rtol=1e-6, atol=1e-7)


class TestSingularSystems:
    def _floating(self):
        """A current source into a node with no DC path to ground."""
        c = Circuit("floating")
        c.isource("I1", "0", "a", dc=1e-6)
        c.capacitor("C1", "a", "b", 1e-12)
        c.resistor("R1", "b", "0", 1e3)
        return c

    def test_both_backends_raise_singular_matrix_error(self):
        circuit = self._floating()
        layout = circuit.layout()
        x = np.zeros(layout.size)
        with pytest.raises(SingularMatrixError):
            DenseDcSystem(circuit, layout, gmin=0.0).solve_at(x)
        with pytest.raises(SingularMatrixError):
            SparseDcSystem(circuit, layout, gmin=0.0).solve_at(x)

    def test_singular_matrix_error_is_an_analysis_error(self):
        """Callers catching the historic dense failure mode must also
        catch the sparse one — same class, same hierarchy."""
        assert issubclass(SingularMatrixError, AnalysisError)

    def test_ac_singularity_matches(self):
        """A voltage-source loop is singular for both AC engines."""
        c = Circuit("loop")
        c.vsource("V1", "a", "0", dc=1.0, ac=1.0)
        c.vsource("V2", "a", "0", dc=1.0)
        c.resistor("R1", "a", "0", 1e3)
        layout = c.layout()
        for backend in (DENSE, SPARSE):
            engine = backend.ac_engine(c, layout, {})
            with pytest.raises(SingularMatrixError):
                engine.solve(2.0 * np.pi * 1e3)


class TestAcEquivalence:
    def _system(self, backend):
        circuit, out = _cs_chain([(20e3, 10e-6), (30e3, 20e-6)])
        op = solve_dc(circuit, backend="dense")
        return AcSystem(circuit, op, backend=backend), out

    @given(freq=st.floats(1.0, 1e9))
    @settings(max_examples=25, deadline=None)
    def test_transfer_matches_across_backends(self, freq):
        dense, out = self._system("dense")
        sparse, _ = self._system("sparse")
        hd = dense.transfer(out, freq)
        hs = sparse.transfer(out, freq)
        assert hs == pytest.approx(hd, rel=1e-8, abs=1e-15)

    def test_freq_zero_equals_dc_small_signal_gain(self):
        """Regression for the freq = 0 path: the AC gain at DC must be
        consistent with a finite-difference DC gain — and identical
        between backends (both solve the real-valued G system)."""
        for backend in ("dense", "sparse"):
            circuit, out = _cs_chain([(20e3, 10e-6)])
            op = solve_dc(circuit, backend=backend)
            h0 = transfer_at(circuit, op, out, 0.0, backend=backend)
            assert h0.imag == 0.0
            # Finite-difference DC gain around the bias point.
            delta = 1e-5
            lo, _ = _cs_chain([(20e3, 10e-6)], vg=1.1 - delta)
            hi, _ = _cs_chain([(20e3, 10e-6)], vg=1.1 + delta)
            g_fd = (solve_dc(hi, backend=backend).voltage(out)
                    - solve_dc(lo, backend=backend).voltage(out)) \
                / (2 * delta)
            assert h0.real == pytest.approx(g_fd, rel=1e-3)

    def test_solve_many_with_mixed_dc_grid(self):
        """A sweep grid containing freq = 0 must agree point-by-point
        with individual solves, on both backends."""
        freqs = [0.0, 1e3, 1e6]
        for backend in ("dense", "sparse"):
            system, out = self._system(backend)
            batch = system.transfer_many(out, freqs)
            single = np.array([system.transfer(out, f) for f in freqs])
            assert np.allclose(batch, single, rtol=1e-12, atol=1e-18)

    def test_shared_matrix_transfers_multi_rhs(self):
        """Re-driven systems share (G, B): the multi-rhs fast path must
        match per-system solves on both backends."""
        for backend in ("dense", "sparse"):
            system, out = self._system(backend)
            redriven = system.with_drives()
            values = shared_matrix_transfers([system, redriven], out, 1e4)
            expected = [system.transfer(out, 1e4),
                        redriven.transfer(out, 1e4)]
            assert values == pytest.approx(expected, rel=1e-12)

    def test_sparse_backend_equals_dense_on_folded_cascode(self):
        """Backend equivalence on a real template netlist (the ISSUE's
        acceptance tolerance: agreement on all existing templates)."""
        from repro.circuits import FoldedCascodeOpamp
        t = FoldedCascodeOpamp()
        space = t.statistical_space
        d = t.initial_design()
        theta = t.operating_range.nominal()
        pv = space.to_physical(d, space.nominal())
        results = {}
        for backend in ("dense", "sparse"):
            circuit = t.build(d, pv, theta)
            op = solve_dc(circuit, backend=backend)
            system = AcSystem(circuit, op, backend=backend)
            results[backend] = (op.x, system.transfer("out", 1e5))
        x_d, h_d = results["dense"]
        x_s, h_s = results["sparse"]
        assert np.allclose(x_s, x_d, rtol=1e-6, atol=1e-9)
        assert h_s == pytest.approx(h_d, rel=1e-6)


class TestBackendSelection:
    def test_auto_threshold(self):
        assert resolve_backend(None, AUTO_SPARSE_MIN_NODES - 1) is DENSE
        assert resolve_backend(None, AUTO_SPARSE_MIN_NODES) is SPARSE
        assert resolve_backend("auto", 10) is DENSE
        assert resolve_backend("auto", 500) is SPARSE

    def test_explicit_names_override_size(self):
        assert resolve_backend("dense", 10_000) is DENSE
        assert resolve_backend("sparse", 2) is SPARSE

    def test_instance_passthrough(self):
        assert resolve_backend(SPARSE, 2) is SPARSE

    def test_unknown_name_raises(self):
        with pytest.raises(ReproError, match="unknown linear-solver"):
            resolve_backend("umfpack", 10)

    def test_small_templates_stay_dense_under_auto(self):
        """The bit-identity guarantee for pre-existing templates hinges
        on every one of them sitting below the auto threshold."""
        from repro.circuits import (FiveTransistorOta, FoldedCascodeOpamp,
                                    MillerOpamp)
        for factory in (MillerOpamp, FoldedCascodeOpamp,
                        FiveTransistorOta):
            t = factory()
            space = t.statistical_space
            d = t.initial_design()
            pv = space.to_physical(d, space.nominal())
            circuit = t.build(d, pv, t.operating_range.nominal())
            assert circuit.layout().size < AUTO_SPARSE_MIN_NODES


class TestSparsePattern:
    def test_fingerprint_cache_and_rebuild(self):
        c = Circuit("rc")
        c.vsource("V1", "a", "0", dc=1.0)
        c.resistor("R1", "a", "b", 1e3)
        c.resistor("R2", "b", "0", 1e3)
        layout = c.layout()
        rows = np.array([0, 1, 1, 0], dtype=np.int32)
        cols = np.array([0, 1, 0, 1], dtype=np.int32)
        p1 = get_pattern(layout, "test", rows, cols)
        assert get_pattern(layout, "test", rows, cols) is p1
        # A different stamp sequence (region swap) rebuilds the pattern.
        p2 = get_pattern(
            layout, "test",
            np.array([1, 1, 0, 0], dtype=np.int32), cols)
        assert p2 is not p1
        # Distinct analysis kinds get distinct cache slots.
        assert get_pattern(layout, "other", rows, cols) is not p2

    def test_fill_accumulates_duplicate_triplets(self):
        rows = np.array([0, 0, 1], dtype=np.int32)
        cols = np.array([0, 0, 1], dtype=np.int32)
        pattern = SparsePattern(rows, cols, 2)
        dense = pattern.matrix(
            pattern.fill(np.array([1.0, 2.0, 5.0]))).toarray()
        assert dense == pytest.approx(np.array([[3.0, 0.0], [0.0, 5.0]]))


class TestWarmStartCacheCounters:
    def test_hit_miss_and_eviction_counters(self):
        cache = WarmStartCache(maxsize=2)
        assert cache.lookup("a") is WarmStartCache._MISSING
        cache.store("a", None)
        cache.lookup("a")
        cache.store("b", None)
        cache.store("c", None)  # evicts "a"
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] == 1
        assert stats["entries"] == 2

    def test_chain_store_is_separate_and_bounded(self):
        cache = WarmStartCache(maxsize=8, chain_maxsize=2)
        x = np.ones(3)
        assert cache.lookup_chain("p1") is WarmStartCache._MISSING
        cache.store_chain("p1", x)
        got = cache.lookup_chain("p1")
        assert np.array_equal(got, x)
        cache.store_chain("p2", None)
        cache.store_chain("p3", x)  # evicts p1
        assert cache.lookup_chain("p1") is WarmStartCache._MISSING
        assert cache.stats()["evictions"] == 1
        # Chain lookups never touch the hit/miss counters.
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 0

    def test_absorb_and_counter_delta(self):
        cache = WarmStartCache()
        cache.store("a", None)
        cache.lookup("a")
        before = cache.stats()
        cache.lookup("a")
        cache.lookup("zz")
        delta = WarmStartCache.counter_delta(cache.stats(), before)
        assert delta == {"hits": 1, "misses": 1, "chain_seeds": 0,
                         "chain_solves": 0, "evictions": 0}
        other = WarmStartCache()
        other.absorb(delta)
        assert other.stats()["hits"] == 1
        assert other.stats()["misses"] == 1


class TestWarmChainSeeding:
    def test_parent_cell_chains_across_fine_cells(self):
        """Two nearby design points in different fine anchor cells share
        one coarser parent cell: the parent is cold-solved once and
        seeds both representatives."""
        from repro.circuits import MillerOpamp
        t = MillerOpamp()
        t.warm_sensitivities = False  # keep the test fast
        theta = t.operating_range.nominal()
        d1 = t.initial_design()
        d2 = dict(d1)
        d2["w1"] = d1["w1"] * 1.075  # new fine cell, same parent cell
        assert t._warm_anchor(d1, theta) is not None
        stats1 = t.warm_cache_stats()
        assert stats1["chain_solves"] == 1
        assert t._warm_anchor(d2, theta) is not None
        stats2 = t.warm_cache_stats()
        assert stats2["chain_solves"] == 1  # parent reused, not re-solved
        assert stats2["chain_seeds"] == 2
        assert stats2["chain_entries"] == 1

    def test_chain_disabled_falls_back_to_cold_solves(self):
        from repro.circuits import MillerOpamp
        t = MillerOpamp()
        t.warm_chain = False
        t.warm_sensitivities = False
        assert t._warm_anchor(t.initial_design(),
                              t.operating_range.nominal()) is not None
        stats = t.warm_cache_stats()
        assert stats["chain_solves"] == 0
        assert stats["chain_seeds"] == 0

    def test_chain_seeding_does_not_change_results(self):
        """The fallback guarantee: chaining may only change iteration
        counts, never the anchor solution."""
        from repro.circuits import MillerOpamp
        theta = None
        anchors = {}
        for chain in (True, False):
            t = MillerOpamp()
            t.warm_chain = chain
            t.warm_sensitivities = False
            theta = t.operating_range.nominal()
            d = dict(t.initial_design())
            d["w1"] = d["w1"] * 1.075
            anchors[chain] = t._warm_anchor(d, theta)
        x_chained = anchors[True][0]
        x_cold = anchors[False][0]
        assert np.allclose(x_chained, x_cold, rtol=1e-7, atol=1e-9)
