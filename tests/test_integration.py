"""Integration tests: the full Fig.-6 loop and the Sec.-3 analysis on the
real benchmark circuits, with reduced budgets so the suite stays fast.

The full-budget paper reproductions live in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.circuits import FoldedCascodeOpamp, MillerOpamp
from repro.core import (OptimizerConfig, YieldOptimizer, analyze_mismatch,
                        find_all_worst_case_points, rank_matching_pairs)
from repro.evaluation import Evaluator
from repro.reporting import optimization_trace_table
from repro.spec.operating import find_worst_case_operating_points


@pytest.mark.slow
class TestMillerEndToEnd:
    @pytest.fixture(scope="class")
    def result(self):
        config = OptimizerConfig(n_samples_linear=4000,
                                 n_samples_verify=60,
                                 max_iterations=3, seed=1)
        return YieldOptimizer(MillerOpamp(), config).run()

    def test_yield_improves_substantially(self, result):
        assert result.initial.yield_mc < 0.6
        assert result.final.yield_mc > 0.9

    def test_slew_rate_was_the_initial_problem(self, result):
        initial = result.initial
        assert initial.margins["sr>="] < 0
        assert initial.bad_samples["sr>="] > 0.3
        assert result.final.margins["sr>="] > 0

    def test_linearized_estimate_close_to_mc(self, result):
        """The <1-2 % accuracy claim of Sec. 5.2 on a real circuit."""
        initial = result.initial
        assert initial.yield_linear == pytest.approx(initial.yield_mc,
                                                     abs=0.12)

    def test_final_design_feasible(self, result):
        template = MillerOpamp()
        values = template.constraints(result.d_final)
        assert min(values.values()) >= -1e-9

    def test_trace_table_renders(self, result):
        text = optimization_trace_table(MillerOpamp(), result)
        assert "Initial" in text and "bad samples" in text


@pytest.mark.slow
class TestFoldedCascodeAnalysis:
    @pytest.fixture(scope="class")
    def worst_case(self):
        template = FoldedCascodeOpamp()
        evaluator = Evaluator(template)
        d = template.initial_design()
        s0 = template.statistical_space.nominal()
        theta_wc = find_worst_case_operating_points(
            lambda th: evaluator.evaluate(d, s0, th), template.specs,
            template.operating_range)
        wc = find_all_worst_case_points(evaluator, d, theta_wc, seed=2)
        return template, wc

    def test_cmrr_and_ft_are_the_critical_specs(self, worst_case):
        template, wc = worst_case
        assert wc["ft>="].beta_wc < 0  # violated at worst corner
        assert abs(wc["cmrr>="].beta_wc) < 2.0  # marginal
        assert wc["a0>="].beta_wc > 3.0  # robust
        assert wc["power<="].beta_wc > 3.0

    def test_mismatch_analysis_finds_matched_pairs(self, worst_case):
        """Sec. 3 on the real circuit: the CMRR worst-case point exposes
        physical matching pairs, with no topology knowledge."""
        template, wc = worst_case
        names = list(template.statistical_space.names)
        pairs = rank_matching_pairs(
            wc["cmrr>="], names,
            candidate_names=template.local_vth_names(), top=3)
        top_devices = {frozenset(p.devices) for p in pairs
                       if p.measure > 0.01}
        known_pairs = {frozenset(("M9", "M10")), frozenset(("M3", "M4")),
                       frozenset(("M1", "M2")), frozenset(("M5", "M6")),
                       frozenset(("M7", "M8"))}
        assert top_devices  # at least one pair detected
        assert top_devices <= known_pairs  # only true pairs reported

    def test_only_cmrr_is_mismatch_sensitive(self, worst_case):
        template, wc = worst_case
        names = list(template.statistical_space.names)
        report = analyze_mismatch(wc, names,
                                  candidate_names=template.local_vth_names(),
                                  threshold=0.05)
        flagged = {key for key, pairs in report.items() if pairs}
        assert "cmrr>=" in flagged
        assert "power<=" not in flagged
        assert "a0>=" not in flagged

    def test_worst_case_operating_points_make_sense(self, worst_case):
        template, _ = worst_case
        evaluator = Evaluator(template)
        d = template.initial_design()
        s0 = template.statistical_space.nominal()
        theta_wc = find_worst_case_operating_points(
            lambda th: evaluator.evaluate(d, s0, th), template.specs,
            template.operating_range)
        # Slew is worst cold at low supply (bias current smallest).
        assert theta_wc["sr>="] == {"temp": -40.0, "vdd": 3.0}
        # Transit frequency is worst hot at low supply.
        assert theta_wc["ft>="] == {"temp": 125.0, "vdd": 3.0}
