"""Unit tests for the DC operating-point solver (repro.circuit.dc)."""

import numpy as np
import pytest

import repro.circuit.dc as dc_module
from repro.circuit import Circuit, solve_dc
from repro.circuit.dc import (DcEffort, GMIN_FACTOR, GMIN_FINAL, GMIN_START,
                              SOURCE_SCALES, _newton, _source_stepping,
                              gmin_schedule)
from repro.circuit.devices import Isource, Vsource
from repro.circuit.linsolve import resolve_backend
from repro.errors import ConvergenceError, SingularMatrixError
from repro.pdk.generic035 import NMOS, PMOS


def divider(ratio_top=1e3, ratio_bottom=1e3, vin=2.0):
    c = Circuit("divider")
    c.vsource("V1", "in", "0", dc=vin)
    c.resistor("R1", "in", "out", ratio_top)
    c.resistor("R2", "out", "0", ratio_bottom)
    return c


class TestLinearCircuits:
    def test_resistive_divider(self):
        result = solve_dc(divider())
        assert result.voltage("out") == pytest.approx(1.0, abs=1e-6)

    def test_source_current_direction(self):
        result = solve_dc(divider())
        # 2 V over 2 kOhm: 1 mA flows out of the source's + terminal.
        assert result.source_current("V1") == pytest.approx(-1e-3, rel=1e-6)

    def test_current_source_into_resistor(self):
        c = Circuit("isrc")
        c.isource("I1", "0", "n1", dc=1e-3)  # pushes current into n1
        c.resistor("R1", "n1", "0", 1e3)
        result = solve_dc(c)
        assert result.voltage("n1") == pytest.approx(1.0, rel=1e-6)

    def test_vcvs_gain(self):
        c = Circuit("vcvs")
        c.vsource("V1", "a", "0", dc=0.5)
        c.resistor("RL", "b", "0", 1e3)
        c.vcvs("E1", "b", "0", "a", "0", gain=4.0)
        result = solve_dc(c)
        assert result.voltage("b") == pytest.approx(2.0, rel=1e-9)

    def test_vccs_transconductance(self):
        c = Circuit("vccs")
        c.vsource("V1", "a", "0", dc=1.0)
        c.resistor("RL", "b", "0", 2e3)
        c.vccs("G1", "0", "b", "a", "0", gm=1e-3)  # pushes 1 mA into b
        result = solve_dc(c)
        assert result.voltage("b") == pytest.approx(2.0, rel=1e-6)

    def test_inductor_is_dc_short(self):
        c = Circuit("lshort")
        c.vsource("V1", "a", "0", dc=1.0)
        c.inductor("L1", "a", "b", 1e-3)
        c.resistor("R1", "b", "0", 1e3)
        result = solve_dc(c)
        assert result.voltage("b") == pytest.approx(1.0, abs=1e-9)

    def test_capacitor_is_dc_open(self):
        c = Circuit("copen")
        c.vsource("V1", "a", "0", dc=1.0)
        c.resistor("R1", "a", "b", 1e3)
        c.capacitor("C1", "b", "0", 1e-9)
        c.resistor("R2", "b", "0", 1e6)  # define the node
        result = solve_dc(c)
        assert result.voltage("b") == pytest.approx(1.0 * 1e6 / 1.001e6,
                                                    rel=1e-4)


class TestMosCircuits:
    def test_diode_connected_nmos_settles_above_vth(self):
        c = Circuit("diode")
        c.vsource("VDD", "vdd", "0", dc=3.3)
        c.resistor("R1", "vdd", "d", 100e3)
        c.mosfet("M1", "d", "d", "0", "0", NMOS, w=20e-6, l=1e-6)
        result = solve_dc(c)
        vgs = result.voltage("d")
        assert NMOS.vto < vgs < 1.2
        # KCL: resistor current equals drain current.
        i_r = (3.3 - vgs) / 100e3
        assert result.op("M1")["ids"] == pytest.approx(i_r, rel=1e-4)

    def test_current_mirror_ratio(self):
        c = Circuit("mirror")
        c.vsource("VDD", "vdd", "0", dc=3.3)
        c.isource("IB", "vdd", "g", dc=10e-6)
        c.mosfet("M1", "g", "g", "0", "0", NMOS, w=10e-6, l=2e-6)
        c.mosfet("M2", "d2", "g", "0", "0", NMOS, w=30e-6, l=2e-6)
        c.vsource("VD", "d2", "0", dc=1.0)
        result = solve_dc(c)
        i1 = result.op("M1")["ids"]
        i2 = result.op("M2")["ids"]
        # 3:1 mirror (within channel-length-modulation error).
        assert i2 / i1 == pytest.approx(3.0, rel=0.1)

    def test_pmos_source_follower_level_shift(self):
        c = Circuit("follower")
        c.vsource("VDD", "vdd", "0", dc=3.3)
        c.vsource("VG", "g", "0", dc=1.0)
        c.isource("IB", "vdd", "s", dc=20e-6)  # bias current into the source
        c.mosfet("M1", "0", "g", "s", "vdd", PMOS, w=40e-6, l=1e-6)
        result = solve_dc(c)
        vs = result.voltage("s")
        assert vs > 1.0 + abs(PMOS.vto) * 0.8  # shifted up by ~|vgs|

    def test_reverse_mode_swaps_source_drain(self):
        """A symmetric device conducts either way; the op record flags it."""
        c = Circuit("reverse")
        c.vsource("V1", "a", "0", dc=0.0)
        c.vsource("V2", "b", "0", dc=1.0)
        c.vsource("VG", "g", "0", dc=2.0)
        c.mosfet("M1", "a", "g", "b", "0", NMOS, w=10e-6, l=1e-6)
        result = solve_dc(c)
        op = result.op("M1")
        assert op["swapped"] is True
        assert op["vds"] >= 0.0

    def test_multiplier_scales_current(self):
        def drain_current(m):
            c = Circuit("mult")
            c.vsource("VDD", "vdd", "0", dc=3.3)
            c.vsource("VG", "g", "0", dc=1.0)
            c.mosfet("M1", "vdd", "g", "0", "0", NMOS, w=10e-6, l=1e-6, m=m)
            return solve_dc(c).op("M1")["ids"]
        assert drain_current(4) == pytest.approx(4 * drain_current(1),
                                                 rel=1e-6)


class TestRobustness:
    def test_warm_start_reduces_iterations(self):
        c = divider()
        cold = solve_dc(c)
        warm = solve_dc(c, x0=cold.x)
        assert warm.iterations <= cold.iterations

    def test_singular_matrix_reported(self):
        c = Circuit("loop")
        c.vsource("V1", "a", "0", dc=1.0)
        c.vsource("V2", "a", "0", dc=2.0)  # conflicting source loop
        c.resistor("R1", "a", "0", 1e3)
        with pytest.raises((SingularMatrixError, ConvergenceError)):
            solve_dc(c)

    def test_temperature_changes_operating_point(self):
        c = Circuit("temp")
        c.vsource("VDD", "vdd", "0", dc=3.3)
        c.resistor("R1", "vdd", "d", 100e3)
        c.mosfet("M1", "d", "d", "0", "0", NMOS, w=20e-6, l=1e-6)
        cold = solve_dc(c, temp_c=-40.0).voltage("d")
        hot = solve_dc(c, temp_c=125.0).voltage("d")
        assert cold != pytest.approx(hot, abs=1e-3)

    def test_voltages_dict_covers_all_nodes(self):
        result = solve_dc(divider())
        assert set(result.voltages()) == {"in", "out"}

    def test_unknown_node_raises(self):
        result = solve_dc(divider())
        with pytest.raises(KeyError):
            result.voltage("nope")
        assert result.voltage("0") == 0.0

    def test_unknown_device_op_raises(self):
        result = solve_dc(divider())
        with pytest.raises(KeyError):
            result.op("M404")
        with pytest.raises(KeyError):
            result.source_current("R1")  # no branch current


class _StubLayout:
    def __init__(self, n_nodes, size):
        self.n_nodes = n_nodes
        self.size = size


class _StubSystem:
    """Linear-solve stub returning a fixed point regardless of x."""

    def __init__(self, x_star):
        self.x_star = np.asarray(x_star, dtype=float)

    def solve_at(self, x):
        return self.x_star.copy()


class _StubBackend:
    def __init__(self, x_star):
        self._x_star = x_star

    def dc_system(self, circuit, layout, gmin):
        return _StubSystem(self._x_star)


class TestNewtonConvergenceBranches:
    """Regression tests for the two explicit convergence branches of
    ``_newton``: the degenerate no-node-voltages case returns on the
    first accepted step, and the normal case tests the damped step
    against the absolute/relative tolerance."""

    def test_no_node_voltages_converges_on_first_accepted_step(self):
        # nv == 0: the whole state is branch currents, the damping test
        # is vacuous (step = 0.0) and any finite solve is converged —
        # even one that jumps far from x0.
        layout = _StubLayout(n_nodes=0, size=2)
        circuit = Circuit("branch-only-stub")
        x, iterations = _newton(circuit, layout, np.zeros(2), GMIN_FINAL,
                                _StubBackend([5.0, -3.0]))
        assert iterations == 1
        assert np.array_equal(x, [5.0, -3.0])

    def test_node_voltages_require_tolerance(self):
        # nv > 0 with a fixed point inside the damping limit: iteration 1
        # accepts the full step (|delta| = 0.5 > tolerance, so it does
        # not converge yet); iteration 2 has delta = 0 and converges.
        layout = _StubLayout(n_nodes=1, size=1)
        circuit = Circuit("one-node-stub")
        x, iterations = _newton(circuit, layout, np.zeros(1), GMIN_FINAL,
                                _StubBackend([0.5]))
        assert iterations == 2
        assert np.array_equal(x, [0.5])


class TestGminSchedule:
    def test_schedule_shared_by_both_solvers(self):
        values = list(gmin_schedule())
        assert values[0] == GMIN_START
        assert values[-1] == GMIN_FINAL  # the literal, bitwise
        assert all(a > b for a, b in zip(values, values[1:]))
        assert all(v >= GMIN_FINAL for v in values)
        # The interior values are products of repeated multiplication,
        # which the docstring warns are not the round literals.
        assert values[1] == GMIN_START * GMIN_FACTOR


class TestSourceStepping:
    def _diode_circuit(self):
        c = Circuit("diode")
        c.vsource("VDD", "vdd", "0", dc=3.3)
        c.resistor("R1", "vdd", "d", 100e3)
        c.mosfet("M1", "d", "d", "0", "0", NMOS, w=20e-6, l=1e-6)
        return c

    def test_restores_caller_scales_on_success(self):
        c = self._diode_circuit()
        layout = c.layout()
        backend = resolve_backend(None, layout.n_nodes)
        for dev in c.devices:
            dev.prepare(27.0)
        sources = [d for d in c.devices
                   if isinstance(d, (Vsource, Isource))]
        sources[0].scale = 0.25
        _source_stepping(c, layout, np.zeros(layout.size), backend)
        assert sources[0].scale == 0.25

    def test_restores_caller_scales_on_failure(self, monkeypatch):
        c = self._diode_circuit()
        layout = c.layout()
        backend = resolve_backend(None, layout.n_nodes)
        for dev in c.devices:
            dev.prepare(27.0)
        sources = [d for d in c.devices
                   if isinstance(d, (Vsource, Isource))]
        sources[0].scale = 0.75
        monkeypatch.setattr(dc_module, "MAX_ITERATIONS", 0)
        with pytest.raises(ConvergenceError):
            _source_stepping(c, layout, np.zeros(layout.size), backend)
        assert sources[0].scale == 0.75

    def test_ramp_ends_at_full_scale(self):
        assert SOURCE_SCALES[-1] == 1.0


class TestDcEffort:
    def test_counts_winning_strategy(self):
        effort = DcEffort()
        solve_dc(divider(), effort=effort)
        assert effort.stats()["newton"] == 1
        assert effort.stats()["failed"] == 0

    def test_counts_warm_strategy(self):
        effort = DcEffort()
        cold = solve_dc(divider())
        solve_dc(divider(), x0=cold.x, effort=effort)
        assert effort.stats()["newton-warm"] == 1
        assert effort.stats()["newton"] == 0

    def test_counts_exhausted_chain_as_failed(self, monkeypatch):
        monkeypatch.setattr(dc_module, "MAX_ITERATIONS", 0)
        effort = DcEffort()
        with pytest.raises(ConvergenceError):
            solve_dc(divider(), effort=effort)
        stats = effort.stats()
        assert stats["failed"] == 1
        assert all(stats[key] == 0 for key in DcEffort.COUNTER_KEYS
                   if key != "failed")

    def test_absorb_and_delta_mirror_warm_cache_protocol(self):
        a = DcEffort()
        a.count("newton", 3)
        a.count("gmin-stepping")
        before = a.stats()
        a.absorb({"newton": 2, "source-stepping": 1})
        after = a.stats()
        delta = DcEffort.counter_delta(after, before)
        assert delta == {"newton-warm": 0, "newton": 2,
                         "gmin-stepping": 0, "source-stepping": 1,
                         "failed": 0}
        a.clear()
        assert all(v == 0 for v in a.stats().values())
