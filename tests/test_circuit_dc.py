"""Unit tests for the DC operating-point solver (repro.circuit.dc)."""

import numpy as np
import pytest

from repro.circuit import Circuit, solve_dc
from repro.errors import ConvergenceError, SingularMatrixError
from repro.pdk.generic035 import NMOS, PMOS


def divider(ratio_top=1e3, ratio_bottom=1e3, vin=2.0):
    c = Circuit("divider")
    c.vsource("V1", "in", "0", dc=vin)
    c.resistor("R1", "in", "out", ratio_top)
    c.resistor("R2", "out", "0", ratio_bottom)
    return c


class TestLinearCircuits:
    def test_resistive_divider(self):
        result = solve_dc(divider())
        assert result.voltage("out") == pytest.approx(1.0, abs=1e-6)

    def test_source_current_direction(self):
        result = solve_dc(divider())
        # 2 V over 2 kOhm: 1 mA flows out of the source's + terminal.
        assert result.source_current("V1") == pytest.approx(-1e-3, rel=1e-6)

    def test_current_source_into_resistor(self):
        c = Circuit("isrc")
        c.isource("I1", "0", "n1", dc=1e-3)  # pushes current into n1
        c.resistor("R1", "n1", "0", 1e3)
        result = solve_dc(c)
        assert result.voltage("n1") == pytest.approx(1.0, rel=1e-6)

    def test_vcvs_gain(self):
        c = Circuit("vcvs")
        c.vsource("V1", "a", "0", dc=0.5)
        c.resistor("RL", "b", "0", 1e3)
        c.vcvs("E1", "b", "0", "a", "0", gain=4.0)
        result = solve_dc(c)
        assert result.voltage("b") == pytest.approx(2.0, rel=1e-9)

    def test_vccs_transconductance(self):
        c = Circuit("vccs")
        c.vsource("V1", "a", "0", dc=1.0)
        c.resistor("RL", "b", "0", 2e3)
        c.vccs("G1", "0", "b", "a", "0", gm=1e-3)  # pushes 1 mA into b
        result = solve_dc(c)
        assert result.voltage("b") == pytest.approx(2.0, rel=1e-6)

    def test_inductor_is_dc_short(self):
        c = Circuit("lshort")
        c.vsource("V1", "a", "0", dc=1.0)
        c.inductor("L1", "a", "b", 1e-3)
        c.resistor("R1", "b", "0", 1e3)
        result = solve_dc(c)
        assert result.voltage("b") == pytest.approx(1.0, abs=1e-9)

    def test_capacitor_is_dc_open(self):
        c = Circuit("copen")
        c.vsource("V1", "a", "0", dc=1.0)
        c.resistor("R1", "a", "b", 1e3)
        c.capacitor("C1", "b", "0", 1e-9)
        c.resistor("R2", "b", "0", 1e6)  # define the node
        result = solve_dc(c)
        assert result.voltage("b") == pytest.approx(1.0 * 1e6 / 1.001e6,
                                                    rel=1e-4)


class TestMosCircuits:
    def test_diode_connected_nmos_settles_above_vth(self):
        c = Circuit("diode")
        c.vsource("VDD", "vdd", "0", dc=3.3)
        c.resistor("R1", "vdd", "d", 100e3)
        c.mosfet("M1", "d", "d", "0", "0", NMOS, w=20e-6, l=1e-6)
        result = solve_dc(c)
        vgs = result.voltage("d")
        assert NMOS.vto < vgs < 1.2
        # KCL: resistor current equals drain current.
        i_r = (3.3 - vgs) / 100e3
        assert result.op("M1")["ids"] == pytest.approx(i_r, rel=1e-4)

    def test_current_mirror_ratio(self):
        c = Circuit("mirror")
        c.vsource("VDD", "vdd", "0", dc=3.3)
        c.isource("IB", "vdd", "g", dc=10e-6)
        c.mosfet("M1", "g", "g", "0", "0", NMOS, w=10e-6, l=2e-6)
        c.mosfet("M2", "d2", "g", "0", "0", NMOS, w=30e-6, l=2e-6)
        c.vsource("VD", "d2", "0", dc=1.0)
        result = solve_dc(c)
        i1 = result.op("M1")["ids"]
        i2 = result.op("M2")["ids"]
        # 3:1 mirror (within channel-length-modulation error).
        assert i2 / i1 == pytest.approx(3.0, rel=0.1)

    def test_pmos_source_follower_level_shift(self):
        c = Circuit("follower")
        c.vsource("VDD", "vdd", "0", dc=3.3)
        c.vsource("VG", "g", "0", dc=1.0)
        c.isource("IB", "vdd", "s", dc=20e-6)  # bias current into the source
        c.mosfet("M1", "0", "g", "s", "vdd", PMOS, w=40e-6, l=1e-6)
        result = solve_dc(c)
        vs = result.voltage("s")
        assert vs > 1.0 + abs(PMOS.vto) * 0.8  # shifted up by ~|vgs|

    def test_reverse_mode_swaps_source_drain(self):
        """A symmetric device conducts either way; the op record flags it."""
        c = Circuit("reverse")
        c.vsource("V1", "a", "0", dc=0.0)
        c.vsource("V2", "b", "0", dc=1.0)
        c.vsource("VG", "g", "0", dc=2.0)
        c.mosfet("M1", "a", "g", "b", "0", NMOS, w=10e-6, l=1e-6)
        result = solve_dc(c)
        op = result.op("M1")
        assert op["swapped"] is True
        assert op["vds"] >= 0.0

    def test_multiplier_scales_current(self):
        def drain_current(m):
            c = Circuit("mult")
            c.vsource("VDD", "vdd", "0", dc=3.3)
            c.vsource("VG", "g", "0", dc=1.0)
            c.mosfet("M1", "vdd", "g", "0", "0", NMOS, w=10e-6, l=1e-6, m=m)
            return solve_dc(c).op("M1")["ids"]
        assert drain_current(4) == pytest.approx(4 * drain_current(1),
                                                 rel=1e-6)


class TestRobustness:
    def test_warm_start_reduces_iterations(self):
        c = divider()
        cold = solve_dc(c)
        warm = solve_dc(c, x0=cold.x)
        assert warm.iterations <= cold.iterations

    def test_singular_matrix_reported(self):
        c = Circuit("loop")
        c.vsource("V1", "a", "0", dc=1.0)
        c.vsource("V2", "a", "0", dc=2.0)  # conflicting source loop
        c.resistor("R1", "a", "0", 1e3)
        with pytest.raises((SingularMatrixError, ConvergenceError)):
            solve_dc(c)

    def test_temperature_changes_operating_point(self):
        c = Circuit("temp")
        c.vsource("VDD", "vdd", "0", dc=3.3)
        c.resistor("R1", "vdd", "d", 100e3)
        c.mosfet("M1", "d", "d", "0", "0", NMOS, w=20e-6, l=1e-6)
        cold = solve_dc(c, temp_c=-40.0).voltage("d")
        hot = solve_dc(c, temp_c=125.0).voltage("d")
        assert cold != pytest.approx(hot, abs=1e-3)

    def test_voltages_dict_covers_all_nodes(self):
        result = solve_dc(divider())
        assert set(result.voltages()) == {"in", "out"}

    def test_unknown_node_raises(self):
        result = solve_dc(divider())
        with pytest.raises(KeyError):
            result.voltage("nope")
        assert result.voltage("0") == 0.0

    def test_unknown_device_op_raises(self):
        result = solve_dc(divider())
        with pytest.raises(KeyError):
            result.op("M404")
        with pytest.raises(KeyError):
            result.source_current("R1")  # no branch current
