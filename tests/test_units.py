"""Unit tests for repro.units."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.units import (celsius_to_kelvin, db, format_si, from_db,
                         parse_value)


class TestDecibels:
    def test_known_values(self):
        assert db(10.0) == pytest.approx(20.0)
        assert db(1.0) == pytest.approx(0.0)
        assert db(0.1) == pytest.approx(-20.0)

    def test_non_positive_rejected(self):
        with pytest.raises(ReproError):
            db(0.0)
        with pytest.raises(ReproError):
            db(-1.0)

    @given(st.floats(1e-12, 1e12))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, magnitude):
        assert from_db(db(magnitude)) == pytest.approx(magnitude, rel=1e-9)


class TestTemperature:
    def test_celsius_to_kelvin(self):
        assert celsius_to_kelvin(0.0) == pytest.approx(273.15)
        assert celsius_to_kelvin(27.0) == pytest.approx(300.15)


class TestParseValue:
    @pytest.mark.parametrize("text,expected", [
        ("1", 1.0),
        ("4.7k", 4700.0),
        ("10u", 10e-6),
        ("2.2n", 2.2e-9),
        ("100p", 100e-12),
        ("3f", 3e-15),
        ("1meg", 1e6),
        ("2g", 2e9),
        ("1.5m", 1.5e-3),
        ("1e-6", 1e-6),
        ("-3.3", -3.3),
        ("10uF", 10e-6),  # trailing unit letters
        ("5K", 5000.0),   # case-insensitive
    ])
    def test_spice_suffixes(self, text, expected):
        assert parse_value(text) == pytest.approx(expected)

    @pytest.mark.parametrize("text", ["", "abc", "k10", "1..2"])
    def test_garbage_rejected(self, text):
        with pytest.raises(ReproError):
            parse_value(text)

    @given(st.floats(-1e9, 1e9, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_plain_float_roundtrip(self, value):
        assert parse_value(repr(value)) == pytest.approx(value, rel=1e-12)


class TestFormatSi:
    @pytest.mark.parametrize("value,expected", [
        (4700.0, "4.7 kOhm"),
        (1e-6, "1 uOhm"),
        (0.0, "0 Ohm"),
        (3.3, "3.3 Ohm"),
    ])
    def test_known_values(self, value, expected):
        assert format_si(value, "Ohm") == expected

    def test_no_unit(self):
        assert format_si(2e6) == "2 M"

    def test_non_finite(self):
        assert "inf" in format_si(float("inf"), "V")
