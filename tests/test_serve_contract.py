"""Tests for the versioned artifact wire format and the canonical
request identity of :mod:`repro.serve` (contract.py + jobs.py)."""

import json

import pytest

from repro.errors import ArtifactError, ServeError
from repro.serve import (KIND_MERGED, KIND_YIELD, SCHEMA_VERSION,
                         YieldRequest, cache_key, canonical_request,
                         check_merge_compatible, load_result_artifact,
                         make_provenance, merged_provenance,
                         validate_artifact, wrap_result)
from repro.statistics import wilson_interval
from repro.yieldsim import SufficientStats, YieldResult
from repro.yieldsim.result import KIND_BINOMIAL


def binomial_result(k, n):
    stats = SufficientStats(kind=KIND_BINOMIAL, n=n, successes=k,
                            failed=0, w_sum=float(n), w_sq_sum=float(n),
                            w_pass_sum=float(k), w_sq_pass_sum=float(k))
    low, high = wilson_interval(k, n, 0.95)
    return YieldResult(estimator="mc", estimate=k / n, n_samples=n,
                       simulations=n, ci_low=low, ci_high=high,
                       ci_level=0.95, ess=float(n), failed_samples=0,
                       stats=stats)


def provenance(**overrides):
    fields = dict(template="ota", seed=3, estimator="mc", n_samples=10,
                  command="yield")
    fields.update(overrides)
    return make_provenance(**fields)


class TestArtifactFormat:
    def test_wrap_and_validate_round_trip(self):
        artifact = wrap_result(binomial_result(7, 10), provenance())
        validate_artifact(artifact)
        assert artifact["schema_version"] == SCHEMA_VERSION
        assert artifact["kind"] == KIND_YIELD
        assert artifact["provenance"]["template"] == "ota"
        assert artifact["provenance"]["code_version"]
        # JSON round trip stays valid and loads back bit-identically
        reparsed = json.loads(json.dumps(artifact))
        result, loaded = load_result_artifact(reparsed)
        assert loaded == artifact["provenance"]
        assert result.to_dict() == binomial_result(7, 10).to_dict()

    def test_provenance_optional_fields(self):
        block = provenance(shard="1/4", shards=None, linsolve="sparse")
        assert block["shard"] == "1/4"
        assert block["linsolve"] == "sparse"
        assert "shards" not in block
        block = provenance(extra={"template": "evil", "note": "x"})
        # extra must not displace required fields
        assert block["template"] == "ota"
        assert block["note"] == "x"

    @pytest.mark.parametrize("mutate,fragment", [
        (lambda a: a.pop("schema_version"), "missing field"),
        (lambda a: a.pop("result"), "missing field"),
        (lambda a: a.update(schema_version=99), "schema version"),
        (lambda a: a.update(provenance="nope"), "provenance"),
        (lambda a: a.update(result=[1, 2]), "result"),
        (lambda a: a["provenance"].pop("seed"), "seed"),
    ])
    def test_validation_rejects_malformed(self, mutate, fragment):
        artifact = wrap_result(binomial_result(7, 10), provenance())
        mutate(artifact)
        with pytest.raises(ArtifactError, match=fragment):
            validate_artifact(artifact)

    def test_load_accepts_legacy_bare_result(self):
        bare = binomial_result(4, 8).to_dict()
        result, loaded = load_result_artifact(bare)
        assert loaded is None
        assert result.estimate == 0.5

    def test_load_rejects_garbage(self):
        with pytest.raises(ArtifactError):
            load_result_artifact({"hello": "world"})
        with pytest.raises(ArtifactError):
            load_result_artifact([])


class TestMergeCompatibility:
    def test_accepts_matching_and_legacy(self):
        check_merge_compatible([provenance(), provenance(), None])

    @pytest.mark.parametrize("field,value", [
        ("template", "miller"), ("seed", 99), ("estimator", "qmc"),
    ])
    def test_rejects_mismatch(self, field, value):
        with pytest.raises(ArtifactError) as err:
            check_merge_compatible(
                [provenance(), provenance(**{field: value})],
                sources=["a.json", "b.json"])
        message = str(err.value)
        assert field in message
        assert "a.json" in message and "b.json" in message

    def test_merged_provenance_derivation(self):
        block = merged_provenance([None, provenance(linsolve="dense")],
                                  n_samples=20, shards=2)
        assert block["template"] == "ota"
        assert block["shards"] == 2
        assert block["n_samples"] == 20
        assert block["command"] == "merge-verify"
        assert block["linsolve"] == "dense"


class TestYieldRequest:
    def test_round_trip(self):
        request = YieldRequest(circuit="ota", estimator="qmc",
                               n_samples=16, seed=5, policy={"lenient": True})
        assert YieldRequest.from_dict(request.to_dict()) == request

    @pytest.mark.parametrize("kwargs,fragment", [
        (dict(circuit="nope"), "unknown circuit"),
        (dict(circuit="ota", estimator="bogus"), "unknown estimator"),
        (dict(circuit="ota", n_samples=0), "n_samples"),
    ])
    def test_validation(self, kwargs, fragment):
        with pytest.raises(ServeError, match=fragment):
            YieldRequest(**kwargs)

    def test_from_dict_wraps_errors(self):
        with pytest.raises(ServeError, match="invalid yield request"):
            YieldRequest.from_dict({"circuit": "ota", "n_samples": "x"})


class TestCacheKey:
    def request(self, **overrides):
        fields = dict(circuit="ota", estimator="qmc", n_samples=16, seed=5)
        fields.update(overrides)
        return YieldRequest(**fields)

    def test_execution_knobs_do_not_change_the_key(self):
        base = cache_key(self.request())
        assert cache_key(self.request(jobs=8)) == base
        assert cache_key(self.request(chunk_timeout=1.5)) == base

    def test_result_determining_fields_change_the_key(self):
        base = cache_key(self.request())
        assert cache_key(self.request(seed=6)) != base
        assert cache_key(self.request(n_samples=32)) != base
        assert cache_key(self.request(estimator="mc")) != base
        assert cache_key(self.request(circuit="miller")) != base
        assert cache_key(self.request(linsolve="dense")) != base
        assert cache_key(self.request(policy={"lenient": False})) != base

    def test_qmc_sharding_is_cache_transparent(self):
        # Sobol skip-ahead shards reproduce the unsharded point set, so
        # the shard count is an execution detail for qmc ...
        request = self.request()
        assert cache_key(request, shards=4) == cache_key(request, shards=1)

    def test_mc_sharding_is_part_of_the_identity(self):
        # ... but MC draws independent sub-streams per shard: a different
        # partition is a different result.
        request = self.request(estimator="mc")
        assert cache_key(request, shards=4) != cache_key(request, shards=1)
        assert cache_key(request, shards=4) != cache_key(request, shards=2)

    def test_canonical_form_pins_specs_and_schema(self):
        canonical = canonical_request(self.request())
        assert canonical["schema_version"] == SCHEMA_VERSION
        assert canonical["statistical_dim"] > 0
        assert all(len(spec) == 3 for spec in canonical["specs"])
        assert json.dumps(canonical)  # JSON-serializable as-is


class TestMergedArtifactKind:
    def test_merge_artifacts_produces_merged_kind(self):
        from repro.serve import merge_artifacts
        request = YieldRequest(circuit="ota", estimator="mc",
                               n_samples=20, seed=1)
        shards = [wrap_result(binomial_result(4, 10),
                              provenance(shard=f"{i + 1}/2"))
                  for i in range(2)]
        artifact = merge_artifacts(shards, request, shards=2)
        validate_artifact(artifact)
        assert artifact["kind"] == KIND_MERGED
        assert artifact["provenance"]["shards"] == 2
        assert artifact["result"]["merged_from"] == 2
        assert artifact["result"]["n_samples"] == 20
