"""Property-based tests of fundamental circuit-solver invariants.

These check physics, not implementation details: Kirchhoff's current law
at every node of the solved system, superposition and reciprocity of the
linear AC engine, passivity of random RC ladders, and consistency between
the transient and AC views of the same network.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Circuit, solve_dc, solve_transient, step_waveform
from repro.circuit.ac import AcSystem
from repro.pdk.generic035 import NMOS, PMOS

resistances = st.floats(10.0, 1e7)
voltages = st.floats(-5.0, 5.0)


def random_ladder(values, vin):
    """R-ladder: in - n1 - n2 - ... - 0 with rungs to ground."""
    c = Circuit("ladder")
    c.vsource("V1", "n0", "0", dc=vin)
    previous = "n0"
    for k, (series, shunt) in enumerate(values, start=1):
        node = f"n{k}"
        c.resistor(f"RS{k}", previous, node, series)
        c.resistor(f"RP{k}", node, "0", shunt)
        previous = node
    return c


class TestKirchhoff:
    @given(values=st.lists(st.tuples(resistances, resistances),
                           min_size=1, max_size=5),
           vin=voltages)
    @settings(max_examples=40, deadline=None)
    def test_kcl_at_every_internal_node(self, values, vin):
        circuit = random_ladder(values, vin)
        result = solve_dc(circuit)
        for k in range(1, len(values) + 1):
            node = f"n{k}"
            v_here = result.voltage(node)
            v_prev = result.voltage(f"n{k - 1}")
            series, shunt = values[k - 1]
            i_in = (v_prev - v_here) / series
            i_shunt = v_here / shunt
            i_next = 0.0
            if k < len(values):
                v_next = result.voltage(f"n{k + 1}")
                i_next = (v_here - v_next) / values[k][0]
            assert i_in == pytest.approx(i_shunt + i_next,
                                         abs=1e-9 + 1e-6 * abs(i_in))

    @given(values=st.lists(st.tuples(resistances, resistances),
                           min_size=1, max_size=4),
           vin=st.floats(0.1, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_voltages_bounded_by_source(self, values, vin):
        """A resistive divider network cannot exceed its source."""
        circuit = random_ladder(values, vin)
        result = solve_dc(circuit)
        for node, voltage in result.voltages().items():
            assert -1e-6 <= voltage <= vin + 1e-6

    def test_mos_circuit_kcl(self):
        """Drain current equals resistor current in a CS stage, to solver
        tolerance."""
        c = Circuit("cs")
        c.vsource("VDD", "vdd", "0", dc=3.3)
        c.vsource("VG", "g", "0", dc=1.1)
        c.resistor("RD", "vdd", "d", 20e3)
        c.mosfet("M1", "d", "g", "0", "0", NMOS, w=10e-6, l=1e-6)
        result = solve_dc(c)
        i_r = (3.3 - result.voltage("d")) / 20e3
        assert result.op("M1")["ids"] == pytest.approx(i_r, rel=1e-5)


class TestLinearity:
    def _rc(self, ac1=1.0, ac2=0.0):
        c = Circuit("two-source")
        c.vsource("V1", "a", "0", dc=0.0, ac=ac1)
        c.isource("I1", "0", "b", dc=0.0, ac=ac2)
        c.resistor("R1", "a", "b", 1e3)
        c.resistor("R2", "b", "0", 2e3)
        c.capacitor("C1", "b", "0", 1e-9)
        return c

    @given(freq=st.floats(1.0, 1e8), a1=st.floats(-2, 2),
           a2=st.floats(-1e-3, 1e-3))
    @settings(max_examples=30, deadline=None)
    def test_superposition(self, freq, a1, a2):
        """Response to both sources equals the sum of the individual
        responses."""
        def response(ac1, ac2):
            circuit = self._rc(ac1, ac2)
            op = solve_dc(circuit)
            return AcSystem(circuit, op).transfer("b", freq)

        both = response(a1, a2)
        only1 = response(a1, 0.0)
        only2 = response(0.0, a2)
        assert both == pytest.approx(only1 + only2, rel=1e-9, abs=1e-15)

    @given(freq=st.floats(1.0, 1e8), scale=st.floats(0.1, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_homogeneity(self, freq, scale):
        def response(ac1):
            circuit = self._rc(ac1, 0.0)
            op = solve_dc(circuit)
            return AcSystem(circuit, op).transfer("b", freq)

        assert response(scale) == pytest.approx(scale * response(1.0),
                                                rel=1e-9)

    @given(freq=st.floats(10.0, 1e7))
    @settings(max_examples=25, deadline=None)
    def test_reciprocity_of_rc_twoport(self, freq):
        """For a reciprocal (RC) network, the transfer from a current
        injection at node A to the voltage at node B equals the transfer
        from B to A."""
        def transfer(inject, observe):
            c = Circuit("recip")
            c.isource("I1", "0", inject, dc=0.0, ac=1.0)
            c.resistor("R1", "x", "y", 1e3)
            c.resistor("R2", "x", "0", 5e3)
            c.resistor("R3", "y", "0", 2e3)
            c.capacitor("C1", "x", "0", 1e-9)
            c.capacitor("C2", "y", "0", 3e-9)
            op = solve_dc(c)
            return AcSystem(c, op).transfer(observe, freq)

        forward = transfer("x", "y")
        backward = transfer("y", "x")
        assert forward == pytest.approx(backward, rel=1e-9)

    @given(freq=st.floats(1.0, 1e9))
    @settings(max_examples=25, deadline=None)
    def test_rc_passivity(self, freq):
        """|H| of a passive divider never exceeds 1 at any frequency."""
        circuit = self._rc(1.0, 0.0)
        op = solve_dc(circuit)
        assert abs(AcSystem(circuit, op).transfer("b", freq)) <= 1.0 + 1e-9


class TestCrossAnalysisConsistency:
    @given(r=st.floats(100.0, 1e5), cap=st.floats(1e-12, 1e-7))
    @settings(max_examples=15, deadline=None)
    def test_transient_time_constant_matches_ac_pole(self, r, cap):
        """The 63 %-rise time of the step response equals 1/(2 pi f_pole)
        from the AC view — two engines, one network."""
        tau = r * cap
        circuit = Circuit("rc")
        circuit.vsource("V1", "in", "0", dc=0.0, ac=1.0,
                        waveform=step_waveform(0.0, 0.0, 1.0))
        circuit.resistor("R1", "in", "out", r)
        circuit.capacitor("C1", "out", "0", cap)
        # AC view.
        op = solve_dc(circuit)
        f_pole = 1.0 / (2 * math.pi * tau)
        h = AcSystem(circuit, op).transfer("out", f_pole)
        assert abs(h) == pytest.approx(1 / math.sqrt(2), rel=1e-3)
        # Transient view.
        result = solve_transient(circuit, t_stop=3 * tau, dt=tau / 400)
        v = result.voltage("out")
        k63 = int(np.searchsorted(v, 1.0 - math.exp(-1.0)))
        t63 = result.times[min(k63, len(v) - 1)]
        assert t63 == pytest.approx(tau, rel=0.02)

    def test_pmos_nmos_symmetry(self):
        """A PMOS circuit mirrored about VDD/ground behaves like its NMOS
        twin up to the parameter differences — with identical model cards
        the solutions are exact mirrors."""
        import dataclasses
        pmos_twin = dataclasses.replace(
            NMOS, name="ptwin", polarity=-1, vto=-NMOS.vto)
        vdd = 3.3

        n = Circuit("n")
        n.vsource("VDD", "vdd", "0", dc=vdd)
        n.vsource("VG", "g", "0", dc=1.0)
        n.resistor("RD", "vdd", "d", 10e3)
        n.mosfet("M1", "d", "g", "0", "0", NMOS, w=10e-6, l=1e-6)

        p = Circuit("p")
        p.vsource("VDD", "vdd", "0", dc=vdd)
        p.vsource("VG", "g", "0", dc=vdd - 1.0)
        p.resistor("RD", "d", "0", 10e3)
        p.mosfet("M1", "d", "g", "vdd", "vdd", pmos_twin, w=10e-6, l=1e-6)

        vn = solve_dc(n).voltage("d")
        vp = solve_dc(p).voltage("d")
        assert vp == pytest.approx(vdd - vn, abs=1e-6)
