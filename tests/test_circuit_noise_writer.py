"""Tests for the noise analysis and the netlist writer."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import (Circuit, parse_netlist, solve_dc, solve_noise,
                           write_netlist)
from repro.circuit.noise import (BOLTZMANN, input_referred_density)
from repro.pdk.generic035 import NMOS, PMOS
from repro.units import celsius_to_kelvin


class TestThermalNoise:
    def test_resistor_divider_matches_4ktr(self):
        """Two equal resistors from a stiff source: output noise is the
        parallel combination's 4kTR."""
        c = Circuit("divider")
        c.vsource("V1", "in", "0", dc=1.0)
        c.resistor("R1", "in", "out", 10e3)
        c.resistor("R2", "out", "0", 10e3)
        op = solve_dc(c)
        result = solve_noise(c, op, "out", [1e3], temp_c=27.0)
        r_parallel = 5e3
        expected = 4 * BOLTZMANN * celsius_to_kelvin(27.0) * r_parallel
        assert result.output_density[0] == pytest.approx(expected,
                                                         rel=1e-6)

    def test_noise_scales_with_temperature(self):
        c = Circuit("r")
        c.vsource("V1", "in", "0", dc=0.0)
        c.resistor("R1", "in", "out", 1e3)
        c.resistor("R2", "out", "0", 1e6)
        op = solve_dc(c)
        cold = solve_noise(c, op, "out", [1e3], temp_c=-40.0)
        hot = solve_noise(c, op, "out", [1e3], temp_c=125.0)
        ratio = hot.output_density[0] / cold.output_density[0]
        assert ratio == pytest.approx(
            celsius_to_kelvin(125.0) / celsius_to_kelvin(-40.0), rel=1e-9)

    def test_rc_filtered_noise_integrates_to_kt_over_c(self):
        """The classic kT/C: integrated output noise of an RC lowpass."""
        r, cap = 100e3, 1e-12
        c = Circuit("ktc")
        c.vsource("V1", "in", "0", dc=0.0)
        c.resistor("R1", "in", "out", r)
        c.capacitor("C1", "out", "0", cap)
        op = solve_dc(c)
        f_pole = 1.0 / (2 * math.pi * r * cap)
        freqs = np.linspace(1.0, 400 * f_pole, 6000)
        result = solve_noise(c, op, "out", freqs, temp_c=27.0)
        expected = math.sqrt(BOLTZMANN * celsius_to_kelvin(27.0) / cap)
        # Finite integration band captures ~97 % of kT/C.
        assert result.output_rms() == pytest.approx(expected, rel=0.05)

    def test_mos_channel_noise_present(self):
        c = Circuit("cs")
        c.vsource("VDD", "vdd", "0", dc=3.3)
        c.vsource("VG", "g", "0", dc=0.9)
        c.resistor("RD", "vdd", "d", 10e3)
        c.mosfet("M1", "d", "g", "0", "0", NMOS, w=10e-6, l=1e-6)
        op = solve_dc(c)
        result = solve_noise(c, op, "d", [1e6])
        devices = {e.device for e in result.contributions[0]
                   if e.density > 0}
        assert "M1" in devices and "RD" in devices

    def test_flicker_noise_dominates_at_low_frequency(self):
        c = Circuit("cs")
        c.vsource("VDD", "vdd", "0", dc=3.3)
        c.vsource("VG", "g", "0", dc=0.9)
        c.resistor("RD", "vdd", "d", 10e3)
        c.mosfet("M1", "d", "g", "0", "0", NMOS, w=10e-6, l=1e-6)
        op = solve_dc(c)
        result = solve_noise(c, op, "d", [1.0, 1e7])
        def flicker_fraction(index):
            total = result.output_density[index]
            flicker = sum(e.density for e in result.contributions[index]
                          if e.kind == "flicker")
            return flicker / total
        assert flicker_fraction(0) > 0.5
        assert flicker_fraction(1) < 0.1

    def test_flicker_scales_inversely_with_area(self):
        def flicker_at_1hz(w):
            c = Circuit("cs")
            c.vsource("VDD", "vdd", "0", dc=3.3)
            c.isource("IB", "vdd", "d", dc=50e-6)
            c.mosfet("M1", "d", "d", "0", "0", NMOS, w=w, l=1e-6)
            op = solve_dc(c)
            result = solve_noise(c, op, "d", [1.0])
            return sum(e.density for e in result.contributions[0]
                       if e.kind == "flicker")
        small = flicker_at_1hz(10e-6)
        large = flicker_at_1hz(40e-6)
        # gm^2/area: gm ~ sqrt(W), area ~ W -> flicker independent-ish of
        # W at fixed current... but the transfer (1/gm^2 at a diode node)
        # scales it down; overall the larger device must be quieter.
        assert large < small

    def test_input_referred(self):
        c = Circuit("r")
        c.vsource("V1", "in", "0", dc=0.0)
        c.resistor("R1", "in", "out", 1e3)
        c.resistor("R2", "out", "0", 1e6)
        op = solve_dc(c)
        noise = solve_noise(c, op, "out", [1e3])
        referred = input_referred_density(noise, gain=10.0)
        assert referred[0] == pytest.approx(noise.output_density[0] / 100)
        with pytest.raises(ValueError):
            input_referred_density(noise, gain=0.0)

    def test_dominant_device(self):
        c = Circuit("dom")
        c.vsource("V1", "in", "0", dc=0.0)
        c.resistor("RBIG", "in", "out", 1e6)
        c.resistor("RSMALL", "out", "0", 1e2)
        op = solve_dc(c)
        noise = solve_noise(c, op, "out", [1e3])
        # The small resistor shunts the node: the big one's current noise
        # sees ~R_small^2 transfer but has tiny density ~1/R_big... the
        # small resistor dominates.
        assert noise.dominant_device(0) == "RSMALL"


class TestNetlistWriter:
    def _rc(self):
        c = Circuit("rc bench")
        c.vsource("V1", "in", "0", dc=2.0, ac=1.0)
        c.resistor("R1", "in", "out", 4.7e3)
        c.capacitor("C1", "out", "0", 10e-9)
        return c

    def test_roundtrip_preserves_dc(self):
        original = self._rc()
        text = write_netlist(original)
        parsed = parse_netlist(text)
        assert solve_dc(parsed).voltage("out") == pytest.approx(
            solve_dc(original).voltage("out"), rel=1e-12)

    def test_roundtrip_preserves_title_and_devices(self):
        parsed = parse_netlist(write_netlist(self._rc()))
        assert parsed.title == "rc bench"
        assert {d.name for d in parsed.devices} == {"V1", "R1", "C1"}

    def test_mosfet_roundtrip(self):
        c = Circuit("mos")
        c.vsource("VDD", "vdd", "0", dc=3.3)
        c.vsource("VG", "g", "0", dc=1.0)
        c.resistor("RD", "vdd", "d", 10e3)
        c.mosfet("M1", "d", "g", "0", "0", NMOS, w=12e-6, l=0.7e-6, m=2)
        parsed = parse_netlist(write_netlist(c))
        m1 = parsed.device("M1")
        assert m1.w == pytest.approx(12e-6)
        assert m1.l == pytest.approx(0.7e-6)
        assert m1.m == 2
        assert solve_dc(parsed).voltage("d") == pytest.approx(
            solve_dc(c).voltage("d"), rel=1e-9)

    def test_statistical_perturbations_are_baked_in(self):
        c = Circuit("mos")
        c.vsource("VDD", "vdd", "0", dc=3.3)
        c.vsource("VG", "g", "0", dc=1.0)
        c.resistor("RD", "vdd", "d", 10e3)
        c.mosfet("M1", "d", "g", "0", "0", NMOS, w=12e-6, l=1e-6,
                 delta_vto=0.02, beta_factor=1.05)
        parsed = parse_netlist(write_netlist(c))
        assert solve_dc(parsed).voltage("d") == pytest.approx(
            solve_dc(c).voltage("d"), rel=1e-6)

    def test_controlled_sources_roundtrip(self):
        c = Circuit("ctl")
        c.vsource("V1", "a", "0", dc=1.0)
        c.resistor("RL", "b", "0", 1e3)
        c.vcvs("E1", "b", "0", "a", "0", 2.5)
        c.vccs("G1", "0", "cnode", "a", "0", 1e-3)
        c.resistor("RC", "cnode", "0", 1e3)
        parsed = parse_netlist(write_netlist(c))
        assert solve_dc(parsed).voltage("b") == pytest.approx(2.5, rel=1e-9)
        assert solve_dc(parsed).voltage("cnode") == pytest.approx(1.0,
                                                                  rel=1e-9)

    @given(r=st.floats(1.0, 1e9), cap=st.floats(1e-15, 1e-3),
           dc=st.floats(-10, 10))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, r, cap, dc):
        c = Circuit("prop")
        c.vsource("V1", "in", "0", dc=dc)
        c.resistor("R1", "in", "out", r)
        c.capacitor("C1", "out", "0", cap)
        c.resistor("R2", "out", "0", r)
        parsed = parse_netlist(write_netlist(c))
        assert parsed.device("R1").resistance == pytest.approx(r, rel=1e-9)
        assert parsed.device("C1").capacitance == pytest.approx(cap,
                                                                rel=1e-9)
        assert parsed.device("V1").dc == pytest.approx(dc, abs=1e-12)

    def test_miller_opamp_roundtrips(self):
        """The full benchmark circuit survives a write/parse cycle."""
        from repro.circuits import MillerOpamp
        template = MillerOpamp()
        d = template.initial_design()
        pv = template.statistical_space.to_physical(
            d, template.statistical_space.nominal())
        circuit = template.build(d, pv, template.operating_range.nominal())
        parsed = parse_netlist(write_netlist(circuit))
        assert solve_dc(parsed).voltage("out") == pytest.approx(
            solve_dc(circuit).voltage("out"), rel=1e-6)
