"""Unit tests for the level-1 MOS model (repro.circuit.mos)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.mos import (DEFAULT_SMOOTHING_V, MosModel, evaluate_nmos,
                               intrinsic_capacitances, _softplus)
from repro.pdk.generic035 import NMOS, PMOS

W, L = 10e-6, 1e-6


def fd_gradient(model, w, l, vgs, vds, vbs, step=1e-7):
    """Central finite differences of the drain current."""
    def ids(vg, vd, vb):
        return evaluate_nmos(model, w, l, vg, vd, vb).ids
    gm = (ids(vgs + step, vds, vbs) - ids(vgs - step, vds, vbs)) / (2 * step)
    gds = (ids(vgs, vds + step, vbs) - ids(vgs, vds - step, vbs)) / (2 * step)
    gmb = (ids(vgs, vds, vbs + step) - ids(vgs, vds, vbs - step)) / (2 * step)
    return gm, gds, gmb


class TestRegions:
    def test_saturation_current_matches_square_law(self):
        ev = evaluate_nmos(NMOS, W, L, 1.0, 2.0, 0.0)
        assert ev.region == "saturation"
        vov = 1.0 - NMOS.vto
        lam = NMOS.lambda_ / (L * 1e6)
        expected = 0.5 * NMOS.kp * (W / L) * vov**2 * (1 + lam * 2.0)
        assert ev.ids == pytest.approx(expected, rel=1e-3)

    def test_triode_current_matches_square_law(self):
        ev = evaluate_nmos(NMOS, W, L, 1.5, 0.2, 0.0)
        assert ev.region == "triode"
        vov = 1.5 - NMOS.vto
        lam = NMOS.lambda_ / (L * 1e6)
        expected = NMOS.kp * (W / L) * (vov - 0.1) * 0.2 * (1 + lam * 0.2)
        assert ev.ids == pytest.approx(expected, rel=1e-3)

    def test_cutoff_current_is_negligible(self):
        ev = evaluate_nmos(NMOS, W, L, 0.2, 2.0, 0.0)
        assert ev.region == "cutoff"
        assert ev.ids < 1e-9

    def test_vdsat_equals_smoothed_overdrive(self):
        ev = evaluate_nmos(NMOS, W, L, 1.2, 2.0, 0.0)
        assert ev.vdsat == pytest.approx(1.2 - NMOS.vto, abs=2e-3)

    def test_region_boundary_continuity(self):
        """Current is continuous across the triode/saturation boundary."""
        vov = 1.0 - NMOS.vto
        below = evaluate_nmos(NMOS, W, L, 1.0, vov - 1e-9, 0.0).ids
        above = evaluate_nmos(NMOS, W, L, 1.0, vov + 1e-9, 0.0).ids
        assert below == pytest.approx(above, rel=1e-6)


class TestDerivatives:
    @pytest.mark.parametrize("vgs,vds,vbs", [
        (1.0, 2.0, 0.0),    # saturation
        (1.5, 0.2, 0.0),    # triode
        (0.45, 1.0, 0.0),   # near threshold
        (1.0, 2.0, -0.5),   # body bias
        (0.2, 2.0, 0.0),    # cutoff
    ])
    def test_analytic_matches_finite_difference(self, vgs, vds, vbs):
        ev = evaluate_nmos(NMOS, W, L, vgs, vds, vbs)
        gm, gds, gmb = fd_gradient(NMOS, W, L, vgs, vds, vbs)
        scale = max(abs(ev.gm), 1e-9)
        assert ev.gm == pytest.approx(gm, rel=1e-3, abs=1e-3 * scale)
        assert ev.gds == pytest.approx(gds, rel=1e-3, abs=1e-3 * scale)
        assert ev.gmb == pytest.approx(gmb, rel=1e-2, abs=1e-3 * scale)

    @given(vgs=st.floats(-0.5, 2.5), vds=st.floats(0.0, 3.3))
    @settings(max_examples=60, deadline=None)
    def test_gm_never_negative(self, vgs, vds):
        ev = evaluate_nmos(NMOS, W, L, vgs, vds, 0.0)
        assert ev.gm >= 0.0
        assert ev.ids >= 0.0


class TestBodyEffect:
    def test_reverse_body_bias_raises_threshold(self):
        base = evaluate_nmos(NMOS, W, L, 1.0, 2.0, 0.0)
        biased = evaluate_nmos(NMOS, W, L, 1.0, 2.0, -1.0)
        assert biased.vth > base.vth
        assert biased.ids < base.ids

    def test_forward_bias_clamp_is_finite(self):
        ev = evaluate_nmos(NMOS, W, L, 1.0, 2.0, +2.0)
        assert math.isfinite(ev.ids)
        assert math.isfinite(ev.gmb)


class TestTemperature:
    def test_threshold_drops_with_temperature_nmos(self):
        hot = NMOS.at_temperature(125.0)
        assert hot.vto < NMOS.vto

    def test_threshold_magnitude_drops_with_temperature_pmos(self):
        hot = PMOS.at_temperature(125.0)
        assert abs(hot.vto) < abs(PMOS.vto)

    def test_mobility_drops_with_temperature(self):
        hot = NMOS.at_temperature(125.0)
        assert hot.kp < NMOS.kp

    def test_nominal_temperature_is_identity(self):
        assert NMOS.at_temperature(27.0) is NMOS


class TestPerturbations:
    def test_delta_vto_weakens_nmos(self):
        shifted = NMOS.perturbed(delta_vto=0.05)
        base = evaluate_nmos(NMOS, W, L, 1.0, 2.0, 0.0).ids
        weak = evaluate_nmos(shifted, W, L, 1.0, 2.0, 0.0).ids
        assert weak < base

    def test_delta_vto_weakens_pmos_too(self):
        """Positive delta_vto must weaken either polarity (it shifts the
        threshold magnitude)."""
        shifted = PMOS.perturbed(delta_vto=0.05)
        base = evaluate_nmos(PMOS, W, L, 1.2, 2.0, 0.0).ids
        weak = evaluate_nmos(shifted, W, L, 1.2, 2.0, 0.0).ids
        assert weak < base

    def test_beta_factor_scales_current(self):
        scaled = NMOS.perturbed(beta_factor=1.1)
        base = evaluate_nmos(NMOS, W, L, 1.0, 2.0, 0.0).ids
        more = evaluate_nmos(scaled, W, L, 1.0, 2.0, 0.0).ids
        assert more == pytest.approx(1.1 * base, rel=1e-9)

    def test_no_perturbation_is_identity(self):
        assert NMOS.perturbed() is NMOS


class TestSoftplus:
    @given(x=st.floats(-0.5, 0.5))
    @settings(max_examples=50, deadline=None)
    def test_value_above_relu(self, x):
        value, _ = _softplus(x, DEFAULT_SMOOTHING_V)
        assert value >= max(x, 0.0) - 1e-15

    def test_extremes_do_not_overflow(self):
        value, slope = _softplus(500.0, DEFAULT_SMOOTHING_V)
        assert value == pytest.approx(500.0)
        assert slope == pytest.approx(1.0)
        value, slope = _softplus(-500.0, DEFAULT_SMOOTHING_V)
        assert value >= 0.0
        assert slope >= 0.0

    @given(x=st.floats(-0.3, 0.3))
    @settings(max_examples=50, deadline=None)
    def test_derivative_matches_fd(self, x):
        step = 1e-8
        hi, _ = _softplus(x + step, DEFAULT_SMOOTHING_V)
        lo, _ = _softplus(x - step, DEFAULT_SMOOTHING_V)
        _, slope = _softplus(x, DEFAULT_SMOOTHING_V)
        assert slope == pytest.approx((hi - lo) / (2 * step), abs=1e-4)


class TestCapacitances:
    def test_saturation_partition(self):
        cgs, cgd, cdb, csb = intrinsic_capacitances(NMOS, W, L, "saturation")
        channel = NMOS.cox * W * L
        assert cgs == pytest.approx(2 / 3 * channel + NMOS.cgso * W)
        assert cgd == pytest.approx(NMOS.cgdo * W)
        assert cdb == csb > 0

    def test_triode_splits_evenly(self):
        cgs, cgd, _, _ = intrinsic_capacitances(NMOS, W, L, "triode")
        assert cgs == pytest.approx(cgd, rel=0.25)  # overlaps differ only

    def test_cutoff_keeps_overlaps_only(self):
        cgs, cgd, _, _ = intrinsic_capacitances(NMOS, W, L, "cutoff")
        assert cgs == pytest.approx(NMOS.cgso * W)
        assert cgd == pytest.approx(NMOS.cgdo * W)

    def test_capacitance_scales_with_area(self):
        small = intrinsic_capacitances(NMOS, W, L, "saturation")[0]
        large = intrinsic_capacitances(NMOS, 2 * W, L, "saturation")[0]
        assert large > small
