"""Unit tests for the linearized-model yield estimator (Eq. 17-20)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimator import LinearizedYieldEstimator
from repro.core.linear_model import SpecLinearModel
from repro.errors import ReproError
from repro.spec import Spec
from repro.statistics import SampleSet

THETA = {"temp": 27.0}


def make_model(grad_s, grad_d, g_ref=0.0, s_ref=None, bound=0.0,
               key="f>=", kind=">=", d_ref=None, mirror=False):
    grad_s = np.asarray(grad_s, dtype=float)
    return SpecLinearModel(
        spec=Spec(key.rstrip("<>="), kind, bound), key=key, theta=THETA,
        s_ref=np.zeros_like(grad_s) if s_ref is None else np.asarray(s_ref),
        g_ref=g_ref, grad_s=grad_s,
        grad_d=dict(grad_d), d_ref=d_ref or {"d0": 0.0},
        is_mirror=mirror)


def brute_force_yield(models, samples, d):
    count = 0
    for s in samples.matrix:
        if all(m.margin(d, s) >= 0 for m in models):
            count += 1
    return count / samples.n


class TestYieldEstimate:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        models = [
            make_model([1.0, 0.2], {"d0": 1.0}, g_ref=0.8, key="a>="),
            make_model([-0.5, 1.0], {"d0": -2.0}, g_ref=0.3, key="b>="),
        ]
        samples = SampleSet.draw(2000, 2, seed=1)
        est = LinearizedYieldEstimator(models, samples)
        for _ in range(5):
            d = {"d0": rng.uniform(-1, 1)}
            assert est.yield_estimate(d) == pytest.approx(
                brute_force_yield(models, samples, d), abs=1e-12)

    def test_gaussian_closed_form(self):
        """One model margin = mu + g.s: yield = Phi(mu/||g||)."""
        from scipy.stats import norm
        mu, g = 0.7, np.array([0.6, 0.8])
        model = make_model(g, {"d0": 0.0}, g_ref=mu)
        samples = SampleSet.draw(60000, 2, seed=2)
        est = LinearizedYieldEstimator([model], samples)
        assert est.yield_estimate({"d0": 0.0}) == pytest.approx(
            norm.cdf(mu / np.linalg.norm(g)), abs=0.01)

    def test_design_shift_moves_yield(self):
        model = make_model([1.0, 0.0], {"d0": 1.0}, g_ref=0.0)
        samples = SampleSet.draw(5000, 2, seed=3)
        est = LinearizedYieldEstimator([model], samples)
        y0 = est.yield_estimate({"d0": 0.0})
        y_hi = est.yield_estimate({"d0": 3.0})
        y_lo = est.yield_estimate({"d0": -3.0})
        assert y_lo < y0 < y_hi
        assert y0 == pytest.approx(0.5, abs=0.03)

    def test_empty_models_rejected(self):
        with pytest.raises(ReproError):
            LinearizedYieldEstimator([], SampleSet.draw(10, 2, seed=0))


class TestBadSamples:
    def test_per_model_fractions(self):
        model_easy = make_model([1.0, 0.0], {"d0": 0.0}, g_ref=10.0,
                                key="easy>=")
        model_coin = make_model([1.0, 0.0], {"d0": 0.0}, g_ref=0.0,
                                key="coin>=")
        samples = SampleSet.draw(20000, 2, seed=4)
        est = LinearizedYieldEstimator([model_easy, model_coin], samples)
        bad = est.bad_sample_fraction({"d0": 0.0})
        assert bad["easy>="] == pytest.approx(0.0, abs=1e-4)
        assert bad["coin>="] == pytest.approx(0.5, abs=0.02)

    def test_mirror_folded_into_primary(self):
        primary = make_model([1.0, 0.0], {"d0": 0.0}, g_ref=1.0, key="f>=")
        mirror = make_model([-1.0, 0.0], {"d0": 0.0}, g_ref=1.0,
                            key="f>=#mirror", mirror=True)
        samples = SampleSet.draw(20000, 2, seed=5)
        est = LinearizedYieldEstimator([primary, mirror], samples)
        bad = est.bad_samples_per_spec({"d0": 0.0})
        assert set(bad) == {"f>="}
        # pass region: |s0| <= 1 -> fail fraction = 2*(1-Phi(1)) ~ 0.317
        assert bad["f>="] == pytest.approx(0.317, abs=0.02)


class TestCoordinateMaximization:
    def _grid_maximum(self, est, d, name, lo, hi, n=20001):
        best_y, best_x = -1.0, None
        for x in np.linspace(lo, hi, n):
            probe = dict(d)
            probe[name] = x
            y = est.yield_estimate(probe)
            if y > best_y:
                best_y, best_x = y, x
        return best_y, best_x

    def test_exact_maximum_matches_dense_grid(self):
        rng = np.random.default_rng(6)
        models = [
            make_model(rng.standard_normal(2), {"d0": 1.0, "d1": 0.3},
                       g_ref=0.5, key="a>="),
            make_model(rng.standard_normal(2), {"d0": -1.2, "d1": 0.1},
                       g_ref=0.7, key="b>="),
            make_model(rng.standard_normal(2), {"d0": 0.4, "d1": -0.9},
                       g_ref=0.6, key="c>="),
        ]
        for m in models:
            m.d_ref = {"d0": 0.0, "d1": 0.0}
        samples = SampleSet.draw(300, 2, seed=7)
        est = LinearizedYieldEstimator(models, samples)
        d = {"d0": 0.1, "d1": -0.2}
        result = est.maximize_coordinate(d, "d0", -2.0, 2.0)
        grid_y, _ = self._grid_maximum(est, d, "d0", -2.0, 2.0)
        assert result.yield_estimate == pytest.approx(grid_y, abs=1e-9)
        probe = dict(d)
        probe["d0"] = result.value
        assert est.yield_estimate(probe) == pytest.approx(
            result.yield_estimate, abs=1e-12)

    @given(seed=st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_exact_maximum_never_below_grid(self, seed):
        """Property: the sweep maximum dominates any grid probe."""
        rng = np.random.default_rng(seed)
        models = [
            make_model(rng.standard_normal(2),
                       {"d0": float(rng.standard_normal())},
                       g_ref=float(rng.uniform(-0.5, 1.0)),
                       key=f"m{i}>=")
            for i in range(3)
        ]
        samples = SampleSet.draw(200, 2, seed=seed + 1)
        est = LinearizedYieldEstimator(models, samples)
        d = {"d0": 0.0}
        result = est.maximize_coordinate(d, "d0", -3.0, 3.0)
        for x in np.linspace(-3.0, 3.0, 301):
            assert result.yield_estimate >= \
                est.yield_estimate({"d0": float(x)}) - 1e-12

    def test_ties_broken_toward_current_value(self):
        # Flat model: every x passes everything -> stay put.
        model = make_model([0.1, 0.0], {"d0": 0.0}, g_ref=100.0)
        samples = SampleSet.draw(100, 2, seed=8)
        est = LinearizedYieldEstimator([model], samples)
        result = est.maximize_coordinate({"d0": 0.3}, "d0", -1.0, 1.0)
        assert result.value == pytest.approx(0.3)
        assert result.yield_estimate == 1.0

    def test_all_fail_returns_zero(self):
        model = make_model([0.0, 0.1], {"d0": 0.0}, g_ref=-100.0)
        samples = SampleSet.draw(100, 2, seed=9)
        est = LinearizedYieldEstimator([model], samples)
        result = est.maximize_coordinate({"d0": 0.0}, "d0", -1.0, 1.0)
        assert result.yield_estimate == 0.0

    def test_empty_range_rejected(self):
        model = make_model([1.0, 0.0], {"d0": 1.0})
        est = LinearizedYieldEstimator([model], SampleSet.draw(10, 2,
                                                               seed=0))
        with pytest.raises(ReproError):
            est.maximize_coordinate({"d0": 0.0}, "d0", 1.0, -1.0)

    def test_incremental_update_equals_full_recompute(self):
        """Eq. 20: the stored statistical part plus the scalar design shift
        reproduces a full model evaluation for every sample."""
        rng = np.random.default_rng(10)
        model = make_model(rng.standard_normal(3),
                           {"d0": 1.5, "d1": -0.7},
                           g_ref=0.4, s_ref=rng.standard_normal(3),
                           d_ref={"d0": 0.2, "d1": -0.1})
        samples = SampleSet.draw(500, 3, seed=11)
        est = LinearizedYieldEstimator([model], samples)
        d = {"d0": 1.0, "d1": 0.5}
        margins = est.margins(d)[:, 0]
        for j in (0, 17, 123, 499):
            assert margins[j] == pytest.approx(
                model.margin(d, samples[j]), abs=1e-12)
