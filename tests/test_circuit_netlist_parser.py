"""Unit tests for the circuit container and the SPICE-style parser."""

import pytest

from repro.circuit import Circuit, parse_netlist, solve_dc
from repro.circuit.netlist import is_ground
from repro.errors import NetlistError, ParseError
from repro.pdk.generic035 import NMOS


class TestCircuitContainer:
    def test_duplicate_device_name_rejected(self):
        c = Circuit("dup")
        c.resistor("R1", "a", "0", 1e3)
        with pytest.raises(NetlistError):
            c.resistor("R1", "a", "b", 2e3)

    def test_device_lookup(self):
        c = Circuit("lookup")
        r = c.resistor("R1", "a", "0", 1e3)
        assert c.device("R1") is r
        assert "R1" in c
        with pytest.raises(NetlistError):
            c.device("R2")

    def test_ground_aliases(self):
        assert is_ground("0")
        assert is_ground("gnd")
        assert is_ground("GND")
        assert not is_ground("out")

    def test_node_names_in_first_use_order(self):
        c = Circuit("order")
        c.vsource("V1", "in", "0", dc=1.0)
        c.resistor("R1", "in", "mid", 1e3)
        c.resistor("R2", "mid", "out", 1e3)
        c.resistor("R3", "out", "0", 1e3)
        assert c.node_names == ("in", "mid", "out")

    def test_validate_catches_missing_ground(self):
        c = Circuit("floating")
        c.resistor("R1", "a", "b", 1e3)
        c.resistor("R2", "b", "a", 1e3)
        with pytest.raises(NetlistError, match="ground"):
            c.validate()

    def test_validate_catches_dangling_node(self):
        c = Circuit("dangling")
        c.vsource("V1", "a", "0", dc=1.0)
        c.resistor("R1", "a", "b", 1e3)  # b connects to nothing else
        with pytest.raises(NetlistError, match="single"):
            c.validate()

    def test_validate_accepts_good_circuit(self):
        c = Circuit("ok")
        c.vsource("V1", "a", "0", dc=1.0)
        c.resistor("R1", "a", "0", 1e3)
        c.validate()

    def test_invalid_component_values_rejected(self):
        c = Circuit("bad")
        with pytest.raises(NetlistError):
            c.resistor("R1", "a", "0", -5.0)
        with pytest.raises(NetlistError):
            c.capacitor("C1", "a", "0", -1e-12)
        with pytest.raises(NetlistError):
            c.inductor("L1", "a", "0", 0.0)
        with pytest.raises(NetlistError):
            c.mosfet("M1", "d", "g", "s", "b", NMOS, w=-1e-6, l=1e-6)
        with pytest.raises(NetlistError):
            c.mosfet("M2", "d", "g", "s", "b", NMOS, w=1e-6, l=1e-6, m=0)


DIVIDER = """* resistive divider
V1 in 0 DC 2.0
R1 in out 1k
R2 out 0 1k
.end
"""


class TestParser:
    def test_divider_parses_and_solves(self):
        circuit = parse_netlist(DIVIDER)
        result = solve_dc(circuit)
        assert result.voltage("out") == pytest.approx(1.0, abs=1e-6)

    def test_title_line(self):
        circuit = parse_netlist("my title\nR1 a 0 1k\nV1 a 0 1\n")
        assert circuit.title == "my title"

    def test_continuation_lines(self):
        text = "V1 in 0\n+ DC 2.0\nR1 in 0 1k\n"
        circuit = parse_netlist(text)
        assert solve_dc(circuit).voltage("in") == pytest.approx(2.0)

    def test_end_of_line_comments(self):
        circuit = parse_netlist("R1 a 0 1k ; load\nV1 a 0 1 ; source\n")
        assert len(circuit) == 2

    def test_si_suffixes(self):
        circuit = parse_netlist(
            "V1 a 0 1\nR1 a b 4.7k\nC1 b 0 10u\nL1 b 0 2m\n")
        assert circuit.device("R1").resistance == pytest.approx(4700.0)
        assert circuit.device("C1").capacitance == pytest.approx(10e-6)
        assert circuit.device("L1").inductance == pytest.approx(2e-3)

    def test_model_card_and_mosfet(self):
        text = """
.model mynmos nmos (vto=0.6 kp=150u lambda=0.05)
VDD vdd 0 3.3
VG g 0 1.2
RD vdd d 10k
M1 d g 0 0 mynmos W=20u L=2u
"""
        circuit = parse_netlist(text, title="cs")
        m1 = circuit.device("M1")
        assert m1.model.vto == pytest.approx(0.6)
        assert m1.w == pytest.approx(20e-6)
        assert m1.l == pytest.approx(2e-6)
        result = solve_dc(circuit)
        assert 0.0 < result.voltage("d") < 3.3

    def test_model_before_or_after_element(self):
        text = ("M1 d g 0 0 n1 W=10u L=1u\n"
                "VD d 0 1\nVG g 0 1\n"
                ".model n1 nmos (vto=0.5 kp=100u)\n")
        circuit = parse_netlist(text, title="")
        assert circuit.device("M1").model.kp == pytest.approx(100e-6)

    def test_controlled_sources(self):
        text = ("V1 a 0 1\nRL b 0 1k\nE1 b 0 a 0 2.0\n"
                "G1 0 c a 0 1m\nRC c 0 1k\n")
        circuit = parse_netlist(text, title="")
        result = solve_dc(circuit)
        assert result.voltage("b") == pytest.approx(2.0, rel=1e-6)
        assert result.voltage("c") == pytest.approx(1.0, rel=1e-6)

    def test_ac_values(self):
        circuit = parse_netlist("V1 a 0 DC 1 AC 0.5\nR1 a 0 1k\n", title="")
        assert circuit.device("V1").dc == pytest.approx(1.0)
        assert circuit.device("V1").ac == pytest.approx(0.5)

    # -- error paths ------------------------------------------------------
    def test_unknown_model_rejected(self):
        with pytest.raises(ParseError, match="unknown model"):
            parse_netlist("M1 d g 0 0 ghost W=1u L=1u\n", title="")

    def test_unknown_card_rejected(self):
        with pytest.raises(ParseError, match="unsupported card"):
            parse_netlist(".tran 1n 1u\nR1 a 0 1k\n", title="")

    def test_unknown_model_parameter_rejected(self):
        with pytest.raises(ParseError, match="unknown model parameter"):
            parse_netlist(".model x nmos (banana=1)\n", title="")

    def test_bad_model_type_rejected(self):
        with pytest.raises(ParseError, match="model type"):
            parse_netlist(".model x jfet (vto=1)\n", title="")

    def test_too_few_tokens_reports_line(self):
        with pytest.raises(ParseError) as excinfo:
            parse_netlist("R1 a 0\n", title="")
        assert excinfo.value.line_number == 1

    def test_orphan_continuation_rejected(self):
        with pytest.raises(ParseError, match="continuation"):
            parse_netlist("+ R1 a 0 1k\n", title="")

    def test_empty_netlist_rejected(self):
        with pytest.raises(ParseError, match="empty"):
            parse_netlist("* only comments\n")
