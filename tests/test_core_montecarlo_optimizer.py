"""Unit tests for the Monte-Carlo verifier and the full optimizer loop on
analytic templates (fast, closed-form ground truth)."""

import numpy as np
import pytest
from scipy.stats import norm

from helpers import LinearTemplate, tiny_process
from repro.core.montecarlo import operational_monte_carlo
from repro.core.optimizer import (OptimizerConfig, OptimizationResult,
                                  YieldOptimizer)
from repro.evaluation import Evaluator
from repro.evaluation.template import CircuitTemplate, DesignParameter
from repro.spec import OperatingParameter, OperatingRange, Spec
from repro.spec.specification import Performance
from repro.statistics import SampleSet, StatisticalSpace

THETA = {"temp": 27.0}


class TwoSpecTemplate(CircuitTemplate):
    """Two affine performances with a design trade-off and one constraint.

    f1 = d0 + s0           (spec f1 >= 0: improves with d0)
    f2 = 4 - d0 + 0.5 s1   (spec f2 >= 0: degrades with d0)
    c0 = 2 - d0            (feasibility: d0 <= 2)

    With s ~ N(0, I): yield(d0) = Phi(d0) * Phi((4 - d0) / 0.5), which
    increases up to d0 ~ 2.6; the feasibility constraint caps the search
    at d0 = 2, so the constrained optimum is the constraint boundary.
    """

    name = "two-spec-fake"

    def __init__(self):
        space = StatisticalSpace(tiny_process(2), with_global=True)
        super().__init__(
            [DesignParameter("d0", -5.0, 5.0, 0.0)],
            [Performance("f1"), Performance("f2")],
            [Spec("f1", ">=", 0.0), Spec("f2", ">=", 0.0)],
            OperatingRange([OperatingParameter("temp", 0.0, 100.0, 27.0)]),
            space,
            ["c0"],
        )

    def evaluate(self, d, s_hat, theta):
        s_hat = np.asarray(s_hat)
        return {"f1": d["d0"] + s_hat[0],
                "f2": 4.0 - d["d0"] + 0.5 * s_hat[1]}

    def constraints(self, d, theta=None):
        return {"c0": 2.0 - d["d0"]}

    def true_yield(self, d0):
        return norm.cdf(d0) * norm.cdf((4.0 - d0) / 0.5)


class TestOperationalMonteCarlo:
    def test_yield_matches_closed_form(self):
        t = TwoSpecTemplate()
        ev = Evaluator(t)
        theta_map = {"f1>=": THETA, "f2>=": THETA}
        result = operational_monte_carlo(ev, {"d0": 1.0}, theta_map,
                                         n_samples=4000, seed=1)
        assert result.yield_estimate == pytest.approx(
            t.true_yield(1.0), abs=0.02)

    def test_bad_fractions_per_spec(self):
        t = TwoSpecTemplate()
        ev = Evaluator(t)
        theta_map = {"f1>=": THETA, "f2>=": THETA}
        result = operational_monte_carlo(ev, {"d0": 0.0}, theta_map,
                                         n_samples=4000, seed=2)
        assert result.bad_fraction["f1>="] == pytest.approx(0.5, abs=0.03)
        assert result.bad_fraction["f2>="] == pytest.approx(0.0, abs=1e-3)

    def test_shared_theta_shares_simulations(self):
        t = TwoSpecTemplate()
        ev = Evaluator(t, cache=False)
        theta_map = {"f1>=": THETA, "f2>=": THETA}  # same corner
        result = operational_monte_carlo(ev, {"d0": 1.0}, theta_map,
                                         n_samples=100, seed=3)
        assert result.simulations == 100  # one run covers both specs

    def test_distinct_thetas_cost_more(self):
        t = TwoSpecTemplate()
        ev = Evaluator(t, cache=False)
        theta_map = {"f1>=": {"temp": 0.0}, "f2>=": {"temp": 100.0}}
        result = operational_monte_carlo(ev, {"d0": 1.0}, theta_map,
                                         n_samples=100, seed=4)
        assert result.simulations == 200

    def test_performance_statistics_recorded(self):
        t = TwoSpecTemplate()
        ev = Evaluator(t)
        theta_map = {"f1>=": THETA, "f2>=": THETA}
        result = operational_monte_carlo(ev, {"d0": 1.5}, theta_map,
                                         n_samples=3000, seed=5)
        assert result.performance_mean["f1>="] == pytest.approx(1.5,
                                                                abs=0.05)
        assert result.performance_std["f1>="] == pytest.approx(1.0,
                                                               abs=0.05)
        assert result.performance_std["f2>="] == pytest.approx(0.5,
                                                               abs=0.03)

    def test_reused_sample_set(self):
        t = TwoSpecTemplate()
        ev = Evaluator(t)
        theta_map = {"f1>=": THETA, "f2>=": THETA}
        samples = SampleSet.draw(500, 2, seed=6)
        a = operational_monte_carlo(ev, {"d0": 1.0}, theta_map,
                                    samples=samples)
        b = operational_monte_carlo(ev, {"d0": 1.0}, theta_map,
                                    samples=samples)
        assert a.yield_estimate == b.yield_estimate

    def test_standard_error(self):
        t = TwoSpecTemplate()
        ev = Evaluator(t)
        theta_map = {"f1>=": THETA, "f2>=": THETA}
        result = operational_monte_carlo(ev, {"d0": 2.0}, theta_map,
                                         n_samples=300, seed=7)
        assert 0.0 <= result.standard_error <= 0.05


class TestOptimizerOnAnalyticTemplate:
    def _config(self, **overrides):
        base = dict(n_samples_linear=4000, n_samples_verify=500,
                    max_iterations=6, seed=11, trust_radius=0.0,
                    multistart=1)
        base.update(overrides)
        return OptimizerConfig(**base)

    def test_reaches_near_optimal_yield(self):
        t = TwoSpecTemplate()
        result = YieldOptimizer(t, self._config()).run()
        best = max(t.true_yield(d0) for d0 in np.linspace(-5, 2, 200))
        assert result.final.yield_mc >= best - 0.03
        # The constrained optimum is the constraint boundary d0 = 2.
        assert 1.5 < result.d_final["d0"] <= 2.0 + 1e-9

    def test_records_structure(self):
        t = TwoSpecTemplate()
        result = YieldOptimizer(t, self._config(max_iterations=2)).run()
        assert result.records[0].index == 0
        assert result.records[0].gamma is None
        assert result.records[1].gamma is not None
        assert set(result.records[0].margins) == {"f1>=", "f2>="}
        assert result.total_simulations > 0
        assert result.final is result.records[-1]
        assert result.initial is result.records[0]

    def test_linear_estimate_tracks_true_yield(self):
        """Sec. 5.2 claim: the linearized estimate is within 1-2 % of the
        Monte-Carlo yield (exact here because the template is affine)."""
        t = TwoSpecTemplate()
        result = YieldOptimizer(t, self._config(max_iterations=3)).run()
        for record in result.records:
            if record.yield_mc is not None:
                assert record.yield_linear == pytest.approx(
                    record.yield_mc, abs=0.04)

    def test_constraint_respected(self):
        t = TwoSpecTemplate()
        result = YieldOptimizer(t, self._config()).run()
        assert result.d_final["d0"] <= 2.0 + 1e-6

    def test_no_constraints_ablation_ignores_feasibility(self):
        """Table 3 mechanics: without constraints the search may leave the
        feasible region (here: exceed d0 = 2 chasing total yield)."""
        t = TwoSpecTemplate()
        result = YieldOptimizer(
            t, self._config(use_constraints=False)).run()
        assert result.d_final["d0"] > 2.0

    def test_nominal_ablation_still_runs(self):
        t = TwoSpecTemplate()
        result = YieldOptimizer(
            t, self._config(linearize_at="nominal", max_iterations=3)).run()
        # For an affine template the nominal tangent is exact, so the
        # ablation still optimizes fine — the difference only appears for
        # nonlinear (e.g. quadratic) performances, tested on circuits.
        assert result.final.yield_mc > 0.9

    def test_verify_disabled(self):
        t = TwoSpecTemplate()
        result = YieldOptimizer(
            t, self._config(verify=False, max_iterations=2)).run()
        assert all(r.yield_mc is None for r in result.records)
