"""Parity tests of the sample-batched Monte-Carlo engine.

The batched engine's contract (see ``repro.circuit.batch``) is *bitwise*
parity: evaluating a set of statistical rows through the vectorized
lockstep path must produce exactly the values, warm-cache counters and
fault classification of the scalar per-sample loop.  These tests compare
the two paths sample for sample on every shipped template (dense and
sparse backends), under Hypothesis-driven random rows, with injected
template faults, and through the executor / estimator / serve-request
wiring.  The satellite regression tests of the same PR (zero-sample
statistics, degenerate slew extraction, serve-client poll floor) live in
their subsystems' own test modules.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import LinearTemplate
import repro.circuit.batch as batch_module
import repro.circuit.dc as dc_module
from repro.circuit.batch import (BatchUnsupported, PROBE_RESISTANCE_FACTOR,
                                 probe_maps)
from repro.circuit.dc import (GMIN_FINAL, SOURCE_SCALES, _newton, solve_dc,
                              gmin_schedule)
from repro.circuit.devices import Isource, Vsource
from repro.circuit.linsolve import resolve_backend
from repro.circuits import CIRCUITS
from repro.circuits.base import DEFAULT_BATCH_SAMPLES, _ProbeGlobals
from repro.circuits.miller import MillerOpamp
from repro.errors import ConvergenceError, ReproError
from repro.evaluation import Evaluator
from repro.evaluation.template import CircuitTemplate
from repro.runtime import FaultPolicy, FaultTolerantEvaluator
from repro.runtime.policy import FaultAction
from repro.yieldsim import BatchExecutor, ExecutionConfig, make_estimator

DENSE_TEMPLATES = ["miller", "folded-cascode", "ota"]


def _rows(template, n, seed):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(template.statistical_space.dim)
            for _ in range(n)]


def _serial_entries(template, d, rows, theta):
    """Reference: the scalar per-sample loop of the template base class."""
    return CircuitTemplate.evaluate_batch(template, d, rows, theta)


def _assert_entries_match(serial, batched):
    assert len(serial) == len(batched)
    for j, (a, b) in enumerate(zip(serial, batched)):
        if isinstance(a, BaseException):
            assert isinstance(b, BaseException), f"row {j}"
            assert type(a) is type(b), f"row {j}"
            assert str(a) == str(b), f"row {j}"
            continue
        assert not isinstance(b, BaseException), f"row {j}: {b!r}"
        assert set(a) == set(b), f"row {j}"
        for key in a:
            assert a[key] == b[key], \
                f"row {j} {key}: serial {a[key]!r} != batched {b[key]!r}"


def _parity_case(name, n, seed, batch_samples):
    """Run serial and batched paths on fresh template instances and
    assert value + warm-cache-counter parity."""
    t_serial = CIRCUITS[name]()
    t_batched = CIRCUITS[name]()
    d = t_serial.initial_design()
    theta = t_serial.operating_range.nominal()
    rows = _rows(t_serial, n, seed)
    serial = _serial_entries(t_serial, d, rows, theta)
    batched = t_batched.evaluate_batch(d, rows, theta,
                                       batch_samples=batch_samples)
    _assert_entries_match(serial, batched)
    assert t_serial.warm_cache_stats() == t_batched.warm_cache_stats()


class TestBitwiseParity:
    @pytest.mark.parametrize("name", DENSE_TEMPLATES)
    def test_dense_templates(self, name):
        _parity_case(name, n=5, seed=11, batch_samples=None)

    def test_two_stage_array_sparse_backend(self):
        _parity_case("two-stage-array", n=4, seed=3, batch_samples=4)

    def test_chunking_does_not_change_results(self):
        t_a = CIRCUITS["miller"]()
        t_b = CIRCUITS["miller"]()
        d = t_a.initial_design()
        theta = t_a.operating_range.nominal()
        rows = _rows(t_a, 5, 29)
        whole = t_a.evaluate_batch(d, rows, theta, batch_samples=8)
        chunked = t_b.evaluate_batch(d, rows, theta, batch_samples=2)
        _assert_entries_match(whole, chunked)
        assert t_a.warm_cache_stats() == t_b.warm_cache_stats()

    def test_batch_samples_one_is_the_scalar_loop(self):
        t = CIRCUITS["miller"]()
        d = t.initial_design()
        theta = t.operating_range.nominal()
        rows = _rows(t, 3, 5)
        _assert_entries_match(_serial_entries(t, d, rows, theta),
                              t.evaluate_batch(d, rows, theta,
                                               batch_samples=1))


class TestParityProperty:
    @pytest.mark.parametrize("name", DENSE_TEMPLATES)
    @given(seed=st.integers(0, 2 ** 20), n=st.integers(2, 4))
    @settings(max_examples=4, deadline=None)
    def test_dense_random_rows(self, name, seed, n):
        _parity_case(name, n=n, seed=seed, batch_samples=None)

    @given(seed=st.integers(0, 2 ** 20))
    @settings(max_examples=2, deadline=None)
    def test_sparse_random_rows(self, seed):
        _parity_case("two-stage-array", n=3, seed=seed, batch_samples=3)


class _FaultyMiller(MillerOpamp):
    """Miller template with deterministic per-sample injected faults.

    The trigger is a function of the extracted (bitwise-identical)
    values, so the serial and batched paths must fault on exactly the
    same rows: a ``ConvergenceError`` (an ``AnalysisError`` — mapped to
    dead-circuit sentinels by the template, RETRY by the fault policy)
    above ``analysis_above``, a ``RuntimeError`` (propagates as an
    entry) below ``hard_below``.
    """

    def __init__(self, analysis_above=float("inf"),
                 hard_below=float("-inf")):
        super().__init__()
        self.analysis_above = analysis_above
        self.hard_below = hard_below

    def extract(self, bench, d, theta):
        values = super().extract(bench, d, theta)
        if values["a0"] > self.analysis_above:
            raise ConvergenceError(
                f"injected analysis fault at a0={values['a0']!r}")
        if values["a0"] < self.hard_below:
            raise RuntimeError(
                f"injected hard fault at a0={values['a0']!r}")
        return values


class TestFaultClassificationParity:
    def test_injected_faults_classify_identically(self):
        t_serial = _FaultyMiller(analysis_above=88.4, hard_below=87.2)
        t_batched = _FaultyMiller(analysis_above=88.4, hard_below=87.2)
        d = t_serial.initial_design()
        theta = t_serial.operating_range.nominal()
        rows = _rows(t_serial, 8, 11)
        serial = _serial_entries(t_serial, d, rows, theta)
        batched = t_batched.evaluate_batch(d, rows, theta)
        # The chosen thresholds must actually exercise both fault kinds.
        assert any(isinstance(e, RuntimeError) for e in serial)
        assert any(isinstance(e, dict) and e["a0"] == -40.0
                   for e in serial)
        _assert_entries_match(serial, batched)
        assert t_serial.warm_cache_stats() == t_batched.warm_cache_stats()

    def test_fault_tolerant_stack_counter_parity(self):
        """The executor resumes batched first-attempt failures through
        FaultTolerantEvaluator.resume_after_failure: values, policy
        counters and evaluator counters must all match the scalar
        stack."""
        def run(batch_samples):
            template = _FaultyMiller(hard_below=87.5)
            guarded = FaultTolerantEvaluator(
                Evaluator(template),
                FaultPolicy(actions={RuntimeError: FaultAction.RETRY}),
                fail_mode="nan")
            d = template.initial_design()
            theta = template.operating_range.nominal()
            matrix = np.stack(_rows(template, 8, 11))
            config = ExecutionConfig(batch_samples=batch_samples)
            outcome = BatchExecutor(config).run(guarded, d, [theta], matrix)
            return (outcome.values, outcome.simulations, outcome.requests,
                    guarded.failed_evaluations, guarded.retried_evaluations,
                    guarded.recovered_evaluations,
                    template.warm_cache_stats())

        scalar = run(1)
        batched = run(None)
        assert scalar[1:] == batched[1:]
        # fail_mode="nan" rows need NaN-aware equality (NaN != NaN).
        for row_a, row_b in zip(scalar[0], batched[0]):
            for cell_a, cell_b in zip(row_a, row_b):
                assert set(cell_a) == set(cell_b)
                for key in cell_a:
                    x, y = cell_a[key], cell_b[key]
                    assert x == y or (math.isnan(x) and math.isnan(y)), \
                        f"{key}: {x!r} != {y!r}"
        assert batched[4] > 0  # the injected faults were actually retried


class _GlobalsReadingMiller(MillerOpamp):
    """A builder that reaches into ``pv.global_values`` directly — the
    batched engine cannot see such a dependency, so the probe build must
    reject it and route every evaluation through the scalar loop."""

    def build(self, d, pv, theta):
        self.seen_globals = dict(pv.global_values)
        return super().build(d, pv, theta)


class TestProbeVerification:
    def test_globals_reading_builder_falls_back_to_serial(self):
        t_plain = MillerOpamp()
        t_reader = _GlobalsReadingMiller()
        d = t_reader.initial_design()
        theta = t_reader.operating_range.nominal()
        with pytest.raises(BatchUnsupported):
            t_reader._batch_plan(d, theta)
        rows = _rows(t_reader, 3, 7)
        _assert_entries_match(
            _serial_entries(t_plain, d, rows, theta),
            t_reader.evaluate_batch(d, rows, theta))

    def test_probe_globals_refuse_every_read(self):
        probe = _ProbeGlobals()
        with pytest.raises(BatchUnsupported):
            probe["vth_nmos"]
        with pytest.raises(BatchUnsupported):
            probe.get("vth_nmos")
        with pytest.raises(BatchUnsupported):
            list(probe.items())

    def test_probe_maps_are_distinct_per_device(self):
        t = MillerOpamp()
        d = t.initial_design()
        space = t.statistical_space
        proto = t.build(d, space.to_physical(d, space.nominal()),
                        t.operating_range.nominal())
        dvto, beta = probe_maps(proto)
        assert len(dvto) == len(set(dvto.values()))
        assert len(beta) == len(set(beta.values()))
        assert PROBE_RESISTANCE_FACTOR == 2.0  # exact in binary floats


class TestExecutorWiring:
    def test_batch_samples_validated(self):
        with pytest.raises(ReproError):
            ExecutionConfig(batch_samples=0)
        assert ExecutionConfig(batch_samples=None).batch_samples is None
        assert ExecutionConfig(batch_samples=7).batch_samples == 7

    def test_make_estimator_threads_batch_samples(self):
        est = make_estimator("mc", batch_samples=9)
        assert est.execution.batch_samples == 9

    def test_default_chunk_is_documented_size(self):
        assert DEFAULT_BATCH_SAMPLES == 32

    def test_analytic_template_unaffected(self):
        """Templates without a batched engine run the plain loop under
        either setting."""
        template = LinearTemplate(offset=0.0)
        evaluator = Evaluator(template)
        d = {"d0": 1.0, "d1": 0.0}
        theta = {"temp": 27.0}
        matrix = np.random.default_rng(3).standard_normal((6, 2))
        a = BatchExecutor(ExecutionConfig(batch_samples=1)).run(
            evaluator, d, [theta], matrix)
        b = BatchExecutor(ExecutionConfig()).run(
            evaluator, d, [theta], matrix)
        assert a.values == b.values
        assert a.backend == b.backend == "serial"


class TestServeRequestWiring:
    def test_yield_request_round_trip_and_cache_key(self):
        from repro.serve.jobs import YieldRequest, cache_key
        base = YieldRequest(circuit="miller", n_samples=10, seed=1)
        tuned = YieldRequest(circuit="miller", n_samples=10, seed=1,
                             batch_samples=8)
        restored = YieldRequest.from_dict(tuned.to_dict())
        assert restored.batch_samples == 8
        # Execution-only knob: identical results, identical store key.
        assert cache_key(base) == cache_key(tuned)

    def test_optimize_request_round_trip_and_cache_key(self):
        from repro.serve.jobs import OptimizeRequest, optimize_cache_key
        base = OptimizeRequest(circuit="miller", seed=1)
        tuned = OptimizeRequest(circuit="miller", seed=1, batch_samples=16)
        restored = OptimizeRequest.from_dict(tuned.to_dict())
        assert restored.batch_samples == 16
        assert optimize_cache_key(base) == optimize_cache_key(tuned)

    def test_cold_dc_round_trips_and_changes_cache_key(self):
        from repro.serve.jobs import YieldRequest, cache_key
        base = YieldRequest(circuit="miller", n_samples=10, seed=1)
        cold = YieldRequest(circuit="miller", n_samples=10, seed=1,
                            cold_dc=True)
        assert YieldRequest.from_dict(cold.to_dict()).cold_dc is True
        # Unlike batch_samples, cold_dc changes the Newton trajectories
        # (and the result bits), so it must split the result cache.
        assert cache_key(base) != cache_key(cold)

    def test_rejects_nonpositive_batch_samples(self):
        from repro.errors import ServeError
        from repro.serve.jobs import OptimizeRequest, YieldRequest
        with pytest.raises(ServeError):
            YieldRequest(circuit="miller", batch_samples=0)
        with pytest.raises(ServeError):
            OptimizeRequest(circuit="miller", batch_samples=-1)


def _cold_parity_case(name, n, seed, batch_samples):
    """Like ``_parity_case`` with warm anchors disabled on both paths:
    every sample enters the homotopy chain at the cold Newton stage, and
    the per-strategy DC effort counters must also agree."""
    t_serial = CIRCUITS[name]()
    t_batched = CIRCUITS[name]()
    t_serial.warm_dc = False
    t_batched.warm_dc = False
    d = t_serial.initial_design()
    theta = t_serial.operating_range.nominal()
    rows = _rows(t_serial, n, seed)
    serial = _serial_entries(t_serial, d, rows, theta)
    batched = t_batched.evaluate_batch(d, rows, theta,
                                       batch_samples=batch_samples)
    _assert_entries_match(serial, batched)
    assert t_serial.dc_effort_stats() == t_batched.dc_effort_stats()


def _patch_iteration_caps(monkeypatch, cap):
    """Shrink the per-stage Newton budget in *both* solver modules (the
    batched module binds the name at import time)."""
    monkeypatch.setattr(dc_module, "MAX_ITERATIONS", cap)
    monkeypatch.setattr(batch_module, "MAX_ITERATIONS", cap)


def _cold_fixture(name, n, seed):
    """A loaded batch plan plus the matching per-sample serial circuits
    (devices prepared), for driving the homotopy kernels directly."""
    t = CIRCUITS[name]()
    d = t.initial_design()
    theta = t.operating_range.nominal()
    plan = t._batch_plan(d, theta)
    rows = _rows(t, n, seed)
    pvs = [t.statistical_space.to_physical(d, r) for r in rows]
    plan.set_samples(pvs)
    circuits = [t.build(d, pv, theta) for pv in pvs]
    for c in circuits:
        for dev in c.devices:
            dev.prepare(theta["temp"])
    return t, plan, circuits, theta


class TestColdChainParity:
    @pytest.mark.parametrize("name", DENSE_TEMPLATES)
    def test_dense_templates_cold(self, name):
        _cold_parity_case(name, n=5, seed=11, batch_samples=None)

    def test_two_stage_array_sparse_cold(self):
        _cold_parity_case("two-stage-array", n=4, seed=3, batch_samples=4)

    @pytest.mark.parametrize("name", DENSE_TEMPLATES)
    @given(seed=st.integers(0, 2 ** 20))
    @settings(max_examples=2, deadline=None)
    def test_dense_random_rows_cold(self, name, seed):
        _cold_parity_case(name, n=3, seed=seed, batch_samples=None)

    @given(seed=st.integers(0, 2 ** 20))
    @settings(max_examples=2, deadline=None)
    def test_sparse_random_rows_cold(self, seed):
        _cold_parity_case("two-stage-array", n=3, seed=seed,
                          batch_samples=3)


class TestLockstepColdKernels:
    """Drive ``SampleBatchPlan.solve`` and its stage kernels directly
    against the serial solver, asserting bitwise solutions, matching
    strategy labels and exact per-(sub)stage iteration counts."""

    def test_cold_solve_matches_solve_dc_bitwise(self):
        t, plan, circuits, theta = _cold_fixture("miller", n=6, seed=13)
        x, iters, ok, strategy = plan.solve(None)
        for k, c in enumerate(circuits):
            ref = solve_dc(c, temp_c=theta["temp"], backend=t.linsolve)
            assert ok[k]
            assert strategy[k] == ref.strategy
            assert iters[k] == ref.iterations
            assert np.array_equal(x[k], ref.x)

    def test_gmin_substage_iteration_parity(self):
        t, plan, circuits, theta = _cold_fixture("miller", n=3, seed=5)
        rows = np.arange(len(circuits), dtype=np.intp)
        size = plan.layout.size
        xb = np.zeros((len(circuits), size))
        backend = resolve_backend(t.linsolve, plan.layout.n_nodes)
        layouts = [c.layout() for c in circuits]
        xs = [np.zeros(layout.size) for layout in layouts]
        for gmin in gmin_schedule():
            xb, its, out = plan._newton_stage(rows, xb, gmin,
                                              plan._dc_base_rhs)
            assert np.all(out == 0)
            for k, c in enumerate(circuits):
                xs[k], ref_iters = _newton(c, layouts[k], xs[k], gmin,
                                           backend)
                assert its[k] == ref_iters, f"gmin={gmin:g} sample {k}"
                assert np.array_equal(xb[k], xs[k]), \
                    f"gmin={gmin:g} sample {k}"

    def test_source_substage_iteration_parity(self):
        t, plan, circuits, theta = _cold_fixture("miller", n=3, seed=5)
        rows = np.arange(len(circuits), dtype=np.intp)
        size = plan.layout.size
        xb = np.zeros((len(circuits), size))
        backend = resolve_backend(t.linsolve, plan.layout.n_nodes)
        layouts = [c.layout() for c in circuits]
        xs = [np.zeros(layout.size) for layout in layouts]
        sources = [[dev for dev in c.devices
                    if isinstance(dev, (Vsource, Isource))]
                   for c in circuits]
        for scale in SOURCE_SCALES:
            xb, its, out = plan._newton_stage(rows, xb, GMIN_FINAL,
                                              plan._scaled_rhs(scale))
            assert np.all(out == 0)
            for k, c in enumerate(circuits):
                for src in sources[k]:
                    src.scale = scale
                xs[k], ref_iters = _newton(c, layouts[k], xs[k],
                                           GMIN_FINAL, backend)
                assert its[k] == ref_iters, f"scale={scale} sample {k}"
                assert np.array_equal(xb[k], xs[k]), \
                    f"scale={scale} sample {k}"

    def test_capped_newton_routes_to_gmin_stepping(self, monkeypatch):
        # The folded-cascode nominal row needs 15 cold Newton iterations;
        # capping at 14 forces cold Newton to fail while every gmin
        # sub-stage still fits, so the chain's second homotopy wins — on
        # both paths, with identical totals and bits.
        _patch_iteration_caps(monkeypatch, 14)
        t, plan, circuits, theta = _cold_fixture("folded-cascode",
                                                 n=3, seed=7)
        nominal = t.statistical_space.nominal()
        pvs = [t.statistical_space.to_physical(t.initial_design(),
                                               nominal)]
        circuits.insert(0, t.build(t.initial_design(), pvs[0], theta))
        for dev in circuits[0].devices:
            dev.prepare(theta["temp"])
        plan.set_samples(
            [pvs[0]] + [t.statistical_space.to_physical(
                t.initial_design(), r) for r in _rows(t, 3, 7)])
        x, iters, ok, strategy = plan.solve(None)
        assert strategy[0] == "gmin-stepping"
        for k, c in enumerate(circuits):
            try:
                ref = solve_dc(c, temp_c=theta["temp"],
                               backend=t.linsolve)
            except ConvergenceError:
                # A random row may exhaust even the capped chain; the
                # batched path must hand exactly those rows back.
                assert not ok[k]
                assert strategy[k] is None
                continue
            assert ok[k]
            assert strategy[k] == ref.strategy
            assert iters[k] == ref.iterations
            assert np.array_equal(x[k], ref.x)


class TestColdFaultClassificationParity:
    def test_exhausted_chain_classifies_identically(self, monkeypatch):
        # A 2-iteration budget exhausts every homotopy stage: the serial
        # loop's ConvergenceError maps to the dead-circuit sentinel dict,
        # and the batched path must reproduce both the entries and the
        # "failed" effort counters exactly through its serial fallback.
        _patch_iteration_caps(monkeypatch, 2)
        t_serial = CIRCUITS["miller"]()
        t_batched = CIRCUITS["miller"]()
        t_serial.warm_dc = False
        t_batched.warm_dc = False
        d = t_serial.initial_design()
        theta = t_serial.operating_range.nominal()
        rows = _rows(t_serial, 6, 3)
        serial = _serial_entries(t_serial, d, rows, theta)
        batched = t_batched.evaluate_batch(d, rows, theta)
        _assert_entries_match(serial, batched)
        stats = t_serial.dc_effort_stats()
        assert stats == t_batched.dc_effort_stats()
        assert stats["failed"] > 0
        from repro.circuits.base import DEAD_CIRCUIT_PERFORMANCES
        assert any(isinstance(e, dict)
                   and e["a0"] == DEAD_CIRCUIT_PERFORMANCES["a0"]
                   for e in serial)

    def test_failed_samples_accounting_scalar_vs_batched(self):
        """Estimator-level failed_samples parity on the cold path: rows
        whose evaluation faults under the nan fail-mode must be counted
        identically by the scalar and batched engines."""
        from repro.spec.operating import find_worst_case_operating_points

        def run(batch_samples):
            template = _FaultyMiller(hard_below=87.5)
            template.warm_dc = False
            guarded = FaultTolerantEvaluator(
                Evaluator(template),
                FaultPolicy(actions={RuntimeError: FaultAction.RETRY}),
                fail_mode="nan")
            d = template.initial_design()
            s0 = template.statistical_space.nominal()
            theta_wc = find_worst_case_operating_points(
                lambda theta: guarded.evaluate(d, s0, theta),
                template.specs, template.operating_range)
            est = make_estimator("mc", batch_samples=batch_samples)
            with guarded.lenient():
                r = est.estimate(guarded, d, theta_wc, n_samples=16,
                                 seed=11)
            return (r.estimate, r.ci_low, r.ci_high, r.failed_samples,
                    r.report.failed_samples, dict(r.report.dc_effort),
                    template.dc_effort_stats())

        scalar = run(1)
        batched = run(None)
        assert scalar == batched
        assert batched[3] > 0  # the injected faults actually failed rows


class TestEstimatorEndToEnd:
    def test_operational_mc_identical_scalar_vs_batched(self):
        from repro.spec.operating import find_worst_case_operating_points

        def run(batch_samples):
            template = CIRCUITS["miller"]()
            guarded = FaultTolerantEvaluator(Evaluator(template),
                                             FaultPolicy())
            d = template.initial_design()
            s0 = template.statistical_space.nominal()
            theta_wc = find_worst_case_operating_points(
                lambda theta: guarded.evaluate(d, s0, theta),
                template.specs, template.operating_range)
            est = make_estimator("mc", batch_samples=batch_samples)
            with guarded.lenient():
                r = est.estimate(guarded, d, theta_wc, n_samples=24,
                                 seed=7)
            return (r.estimate, r.ci_low, r.ci_high, r.n_samples,
                    r.report.simulations, r.report.cache_hits,
                    template.warm_cache_stats())

        assert run(1) == run(None)
