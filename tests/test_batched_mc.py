"""Parity tests of the sample-batched Monte-Carlo engine.

The batched engine's contract (see ``repro.circuit.batch``) is *bitwise*
parity: evaluating a set of statistical rows through the vectorized
lockstep path must produce exactly the values, warm-cache counters and
fault classification of the scalar per-sample loop.  These tests compare
the two paths sample for sample on every shipped template (dense and
sparse backends), under Hypothesis-driven random rows, with injected
template faults, and through the executor / estimator / serve-request
wiring.  The satellite regression tests of the same PR (zero-sample
statistics, degenerate slew extraction, serve-client poll floor) live in
their subsystems' own test modules.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import LinearTemplate
from repro.circuit.batch import (BatchUnsupported, PROBE_RESISTANCE_FACTOR,
                                 probe_maps)
from repro.circuits import CIRCUITS
from repro.circuits.base import DEFAULT_BATCH_SAMPLES, _ProbeGlobals
from repro.circuits.miller import MillerOpamp
from repro.errors import ConvergenceError, ReproError
from repro.evaluation import Evaluator
from repro.evaluation.template import CircuitTemplate
from repro.runtime import FaultPolicy, FaultTolerantEvaluator
from repro.runtime.policy import FaultAction
from repro.yieldsim import BatchExecutor, ExecutionConfig, make_estimator

DENSE_TEMPLATES = ["miller", "folded-cascode", "ota"]


def _rows(template, n, seed):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(template.statistical_space.dim)
            for _ in range(n)]


def _serial_entries(template, d, rows, theta):
    """Reference: the scalar per-sample loop of the template base class."""
    return CircuitTemplate.evaluate_batch(template, d, rows, theta)


def _assert_entries_match(serial, batched):
    assert len(serial) == len(batched)
    for j, (a, b) in enumerate(zip(serial, batched)):
        if isinstance(a, BaseException):
            assert isinstance(b, BaseException), f"row {j}"
            assert type(a) is type(b), f"row {j}"
            assert str(a) == str(b), f"row {j}"
            continue
        assert not isinstance(b, BaseException), f"row {j}: {b!r}"
        assert set(a) == set(b), f"row {j}"
        for key in a:
            assert a[key] == b[key], \
                f"row {j} {key}: serial {a[key]!r} != batched {b[key]!r}"


def _parity_case(name, n, seed, batch_samples):
    """Run serial and batched paths on fresh template instances and
    assert value + warm-cache-counter parity."""
    t_serial = CIRCUITS[name]()
    t_batched = CIRCUITS[name]()
    d = t_serial.initial_design()
    theta = t_serial.operating_range.nominal()
    rows = _rows(t_serial, n, seed)
    serial = _serial_entries(t_serial, d, rows, theta)
    batched = t_batched.evaluate_batch(d, rows, theta,
                                       batch_samples=batch_samples)
    _assert_entries_match(serial, batched)
    assert t_serial.warm_cache_stats() == t_batched.warm_cache_stats()


class TestBitwiseParity:
    @pytest.mark.parametrize("name", DENSE_TEMPLATES)
    def test_dense_templates(self, name):
        _parity_case(name, n=5, seed=11, batch_samples=None)

    def test_two_stage_array_sparse_backend(self):
        _parity_case("two-stage-array", n=4, seed=3, batch_samples=4)

    def test_chunking_does_not_change_results(self):
        t_a = CIRCUITS["miller"]()
        t_b = CIRCUITS["miller"]()
        d = t_a.initial_design()
        theta = t_a.operating_range.nominal()
        rows = _rows(t_a, 5, 29)
        whole = t_a.evaluate_batch(d, rows, theta, batch_samples=8)
        chunked = t_b.evaluate_batch(d, rows, theta, batch_samples=2)
        _assert_entries_match(whole, chunked)
        assert t_a.warm_cache_stats() == t_b.warm_cache_stats()

    def test_batch_samples_one_is_the_scalar_loop(self):
        t = CIRCUITS["miller"]()
        d = t.initial_design()
        theta = t.operating_range.nominal()
        rows = _rows(t, 3, 5)
        _assert_entries_match(_serial_entries(t, d, rows, theta),
                              t.evaluate_batch(d, rows, theta,
                                               batch_samples=1))


class TestParityProperty:
    @pytest.mark.parametrize("name", DENSE_TEMPLATES)
    @given(seed=st.integers(0, 2 ** 20), n=st.integers(2, 4))
    @settings(max_examples=4, deadline=None)
    def test_dense_random_rows(self, name, seed, n):
        _parity_case(name, n=n, seed=seed, batch_samples=None)

    @given(seed=st.integers(0, 2 ** 20))
    @settings(max_examples=2, deadline=None)
    def test_sparse_random_rows(self, seed):
        _parity_case("two-stage-array", n=3, seed=seed, batch_samples=3)


class _FaultyMiller(MillerOpamp):
    """Miller template with deterministic per-sample injected faults.

    The trigger is a function of the extracted (bitwise-identical)
    values, so the serial and batched paths must fault on exactly the
    same rows: a ``ConvergenceError`` (an ``AnalysisError`` — mapped to
    dead-circuit sentinels by the template, RETRY by the fault policy)
    above ``analysis_above``, a ``RuntimeError`` (propagates as an
    entry) below ``hard_below``.
    """

    def __init__(self, analysis_above=float("inf"),
                 hard_below=float("-inf")):
        super().__init__()
        self.analysis_above = analysis_above
        self.hard_below = hard_below

    def extract(self, bench, d, theta):
        values = super().extract(bench, d, theta)
        if values["a0"] > self.analysis_above:
            raise ConvergenceError(
                f"injected analysis fault at a0={values['a0']!r}")
        if values["a0"] < self.hard_below:
            raise RuntimeError(
                f"injected hard fault at a0={values['a0']!r}")
        return values


class TestFaultClassificationParity:
    def test_injected_faults_classify_identically(self):
        t_serial = _FaultyMiller(analysis_above=88.4, hard_below=87.2)
        t_batched = _FaultyMiller(analysis_above=88.4, hard_below=87.2)
        d = t_serial.initial_design()
        theta = t_serial.operating_range.nominal()
        rows = _rows(t_serial, 8, 11)
        serial = _serial_entries(t_serial, d, rows, theta)
        batched = t_batched.evaluate_batch(d, rows, theta)
        # The chosen thresholds must actually exercise both fault kinds.
        assert any(isinstance(e, RuntimeError) for e in serial)
        assert any(isinstance(e, dict) and e["a0"] == -40.0
                   for e in serial)
        _assert_entries_match(serial, batched)
        assert t_serial.warm_cache_stats() == t_batched.warm_cache_stats()

    def test_fault_tolerant_stack_counter_parity(self):
        """The executor resumes batched first-attempt failures through
        FaultTolerantEvaluator.resume_after_failure: values, policy
        counters and evaluator counters must all match the scalar
        stack."""
        def run(batch_samples):
            template = _FaultyMiller(hard_below=87.5)
            guarded = FaultTolerantEvaluator(
                Evaluator(template),
                FaultPolicy(actions={RuntimeError: FaultAction.RETRY}),
                fail_mode="nan")
            d = template.initial_design()
            theta = template.operating_range.nominal()
            matrix = np.stack(_rows(template, 8, 11))
            config = ExecutionConfig(batch_samples=batch_samples)
            outcome = BatchExecutor(config).run(guarded, d, [theta], matrix)
            return (outcome.values, outcome.simulations, outcome.requests,
                    guarded.failed_evaluations, guarded.retried_evaluations,
                    guarded.recovered_evaluations,
                    template.warm_cache_stats())

        scalar = run(1)
        batched = run(None)
        assert scalar[1:] == batched[1:]
        # fail_mode="nan" rows need NaN-aware equality (NaN != NaN).
        for row_a, row_b in zip(scalar[0], batched[0]):
            for cell_a, cell_b in zip(row_a, row_b):
                assert set(cell_a) == set(cell_b)
                for key in cell_a:
                    x, y = cell_a[key], cell_b[key]
                    assert x == y or (math.isnan(x) and math.isnan(y)), \
                        f"{key}: {x!r} != {y!r}"
        assert batched[4] > 0  # the injected faults were actually retried


class _GlobalsReadingMiller(MillerOpamp):
    """A builder that reaches into ``pv.global_values`` directly — the
    batched engine cannot see such a dependency, so the probe build must
    reject it and route every evaluation through the scalar loop."""

    def build(self, d, pv, theta):
        self.seen_globals = dict(pv.global_values)
        return super().build(d, pv, theta)


class TestProbeVerification:
    def test_globals_reading_builder_falls_back_to_serial(self):
        t_plain = MillerOpamp()
        t_reader = _GlobalsReadingMiller()
        d = t_reader.initial_design()
        theta = t_reader.operating_range.nominal()
        with pytest.raises(BatchUnsupported):
            t_reader._batch_plan(d, theta)
        rows = _rows(t_reader, 3, 7)
        _assert_entries_match(
            _serial_entries(t_plain, d, rows, theta),
            t_reader.evaluate_batch(d, rows, theta))

    def test_probe_globals_refuse_every_read(self):
        probe = _ProbeGlobals()
        with pytest.raises(BatchUnsupported):
            probe["vth_nmos"]
        with pytest.raises(BatchUnsupported):
            probe.get("vth_nmos")
        with pytest.raises(BatchUnsupported):
            list(probe.items())

    def test_probe_maps_are_distinct_per_device(self):
        t = MillerOpamp()
        d = t.initial_design()
        space = t.statistical_space
        proto = t.build(d, space.to_physical(d, space.nominal()),
                        t.operating_range.nominal())
        dvto, beta = probe_maps(proto)
        assert len(dvto) == len(set(dvto.values()))
        assert len(beta) == len(set(beta.values()))
        assert PROBE_RESISTANCE_FACTOR == 2.0  # exact in binary floats


class TestExecutorWiring:
    def test_batch_samples_validated(self):
        with pytest.raises(ReproError):
            ExecutionConfig(batch_samples=0)
        assert ExecutionConfig(batch_samples=None).batch_samples is None
        assert ExecutionConfig(batch_samples=7).batch_samples == 7

    def test_make_estimator_threads_batch_samples(self):
        est = make_estimator("mc", batch_samples=9)
        assert est.execution.batch_samples == 9

    def test_default_chunk_is_documented_size(self):
        assert DEFAULT_BATCH_SAMPLES == 32

    def test_analytic_template_unaffected(self):
        """Templates without a batched engine run the plain loop under
        either setting."""
        template = LinearTemplate(offset=0.0)
        evaluator = Evaluator(template)
        d = {"d0": 1.0, "d1": 0.0}
        theta = {"temp": 27.0}
        matrix = np.random.default_rng(3).standard_normal((6, 2))
        a = BatchExecutor(ExecutionConfig(batch_samples=1)).run(
            evaluator, d, [theta], matrix)
        b = BatchExecutor(ExecutionConfig()).run(
            evaluator, d, [theta], matrix)
        assert a.values == b.values
        assert a.backend == b.backend == "serial"


class TestServeRequestWiring:
    def test_yield_request_round_trip_and_cache_key(self):
        from repro.serve.jobs import YieldRequest, cache_key
        base = YieldRequest(circuit="miller", n_samples=10, seed=1)
        tuned = YieldRequest(circuit="miller", n_samples=10, seed=1,
                             batch_samples=8)
        restored = YieldRequest.from_dict(tuned.to_dict())
        assert restored.batch_samples == 8
        # Execution-only knob: identical results, identical store key.
        assert cache_key(base) == cache_key(tuned)

    def test_optimize_request_round_trip_and_cache_key(self):
        from repro.serve.jobs import OptimizeRequest, optimize_cache_key
        base = OptimizeRequest(circuit="miller", seed=1)
        tuned = OptimizeRequest(circuit="miller", seed=1, batch_samples=16)
        restored = OptimizeRequest.from_dict(tuned.to_dict())
        assert restored.batch_samples == 16
        assert optimize_cache_key(base) == optimize_cache_key(tuned)

    def test_rejects_nonpositive_batch_samples(self):
        from repro.errors import ServeError
        from repro.serve.jobs import OptimizeRequest, YieldRequest
        with pytest.raises(ServeError):
            YieldRequest(circuit="miller", batch_samples=0)
        with pytest.raises(ServeError):
            OptimizeRequest(circuit="miller", batch_samples=-1)


class TestEstimatorEndToEnd:
    def test_operational_mc_identical_scalar_vs_batched(self):
        from repro.spec.operating import find_worst_case_operating_points

        def run(batch_samples):
            template = CIRCUITS["miller"]()
            guarded = FaultTolerantEvaluator(Evaluator(template),
                                             FaultPolicy())
            d = template.initial_design()
            s0 = template.statistical_space.nominal()
            theta_wc = find_worst_case_operating_points(
                lambda theta: guarded.evaluate(d, s0, theta),
                template.specs, template.operating_range)
            est = make_estimator("mc", batch_samples=batch_samples)
            with guarded.lenient():
                r = est.estimate(guarded, d, theta_wc, n_samples=24,
                                 seed=7)
            return (r.estimate, r.ci_low, r.ci_high, r.n_samples,
                    r.report.simulations, r.report.cache_hits,
                    template.warm_cache_stats())

        assert run(1) == run(None)
