"""Tests for the folded-cascode opamp template (Fig. 7): bias sanity,
mismatch physics (the Fig. 1 tent), and the design-dependent statistics."""

import numpy as np
import pytest

from repro.circuits import FoldedCascodeOpamp
from repro.circuits.folded_cascode import MATCHED_PAIRS

TEMPLATE = FoldedCascodeOpamp()
D = TEMPLATE.initial_design()
THETA = TEMPLATE.operating_range.nominal()
S0 = TEMPLATE.statistical_space.nominal()
NOMINAL = TEMPLATE.evaluate(D, S0, THETA)


def evaluate_with_vth_mismatch(device_a, device_b, delta):
    """Evaluate with +-delta applied to a device pair's local vth."""
    space = TEMPLATE.statistical_space
    s = np.zeros(space.dim)
    sigma_a = space.local_variations[
        [lv.name for lv in space.local_variations].index(
            f"dvt_{device_a}")].sigma(TEMPLATE.process, D)
    sigma_b = space.local_variations[
        [lv.name for lv in space.local_variations].index(
            f"dvt_{device_b}")].sigma(TEMPLATE.process, D)
    s[space.index(f"dvt_{device_a}")] = delta / sigma_a
    s[space.index(f"dvt_{device_b}")] = -delta / sigma_b
    return TEMPLATE.evaluate(D, s, THETA)


class TestNominal:
    def test_values_in_plausible_ranges(self):
        assert 55.0 < NOMINAL["a0"] < 95.0
        assert 25.0 < NOMINAL["ft"] < 60.0
        assert 85.0 < NOMINAL["cmrr"] < 130.0
        assert 25.0 < NOMINAL["sr"] < 55.0
        assert 0.5 < NOMINAL["power"] < 2.5

    def test_initial_design_is_feasible(self):
        values = TEMPLATE.constraints(D)
        assert min(values.values()) >= 0.0

    def test_statistical_space_shape(self):
        space = TEMPLATE.statistical_space
        # 5 globals + (vth + beta) for 11 core transistors.
        assert space.dim == 5 + 22
        assert len(TEMPLATE.local_vth_names()) == 11

    def test_local_only_variant(self):
        t = FoldedCascodeOpamp(with_global=False)
        assert t.statistical_space.dim == 22

    def test_global_only_variant(self):
        t = FoldedCascodeOpamp(with_local=False)
        assert t.statistical_space.dim == 5


class TestMismatchPhysics:
    """The Fig. 1 tent: CMRR collapses along the mismatch line of the
    load/sink pairs and is flat along the neutral line."""

    def test_mirror_pair_mismatch_degrades_cmrr(self):
        tilted = evaluate_with_vth_mismatch("M9", "M10", 2e-3)
        assert tilted["cmrr"] < NOMINAL["cmrr"] - 10.0

    def test_mismatch_is_symmetric(self):
        plus = evaluate_with_vth_mismatch("M9", "M10", 2e-3)
        minus = evaluate_with_vth_mismatch("M10", "M9", 2e-3)
        assert plus["cmrr"] == pytest.approx(minus["cmrr"], abs=3.0)

    def test_common_shift_is_harmless(self):
        """Neutral line: both thresholds moving together leave CMRR
        (nearly) unchanged — Definition 1 of the paper."""
        space = TEMPLATE.statistical_space
        s = np.zeros(space.dim)
        sigma = space.local_variations[
            [lv.name for lv in space.local_variations].index(
                "dvt_M9")].sigma(TEMPLATE.process, D)
        s[space.index("dvt_M9")] = 2e-3 / sigma
        s[space.index("dvt_M10")] = 2e-3 / sigma
        shifted = TEMPLATE.evaluate(D, s, THETA)
        tilted = evaluate_with_vth_mismatch("M9", "M10", 2e-3)
        assert abs(shifted["cmrr"] - NOMINAL["cmrr"]) < \
            0.2 * abs(tilted["cmrr"] - NOMINAL["cmrr"])

    def test_sink_pair_also_matters(self):
        """The mismatch-induced common-mode error adds *signed* to the
        systematic one, so one polarity may cancel (CMRR improves) — the
        degrading polarity must hurt by several dB."""
        plus = evaluate_with_vth_mismatch("M3", "M4", 2e-3)
        minus = evaluate_with_vth_mismatch("M4", "M3", 2e-3)
        assert min(plus["cmrr"], minus["cmrr"]) < NOMINAL["cmrr"] - 5.0

    def test_other_performances_insensitive_to_pair_mismatch(self):
        tilted = evaluate_with_vth_mismatch("M9", "M10", 2e-3)
        assert tilted["ft"] == pytest.approx(NOMINAL["ft"], rel=0.05)
        assert tilted["power"] == pytest.approx(NOMINAL["power"], rel=0.05)

    def test_matched_pairs_listed(self):
        assert ("M1", "M2") in MATCHED_PAIRS
        assert ("M9", "M10") in MATCHED_PAIRS


class TestDesignDependentStatistics:
    def test_larger_mirror_area_shrinks_cmrr_spread(self):
        """The C(d) design dependence: growing W9*L9 reduces the physical
        effect of the same normalized mismatch sample."""
        space = TEMPLATE.statistical_space
        s = np.zeros(space.dim)
        s[space.index("dvt_M9")] = 2.0
        s[space.index("dvt_M10")] = -2.0
        small_area = TEMPLATE.evaluate(D, s, THETA)
        d_big = dict(D)
        d_big["w9"] = D["w9"] * 4
        big_area = TEMPLATE.evaluate(d_big, s, THETA)
        nominal_big = TEMPLATE.evaluate(d_big, S0, THETA)
        drop_small = NOMINAL["cmrr"] - small_area["cmrr"]
        drop_big = nominal_big["cmrr"] - big_area["cmrr"]
        assert drop_big < drop_small

    def test_tail_width_raises_slew_and_ft(self):
        d = dict(D)
        d["w0"] = D["w0"] * 1.3
        result = TEMPLATE.evaluate(d, S0, THETA)
        assert result["sr"] > NOMINAL["sr"]
        assert result["ft"] > NOMINAL["ft"]

    def test_input_width_raises_ft_only(self):
        d = dict(D)
        d["w1"] = D["w1"] * 1.5
        result = TEMPLATE.evaluate(d, S0, THETA)
        assert result["ft"] > NOMINAL["ft"]
        assert result["sr"] == pytest.approx(NOMINAL["sr"], rel=0.02)


class TestOperatingBehaviour:
    def test_cold_low_supply_is_worst_for_slew(self):
        worst = TEMPLATE.evaluate(D, S0, {"temp": -40.0, "vdd": 3.0})
        assert worst["sr"] < NOMINAL["sr"]

    def test_hot_low_supply_is_worst_for_ft(self):
        worst = TEMPLATE.evaluate(D, S0, {"temp": 125.0, "vdd": 3.0})
        assert worst["ft"] < NOMINAL["ft"]
