"""Tests for the repro.yieldsim estimation subsystem: estimator agreement
on analytic (linear) templates, importance-sampling diagnostics, Sobol
draws, interval behavior, and the legacy-shim compatibility."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.stats import norm

from helpers import LinearTemplate
from repro.core import find_all_worst_case_points
from repro.core.montecarlo import MonteCarloResult, operational_monte_carlo
from repro.errors import ReproError
from repro.evaluation import Evaluator
from repro.statistics import SampleSet, wilson_interval
from repro.yieldsim import (ESTIMATORS, ExecutionConfig, MeanShiftIS,
                            OperationalMC, SobolQMC, YieldResult,
                            make_estimator, shifts_from_worst_case)

THETA = {"f>=": {"temp": 27.0}}
D = {"d0": 1.0, "d1": 0.0}


def linear_setup(offset=0.0):
    """LinearTemplate: f = offset + d0 + s . (1, 0.5), spec f >= 0, so the
    true yield at D is Phi((offset + 1) / sqrt(1.25))."""
    template = LinearTemplate(offset=offset)
    return template, Evaluator(template)


def true_yield(offset):
    return norm.cdf((offset + 1.0) / np.sqrt(1.25))


class TestSampleSetFixes:
    def test_init_does_not_freeze_callers_array(self):
        arr = np.zeros((3, 2))
        SampleSet(arr)
        arr[0, 0] = 1.0  # raised ValueError before the copy fix
        assert arr[0, 0] == 1.0

    def test_draw_sobol_shape_and_determinism(self):
        a = SampleSet.draw_sobol(64, 5, seed=3)
        b = SampleSet.draw_sobol(64, 5, seed=3)
        c = SampleSet.draw_sobol(64, 5, seed=4)
        assert a.matrix.shape == (64, 5)
        assert np.array_equal(a.matrix, b.matrix)
        assert not np.array_equal(a.matrix, c.matrix)

    def test_draw_sobol_non_power_of_two(self):
        s = SampleSet.draw_sobol(100, 3, seed=1)
        assert s.n == 100 and s.dim == 3

    def test_draw_sobol_is_standard_normal(self):
        s = SampleSet.draw_sobol(4096, 2, seed=9)
        assert np.all(np.isfinite(s.matrix))
        assert np.mean(s.matrix) == pytest.approx(0.0, abs=0.05)
        assert np.std(s.matrix) == pytest.approx(1.0, abs=0.05)

    def test_draw_sobol_rejects_bad_shape(self):
        with pytest.raises(ReproError):
            SampleSet.draw_sobol(0, 2)


class TestWilsonInterval:
    def test_contains_proportion(self):
        low, high = wilson_interval(80, 100)
        assert low < 0.8 < high

    def test_nonzero_width_at_the_edges(self):
        low, high = wilson_interval(0, 300)
        assert low == 0.0 and 0.005 < high < 0.03
        low, high = wilson_interval(300, 300)
        assert high == 1.0 and 0.97 < low < 0.995

    def test_rejects_bad_inputs(self):
        with pytest.raises(ReproError):
            wilson_interval(1, 0)
        with pytest.raises(ReproError):
            wilson_interval(5, 4)
        with pytest.raises(ReproError):
            wilson_interval(0, -1)

    def test_zero_samples_is_total_ignorance(self):
        # n = 0 carries no information: the interval is the whole unit
        # range, not a ZeroDivisionError.
        assert wilson_interval(0, 0) == (0.0, 1.0)


class TestMonteCarloResultInterval:
    def result(self, y, n=300):
        return MonteCarloResult(yield_estimate=y, n_samples=n,
                                bad_fraction={}, simulations=n)

    def test_zero_estimate_has_honest_interval(self):
        r = self.result(0.0)
        assert r.standard_error == 0.0  # the documented deficiency
        low, high = r.confidence_interval()
        assert low == 0.0 and high > 0.01

    def test_matches_wilson(self):
        r = self.result(0.5, n=100)
        assert r.confidence_interval() == wilson_interval(50, 100)


class TestOperationalMC:
    def test_matches_legacy_shim_exactly(self):
        template, ev = linear_setup()
        legacy = operational_monte_carlo(ev, D, THETA, n_samples=500,
                                         seed=8)
        modern = OperationalMC().estimate(ev, D, THETA, n_samples=500,
                                          seed=8)
        assert modern.estimate == legacy.yield_estimate
        assert modern.bad_fraction == legacy.bad_fraction
        assert modern.performance_mean == legacy.performance_mean

    def test_result_record(self):
        template, ev = linear_setup()
        r = OperationalMC().estimate(ev, D, THETA, n_samples=200, seed=1)
        assert isinstance(r, YieldResult)
        assert r.ci_low <= r.estimate <= r.ci_high
        assert r.ess == 200
        assert r.report.n_samples == 200
        assert r.report.theta_groups == 1
        assert r.report.backend == "serial"
        assert "simulate" in r.report.phase_seconds
        # duck-compatibility with the legacy record
        assert r.yield_estimate == r.estimate
        assert r.standard_error > 0

    def test_json_round_trip(self):
        import json
        template, ev = linear_setup()
        r = OperationalMC().estimate(ev, D, THETA, n_samples=50, seed=1)
        data = json.loads(r.to_json())
        assert data["estimator"] == "mc"
        assert data["report"]["n_samples"] == 50


class TestMeanShiftIS:
    def test_shift_extraction(self):
        template, ev = linear_setup()
        wc = find_all_worst_case_points(ev, D, THETA, seed=2)
        shifts = shifts_from_worst_case(wc)
        # Worst-case point of f >= 0 at margin 1: s_wc = -(1, .5)/1.25.
        assert len(shifts) == 1
        assert np.linalg.norm(shifts[0]) == pytest.approx(
            1.0 / np.sqrt(1.25), rel=1e-2)

    def test_requires_a_component(self):
        template, ev = linear_setup()
        with pytest.raises(ReproError):
            MeanShiftIS(include_origin=False).estimate(
                ev, D, THETA, n_samples=10, seed=1)

    def test_origin_only_reduces_to_plain_mc(self):
        """With no shifts the mixture is the nominal density, all weights
        are 1, and the estimate equals the sample mean."""
        template, ev = linear_setup()
        r = MeanShiftIS().estimate(ev, D, THETA, n_samples=400, seed=5)
        assert r.ess == pytest.approx(400.0)
        assert r.estimate == pytest.approx(true_yield(0.0), abs=0.06)

    def test_ess_reported_below_n_with_shifts(self):
        template, ev = linear_setup()
        wc = find_all_worst_case_points(ev, D, THETA, seed=2)
        r = MeanShiftIS().estimate(ev, D, THETA, n_samples=400, seed=5,
                                   worst_case=wc)
        assert 10.0 < r.ess < 400.0

    def test_low_yield_regime_beats_mc_interval(self):
        """At ~Phi(-3) = 0.13 % yield a 300-sample MC usually sees zero
        passes; mean-shift IS resolves the estimate with a tighter CI."""
        template, ev = linear_setup(offset=-1.0 - 3.0 * np.sqrt(1.25))
        wc = find_all_worst_case_points(ev, D, THETA, seed=2)
        mc = OperationalMC().estimate(ev, D, THETA, n_samples=300, seed=7)
        is_ = MeanShiftIS().estimate(ev, D, THETA, n_samples=300, seed=7,
                                     worst_case=wc)
        truth = norm.cdf(-3.0)
        assert is_.ci_width < mc.ci_width
        assert is_.ci_low <= truth <= is_.ci_high
        assert is_.estimate == pytest.approx(truth, rel=0.75)

    def test_all_pass_snaps_to_one_with_honest_interval(self):
        """When every weighted sample passes, the self-normalized sum
        carries float residue (0.999...97); the estimate must snap to
        exactly 1.0 and the rule-of-three fallback must still fire
        instead of reporting a ~zero-width interval."""
        template, ev = linear_setup(offset=8.0)
        r = MeanShiftIS(shifts=[np.array([0.5, 0.5])]).estimate(
            ev, D, THETA, n_samples=200, seed=3)
        assert r.estimate == 1.0
        assert r.ci_high == 1.0
        assert r.ci_low == pytest.approx(1.0 - 3.0 / r.ess)

    def test_explicit_shifts_accepted(self):
        template, ev = linear_setup()
        r = MeanShiftIS(shifts=[np.array([-0.9, -0.45])]).estimate(
            ev, D, THETA, n_samples=400, seed=3)
        assert r.estimate == pytest.approx(true_yield(0.0), abs=0.08)

    def test_shift_dimension_checked(self):
        template, ev = linear_setup()
        with pytest.raises(ReproError):
            MeanShiftIS(shifts=[np.zeros(5)]).estimate(
                ev, D, THETA, n_samples=10, seed=1)


class TestSobolQMC:
    def test_agrees_with_truth(self):
        template, ev = linear_setup()
        r = SobolQMC().estimate(ev, D, THETA, n_samples=512, seed=2)
        assert r.estimate == pytest.approx(true_yield(0.0), abs=0.03)

    def test_unscrambled_supported(self):
        template, ev = linear_setup()
        r = SobolQMC(scramble=False).estimate(ev, D, THETA, n_samples=256,
                                              seed=2)
        assert 0.0 < r.estimate < 1.0


class TestEstimatorAgreement:
    """Satellite: seeded property test that MeanShiftIS and SobolQMC
    converge to the OperationalMC estimate on linear(ized) models."""

    @settings(max_examples=8, deadline=None, derandomize=True)
    @given(offset=st.floats(min_value=-1.5, max_value=1.5),
           seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_estimators_agree_on_linear_models(self, offset, seed):
        template, ev = linear_setup(offset=offset)
        wc = find_all_worst_case_points(ev, D, THETA, seed=1)
        truth = true_yield(offset)
        n = 1024
        mc = OperationalMC().estimate(ev, D, THETA, n_samples=n, seed=seed)
        qmc = SobolQMC().estimate(ev, D, THETA, n_samples=n, seed=seed)
        is_ = MeanShiftIS().estimate(ev, D, THETA, n_samples=n, seed=seed,
                                     worst_case=wc)
        for r in (mc, qmc, is_):
            assert r.estimate == pytest.approx(truth, abs=0.06)
        assert qmc.estimate == pytest.approx(mc.estimate, abs=0.08)
        assert is_.estimate == pytest.approx(mc.estimate, abs=0.08)

    @pytest.mark.parametrize("name", sorted(ESTIMATORS))
    def test_parallel_results_bit_identical_to_serial(self, name):
        template, ev = linear_setup()
        wc = find_all_worst_case_points(ev, D, THETA, seed=1)
        serial = make_estimator(name).estimate(
            ev, D, THETA, n_samples=96, seed=6, worst_case=wc)
        parallel = make_estimator(name, jobs=2, chunk_size=17).estimate(
            ev, D, THETA, n_samples=96, seed=6, worst_case=wc)
        assert parallel.estimate == serial.estimate
        assert parallel.bad_fraction == serial.bad_fraction
        assert parallel.performance_mean == serial.performance_mean
        assert parallel.report.backend == "process-pool"


class TestFactory:
    def test_registry(self):
        assert set(ESTIMATORS) == {"mc", "is", "qmc"}

    def test_unknown_name_rejected(self):
        with pytest.raises(ReproError):
            make_estimator("bogus")

    def test_execution_config_forwarded(self):
        est = make_estimator("mc", jobs=3, chunk_size=10, timeout_s=5.0)
        assert est.execution == ExecutionConfig(jobs=3, chunk_size=10,
                                                timeout_s=5.0)


class TestOptimizerIntegration:
    def test_verifier_instance_is_used(self):
        from repro.core import OptimizerConfig, YieldOptimizer
        template = LinearTemplate()
        config = OptimizerConfig(max_iterations=1, n_samples_linear=300,
                                 n_samples_verify=60, seed=4)
        result = YieldOptimizer(template, config,
                                verifier=MeanShiftIS()).run()
        assert isinstance(result.final.mc, YieldResult)
        assert result.final.mc.estimator == "is"
        # IS received the iteration's worst-case points: with a reachable
        # boundary the proposal has >= 2 components, so ESS < N.
        assert result.final.mc.ess < 60.0

    def test_default_verifier_matches_legacy_numbers(self):
        """The refactor must not change optimizer results: the default
        OperationalMC verifier draws the same seeded samples as the old
        inline Monte-Carlo."""
        from repro.core import OptimizerConfig, YieldOptimizer
        template = LinearTemplate()
        config = OptimizerConfig(max_iterations=2, n_samples_linear=400,
                                 n_samples_verify=80, seed=12,
                                 trust_radius=0.0)
        a = YieldOptimizer(LinearTemplate(), config).run()
        b = YieldOptimizer(LinearTemplate(), config,
                           verifier=OperationalMC()).run()
        assert a.final.yield_mc == b.final.yield_mc
        assert a.d_final == b.d_final

    def test_cache_accounting_on_result(self):
        from repro.core import OptimizerConfig, YieldOptimizer
        template = LinearTemplate()
        config = OptimizerConfig(max_iterations=1, n_samples_linear=200,
                                 n_samples_verify=30, seed=2)
        result = YieldOptimizer(template, config).run()
        assert result.total_requests >= result.total_simulations
        assert result.total_cache_hits == \
            result.total_requests - result.total_simulations


class TestZeroSampleEstimates:
    """A zero-sample request (an empty explicit sample set, or a sharded
    run whose neighbor shards took every sample) must return the honest
    "no information" result instead of crashing in mean()/max() on empty
    arrays."""

    def test_operational_mc_empty_sample_set(self):
        _, ev = linear_setup()
        empty = SampleSet(np.zeros((0, 2)))
        r = OperationalMC().estimate(ev, D, THETA, samples=empty, seed=1)
        assert r.n_samples == 0
        assert r.estimate == 0.0
        assert (r.ci_low, r.ci_high) == (0.0, 1.0)
        assert all(v == 0.0 for v in r.bad_fraction.values())

    def test_mean_shift_is_zero_samples(self):
        _, ev = linear_setup()
        r = MeanShiftIS().estimate(ev, D, THETA, n_samples=0, seed=1)
        assert r.n_samples == 0
        assert r.estimate == 0.0
        assert (r.ci_low, r.ci_high) == (0.0, 1.0)
        assert r.ess == 0.0

    def test_zero_sample_stats_merge_as_identity(self):
        # The n = 0 sufficient statistics must act as the pooling
        # identity so an empty shard never corrupts a merged estimate.
        _, ev = linear_setup()
        from repro.yieldsim import merge_stats
        full = MeanShiftIS().estimate(ev, D, THETA, n_samples=200, seed=5)
        empty = MeanShiftIS().estimate(ev, D, THETA, n_samples=0, seed=1)
        merged = merge_stats([full.stats, empty.stats])
        assert merged.to_dict() == full.stats.to_dict()
