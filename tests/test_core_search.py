"""Unit tests for the feasibility machinery and the coordinate search."""

import numpy as np
import pytest

from helpers import LinearTemplate
from repro.core.constraints import (LinearConstraints, UnconstrainedRegion,
                                    linearize_constraints, true_feasible,
                                    violation)
from repro.core.coordinate_search import coordinate_search
from repro.core.estimator import LinearizedYieldEstimator
from repro.core.feasible_point import find_feasible_point
from repro.core.line_search import feasibility_line_search
from repro.core.linear_model import SpecLinearModel
from repro.errors import FeasibilityError
from repro.evaluation import Evaluator
from repro.spec import Spec
from repro.statistics import SampleSet

THETA = {"temp": 27.0}


def estimator_for(grad_s, grad_d, g_ref, d_ref, n=2000, seed=1):
    model = SpecLinearModel(
        spec=Spec("f", ">=", 0.0), key="f>=", theta=THETA,
        s_ref=np.zeros(len(grad_s)), g_ref=g_ref,
        grad_s=np.asarray(grad_s, dtype=float), grad_d=dict(grad_d),
        d_ref=dict(d_ref))
    samples = SampleSet.draw(n, len(grad_s), seed=seed)
    return LinearizedYieldEstimator([model], samples)


class TestLinearConstraints:
    def test_linearization_of_affine_constraint_is_exact(self):
        t = LinearTemplate(min_d0=0.4)
        ev = Evaluator(t)
        linear = linearize_constraints(ev, {"d0": 1.0, "d1": 0.0})
        for d0 in (0.0, 0.4, 2.0):
            values = linear.values({"d0": d0, "d1": 0.5})
            assert values[0] == pytest.approx(d0 - 0.4, abs=1e-6)

    def test_satisfied(self):
        t = LinearTemplate(min_d0=0.4)
        ev = Evaluator(t)
        linear = linearize_constraints(ev, {"d0": 1.0, "d1": 0.0})
        assert linear.satisfied({"d0": 0.5, "d1": 0.0})
        assert not linear.satisfied({"d0": 0.3, "d1": 0.0})

    def test_coordinate_interval_respects_constraint(self):
        t = LinearTemplate(min_d0=0.4)
        ev = Evaluator(t)
        linear = linearize_constraints(ev, {"d0": 1.0, "d1": 0.0})
        interval = linear.coordinate_interval({"d0": 1.0, "d1": 0.0},
                                              "d0", -10.0, 10.0)
        lo, hi = interval
        assert lo == pytest.approx(0.4, abs=1e-3)
        assert hi == 10.0

    def test_unconstrained_coordinate_full_box(self):
        t = LinearTemplate(min_d0=0.4)
        ev = Evaluator(t)
        linear = linearize_constraints(ev, {"d0": 1.0, "d1": 0.0})
        assert linear.coordinate_interval({"d0": 1.0, "d1": 0.0},
                                          "d1", -5.0, 5.0) == (-5.0, 5.0)

    def test_infeasible_fixed_constraint_returns_none(self):
        linear = LinearConstraints(
            names=("c0",), c0=np.array([-1.0]),
            jacobian=np.array([[0.0, 1.0]]),
            d_ref={"d0": 0.0, "d1": 0.0},
            design_names=("d0", "d1"))
        # c depends only on d1; moving d0 cannot fix the violation.
        assert linear.coordinate_interval({"d0": 0.0, "d1": 0.0},
                                          "d0", -1.0, 1.0) is None

    def test_unconstrained_region(self):
        region = UnconstrainedRegion()
        assert region.coordinate_interval({}, "x", -1.0, 2.0) == (-1.0, 2.0)
        assert region.satisfied({})

    def test_violation_helper(self):
        assert violation({"a": 1.0, "b": -0.5, "c": -0.25}) == \
            pytest.approx(0.75)
        assert violation({"a": 0.0}) == 0.0

    def test_true_feasible(self):
        t = LinearTemplate(min_d0=0.4)
        ev = Evaluator(t)
        assert true_feasible(ev, {"d0": 1.0, "d1": 0.0})
        assert not true_feasible(ev, {"d0": 0.0, "d1": 0.0})


class TestFeasibleStartingPoint:
    def test_already_feasible_returns_unchanged(self):
        t = LinearTemplate(min_d0=0.4)
        ev = Evaluator(t)
        d0 = {"d0": 1.0, "d1": 0.5}
        d_f, values = find_feasible_point(ev, d0)
        assert d_f == d0
        assert values["c0"] == pytest.approx(0.6)

    def test_projects_onto_boundary(self):
        """Sec. 5.5: closest feasible point to an infeasible start."""
        t = LinearTemplate(min_d0=0.4)
        ev = Evaluator(t)
        d_f, values = find_feasible_point(ev, {"d0": -1.0, "d1": 0.7})
        assert values["c0"] >= -1e-9
        assert d_f["d0"] == pytest.approx(0.4, abs=1e-3)
        assert d_f["d1"] == pytest.approx(0.7, abs=1e-6)  # untouched

    def test_infeasible_problem_raises(self):
        t = LinearTemplate(min_d0=99.0)  # outside the design box
        ev = Evaluator(t)
        with pytest.raises(FeasibilityError):
            find_feasible_point(ev, {"d0": 0.0, "d1": 0.0})


class TestLineSearch:
    def test_full_step_when_feasible(self):
        t = LinearTemplate(min_d0=0.4)
        ev = Evaluator(t)
        result = feasibility_line_search(ev, {"d0": 1.0, "d1": 0.0},
                                         {"d0": 2.0, "d1": 1.0})
        assert result.gamma == 1.0
        assert result.simulations == 1

    def test_bisection_stops_at_boundary(self):
        """Eq. 23: largest gamma keeping c(d) >= 0, found by bisection."""
        t = LinearTemplate(min_d0=0.4)
        ev = Evaluator(t)
        d_f = {"d0": 1.0, "d1": 0.0}
        d_star = {"d0": -1.0, "d1": 0.0}  # crosses c at gamma = 0.3
        result = feasibility_line_search(ev, d_f, d_star)
        assert result.gamma == pytest.approx(0.3, abs=0.01)
        assert t.constraints(result.d_new)["c0"] >= -1e-9
        assert result.simulations <= 11  # paper: ~10 simulations

    def test_zero_direction_is_noop(self):
        t = LinearTemplate(min_d0=0.4)
        ev = Evaluator(t)
        d_f = {"d0": 1.0, "d1": 0.0}
        result = feasibility_line_search(ev, d_f, dict(d_f))
        assert result.d_new == d_f


class TestCoordinateSearch:
    def test_improves_yield_to_optimum(self):
        # margin = -1 + 1.0*d0 + s0: best yield at d0 as high as allowed.
        est = estimator_for([1.0, 0.0], {"d0": 1.0, "d1": 0.0},
                            g_ref=-1.0, d_ref={"d0": 0.0, "d1": 0.0})
        t = LinearTemplate()
        result = coordinate_search(est, UnconstrainedRegion(), t,
                                   {"d0": 0.0, "d1": 0.0})
        assert result.yield_estimate > 0.99
        assert result.d_star["d0"] > 3.0
        assert result.yield_estimate >= result.initial_estimate

    def test_respects_linear_constraints(self):
        est = estimator_for([1.0, 0.0], {"d0": -1.0, "d1": 0.0},
                            g_ref=1.0, d_ref={"d0": 0.0, "d1": 0.0})
        # Yield wants d0 as low as possible; constraint says d0 >= 0.4.
        linear = LinearConstraints(
            names=("c0",), c0=np.array([-0.4]),
            jacobian=np.array([[1.0, 0.0]]),
            d_ref={"d0": 0.0, "d1": 0.0}, design_names=("d0", "d1"))
        t = LinearTemplate()
        result = coordinate_search(est, linear, t, {"d0": 1.0, "d1": 0.0})
        assert result.d_star["d0"] >= 0.4 - 1e-9

    def test_respects_trust_radius(self):
        est = estimator_for([1.0, 0.0], {"d0": 1.0, "d1": 0.0},
                            g_ref=-3.0, d_ref={"d0": 0.0, "d1": 0.0})
        t = LinearTemplate()
        start = {"d0": 1.0, "d1": 0.0}
        result = coordinate_search(est, UnconstrainedRegion(), t, start,
                                   trust_radius=0.25)
        assert result.d_star["d0"] <= 1.0 * 1.25 + 1e-12

    def test_logs_steps(self):
        est = estimator_for([1.0, 0.0], {"d0": 1.0, "d1": 0.0},
                            g_ref=-1.0, d_ref={"d0": 0.0, "d1": 0.0})
        t = LinearTemplate()
        result = coordinate_search(est, UnconstrainedRegion(), t,
                                   {"d0": 0.0, "d1": 0.0})
        assert result.steps
        sweep, name, value, estimate = result.steps[0]
        assert name == "d0"
        assert estimate > result.initial_estimate
