"""Tests for the Miller opamp template (Fig. 8), including a transient
cross-check of the slew-rate design equation."""

import numpy as np
import pytest

from repro.circuit import solve_transient, step_waveform
from repro.circuits import MillerOpamp
from repro.evaluation import Evaluator
from repro.statistics import StatisticalSpace

TEMPLATE = MillerOpamp()
D = TEMPLATE.initial_design()
THETA = TEMPLATE.operating_range.nominal()
S0 = TEMPLATE.statistical_space.nominal()
NOMINAL = TEMPLATE.evaluate(D, S0, THETA)


class TestNominalPerformances:
    def test_values_in_plausible_ranges(self):
        assert 70.0 < NOMINAL["a0"] < 110.0  # dB
        assert 1.0 < NOMINAL["ft"] < 20.0  # MHz
        assert 40.0 < NOMINAL["pm"] < 90.0  # degrees
        assert 1.0 < NOMINAL["sr"] < 10.0  # V/us
        assert 0.1 < NOMINAL["power"] < 1.3  # mW

    def test_all_performances_extracted(self):
        assert set(NOMINAL) == {p.name for p in TEMPLATE.performances}

    def test_deterministic(self):
        again = TEMPLATE.evaluate(D, S0, THETA)
        for key in NOMINAL:
            assert again[key] == pytest.approx(NOMINAL[key], rel=1e-9)


class TestDesignSensitivities:
    def test_miller_cap_trades_ft_for_sr(self):
        d = dict(D)
        d["cc"] = D["cc"] * 1.5
        slower = TEMPLATE.evaluate(d, S0, THETA)
        assert slower["ft"] < NOMINAL["ft"]
        assert slower["sr"] < NOMINAL["sr"]

    def test_tail_width_raises_slew(self):
        d = dict(D)
        d["w5"] = D["w5"] * 1.4
        faster = TEMPLATE.evaluate(d, S0, THETA)
        assert faster["sr"] > NOMINAL["sr"]
        assert faster["power"] > NOMINAL["power"]

    def test_bias_resistor_controls_power(self):
        d = dict(D)
        d["rb"] = D["rb"] * 1.5
        result = TEMPLATE.evaluate(d, S0, THETA)
        assert result["power"] < NOMINAL["power"]


class TestStatisticalEffects:
    def test_sheet_resistance_moves_slew(self):
        space = TEMPLATE.statistical_space
        s = np.zeros(space.dim)
        s[space.index("gres")] = 2.0  # resistors +16 %
        slow = TEMPLATE.evaluate(D, s, THETA)
        assert slow["sr"] < NOMINAL["sr"]
        assert slow["power"] < NOMINAL["power"]

    def test_global_vth_shift_changes_bias(self):
        space = TEMPLATE.statistical_space
        s = np.zeros(space.dim)
        s[space.index("gvtn")] = 3.0
        shifted = TEMPLATE.evaluate(D, s, THETA)
        assert shifted["power"] != pytest.approx(NOMINAL["power"],
                                                 rel=1e-4)


class TestOperatingEffects:
    def test_low_supply_reduces_slew(self):
        low = TEMPLATE.evaluate(D, S0, {"temp": 27.0, "vdd": 3.0})
        high = TEMPLATE.evaluate(D, S0, {"temp": 27.0, "vdd": 3.6})
        assert low["sr"] < high["sr"]
        assert low["power"] < high["power"]

    def test_temperature_reduces_gain(self):
        cold = TEMPLATE.evaluate(D, S0, {"temp": -40.0, "vdd": 3.3})
        hot = TEMPLATE.evaluate(D, S0, {"temp": 125.0, "vdd": 3.3})
        assert hot["a0"] < cold["a0"]


class TestConstraints:
    def test_constraint_keys_match_declaration(self):
        values = TEMPLATE.constraints(D)
        assert set(values) == set(TEMPLATE.constraint_names)

    def test_saturation_margins_mostly_positive(self):
        values = TEMPLATE.constraints(D)
        sat = [v for name, v in values.items() if name.startswith("sat_")]
        assert all(v > 0 for v in sat)

    def test_tiny_devices_violate_conduction(self):
        d = dict(D)
        d["w3"] = 200e-6  # huge, short mirror load -> overdrive collapses
        d["l3"] = 0.35e-6
        values = TEMPLATE.constraints(d)
        assert min(values.values()) < 0.0


class TestSlewRateAgainstTransient:
    @pytest.mark.slow
    def test_formula_matches_transient_within_factor_two(self):
        """The optimizer's SR = I_tail/CC design equation is validated by a
        real large-signal transient: unity-feedback step response."""
        space = TEMPLATE.statistical_space
        pv = space.to_physical(D, S0)
        circuit = TEMPLATE.build(D, pv, THETA)
        # Re-purpose the bench: big differential step on VIP; the feedback
        # inductor closes the loop at low frequency, so drive the step
        # THROUGH the bench source and watch the output slew.
        vip = circuit.device("VIP")
        vcm = vip.dc
        vip.waveform = step_waveform(2e-6, vcm - 0.25, vcm + 0.25)
        result = solve_transient(circuit, t_stop=8e-6, dt=4e-9)
        measured = result.slew_rate("out") / 1e6  # V/us
        predicted = NOMINAL["sr"]
        assert measured == pytest.approx(predicted, rel=1.0)
        assert measured > 0.3 * predicted
