"""Tests for the paper-style table renderers."""

import pytest

from helpers import LinearTemplate
from repro.core.mismatch import PairMismatch
from repro.core.montecarlo import MonteCarloResult
from repro.core.optimizer import IterationRecord, OptimizationResult
from repro.reporting import (effort_table, improvement_table, mismatch_table,
                             optimization_trace_table, side_by_side)


def record(index, margin, bad, y_mc, mc=None):
    return IterationRecord(
        index=index, d={"d0": 1.0, "d1": 0.0},
        margins={"f>=": margin}, bad_samples={"f>=": bad},
        yield_linear=1.0 - bad, yield_mc=y_mc, mc=mc,
        worst_case={}, simulations=100 * (index + 1),
        constraint_simulations=10,
        gamma=None if index == 0 else 1.0)


def mc_result(mean, std):
    return MonteCarloResult(
        yield_estimate=0.9, n_samples=300, bad_fraction={"f>=": 0.1},
        simulations=300, performance_mean={"f>=": mean},
        performance_std={"f>=": std})


class TestTraceTable:
    def test_contains_rows_and_yield(self):
        t = LinearTemplate()
        result = OptimizationResult(
            template_name="fake",
            records=[record(0, -2.3, 1.0, 0.0), record(1, 3.7, 0.0009,
                                                       0.999)],
            d_final={"d0": 1.0, "d1": 0.0}, converged=True,
            wall_time_s=1.0, total_simulations=200,
            total_constraint_simulations=20)
        text = optimization_trace_table(t, result)
        assert "Initial" in text
        assert "1st Iter." in text
        assert "-2.30" in text
        assert "1000.0" in text  # permille
        assert "Y_tilde = 99.9%" in text

    def test_iteration_suffixes(self):
        from repro.reporting.tables import _iteration_label
        assert _iteration_label(0) == "Initial"
        assert _iteration_label(1) == "1st Iter."
        assert _iteration_label(2) == "2nd Iter."
        assert _iteration_label(3) == "3rd Iter."
        assert _iteration_label(4) == "4th Iter."


class TestImprovementTable:
    def test_relative_changes(self):
        t = LinearTemplate()  # spec f >= 0
        before = record(1, 1.0, 0.1, 0.9, mc=mc_result(mean=2.0, std=1.0))
        after = record(2, 2.0, 0.0, 1.0, mc=mc_result(mean=3.0, std=0.5))
        text = improvement_table(t, before, after)
        # dMu/(Mu - fb) = (3-2)/2 = +50 %, dSigma/Sigma = -50 %.
        assert "+50.0%" in text
        assert "-50.0%" in text

    def test_requires_mc_statistics(self):
        t = LinearTemplate()
        with pytest.raises(ValueError):
            improvement_table(t, record(1, 1.0, 0.1, 0.9),
                              record(2, 2.0, 0.0, 1.0))


class TestMismatchTable:
    def test_layout(self):
        pairs = [
            PairMismatch("dvt_M1", "dvt_M2", 0.84, "cmrr>="),
            PairMismatch("dvt_M3", "dvt_M4", 0.11, "cmrr>="),
            PairMismatch("dvt_M9", "dvt_M10", 0.06, "cmrr>="),
        ]
        text = mismatch_table(pairs, top=3)
        assert "P1=(M1,M2)" in text
        assert "0.84" in text
        assert "0.06" in text


class TestEffortTable:
    def test_formats_minutes_and_seconds(self):
        text = effort_table([("Folded-Cascode", 689, 1800.0),
                             ("Miller", 627, 45.0)])
        assert "Folded-Cascode" in text
        assert "30.0 min" in text
        assert "45.0 s" in text


class TestSideBySide:
    def test_banner(self):
        text = side_by_side("paper rows", "our rows", "Table 1")
        assert "Table 1" in text
        assert "--- paper ---" in text
        assert "--- this reproduction ---" in text


class TestQueueTable:
    def test_renders_daemon_stats(self):
        from repro.reporting import queue_table
        text = queue_table({
            "queue": {
                "jobs": 4,
                "by_state": {"done": 2, "queued": 1, "failed": 1},
                "by_tenant": {"alice": {"done": 2},
                              "bob": {"queued": 1, "failed": 1}},
                "cache_hits": 1,
                "simulations": 96,
            },
            "store": {"objects": 3, "root": "/tmp/store", "invalid": 1},
        })
        assert "Jobs (4 total)" in text
        assert "queued" in text and "done" in text and "failed" in text
        assert "alice" in text and "bob" in text
        assert "cache hits   : 1" in text
        assert "simulations  : 96" in text
        assert "3 object(s) at /tmp/store" in text
        assert "store invalid: 1" in text

    def test_accepts_bare_queue_stats(self):
        from repro.reporting import queue_table
        text = queue_table({"jobs": 0, "by_state": {}, "by_tenant": {},
                            "cache_hits": 0, "simulations": 0})
        assert "Jobs (0 total)" in text
