"""Tests for the version-2 checkpoint compaction (delta-encoded
worst-case blocks) and for atomic checkpoint writes under concurrency."""

import copy
import json
from concurrent.futures import ProcessPoolExecutor

from helpers import LinearTemplate
from repro.core.optimizer import OptimizerConfig, YieldOptimizer
from repro.runtime import (CHECKPOINT_VERSION, OptimizerCheckpoint,
                           READABLE_VERSIONS, load_checkpoint,
                           record_to_dict, save_checkpoint)
from repro.runtime.checkpoint import _wc_to_dict


def checkpointed_run(tmp_path, name="ck.json"):
    path = str(tmp_path / name)
    config = OptimizerConfig(max_iterations=3, n_samples_linear=400,
                             n_samples_verify=60, multistart=1, seed=7,
                             min_improvement=-1.0)
    result = YieldOptimizer(LinearTemplate(), config,
                            checkpoint_path=path).run()
    return path, config, result


def assert_states_equal(restored, state):
    assert restored.iteration == state.iteration
    assert restored.d_f == state.d_f
    assert len(restored.records) == len(state.records)
    for ours, theirs in zip(restored.records, state.records):
        assert record_to_dict(ours) == record_to_dict(theirs)
    if state.previous_wc is None:
        assert restored.previous_wc is None
    else:
        assert {k: _wc_to_dict(v)
                for k, v in restored.previous_wc.items()} == \
            {k: _wc_to_dict(v) for k, v in state.previous_wc.items()}


class TestCompaction:
    def test_markers_appear_for_repeated_worst_case_blocks(self, tmp_path):
        path, _, _ = checkpointed_run(tmp_path)
        state = load_checkpoint(path, LinearTemplate())
        # force guaranteed repetition: append bitwise copies of the last
        # record (a converged run repeats its worst-case blocks exactly)
        last = state.records[-1]
        for offset in (1, 2):
            duplicate = copy.deepcopy(last)
            duplicate.index = last.index + offset
            state.records.append(duplicate)
        state.previous_wc = dict(last.worst_case)
        out = str(tmp_path / "compact.json")
        save_checkpoint(out, state)
        with open(out) as handle:
            payload = json.load(handle)
        assert payload["version"] == CHECKPOINT_VERSION == 2
        for record in payload["records"][-2:]:
            assert set(record["worst_case"].values()) == {"@prev"}
        assert set(payload["previous_wc"].values()) == {"@prev"}
        # the first record is always stored in full
        first = payload["records"][0]["worst_case"]
        assert all(isinstance(wc, dict) for wc in first.values())

    def test_round_trip_is_bit_identical(self, tmp_path):
        path, _, _ = checkpointed_run(tmp_path)
        state = load_checkpoint(path, LinearTemplate())
        duplicate = copy.deepcopy(state.records[-1])
        duplicate.index += 1
        state.records.append(duplicate)
        state.previous_wc = dict(duplicate.worst_case)
        out = str(tmp_path / "compact.json")
        save_checkpoint(out, state)
        restored = load_checkpoint(out, LinearTemplate())
        assert_states_equal(restored, state)
        # saving the restored state reproduces the same bytes
        again = str(tmp_path / "again.json")
        save_checkpoint(again, restored)
        with open(out) as a, open(again) as b:
            assert a.read() == b.read()

    def test_resume_through_compacted_checkpoint(self, tmp_path):
        path, config, result = checkpointed_run(tmp_path)
        with open(path) as handle:
            assert json.load(handle)["version"] == 2
        resumed = YieldOptimizer(LinearTemplate(), config,
                                 checkpoint_path=path, resume=True).run()
        assert resumed.d_final == result.d_final
        assert [r.yield_mc for r in resumed.records] == \
            [r.yield_mc for r in result.records]

    def test_version_1_checkpoints_still_load(self, tmp_path):
        path, _, _ = checkpointed_run(tmp_path)
        state = load_checkpoint(path, LinearTemplate())
        # re-serialize the exact payload the version-1 writer produced:
        # full worst-case blocks, no markers
        payload = {
            "version": 1,
            "template_name": state.template_name,
            "seed": state.seed,
            "iteration": state.iteration,
            "d_f": dict(state.d_f),
            "records": [record_to_dict(r) for r in state.records],
            "previous_wc": None if state.previous_wc is None else {
                key: _wc_to_dict(wc)
                for key, wc in state.previous_wc.items()},
            "sample_state": dict(state.sample_state),
            "counters": dict(state.counters),
            "wall_time_s": state.wall_time_s,
            "stop_reason": state.stop_reason,
        }
        legacy = tmp_path / "v1.json"
        legacy.write_text(json.dumps(payload))
        assert 1 in READABLE_VERSIONS
        restored = load_checkpoint(str(legacy), LinearTemplate())
        assert_states_equal(restored, state)

    def test_compaction_shrinks_the_file(self, tmp_path):
        path, _, _ = checkpointed_run(tmp_path)
        state = load_checkpoint(path, LinearTemplate())
        for offset in range(1, 6):
            duplicate = copy.deepcopy(state.records[-1])
            duplicate.index += offset
            state.records.append(duplicate)
        compact = str(tmp_path / "compact.json")
        save_checkpoint(compact, state)
        expanded = len(json.dumps(
            [record_to_dict(r)["worst_case"] for r in state.records]))
        with open(compact) as handle:
            stored = len(json.dumps(
                [r["worst_case"]
                 for r in json.load(handle)["records"]]))
        assert stored < 0.5 * expanded


def hammer_checkpoints(job):
    """Worker: write ``writes`` distinct checkpoints to one path."""
    path, tag, writes = job
    for index in range(writes):
        checkpoint = OptimizerCheckpoint(
            template_name=tag, seed=index, iteration=index,
            d_f={"d0": float(index)},
            sample_state={"write": index},
            counters={"simulations": index})
        save_checkpoint(path, checkpoint)
    return tag


class TestConcurrentWrites:
    def test_parallel_jobs_never_interleave(self, tmp_path):
        """Two jobs hammering distinct checkpoint paths from separate
        processes: every observable file state is one complete,
        internally consistent JSON document (the atomic temp-file +
        rename protocol), never a mix of the two writers."""
        jobs = [(str(tmp_path / f"job{n}.json"), f"job{n}", 40)
                for n in range(2)]
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(hammer_checkpoints, job)
                       for job in jobs]
            observations = 0
            while not all(f.done() for f in futures):
                for path, tag, _ in jobs:
                    try:
                        with open(path) as handle:
                            payload = json.load(handle)
                    except (OSError, ValueError):
                        continue  # not yet created; never half-written
                    # a parse that succeeds must be one writer's complete
                    # payload: the tag matches the path and the monotone
                    # fields agree with each other
                    assert payload["template_name"] == tag
                    assert payload["iteration"] == \
                        payload["sample_state"]["write"] == \
                        payload["counters"]["simulations"]
                    observations += 1
            assert [f.result() for f in futures] == ["job0", "job1"]
        assert observations > 0
        for path, tag, writes in jobs:
            with open(path) as handle:
                final = json.load(handle)
            assert final["template_name"] == tag
            assert final["iteration"] == writes - 1
        leftovers = list(tmp_path.glob("*.tmp"))
        assert leftovers == []
