"""Unit tests for the statistical space and the Sec. 4 transform."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.pdk import GENERIC035
from repro.statistics import (DeviceGeometry, LocalVariation, SampleSet,
                              StatisticalSpace)


def make_locals():
    return (
        LocalVariation("dvt_M1", "M1", "vth", 1,
                       DeviceGeometry(w="w1", l="l1")),
        LocalVariation("dvt_M2", "M2", "vth", 1,
                       DeviceGeometry(w="w1", l="l1")),
        LocalVariation("dbeta_M1", "M1", "beta", 1,
                       DeviceGeometry(w="w1", l="l1")),
    )


D = {"w1": 20e-6, "l1": 1e-6}


class TestDeviceGeometry:
    def test_resolves_names_and_values(self):
        g = DeviceGeometry(w="w1", l=0.5e-6, m=2)
        assert g.resolve(D) == (20e-6, 0.5e-6, 2)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ReproError):
            DeviceGeometry(w="nope", l=1e-6).resolve(D)

    def test_non_positive_rejected(self):
        with pytest.raises(ReproError):
            DeviceGeometry(w=0.0, l=1e-6).resolve(D)


class TestLocalVariation:
    def test_pelgrom_sigma_scaling(self):
        """Quadrupling the area halves the local sigma (Pelgrom)."""
        lv = make_locals()[0]
        small = lv.sigma(GENERIC035, {"w1": 10e-6, "l1": 1e-6})
        large = lv.sigma(GENERIC035, {"w1": 40e-6, "l1": 1e-6})
        assert small == pytest.approx(2 * large, rel=1e-12)

    def test_pair_difference_matches_pelgrom_constant(self):
        """sigma(dVth_pair) = A_VT / sqrt(W L) for two independent devices."""
        lv = make_locals()[0]
        sigma_device = lv.sigma(GENERIC035, D)
        sigma_pair = np.sqrt(2) * sigma_device
        expected = GENERIC035.pelgrom.avt_nmos / np.sqrt(20e-6 * 1e-6)
        assert sigma_pair == pytest.approx(expected, rel=1e-12)

    def test_invalid_kind_rejected(self):
        with pytest.raises(ReproError):
            LocalVariation("x", "M1", "banana", 1,
                           DeviceGeometry(w=1e-6, l=1e-6))


class TestStatisticalSpace:
    def test_dimension_and_names(self):
        space = StatisticalSpace(GENERIC035, make_locals())
        assert space.dim == len(GENERIC035.global_names) + 3
        assert space.names[:len(GENERIC035.global_names)] == \
            GENERIC035.global_names
        assert space.index("dvt_M2") == len(GENERIC035.global_names) + 1

    def test_duplicate_parameter_rejected(self):
        doubled = make_locals() + (make_locals()[0],)
        with pytest.raises(ReproError):
            StatisticalSpace(GENERIC035, doubled)

    def test_transform_factorizes_covariance(self):
        """G(d) G(d)^T == C(d) — the defining property of Eq. 11."""
        space = StatisticalSpace(GENERIC035, make_locals())
        g = space.transform_matrix(D)
        c = space.covariance(D)
        assert np.allclose(g @ g.T, c, atol=1e-18)

    @given(scale=st.floats(0.5, 8.0))
    @settings(max_examples=30, deadline=None)
    def test_covariance_tracks_design(self, scale):
        """Scaling the device area by k scales the local variances by 1/k —
        the design dependence of C(d) that motivates Sec. 4."""
        space = StatisticalSpace(GENERIC035, make_locals())
        base = space.covariance(D)
        scaled = space.covariance({"w1": D["w1"] * scale, "l1": D["l1"]})
        ng = space.n_global
        assert np.allclose(scaled[ng:, ng:] * scale, base[ng:, ng:],
                           rtol=1e-9)
        assert np.allclose(scaled[:ng, :ng], base[:ng, :ng])  # globals fixed

    def test_to_physical_splits_global_and_local(self):
        space = StatisticalSpace(GENERIC035, make_locals())
        s_hat = np.zeros(space.dim)
        s_hat[space.index("gvtn")] = 1.0  # +1 sigma global NMOS vth
        s_hat[space.index("dvt_M1")] = 1.0  # +1 sigma local on M1
        pv = space.to_physical(D, s_hat)
        sigma_g = GENERIC035.global_variations[0].sigma
        sigma_l = make_locals()[0].sigma(GENERIC035, D)
        assert pv.delta_vto("M1") == pytest.approx(sigma_g + sigma_l)
        assert pv.delta_vto("M2") == pytest.approx(sigma_g)
        assert pv.beta_factor("M2") == pytest.approx(1.0)

    def test_resistance_factor_from_gres(self):
        space = StatisticalSpace(GENERIC035, make_locals())
        s_hat = np.zeros(space.dim)
        s_hat[space.index("gres")] = 2.0
        pv = space.to_physical(D, s_hat)
        sigma = GENERIC035.global_variations[-1].sigma
        assert pv.resistance_factor == pytest.approx(1.0 + 2.0 * sigma)

    def test_factors_clamped_at_extreme_tails(self):
        """Multiplicative factors stay physical even for absurd probes."""
        space = StatisticalSpace(GENERIC035, make_locals())
        s_hat = np.full(space.dim, -50.0)
        pv = space.to_physical(D, s_hat)
        assert pv.resistance_factor >= 0.05
        assert all(v >= 0.05 for v in pv.device_beta_factor.values())

    def test_wrong_shape_rejected(self):
        space = StatisticalSpace(GENERIC035, make_locals())
        with pytest.raises(ReproError):
            space.to_physical(D, np.zeros(space.dim + 1))

    def test_without_globals(self):
        space = StatisticalSpace(GENERIC035, make_locals(),
                                 with_global=False)
        assert space.dim == 3
        s_hat = np.array([1.0, 0.0, 0.0])
        pv = space.to_physical(D, s_hat)
        assert pv.global_values == {}
        assert pv.delta_vto("M1") > 0
        assert pv.resistance_factor == 1.0

    def test_nominal_is_zero(self):
        space = StatisticalSpace(GENERIC035, make_locals())
        assert np.all(space.nominal() == 0.0)

    def test_unknown_name_rejected(self):
        space = StatisticalSpace(GENERIC035, make_locals())
        with pytest.raises(ReproError):
            space.index("ghost")


class TestSampleSet:
    def test_seeded_reproducibility(self):
        a = SampleSet.draw(100, 5, seed=42)
        b = SampleSet.draw(100, 5, seed=42)
        assert np.array_equal(a.matrix, b.matrix)

    def test_different_seeds_differ(self):
        a = SampleSet.draw(100, 5, seed=1)
        b = SampleSet.draw(100, 5, seed=2)
        assert not np.array_equal(a.matrix, b.matrix)

    def test_shape_and_iteration(self):
        s = SampleSet.draw(10, 3, seed=0)
        assert (s.n, s.dim) == (10, 3)
        assert len(s) == 10
        assert len(list(s)) == 10
        assert s[0].shape == (3,)

    def test_matrix_is_readonly(self):
        s = SampleSet.draw(5, 2, seed=0)
        with pytest.raises(ValueError):
            s.matrix[0, 0] = 99.0

    def test_moments_are_standard_normal(self):
        s = SampleSet.draw(20000, 2, seed=3)
        assert s.matrix.mean() == pytest.approx(0.0, abs=0.02)
        assert s.matrix.std() == pytest.approx(1.0, abs=0.02)

    def test_invalid_shape_rejected(self):
        with pytest.raises(Exception):
            SampleSet.draw(0, 3)
        with pytest.raises(Exception):
            SampleSet(np.zeros(5))
