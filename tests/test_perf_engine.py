"""Tests for the batched simulation engine (PR: stacked AC solves,
warm-started DC, persistent shared pool).

The engine's contract is *bit-identity*: batched AC solves equal
one-at-a-time solves, warm-started DC never changes which solution is
found (only how fast), and pooled worst-case / gradient / Monte-Carlo
execution equals the serial path value-for-value and counter-for-counter
(Table-7 accounting).
"""

import math

import numpy as np
import pytest

from helpers import LinearTemplate

from repro.circuit import Circuit, solve_dc
from repro.circuit.ac import (AcSystem, SECTION_POINTS,
                              shared_matrix_transfers,
                              unity_gain_frequency)
from repro.circuit.dc import GMIN_FINAL, WarmStartCache
from repro.circuits.base import WARM_KEY_SIG, _warm_rep
from repro.errors import ConvergenceError
from repro.evaluation.evaluator import Evaluator, _quantize
from repro.evaluation.gradient import (all_gradients_d, all_gradients_s,
                                       performance_gradient_d,
                                       performance_gradient_s)
from repro.yieldsim import OperationalMC, PoolHandle, dispatch_points
from repro.yieldsim.executor import unwrap_pool_stack


def rc_lowpass(r=1e3, c=1e-6):
    ckt = Circuit("rc")
    ckt.vsource("V1", "in", "0", dc=0.0, ac=1.0)
    ckt.resistor("R1", "in", "out", r)
    ckt.capacitor("C1", "out", "0", c)
    return ckt, 1.0 / (2 * math.pi * r * c)


def two_stage_gain_block():
    """A linear block with |H| ~ 1e4 at DC and two poles, so the
    unity-gain search has a genuine crossing to find."""
    ckt = Circuit("gain2")
    ckt.vsource("V1", "in", "0", dc=0.0, ac=1.0)
    ckt.vccs("G1", "0", "n1", "in", "0", gm=1e-2)
    ckt.resistor("R1", "n1", "0", 1e4)   # stage gain 100
    ckt.capacitor("C1", "n1", "0", 1e-9)
    ckt.vccs("G2", "0", "out", "n1", "0", gm=1e-3)
    ckt.resistor("R2", "out", "0", 1e5)  # stage gain 100
    ckt.capacitor("C2", "out", "0", 1e-12)
    return ckt


class TestSolveMany:
    def test_bitwise_equal_to_per_frequency_solves(self):
        ckt, fc = rc_lowpass()
        system = AcSystem(ckt, solve_dc(ckt))
        freqs = np.logspace(0, 8, 64)
        batch = system.solve_many(freqs)
        assert batch.shape[0] == 64
        for i, freq in enumerate(freqs):
            one = system.solve(float(freq))
            assert np.array_equal(batch[i], one)

    def test_transfer_many_matches_transfer(self):
        ckt, fc = rc_lowpass()
        system = AcSystem(ckt, solve_dc(ckt))
        freqs = [0.1 * fc, fc, 10 * fc]
        batch = system.transfer_many("out", freqs)
        for i, freq in enumerate(freqs):
            assert batch[i] == system.transfer("out", freq)

    def test_ground_node_returns_zeros(self):
        ckt, _ = rc_lowpass()
        system = AcSystem(ckt, solve_dc(ckt))
        assert np.all(system.transfer_many("0", [1.0, 2.0]) == 0.0)


class TestUnityGainSearch:
    def test_section_one_is_classic_bisection(self):
        ckt = two_stage_gain_block()
        system = AcSystem(ckt, solve_dc(ckt))
        batched = unity_gain_frequency(system, "out")
        bisect = unity_gain_frequency(system, "out", section_points=1)
        # Both brackets shrink below the same log-f tolerance, so the
        # midpoints agree to that tolerance.
        assert math.isclose(math.log10(batched), math.log10(bisect),
                            abs_tol=1e-7)

    def test_batched_search_uses_fewer_solves(self):
        ckt = two_stage_gain_block()
        system = AcSystem(ckt, solve_dc(ckt))
        calls = {"many": 0, "one": 0}
        orig_many, orig_one = system.solve_many, system.solve

        def counting_many(freqs):
            calls["many"] += 1
            return orig_many(freqs)

        def counting_one(freq):
            calls["one"] += 1
            return orig_one(freq)

        system.solve_many = counting_many
        system.solve = counting_one
        unity_gain_frequency(system, "out")
        batched_rounds = calls["many"]
        calls["many"] = calls["one"] = 0
        unity_gain_frequency(system, "out", section_points=1)
        bisect_rounds = calls["many"]
        assert batched_rounds * (SECTION_POINTS + 1) >= bisect_rounds
        assert batched_rounds < bisect_rounds / 2

    def test_shared_matrix_transfers_bitwise(self):
        ckt_a, fc = rc_lowpass()
        op = solve_dc(ckt_a)
        sys_a = AcSystem(ckt_a, op)
        # Same topology, different drive -> shared (G, B), distinct rhs.
        ckt_b, _ = rc_lowpass()
        ckt_b.devices[0].ac = 0.5
        sys_b = AcSystem(ckt_b, solve_dc(ckt_b))
        joint = shared_matrix_transfers([sys_a, sys_b], "out", fc)
        assert joint[0] == sys_a.transfer("out", fc)
        assert joint[1] == sys_b.transfer("out", fc)

    def test_shared_matrix_transfers_falls_back_on_mismatch(self):
        ckt_a, fc = rc_lowpass()
        sys_a = AcSystem(ckt_a, solve_dc(ckt_a))
        ckt_c, _ = rc_lowpass(r=2e3)  # different matrix
        sys_c = AcSystem(ckt_c, solve_dc(ckt_c))
        joint = shared_matrix_transfers([sys_a, sys_c], "out", fc)
        assert joint[0] == sys_a.transfer("out", fc)
        assert joint[1] == sys_c.transfer("out", fc)


class TestWarmStartDc:
    def test_valid_warm_start_converges_to_same_solution(self):
        ckt, _ = rc_lowpass()
        cold = solve_dc(ckt)
        warm = solve_dc(ckt, x0=cold.x + 1e-3)
        assert warm.strategy == "newton-warm"
        assert np.allclose(warm.x, cold.x, atol=1e-9)

    def test_garbage_x0_is_ignored(self):
        ckt, _ = rc_lowpass()
        cold = solve_dc(ckt)
        for bad in (np.full(3, np.nan), np.zeros(999)):
            result = solve_dc(ckt, x0=bad)
            assert result.strategy == "newton"
            assert np.array_equal(result.x, cold.x)

    def test_fallback_chain_reaches_gmin_stepping(self, monkeypatch):
        """When both the warm and the cold plain-Newton stages fail, the
        unchanged homotopy chain still solves the circuit."""
        from repro.circuit import dc as dc_mod
        ckt, _ = rc_lowpass()
        reference = solve_dc(ckt)
        original = dc_mod._newton
        calls = {"n": 0}

        def flaky(circuit, layout, x0, gmin, backend):
            calls["n"] += 1
            if calls["n"] <= 2:  # the newton-warm and newton stages
                raise ConvergenceError("injected failure")
            return original(circuit, layout, x0, gmin, backend)

        monkeypatch.setattr(dc_mod, "_newton", flaky)
        result = solve_dc(ckt, x0=reference.x)
        assert result.strategy == "gmin-stepping"
        assert np.allclose(result.x, reference.x, atol=1e-6)

    def test_warm_cache_fifo_and_negative_caching(self):
        cache = WarmStartCache(maxsize=2)
        cache.store(("a",), np.ones(3))
        cache.store(("b",), None)  # failed anchor, negatively cached
        assert cache.lookup(("b",)) is None
        cache.store(("c",), np.zeros(2))  # evicts ("a",)
        assert len(cache) == 2
        assert cache.lookup(("a",)) is WarmStartCache._MISSING
        assert cache.hits == 1 and cache.misses == 1

    def test_warm_rep_quantization(self):
        assert _warm_rep(0.0) == 0.0
        assert _warm_rep(123.4e-6) == pytest.approx(120e-6)
        assert _warm_rep(-123.4e-6) == pytest.approx(-120e-6)
        # Pure function of the cell: nearby values share a representative.
        assert _warm_rep(121e-6) == _warm_rep(118e-6)
        assert math.isnan(_warm_rep(float("nan")))
        assert WARM_KEY_SIG == 2

    def test_anchor_is_order_independent(self):
        """The warm anchor is solved at the cell representative, so the
        evaluation *order* cannot change any value (serial/parallel
        bit-identity of warm-started runs)."""
        from repro.circuits import MillerOpamp
        d = MillerOpamp().initial_design()
        theta_a = {"temp": 27.0, "vdd": 3.3}
        theta_b = {"temp": 27.4, "vdd": 3.3}  # same quantized cell
        t1 = MillerOpamp()
        s0 = t1.statistical_space.nominal()
        va = t1.evaluate(d, s0, theta_a)
        vb = t1.evaluate(d, s0, theta_b)
        t2 = MillerOpamp()
        wb = t2.evaluate(d, s0, theta_b)  # reversed arrival order
        wa = t2.evaluate(d, s0, theta_a)
        assert va == wa and vb == wb
        assert t1._warm_cache.hits >= 1  # second point reused the anchor


class TestEvaluatorKey:
    def test_quantize_absorbs_roundtrip_noise(self):
        value = 1.2345e-6
        noisy = float(f"{value:.15e}")
        assert _quantize(value) == _quantize(noisy + value * 1e-14)

    def test_quantize_separates_fd_steps(self):
        value = 3.3
        assert _quantize(value) != _quantize(value * (1 + 1e-3))
        assert _quantize(value) != _quantize(value * (1 + 1e-6))

    def test_quantize_nonfinite(self):
        assert _quantize(float("inf")) == _quantize(float("inf"))
        nan_key = _quantize(float("nan"))
        assert nan_key != nan_key  # NaN never matches the cache

    def test_theta_order_does_not_matter(self):
        template = LinearTemplate()
        ev = Evaluator(template)
        d = template.initial_design()
        s = np.zeros(template.statistical_space.dim)
        k1 = ev._key(d, s, {"temp": 27.0})
        k2 = ev._key(d, s, dict([("temp", 27.0)]))
        assert k1 == k2

    def test_unknown_theta_names_fall_back_to_named_key(self):
        template = LinearTemplate()
        ev = Evaluator(template)
        d = template.initial_design()
        s = np.zeros(template.statistical_space.dim)
        k1 = ev._key(d, s, {"weird": 1.0})
        k2 = ev._key(d, s, {"weird": 1.0, "temp": 27.0})
        assert k1 != k2

    def test_cache_folding_reproduces_serial_counts(self):
        template = LinearTemplate()
        d = template.initial_design()
        dim = template.statistical_space.dim
        points = [np.full(dim, 0.1 * i) for i in range(4)]
        theta = {"temp": 27.0}
        serial = Evaluator(template)
        for s in points + points:  # second pass = pure hits
            serial.evaluate(d, s, theta)
        # "Worker" evaluates the same points, parent folds the entries.
        worker = Evaluator(template)
        for s in points + points:
            worker.evaluate(d, s, theta)
        parent = Evaluator(template)
        new, dup = parent.absorb_cache(worker.cache_items_since(0))
        parent.absorb_counts(simulations=new, requests=worker.request_count,
                             cache_hits=worker.cache_hits + dup,
                             cache_misses=new)
        assert parent.simulation_count == serial.simulation_count
        assert parent.cache_hits == serial.cache_hits
        assert parent.request_count == serial.request_count
        assert parent.cache_size == serial.cache_size


class TestUnwrapPoolStack:
    def test_plain_and_guarded_stacks_qualify(self):
        from repro.runtime import FaultPolicy, FaultTolerantEvaluator
        ev = Evaluator(LinearTemplate())
        assert unwrap_pool_stack(ev) == (ev, None, None)
        guarded = FaultTolerantEvaluator(ev, FaultPolicy())
        inner, policy, mode = unwrap_pool_stack(guarded)
        assert inner is ev and policy is guarded.policy

    def test_fault_injecting_stack_stays_serial(self):
        from repro.runtime import FaultInjectingEvaluator
        ev = Evaluator(LinearTemplate())
        injecting = FaultInjectingEvaluator(ev, rate=0.5, seed=1)
        assert unwrap_pool_stack(injecting) is None
        assert PoolHandle.for_evaluator(injecting, jobs=2) is None

    def test_jobs_below_two_means_no_pool(self):
        ev = Evaluator(LinearTemplate())
        assert PoolHandle.for_evaluator(ev, jobs=1) is None


@pytest.fixture(scope="module")
def linear_pool():
    template = LinearTemplate()
    evaluator = Evaluator(template)
    pool = PoolHandle.for_evaluator(evaluator, jobs=2)
    assert pool is not None
    yield template, evaluator, pool
    pool.close()


class TestSharedPool:
    def test_dispatch_points_matches_serial(self, linear_pool):
        template, evaluator, pool = linear_pool
        d = template.initial_design()
        dim = template.statistical_space.dim
        theta = {"temp": 27.0}
        points = [(d, np.full(dim, 0.05 * i), theta) for i in range(6)]
        serial = Evaluator(template)
        expected = [serial.evaluate(*p) for p in points]
        got = dispatch_points(pool, evaluator, points)
        assert got == expected
        assert evaluator.simulation_count == serial.simulation_count
        assert evaluator.cache_hits == serial.cache_hits

    def test_pooled_mc_matches_serial_bitwise(self, linear_pool):
        template, _, pool = linear_pool
        d = template.initial_design()
        theta_wc = {"f>=": {"temp": 27.0}}
        serial_ev = Evaluator(template)
        serial = OperationalMC().estimate(serial_ev, d, theta_wc,
                                          n_samples=64, seed=3)
        pooled_ev = Evaluator(template)
        estimator = OperationalMC()
        estimator.pool = pool
        pooled = estimator.estimate(pooled_ev, d, theta_wc,
                                    n_samples=64, seed=3)
        assert pooled.estimate == serial.estimate
        assert pooled.report.backend == "process-pool"
        assert pooled_ev.simulation_count == serial_ev.simulation_count
        assert pooled_ev.cache_hits == serial_ev.cache_hits
        assert pooled_ev.request_count == serial_ev.request_count

    def test_dead_pool_degrades_to_serial(self, linear_pool):
        template, _, _ = linear_pool
        evaluator = Evaluator(template)
        pool = PoolHandle.for_evaluator(evaluator, jobs=2)
        pool.kill()
        assert not pool.alive
        d = template.initial_design()
        dim = template.statistical_space.dim
        points = [(d, np.full(dim, 0.1 * i), {"temp": 27.0})
                  for i in range(4)]
        assert dispatch_points(pool, evaluator, points) is None
        estimator = OperationalMC()
        estimator.pool = pool
        result = estimator.estimate(evaluator, d, {"f>=": {"temp": 27.0}},
                                    n_samples=16, seed=3)
        assert result.report.backend == "serial"
        assert result.report.degraded_to_serial

    def test_incompatible_template_is_rejected(self, linear_pool):
        _, _, pool = linear_pool
        other = Evaluator(LinearTemplate(offset=9.0))
        assert not pool.compatible(other)

    def test_dead_pool_single_sample_is_not_flagged_degraded(self,
                                                             linear_pool):
        """n == 1 runs serially by design; a dead pool must not make
        that look like a degradation."""
        template, _, _ = linear_pool
        evaluator = Evaluator(template)
        pool = PoolHandle.for_evaluator(evaluator, jobs=2)
        pool.kill()
        estimator = OperationalMC()
        estimator.pool = pool
        result = estimator.estimate(evaluator, template.initial_design(),
                                    {"f>=": {"temp": 27.0}},
                                    n_samples=1, seed=3)
        assert result.report.backend == "serial"
        assert not result.report.degraded_to_serial
        assert not result.report.pool_incompatible

    def test_alive_pool_incompatible_stack_is_flagged(self, linear_pool):
        """An alive pool that cannot serve the evaluation stack runs
        the batch serially and must say so (pool_incompatible), not
        pass silently as a clean serial run."""
        _, _, pool = linear_pool
        other = Evaluator(LinearTemplate(offset=9.0))
        assert pool.alive and not pool.compatible(other)
        estimator = OperationalMC()
        estimator.pool = pool
        result = estimator.estimate(other,
                                    other.template.initial_design(),
                                    {"f>=": {"temp": 27.0}},
                                    n_samples=8, seed=3)
        assert result.report.backend == "serial"
        assert result.report.pool_incompatible
        assert not result.report.degraded_to_serial


@pytest.mark.parametrize("circuit", ["folded_cascode", "miller"])
def test_worst_case_and_gradients_parallel_bit_identity(circuit):
    """The ISSUE acceptance: pooled worst-case searches and gradient
    probes are bit-identical to serial on both benchmark circuits, and
    Table-7 counters match exactly."""
    from repro.circuits import FoldedCascodeOpamp, MillerOpamp
    from repro.core.worst_case import find_all_worst_case_points
    from repro.spec.operating import find_worst_case_operating_points

    make = {"folded_cascode": FoldedCascodeOpamp,
            "miller": MillerOpamp}[circuit]

    def one_pass(jobs):
        template = make()
        evaluator = Evaluator(template)
        d = template.initial_design()
        s0 = template.statistical_space.nominal()
        theta_wc = find_worst_case_operating_points(
            lambda theta: evaluator.evaluate(d, s0, theta),
            template.specs, template.operating_range)
        pool = PoolHandle.for_evaluator(evaluator, jobs=jobs)
        try:
            wc = find_all_worst_case_points(evaluator, d, theta_wc,
                                            seed=5, pool=pool)
            spec = template.specs[0]
            grads = performance_gradient_d(
                evaluator, spec.performance, d, s0,
                theta_wc[next(iter(theta_wc))], pool=pool)
            grads_s = performance_gradient_s(
                evaluator, spec.performance, d, s0,
                theta_wc[next(iter(theta_wc))], pool=pool)
        finally:
            if pool is not None:
                pool.close()
        counters = (evaluator.simulation_count, evaluator.request_count,
                    evaluator.cache_hits, evaluator.cache_misses)
        return wc, grads, grads_s, counters

    wc_s, gd_s, gs_s, counters_s = one_pass(jobs=1)
    wc_p, gd_p, gs_p, counters_p = one_pass(jobs=2)
    assert counters_s == counters_p
    assert gd_s == gd_p
    assert np.array_equal(gs_s, gs_p)
    assert set(wc_s) == set(wc_p)
    for key in wc_s:
        a, b = wc_s[key], wc_p[key]
        assert a.beta_wc == b.beta_wc, key
        assert np.array_equal(a.s_wc, b.s_wc), key
        assert np.array_equal(a.gradient, b.gradient), key
        assert a.g_wc == b.g_wc and a.g_nominal == b.g_nominal
        assert a.method == b.method and a.iterations == b.iterations


class TestOptimizerPoolAndBudget:
    def _config(self, **kw):
        from repro.core import OptimizerConfig
        base = dict(n_samples_linear=500, n_samples_verify=60,
                    max_iterations=3, seed=11)
        base.update(kw)
        return OptimizerConfig(**base)

    def test_pooled_run_matches_serial(self):
        from repro.core import YieldOptimizer
        serial = YieldOptimizer(LinearTemplate(),
                                self._config(jobs=1)).run()
        pooled = YieldOptimizer(LinearTemplate(),
                                self._config(jobs=2)).run()
        assert pooled.d_final == serial.d_final
        assert pooled.total_simulations == serial.total_simulations
        assert pooled.total_cache_hits == serial.total_cache_hits
        assert [r.yield_mc for r in pooled.records] == \
            [r.yield_mc for r in serial.records]
        assert [r.margins for r in pooled.records] == \
            [r.margins for r in serial.records]
        assert pooled.pool_jobs == 2 and pooled.pool_tasks > 0
        assert not pooled.pool_died
        assert pooled.health is not None and pooled.health.runs > 0

    def test_checkpoint_resume_of_pooled_run(self, tmp_path):
        from repro.core import YieldOptimizer
        path = str(tmp_path / "ckpt.json")
        straight = YieldOptimizer(LinearTemplate(),
                                  self._config(jobs=2)).run()
        YieldOptimizer(LinearTemplate(),
                       self._config(jobs=2, max_iterations=1),
                       checkpoint_path=path).run()
        resumed = YieldOptimizer(LinearTemplate(), self._config(jobs=2),
                                 checkpoint_path=path, resume=True).run()
        assert resumed.d_final == straight.d_final
        assert len(resumed.records) == len(straight.records)
        assert [r.yield_mc for r in resumed.records] == \
            [r.yield_mc for r in straight.records]
        assert resumed.total_simulations == straight.total_simulations

    def test_budget_shrinks_verification_instead_of_skipping(self):
        from repro.core import YieldOptimizer
        from repro.runtime import RunBudget
        probe = YieldOptimizer(LinearTemplate(),
                               self._config(max_iterations=1)).run()
        sims_before_verify = probe.records[0].simulations \
            - probe.records[0].verify_samples  # 1 theta group
        budget = RunBudget(max_simulations=sims_before_verify + 17)
        shrunk = YieldOptimizer(LinearTemplate(),
                                self._config(max_iterations=1),
                                budget=RunBudget(
                                    max_simulations=budget.max_simulations)
                                ).run()
        record = shrunk.records[0]
        assert record.verify_shrunk
        assert record.verify_samples is not None
        assert 0 < record.verify_samples <= 17
        assert record.yield_mc is not None  # shrunk, not skipped

    def test_budget_zero_remaining_skips_with_marker(self):
        from repro.core import YieldOptimizer
        from repro.runtime import RunBudget
        result = YieldOptimizer(LinearTemplate(),
                                self._config(max_iterations=1),
                                budget=RunBudget(max_simulations=1)).run()
        record = result.records[0]
        assert record.verify_shrunk
        assert record.verify_samples == 0
        assert record.yield_mc is None

    def test_verify_fields_roundtrip_through_checkpoint(self, tmp_path):
        from repro.runtime.checkpoint import (record_from_dict,
                                              record_to_dict)
        from repro.core.optimizer import IterationRecord
        record = IterationRecord(
            index=1, d={"d0": 1.0}, margins={"f": 0.5},
            bad_samples={"f": 0.01}, yield_linear=0.9, yield_mc=None,
            mc=None, worst_case={}, simulations=10,
            constraint_simulations=2, gamma=0.5,
            verify_samples=42, verify_shrunk=True)
        data = record_to_dict(record)
        back = record_from_dict(data, LinearTemplate())
        assert back.verify_samples == 42 and back.verify_shrunk
        # Legacy checkpoints without the fields load with defaults.
        del data["verify_samples"], data["verify_shrunk"]
        legacy = record_from_dict(data, LinearTemplate())
        assert legacy.verify_samples is None and not legacy.verify_shrunk


class TestReporting:
    def test_trace_table_reports_shrunken_verification(self):
        from repro.core import YieldOptimizer
        from repro.reporting import optimization_trace_table
        from repro.runtime import RunBudget
        template = LinearTemplate()
        config_kw = dict(n_samples_linear=500, n_samples_verify=60,
                         max_iterations=1, seed=11)
        from repro.core import OptimizerConfig
        probe = YieldOptimizer(template,
                               OptimizerConfig(**config_kw)).run()
        sims = probe.records[0].simulations - probe.records[0].verify_samples
        result = YieldOptimizer(
            LinearTemplate(), OptimizerConfig(**config_kw),
            budget=RunBudget(max_simulations=sims + 9)).run()
        table = optimization_trace_table(LinearTemplate(), result)
        assert "verification shrunk to N =" in table

    def test_health_table_renders_pool_usage(self):
        from repro.core import OptimizerConfig, YieldOptimizer
        from repro.reporting import health_table
        result = YieldOptimizer(
            LinearTemplate(),
            OptimizerConfig(n_samples_linear=500, n_samples_verify=40,
                            max_iterations=1, seed=11, jobs=2)).run()
        text = health_table(result)
        assert "pool workers" in text and "pool tasks" in text

    def test_health_table_empty_for_clean_serial_run(self):
        from repro.core import OptimizerConfig, YieldOptimizer
        result = YieldOptimizer(
            LinearTemplate(),
            OptimizerConfig(n_samples_linear=500, n_samples_verify=40,
                            max_iterations=1, seed=11)).run()
        from repro.reporting import health_table
        assert health_table(result) == ""
