"""Unit tests for spec-wise linearization (Eq. 16, 21-22)."""

import numpy as np
import pytest

from helpers import LinearTemplate, QuadraticTemplate
from repro.core.linear_model import (SpecLinearModel, build_spec_models,
                                     detect_quadratic)
from repro.core.worst_case import find_all_worst_case_points
from repro.evaluation import Evaluator
from repro.spec import Spec

THETA = {"temp": 27.0}
D = {"d0": 1.0, "d1": 0.0}


def build_for(template, d=D, linearize_at="worst_case",
              detect=True):
    ev = Evaluator(template)
    theta_map = {"f>=": THETA, "f<=": THETA}
    theta_map = {k: v for k, v in theta_map.items()
                 if any(k == f"{s.performance}{s.kind}"
                        for s in template.specs)}
    wc = find_all_worst_case_points(ev, d, theta_map)
    models = build_spec_models(ev, d, wc, theta_map,
                               linearize_at=linearize_at,
                               detect_quadratic_specs=detect)
    return ev, wc, models


class TestSpecLinearModel:
    def _model(self):
        return SpecLinearModel(
            spec=Spec("f", ">=", 2.0), key="f>=", theta=THETA,
            s_ref=np.array([1.0, 0.0]), g_ref=2.0,
            grad_s=np.array([0.5, -1.0]), grad_d={"d0": 2.0},
            d_ref={"d0": 1.0})

    def test_value_arithmetic(self):
        m = self._model()
        value = m.value({"d0": 1.5}, np.array([2.0, 1.0]))
        # 2.0 + [0.5,-1].[1,1] + 2*(0.5) = 2.0 - 0.5 + 1.0
        assert value == pytest.approx(2.5)

    def test_margin_is_value_minus_bound(self):
        m = self._model()
        s = np.array([0.0, 0.0])
        assert m.margin({"d0": 1.0}, s) == \
            pytest.approx(m.value({"d0": 1.0}, s) - 2.0)

    def test_statistical_part_matches_per_sample_margin(self):
        """The stored Eq. 20 constant equals the margin at d = d_ref."""
        m = self._model()
        samples = np.random.default_rng(0).standard_normal((50, 2))
        stat = m.statistical_part(samples)
        for j in range(50):
            assert stat[j] == pytest.approx(
                m.margin({"d0": 1.0}, samples[j]), abs=1e-12)


class TestWorstCaseLinearization:
    def test_linear_template_model_is_exact(self):
        """For an affine performance the spec-wise model reproduces the
        template everywhere, not just at the worst-case point."""
        t = LinearTemplate(offset=5.0, cd={"d0": 2.0, "d1": -1.0},
                           cs=np.array([1.0, 0.5]))
        ev, wc, models = build_for(t)
        assert len(models) == 1
        model = models[0]
        rng = np.random.default_rng(1)
        for _ in range(10):
            d = {"d0": rng.uniform(0, 2), "d1": rng.uniform(-1, 1)}
            s = rng.standard_normal(2)
            assert model.value(d, s) == pytest.approx(
                t.value(d, s, THETA), rel=1e-3, abs=1e-3)

    def test_nominal_ablation_reference_point(self):
        t = LinearTemplate()
        ev, wc, models = build_for(t, linearize_at="nominal")
        model = models[0]
        assert np.all(model.s_ref == 0.0)
        assert model.g_ref == pytest.approx(t.value(D, np.zeros(2), THETA))

    def test_invalid_mode_rejected(self):
        t = LinearTemplate()
        with pytest.raises(ValueError):
            build_for(t, linearize_at="banana")


class TestMirrorDetection:
    def test_tent_gets_mirror_model(self):
        """Quadratic (CMRR-like) performances get the Eq. 21-22 twin."""
        t = QuadraticTemplate(dim=3)
        ev, wc, models = build_for(t, d={"d0": 0.0})
        keys = [m.key for m in models]
        assert "f>=" in keys
        assert "f>=#mirror" in keys
        primary = models[0]
        mirror = models[1]
        assert mirror.is_mirror
        assert np.allclose(mirror.s_ref, -primary.s_ref)
        assert np.allclose(mirror.grad_s, -primary.grad_s)
        assert mirror.grad_d == primary.grad_d

    def test_linear_spec_gets_no_mirror(self):
        t = LinearTemplate()
        ev, wc, models = build_for(t)
        assert len(models) == 1

    def test_violated_monotone_spec_gets_no_mirror(self):
        """Regression guard: a violated monotone spec must not be treated
        as quadratic (the single tangent already covers the mirror side)."""
        t = LinearTemplate(offset=-2.0)  # f0 = -1 < 0 = bound
        ev, wc, models = build_for(t)
        assert len(models) == 1

    def test_detection_disabled(self):
        t = QuadraticTemplate(dim=3)
        ev, wc, models = build_for(t, d={"d0": 0.0}, detect=False)
        assert len(models) == 1

    def test_detect_quadratic_costs_one_simulation(self):
        t = QuadraticTemplate(dim=3)
        ev = Evaluator(t)
        theta_map = {"f>=": THETA}
        wc = find_all_worst_case_points(ev, {"d0": 0.0}, theta_map)
        ev.reset_counters()
        ev.clear_cache()
        detect_quadratic(ev, wc["f>="], {"d0": 0.0}, THETA)
        assert ev.simulation_count == 1


class TestMirrorModelYieldAccuracy:
    def test_two_models_capture_both_tails(self):
        """With the tent template, one linearization misses half the
        failures; primary+mirror predict the true failure set."""
        t = QuadraticTemplate(peak=10.0, curvature=1.0, bound=2.0, dim=3)
        ev, wc, models = build_for(t, d={"d0": 0.0})
        rng = np.random.default_rng(7)
        samples = rng.standard_normal((4000, 3))
        true_pass = np.array([
            t.evaluate({"d0": 0.0}, s, THETA)["f"] >= 2.0 for s in samples])
        primary = models[0]
        both_pass = np.array([
            all(m.margin({"d0": 0.0}, s) >= 0 for m in models)
            for s in samples])
        primary_pass = np.array([
            primary.margin({"d0": 0.0}, s) >= 0 for s in samples])
        err_primary = np.mean(primary_pass != true_pass)
        err_both = np.mean(both_pass != true_pass)
        assert err_both < err_primary
        assert abs(np.mean(both_pass) - np.mean(true_pass)) < 0.02
