"""Shared pytest configuration."""

import sys
from pathlib import Path

# Make tests/helpers.py importable as `helpers` from every test module.
sys.path.insert(0, str(Path(__file__).parent))
