"""Unit tests for the worst-case point search (Eq. 8) on analytic templates."""

import math

import numpy as np
import pytest

from helpers import LinearTemplate, QuadraticTemplate
from repro.evaluation import Evaluator
from repro.core.worst_case import (BETA_MAX, find_all_worst_case_points,
                                   find_worst_case_point)

THETA = {"temp": 27.0}
D = {"d0": 1.0, "d1": 0.0}


class TestLinearPerformance:
    """For f = offset + cs.s with spec f >= bound, the exact worst-case
    distance is (f0 - bound)/||cs|| and s_wc = -(f0-bound) cs/||cs||^2."""

    def test_satisfied_spec_distance_and_point(self):
        t = LinearTemplate(offset=5.0, cs=np.array([3.0, 4.0]), bound=0.0)
        ev = Evaluator(t)
        wc = find_worst_case_point(ev, t.specs[0], D, THETA)
        f0 = 5.0 + 1.0  # offset + d0
        expected_beta = f0 / 5.0  # ||cs|| = 5
        assert wc.on_boundary
        assert wc.beta_wc == pytest.approx(expected_beta, rel=1e-3)
        expected_point = -f0 * np.array([3.0, 4.0]) / 25.0
        assert wc.s_wc == pytest.approx(expected_point, rel=1e-2)

    def test_violated_spec_has_negative_distance(self):
        t = LinearTemplate(offset=-3.0, cs=np.array([1.0, 0.0]), bound=0.0)
        ev = Evaluator(t)
        wc = find_worst_case_point(ev, t.specs[0], D, THETA)
        # f0 = -3 + 1 = -2, boundary at s0 = +2 -> beta = -2.
        assert wc.beta_wc == pytest.approx(-2.0, rel=1e-3)
        assert not wc.nominal_satisfied

    def test_upper_bound_spec(self):
        t = LinearTemplate(offset=1.0, cs=np.array([1.0, 0.0]),
                           bound=4.0, kind="<=")
        ev = Evaluator(t)
        wc = find_worst_case_point(ev, t.specs[0], D, THETA)
        # f0 = 2, upper bound 4 -> boundary at s0 = +2 -> beta = +2.
        assert wc.beta_wc == pytest.approx(2.0, rel=1e-3)
        assert wc.nominal_satisfied

    def test_gradient_is_normalized_performance_gradient(self):
        t = LinearTemplate(cs=np.array([2.0, -1.0]), bound=0.0, kind="<=")
        ev = Evaluator(t)
        wc = find_worst_case_point(ev, t.specs[0], D, THETA)
        # normalized g = -f, so grad_s g = -cs.
        assert wc.gradient == pytest.approx(np.array([-2.0, 1.0]), rel=1e-4)

    def test_unreachable_spec_is_clamped(self):
        t = LinearTemplate(offset=1000.0, cs=np.array([1.0, 1.0]),
                           bound=0.0)
        ev = Evaluator(t)
        wc = find_worst_case_point(ev, t.specs[0], D, THETA)
        assert not wc.on_boundary
        assert wc.beta_wc == pytest.approx(BETA_MAX)

    def test_warm_start_converges_faster(self):
        t = LinearTemplate(offset=5.0, cs=np.array([3.0, 4.0]))
        ev = Evaluator(t)
        cold = find_worst_case_point(ev, t.specs[0], D, THETA)
        warm = find_worst_case_point(ev, t.specs[0], D, THETA,
                                     s_start=cold.s_wc)
        assert warm.iterations <= cold.iterations
        assert warm.beta_wc == pytest.approx(cold.beta_wc, rel=1e-6)


class TestQuadraticPerformance:
    """The tent-shaped template mimics CMRR (Fig. 1): worst-case points sit
    on the mismatch line at an exactly known radius."""

    def test_finds_mismatch_line_boundary(self):
        t = QuadraticTemplate(peak=10.0, curvature=1.0, bound=2.0)
        ev = Evaluator(t)
        wc = find_worst_case_point(ev, t.specs[0], {"d0": 0.0}, THETA,
                                   seed=3)
        assert wc.on_boundary
        assert abs(wc.beta_wc) == pytest.approx(t.expected_wc_norm(),
                                                rel=1e-2)
        # The point lies on the mismatch line: s0 ~ -s1, s2 ~ 0.
        s = wc.s_wc
        assert s[0] == pytest.approx(-s[1], abs=0.05)
        assert s[2] == pytest.approx(0.0, abs=0.05)

    def test_mirror_point_is_equally_bad(self):
        t = QuadraticTemplate()
        ev = Evaluator(t)
        wc = find_worst_case_point(ev, t.specs[0], {"d0": 0.0}, THETA,
                                   seed=3)
        f_wc = ev.performance("f", {"d0": 0.0}, wc.s_wc, THETA)
        f_mirror = ev.performance("f", {"d0": 0.0}, -wc.s_wc, THETA)
        assert f_mirror == pytest.approx(f_wc, rel=1e-9)


class TestAllSpecs:
    def test_keys_cover_all_specs(self):
        t = LinearTemplate()
        ev = Evaluator(t)
        theta_map = {"f>=": THETA}
        results = find_all_worst_case_points(ev, D, theta_map)
        assert set(results) == {"f>="}

    def test_previous_results_warm_start(self):
        t = LinearTemplate()
        ev = Evaluator(t)
        theta_map = {"f>=": THETA}
        first = find_all_worst_case_points(ev, D, theta_map)
        again = find_all_worst_case_points(ev, D, theta_map, previous=first)
        assert again["f>="].beta_wc == pytest.approx(
            first["f>="].beta_wc, rel=1e-6)
