"""Tests for sharded verification (:mod:`repro.yieldsim.shard`):
deterministic sub-stream partitioning, exact merging of sufficient
statistics, telemetry folding, the CLI shard/merge round trip, and the
checkpoint splice + resume flow.

The contract under test is the ISSUE's pair of invariants: a 1-shard
plan followed by a merge is *bit-identical* to the unsharded run, and a
k-shard merge over the same combined sample stream reproduces the
single-run estimate and interval (binomial counts exactly, weighted
sums to float tolerance).
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.stats import norm

from helpers import LinearTemplate
from repro.core import find_all_worst_case_points
from repro.core.optimizer import OptimizerConfig, YieldOptimizer
from repro.errors import ReproError
from repro.evaluation import Evaluator
from repro.runtime import splice_merged_result
from repro.statistics import SampleSet, wilson_interval
from repro.yieldsim import (MeanShiftIS, OperationalMC, ShardPlan,
                            SimulatorHealth, SobolQMC, SufficientStats,
                            YieldResult, merge_reports, merge_results,
                            merge_stats)
from repro.yieldsim.result import KIND_BINOMIAL
from repro.yieldsim.telemetry import RunReport

THETA = {"f>=": {"temp": 27.0}}
D = {"d0": 1.0, "d1": 0.0}

#: result fields that legitimately differ between an unsharded run and
#: a 1-shard merge (provenance + wall-clock telemetry)
PROVENANCE_KEYS = {"report", "shard_index", "shard_total", "merged_from",
                   "shard_reports"}


def linear_setup(offset=0.0):
    template = LinearTemplate(offset=offset)
    return template, Evaluator(template)


def strip_provenance(result):
    data = result.to_dict()
    return {key: value for key, value in data.items()
            if key not in PROVENANCE_KEYS}


def binomial_result(k, n, shard_index=None, shard_total=None, failed=0):
    """A synthetic MC-flavored result carrying exact count statistics."""
    stats = SufficientStats(kind=KIND_BINOMIAL, n=n, successes=k,
                            failed=failed, w_sum=float(n),
                            w_sq_sum=float(n), w_pass_sum=float(k),
                            w_sq_pass_sum=float(k))
    low, high = wilson_interval(k, n, 0.95)
    return YieldResult(estimator="mc", estimate=k / n, n_samples=n,
                       simulations=n, ci_low=low, ci_high=high,
                       ci_level=0.95, ess=float(n), failed_samples=failed,
                       stats=stats, shard_index=shard_index,
                       shard_total=shard_total)


class TestShardPlan:
    @given(st.integers(1, 500), st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_counts_partition_and_offsets_are_consecutive(self, n, total):
        if total > n:
            total = n
        plans = [ShardPlan(i, total) for i in range(total)]
        counts = [plan.count(n) for plan in plans]
        assert sum(counts) == n
        assert max(counts) - min(counts) <= 1
        offset = 0
        for plan, count in zip(plans, counts):
            assert plan.offset(n) == offset
            offset += count

    def test_parse_is_one_based(self):
        plan = ShardPlan.parse("2/4")
        assert (plan.index, plan.total) == (1, 4)
        assert plan.label == "2/4"
        assert ShardPlan.parse(" 1 / 1 ") == ShardPlan(0, 1)

    @pytest.mark.parametrize("text", ["", "0/4", "5/4", "a/4", "2-4", "2/"])
    def test_parse_rejects_malformed_specs(self, text):
        with pytest.raises(ReproError):
            ShardPlan.parse(text)

    def test_validation(self):
        with pytest.raises(ReproError):
            ShardPlan(0, 0)
        with pytest.raises(ReproError):
            ShardPlan(3, 3)
        with pytest.raises(ReproError):
            ShardPlan(3, 4).count(3)  # shard would be empty

    def test_identity_plan_keeps_seed(self):
        assert ShardPlan(0, 1).seed_for(7) == 7
        assert ShardPlan(0, 1).seed_for(None) is None

    def test_sharding_requires_a_seed(self):
        with pytest.raises(ReproError):
            ShardPlan(0, 2).seed_for(None)

    def test_substreams_are_distinct_and_deterministic(self):
        a = SampleSet.draw(50, 3, seed=ShardPlan(0, 2).seed_for(7))
        a2 = SampleSet.draw(50, 3, seed=ShardPlan(0, 2).seed_for(7))
        b = SampleSet.draw(50, 3, seed=ShardPlan(1, 2).seed_for(7))
        assert np.array_equal(a.matrix, a2.matrix)
        assert not np.array_equal(a.matrix, b.matrix)

    def test_sobol_shards_concatenate_to_the_unsharded_set(self):
        full = SampleSet.draw_sobol(128, 4, seed=9)
        parts = [SampleSet.draw_sobol(ShardPlan(i, 3).count(128), 4,
                                      seed=9,
                                      skip=ShardPlan(i, 3).offset(128))
                 for i in range(3)]
        stacked = np.vstack([part.matrix for part in parts])
        assert np.array_equal(stacked, full.matrix)


class TestSingleShardBitIdentity:
    """``--shard 1/1`` followed by a merge is the unsharded run."""

    @pytest.mark.parametrize("name", ["mc", "qmc"])
    def test_binomial_estimators(self, name):
        cls = {"mc": OperationalMC, "qmc": SobolQMC}[name]
        _, ev1 = linear_setup()
        _, ev2 = linear_setup()
        base = cls().estimate(ev1, D, THETA, n_samples=64, seed=7)
        merged = merge_results([cls().estimate(ev2, D, THETA, n_samples=64,
                                               seed=7,
                                               shard=ShardPlan(0, 1))])
        assert strip_provenance(merged) == strip_provenance(base)
        assert merged.merged_from == 1

    def test_importance_sampling(self):
        template, ev1 = linear_setup()
        wc = find_all_worst_case_points(ev1, D, THETA, seed=3)
        base = MeanShiftIS().estimate(ev1, D, THETA, n_samples=90, seed=5,
                                      worst_case=wc)
        _, ev2 = linear_setup()
        wc2 = find_all_worst_case_points(ev2, D, THETA, seed=3)
        merged = merge_results([MeanShiftIS().estimate(
            ev2, D, THETA, n_samples=90, seed=5, worst_case=wc2,
            shard=ShardPlan(0, 1))])
        assert strip_provenance(merged) == strip_provenance(base)


class TestBinomialMerge:
    @given(st.lists(st.tuples(st.integers(1, 200), st.floats(0.0, 1.0)),
                    min_size=2, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_merged_counts_reproduce_wilson_exactly(self, parts):
        shards = [binomial_result(int(round(n * frac)), n)
                  for n, frac in parts]
        merged = merge_results(shards)
        total_n = sum(r.n_samples for r in shards)
        total_k = sum(r.stats.successes for r in shards)
        assert merged.n_samples == total_n
        assert merged.estimate == total_k / total_n
        assert (merged.ci_low, merged.ci_high) == \
            wilson_interval(total_k, total_n, 0.95)
        assert merged.ess == float(total_n)

    @given(st.lists(st.integers(0, 5), min_size=2, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_failed_samples_fold_additively(self, failures):
        shards = [binomial_result(10, 20 + failed, failed=failed)
                  for failed in failures]
        merged = merge_results(shards)
        assert merged.failed_samples == sum(failures)
        assert merged.stats.failed == sum(failures)

    def test_k_shard_mc_merge_equals_combined_stream_run(self):
        template, _ = linear_setup()
        dim = template.statistical_space.dim
        plans = [ShardPlan(i, 4) for i in range(4)]
        shards = [OperationalMC().estimate(
            Evaluator(LinearTemplate()), D, THETA, n_samples=300, seed=11,
            shard=plan) for plan in plans]
        combined = np.vstack([
            SampleSet.draw(plan.count(300), dim,
                           seed=plan.seed_for(11)).matrix
            for plan in plans])
        single = OperationalMC().estimate(
            Evaluator(LinearTemplate()), D, THETA,
            samples=SampleSet(combined))
        merged = merge_results(shards)
        assert merged.estimate == single.estimate
        assert (merged.ci_low, merged.ci_high) == (single.ci_low,
                                                   single.ci_high)
        assert merged.n_samples == single.n_samples == 300
        assert merged.simulations == single.simulations
        assert merged.bad_fraction == single.bad_fraction
        for key in single.performance_mean:
            assert merged.performance_mean[key] == pytest.approx(
                single.performance_mean[key], rel=1e-12)
            assert merged.performance_std[key] == pytest.approx(
                single.performance_std[key], rel=1e-9)

    def test_k_shard_qmc_merge_equals_unsharded_run(self):
        base = SobolQMC().estimate(Evaluator(LinearTemplate()), D, THETA,
                                   n_samples=128, seed=7)
        shards = [SobolQMC().estimate(
            Evaluator(LinearTemplate()), D, THETA, n_samples=128, seed=7,
            shard=ShardPlan(i, 3)) for i in range(3)]
        merged = merge_results(shards)
        assert merged.estimate == base.estimate
        assert (merged.ci_low, merged.ci_high) == (base.ci_low,
                                                   base.ci_high)
        assert merged.ess == base.ess
        assert merged.n_samples == base.n_samples
        assert merged.simulations == base.simulations


class TestWeightedMerge:
    def test_shard_merge_reproduces_pooled_weight_sums(self):
        template, ev = linear_setup()
        dim = template.statistical_space.dim
        wc = find_all_worst_case_points(ev, D, THETA, seed=3)
        estimator = MeanShiftIS()
        plans = [ShardPlan(i, 3) for i in range(3)]
        shards = [estimator.estimate(
            Evaluator(LinearTemplate()), D, THETA, n_samples=240, seed=5,
            worst_case=wc, shard=plan) for plan in plans]
        components = estimator._components(dim, wc)
        combined = np.vstack([
            estimator._draw(components, plan.count(240), dim,
                            plan.seed_for(5)) for plan in plans])
        single = estimator.estimate(
            Evaluator(LinearTemplate()), D, THETA, worst_case=wc,
            samples=SampleSet(combined))
        merged = merge_results(shards)
        assert merged.estimate == pytest.approx(single.estimate,
                                                rel=1e-9)
        assert merged.ess == pytest.approx(single.ess, rel=1e-9)
        assert merged.standard_error == pytest.approx(
            single.standard_error, rel=1e-9)
        assert merged.ci_low == pytest.approx(single.ci_low, rel=1e-9,
                                              abs=1e-12)
        assert merged.ci_high == pytest.approx(single.ci_high, rel=1e-9,
                                               abs=1e-12)
        for key in single.performance_mean:
            assert merged.performance_mean[key] == pytest.approx(
                single.performance_mean[key], rel=1e-9)
            assert merged.performance_std[key] == pytest.approx(
                single.performance_std[key], rel=1e-6)

    def test_merge_rescales_unequal_log_shifts(self):
        """Shards store weights at their own log scale; the merge must
        bring them to a common scale before pooling (a naive sum of the
        stored ``w_sum`` values would be wrong)."""
        template, ev = linear_setup()
        wc = find_all_worst_case_points(ev, D, THETA, seed=3)
        shards = [MeanShiftIS().estimate(
            Evaluator(LinearTemplate()), D, THETA, n_samples=150, seed=5,
            worst_case=wc, shard=ShardPlan(i, 2)) for i in range(2)]
        assert shards[0].stats.log_shift != shards[1].stats.log_shift
        merged = merge_stats([shard.stats for shard in shards])
        assert merged.log_shift == max(s.stats.log_shift for s in shards)
        # The pooled self-normalized ratio is scale-invariant; check it
        # against the two shards' exact-scale recombination.
        scale = [np.exp(s.stats.log_shift - merged.log_shift)
                 for s in shards]
        expected = (sum(c * s.stats.w_pass_sum
                        for c, s in zip(scale, shards))
                    / sum(c * s.stats.w_sum
                          for c, s in zip(scale, shards)))
        assert merged.w_pass_sum / merged.w_sum == pytest.approx(
            expected, rel=1e-12)

    def test_json_round_trip_preserves_the_merge(self):
        template, ev = linear_setup()
        wc = find_all_worst_case_points(ev, D, THETA, seed=3)
        shards = [MeanShiftIS().estimate(
            Evaluator(LinearTemplate()), D, THETA, n_samples=120, seed=5,
            worst_case=wc, shard=ShardPlan(i, 2)) for i in range(2)]
        direct = merge_results(shards)
        restored = merge_results([
            YieldResult.from_dict(json.loads(shard.to_json()))
            for shard in shards])
        assert strip_provenance(restored) == strip_provenance(direct)


class TestMergeValidation:
    def test_rejects_empty_and_mixed_inputs(self):
        with pytest.raises(ReproError):
            merge_results([])
        qmc = binomial_result(5, 10)
        qmc.estimator = "qmc"
        with pytest.raises(ReproError, match="different estimators"):
            merge_results([binomial_result(5, 10), qmc])

    def test_rejects_records_without_statistics(self):
        legacy = binomial_result(5, 10)
        legacy.stats = None
        with pytest.raises(ReproError, match="no sufficient statistics"):
            merge_results([binomial_result(5, 10), legacy])

    def test_rejects_mixed_levels_without_explicit_level(self):
        other = binomial_result(5, 10)
        other.ci_level = 0.9
        with pytest.raises(ReproError, match="ci_level"):
            merge_results([binomial_result(5, 10), other])
        merged = merge_results([binomial_result(5, 10), other],
                               level=0.99)
        assert merged.ci_level == 0.99
        assert (merged.ci_low, merged.ci_high) == wilson_interval(10, 20,
                                                                  0.99)

    def test_rejects_inconsistent_shard_provenance(self):
        with pytest.raises(ReproError, match="duplicate shard"):
            merge_results([binomial_result(5, 10, 0, 2),
                           binomial_result(5, 10, 0, 2)])
        with pytest.raises(ReproError, match="different partitions"):
            merge_results([binomial_result(5, 10, 0, 2),
                           binomial_result(5, 10, 1, 3)])

    def test_rejects_mixed_stats_kinds(self):
        weighted = SufficientStats(kind="weighted", n=10, successes=5)
        binomial = SufficientStats(kind="binomial", n=10, successes=5)
        with pytest.raises(ReproError, match="mixed statistics"):
            merge_stats([weighted, binomial])


class TestTelemetryFold:
    def test_merge_reports_adds_counters_and_ors_flags(self):
        a = RunReport(estimator="mc", n_samples=10, simulations=30,
                      cache_hits=2, chunks=1, failed_samples=1,
                      backend="serial", phase_seconds={"draw": 0.5})
        b = RunReport(estimator="mc", n_samples=20, simulations=60,
                      cache_hits=3, chunks=2, retried_chunks=1,
                      degraded_to_serial=True, backend="process-pool",
                      jobs=4, phase_seconds={"draw": 0.25, "reduce": 1.0})
        merged = merge_reports([a, b])
        assert merged.n_samples == 30
        assert merged.simulations == 90
        assert merged.cache_hits == 5
        assert merged.chunks == 3
        assert merged.retried_chunks == 1
        assert merged.failed_samples == 1
        assert merged.degraded_to_serial
        assert not merged.pool_incompatible
        assert merged.jobs == 4
        assert merged.backend == "mixed"
        assert merged.phase_seconds == {"draw": 0.75, "reduce": 1.0}
        assert merge_reports([]) is None

    def test_health_distinguishes_no_data_from_clean(self):
        empty = SimulatorHealth.from_reports([None, None])
        assert empty.no_data
        assert not empty.clean
        observed = SimulatorHealth.from_reports([RunReport()])
        assert not observed.no_data
        assert observed.clean
        incompatible = SimulatorHealth.from_reports(
            [RunReport(pool_incompatible=True)])
        assert incompatible.incompatible_runs == 1
        assert not incompatible.clean


class TestResultStatistics:
    def test_binomial_standard_error_from_counts(self):
        result = binomial_result(30, 40)
        p = 30 / 40
        assert result.standard_error == pytest.approx(
            np.sqrt(p * (1 - p) / 40), rel=1e-12)

    def test_degenerate_estimate_has_nonzero_standard_error_bound(self):
        """A 0-of-N record must not report SE = ci_width / (2z) as if
        the Wilson width were symmetric — with stats present the direct
        binomial SE (0 here) and the honest interval coexist."""
        result = binomial_result(0, 50)
        assert result.standard_error == 0.0
        low, high = result.confidence_interval()
        assert low == 0.0 and high > 0.0

    def test_confidence_interval_recomputable_at_any_level(self):
        result = binomial_result(25, 40)
        assert result.confidence_interval() == (result.ci_low,
                                                result.ci_high)
        assert result.confidence_interval(0.99) == wilson_interval(25, 40,
                                                                   0.99)

    def test_legacy_records_raise_for_other_levels(self):
        legacy = binomial_result(25, 40)
        legacy.stats = None
        assert legacy.confidence_interval(0.95) == (legacy.ci_low,
                                                    legacy.ci_high)
        with pytest.raises(ValueError):
            legacy.confidence_interval(0.99)


class TestOptimizerShardedVerification:
    def quick_config(self, **overrides):
        defaults = dict(max_iterations=2, n_samples_linear=400,
                        n_samples_verify=60, multistart=1, seed=7)
        defaults.update(overrides)
        return OptimizerConfig(**defaults)

    def test_identity_shard_reproduces_unsharded_trajectory(self):
        base = YieldOptimizer(LinearTemplate(),
                              self.quick_config()).run()
        sharded = YieldOptimizer(
            LinearTemplate(),
            self.quick_config(verify_shard=ShardPlan(0, 1))).run()
        assert sharded.d_final == base.d_final
        assert [r.yield_mc for r in sharded.records] == \
            [r.yield_mc for r in base.records]
        for ours, theirs in zip(sharded.records, base.records):
            if theirs.mc is not None:
                assert ours.mc.estimate == theirs.mc.estimate
                assert (ours.mc.ci_low, ours.mc.ci_high) == \
                    (theirs.mc.ci_low, theirs.mc.ci_high)

    def test_shard_provenance_reaches_the_records(self):
        result = YieldOptimizer(
            LinearTemplate(),
            self.quick_config(verify_shard=ShardPlan(0, 2))).run()
        verified = [r.mc for r in result.records if r.mc is not None]
        assert verified
        for mc in verified:
            assert mc.shard_total == 2
            assert mc.shard_index == 0
            assert mc.n_samples == ShardPlan(0, 2).count(60)


class TestCheckpointSplice:
    def test_splice_and_resume_round_trip(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        config = OptimizerConfig(max_iterations=2, n_samples_linear=400,
                                 n_samples_verify=60, multistart=1,
                                 seed=7)
        result = YieldOptimizer(LinearTemplate(), config,
                                checkpoint_path=path).run()
        # A 2-shard verification at the final design, merged then
        # spliced over the last record's (unsharded) verification.
        shards = [OperationalMC().estimate(
            Evaluator(LinearTemplate()), result.d_final, THETA,
            n_samples=80, seed=9, shard=ShardPlan(i, 2))
            for i in range(2)]
        merged = merge_results(shards)
        splice_merged_result(path, merged)
        with open(path) as handle:
            raw = json.load(handle)
        last = raw["records"][-1]
        assert last["yield_mc"] == merged.estimate
        assert last["verify_samples"] == merged.n_samples
        assert last["mc"]["data"]["merged_from"] == 2
        resumed = YieldOptimizer(LinearTemplate(), config,
                                 checkpoint_path=path,
                                 resume=True).run()
        assert resumed.d_final == result.d_final
        assert resumed.records[len(result.records) - 1].yield_mc == \
            merged.estimate
        spliced = resumed.records[len(result.records) - 1].mc
        assert spliced.merged_from == 2
        assert spliced.stats.n == merged.stats.n

    def test_splice_rejects_bad_checkpoints(self, tmp_path):
        from repro.runtime import CheckpointError
        merged = merge_results([binomial_result(5, 10)])
        missing = str(tmp_path / "missing.json")
        with pytest.raises(CheckpointError):
            splice_merged_result(missing, merged)
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"version": 1, "records": []}))
        with pytest.raises(CheckpointError, match="no iteration records"):
            splice_merged_result(str(empty), merged)
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"version": 99, "records": [{}]}))
        with pytest.raises(CheckpointError, match="schema version"):
            splice_merged_result(str(wrong), merged)


class TestCli:
    def test_yield_shard_merge_matches_unsharded(self, tmp_path, capsys):
        from repro.cli import main
        common = ["yield", "ota", "--estimator", "qmc", "--samples", "16",
                  "--seed", "3"]
        assert main(common + ["--json"]) == 0
        base = json.loads(capsys.readouterr().out)
        for index in (1, 2):
            out = str(tmp_path / f"shard{index}.json")
            assert main(common + ["--shard", f"{index}/2",
                                  "--out", out]) == 0
            assert f"shard {index}/2" in capsys.readouterr().out
        merged_path = str(tmp_path / "merged.json")
        assert main(["merge-verify",
                     str(tmp_path / "shard1.json"),
                     str(tmp_path / "shard2.json"),
                     "--out", merged_path]) == 0
        rendered = capsys.readouterr().out
        assert "Merged verification (2 of 2 shard(s)" in rendered
        assert "shard 1/2" in rendered and "shard 2/2" in rendered
        with open(merged_path) as handle:
            artifact = json.load(handle)
        assert artifact["schema_version"] == 1
        assert artifact["kind"] == "merged-yield-result"
        assert artifact["provenance"]["template"] == "ota"
        assert artifact["provenance"]["shards"] == 2
        merged = artifact["result"]
        for key in ("estimate", "ci_low", "ci_high", "ess", "n_samples",
                    "simulations", "failed_samples", "bad_fraction"):
            assert merged[key] == base[key], key
        assert merged["merged_from"] == 2

    def test_merge_verify_rejects_unreadable_input(self, tmp_path):
        from repro.cli import main
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit):
            main(["merge-verify", str(bad)])

    def test_merge_verify_rejects_mismatched_shards(self, tmp_path,
                                                    capsys):
        """Shard files disagreeing on seed, template, or estimator must
        be refused — pooling them would silently produce a meaningless
        estimate."""
        from repro.cli import main
        paths = []
        for index, seed in enumerate((3, 4), start=1):
            out = str(tmp_path / f"shard{index}.json")
            assert main(["yield", "ota", "--estimator", "qmc",
                         "--samples", "16", "--seed", str(seed),
                         "--shard", f"{index}/2", "--out", out]) == 0
            paths.append(out)
        capsys.readouterr()
        with pytest.raises(SystemExit) as err:
            main(["merge-verify"] + paths)
        message = str(err.value)
        assert "seed" in message and "incompatible" in message
        assert paths[0] in message and paths[1] in message

    def test_merge_verify_rejects_mismatched_template(self, tmp_path,
                                                      capsys):
        from repro.cli import main
        paths = []
        for index, circuit in enumerate(("ota", "miller"), start=1):
            out = str(tmp_path / f"shard{index}.json")
            assert main(["yield", circuit, "--estimator", "qmc",
                         "--samples", "16", "--seed", "3",
                         "--shard", f"{index}/2", "--out", out]) == 0
            paths.append(out)
        capsys.readouterr()
        with pytest.raises(SystemExit, match="template"):
            main(["merge-verify"] + paths)

    def test_parser_accepts_shard_flags(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["yield", "miller", "--shard", "2/4", "--out", "x.json"])
        assert args.shard == "2/4" and args.out == "x.json"
        args = build_parser().parse_args(
            ["optimize", "miller", "--verify-shard", "1/2"])
        assert args.verify_shard == "1/2"
        args = build_parser().parse_args(
            ["merge-verify", "a.json", "b.json", "--checkpoint", "c.json"])
        assert args.shards == ["a.json", "b.json"]
        assert args.checkpoint == "c.json"
