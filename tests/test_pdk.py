"""Unit tests for the process-kit layer (repro.pdk)."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.pdk import GENERIC035, GlobalVariation, PelgromCoefficients, Process
from repro.pdk.generic035 import NMOS, PMOS


class TestGlobalVariation:
    def test_valid_targets(self):
        for target in ("vth_nmos", "vth_pmos", "beta_nmos", "beta_pmos",
                       "res"):
            GlobalVariation("g", target, sigma=0.01)

    def test_invalid_target_rejected(self):
        with pytest.raises(ReproError):
            GlobalVariation("g", "tox", sigma=0.01)

    def test_non_positive_sigma_rejected(self):
        with pytest.raises(ReproError):
            GlobalVariation("g", "res", sigma=0.0)


class TestPelgrom:
    def test_area_scaling_law(self):
        p = PelgromCoefficients()
        s1 = p.sigma_vth(1, 10e-6, 1e-6)
        s4 = p.sigma_vth(1, 20e-6, 2e-6)  # 4x area
        assert s1 == pytest.approx(2 * s4, rel=1e-12)

    def test_multiplier_counts_as_area(self):
        p = PelgromCoefficients()
        assert p.sigma_vth(1, 10e-6, 1e-6, m=4) == \
            pytest.approx(p.sigma_vth(1, 40e-6, 1e-6), rel=1e-12)

    def test_pmos_uses_pmos_coefficient(self):
        p = PelgromCoefficients(avt_nmos=1e-8, avt_pmos=2e-8)
        assert p.sigma_vth(-1, 10e-6, 1e-6) == \
            pytest.approx(2 * p.sigma_vth(1, 10e-6, 1e-6), rel=1e-12)

    def test_beta_sigma_uses_beta_coefficient(self):
        p = PelgromCoefficients(abeta_nmos=5e-9)
        expected = 5e-9 / np.sqrt(2 * 10e-6 * 1e-6)
        assert p.sigma_beta(1, 10e-6, 1e-6) == pytest.approx(expected)


class TestProcessValidation:
    def _variations(self, n):
        return tuple(GlobalVariation(f"g{i}", "res", 0.01)
                     for i in range(n))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ReproError, match="shape"):
            Process("p", NMOS, PMOS, 3.3, 27.0, self._variations(2),
                    np.eye(3))

    def test_asymmetric_correlation_rejected(self):
        corr = np.array([[1.0, 0.5], [0.2, 1.0]])
        with pytest.raises(ReproError, match="symmetric"):
            Process("p", NMOS, PMOS, 3.3, 27.0, self._variations(2), corr)

    def test_non_unit_diagonal_rejected(self):
        corr = np.array([[2.0, 0.0], [0.0, 1.0]])
        with pytest.raises(ReproError, match="diagonal"):
            Process("p", NMOS, PMOS, 3.3, 27.0, self._variations(2), corr)

    def test_indefinite_correlation_rejected(self):
        corr = np.array([[1.0, 2.0], [2.0, 1.0]])  # eigenvalues -1, 3
        with pytest.raises(ReproError, match="semidefinite"):
            Process("p", NMOS, PMOS, 3.3, 27.0, self._variations(2), corr)


class TestGeneric035:
    def test_polarities(self):
        assert GENERIC035.nmos.polarity == 1
        assert GENERIC035.pmos.polarity == -1
        assert GENERIC035.model(1) is GENERIC035.nmos
        assert GENERIC035.model(-1) is GENERIC035.pmos

    def test_thresholds_have_proper_signs(self):
        assert GENERIC035.nmos.vto > 0
        assert GENERIC035.pmos.vto < 0

    def test_global_covariance_is_psd(self):
        cov = GENERIC035.global_covariance()
        eigenvalues = np.linalg.eigvalsh(cov)
        assert np.min(eigenvalues) >= -1e-18

    def test_global_covariance_diagonal_matches_sigmas(self):
        cov = GENERIC035.global_covariance()
        sigmas = np.array([gv.sigma for gv in GENERIC035.global_variations])
        assert np.allclose(np.diag(cov), sigmas**2)

    def test_beta_factors_are_correlated(self):
        cov = GENERIC035.global_covariance()
        names = list(GENERIC035.global_names)
        i, j = names.index("gbetan"), names.index("gbetap")
        assert cov[i, j] > 0

    def test_cholesky_exists(self):
        np.linalg.cholesky(GENERIC035.global_covariance())
