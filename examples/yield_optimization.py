"""Full yield optimization of the Miller opamp (the Table 6 experiment).

Runs the Fig.-6 loop: feasible starting point, spec-wise linearization at
worst-case points, coordinate-search yield maximization inside the
linearized feasibility region, and simulation-based line search — until
the yield estimate stops improving.  Prints the paper-style trace table.

Run:  python examples/yield_optimization.py            (Miller, ~1 min)
      python examples/yield_optimization.py fc         (folded-cascode,
                                                        several minutes)
"""

import sys

from repro.circuits import FoldedCascodeOpamp, MillerOpamp
from repro.core import OptimizerConfig, YieldOptimizer
from repro.reporting import optimization_trace_table
from repro.units import format_si


def main() -> None:
    if len(sys.argv) > 1 and sys.argv[1].startswith("f"):
        template = FoldedCascodeOpamp()
        config = OptimizerConfig(n_samples_verify=150, max_iterations=10,
                                 seed=7)
    else:
        template = MillerOpamp()
        config = OptimizerConfig(n_samples_verify=150, max_iterations=5,
                                 seed=1)

    print(f"Optimizing the {template.name} opamp "
          f"({len(template.design_parameters)} design parameters, "
          f"{template.statistical_space.dim} statistical parameters, "
          f"{len(template.specs)} specs)...\n")
    result = YieldOptimizer(template, config).run()

    print(optimization_trace_table(template, result))
    print(f"converged: {result.converged} in {len(result.records) - 1} "
          f"iterations")
    print(f"simulations: {result.total_simulations} "
          f"(+{result.total_constraint_simulations} constraint checks), "
          f"wall time {result.wall_time_s:.1f} s\n")

    print("final design:")
    for name in template.design_names:
        parameter = next(p for p in template.design_parameters
                         if p.name == name)
        initial = format_si(parameter.initial, parameter.unit)
        final = format_si(result.d_final[name], parameter.unit)
        print(f"  {name:>4}: {initial:>12}  ->  {final:>12}")


if __name__ == "__main__":
    main()
