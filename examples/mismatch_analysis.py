"""Mismatch analysis of the folded-cascode opamp (Sec. 3 / Table 5).

Computes the worst-case point of every spec at the initial design, scores
all local-threshold parameter pairs with the Eq. 9 mismatch measure, and
prints the ranked matching pairs — the paper's Table 5, discovered without
telling the algorithm which devices are matched.

Per Sec. 3 of the paper, the analysis runs over the *local* statistical
parameters only (design parameters fixed, s ~ N(0, I) of the local
space); global variations are excluded from the mismatch space.

Also dumps a Fig. 1-style CMRR surface over (dVth_M9, dVth_M10) to
``cmrr_surface.csv`` for plotting.

Run:  python examples/mismatch_analysis.py
"""

import csv

import numpy as np

from repro.circuits import FoldedCascodeOpamp
from repro.core import analyze_mismatch, find_all_worst_case_points
from repro.evaluation import Evaluator
from repro.reporting import mismatch_table
from repro.spec.operating import find_worst_case_operating_points


def main() -> None:
    template = FoldedCascodeOpamp(with_global=False)  # Sec. 3 setting
    evaluator = Evaluator(template)
    d = template.initial_design()
    s0 = template.statistical_space.nominal()

    print("Computing worst-case operating corners and worst-case points "
          "(this is the same data the yield optimizer needs, so the "
          "mismatch analysis is free, Sec. 3.2)...")
    theta_wc = find_worst_case_operating_points(
        lambda theta: evaluator.evaluate(d, s0, theta),
        template.specs, template.operating_range)
    worst_case = find_all_worst_case_points(evaluator, d, theta_wc, seed=2)

    names = list(template.statistical_space.names)
    report = analyze_mismatch(worst_case, names,
                              candidate_names=template.local_vth_names(),
                              threshold=0.02)

    print("\n=== Mismatch-sensitive performances "
          "(measure >= 0.02, Eq. 9) ===")
    for key, pairs in report.items():
        if not pairs:
            print(f"  {key:>8}: not mismatch-sensitive")
        else:
            devices = ", ".join(f"({a},{b}) m={p.measure:.2f}"
                                for p in pairs[:3]
                                for a, b in [p.devices])
            print(f"  {key:>8}: {devices}")

    cmrr_pairs = report.get("cmrr>=", [])
    if cmrr_pairs:
        print("\n=== Table 5: mismatch measure for CMRR ===")
        print(mismatch_table(cmrr_pairs, top=3))

    # Fig. 1: CMRR over the (dVth_M9, dVth_M10) plane.
    print("\nSampling the Fig. 1 CMRR surface (15 x 15 grid)...")
    space = template.statistical_space
    i9 = space.index("dvt_M9")
    i10 = space.index("dvt_M10")
    sigma9 = space.local_variations[i9 - space.n_global].sigma(
        template.process, d)
    grid_mv = np.linspace(-6e-3, 6e-3, 15)
    with open("cmrr_surface.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["dvth_m9_mV", "dvth_m10_mV", "cmrr_dB"])
        for dv9 in grid_mv:
            for dv10 in grid_mv:
                s = np.zeros(space.dim)
                s[i9] = dv9 / sigma9
                s[i10] = dv10 / sigma9
                value = evaluator.evaluate(
                    d, s, theta_wc["cmrr>="])["cmrr"]
                writer.writerow([dv9 * 1e3, dv10 * 1e3,
                                 round(value, 2)])
    print("wrote cmrr_surface.csv — the tent of Fig. 1: a ridge along the "
          "neutral line (dv9 = dv10)\nand steep degradation along the "
          "mismatch line (dv9 = -dv10).")
    print(f"\ntotal circuit simulations: {evaluator.simulation_count}")


if __name__ == "__main__":
    main()
