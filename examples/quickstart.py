"""Quickstart: estimate and understand the yield of an opamp in ~a minute.

Loads the Miller opamp benchmark (Fig. 8 of the paper), finds the
worst-case operating corner of every spec, computes worst-case distances
(Eq. 8), builds the spec-wise linearized yield estimate (Eq. 16-18) and
compares it against a real Monte-Carlo run (Eq. 6-7).

Run:  python examples/quickstart.py
"""

from repro.circuits import MillerOpamp
from repro.core import (LinearizedYieldEstimator, build_spec_models,
                        find_all_worst_case_points, operational_monte_carlo)
from repro.evaluation import Evaluator
from repro.spec.operating import find_worst_case_operating_points
from repro.statistics import SampleSet


def main() -> None:
    template = MillerOpamp()
    evaluator = Evaluator(template)
    d = template.initial_design()
    s0 = template.statistical_space.nominal()

    print("=== Miller opamp, initial design ===")
    nominal = evaluator.evaluate(d, s0, template.operating_range.nominal())
    for performance in template.performances:
        spec = template.spec_for(performance.name)
        value = nominal[performance.name]
        print(f"  {performance.name:>6} = {value:8.2f} {performance.unit:5}"
              f" (spec {spec.kind} {spec.bound:g})")

    print("\n=== Worst-case operating corners (Eq. 2) ===")
    theta_wc = find_worst_case_operating_points(
        lambda theta: evaluator.evaluate(d, s0, theta),
        template.specs, template.operating_range)
    for key, theta in theta_wc.items():
        print(f"  {key:>8} -> {theta}")

    print("\n=== Worst-case distances (Eq. 8) ===")
    worst_case = find_all_worst_case_points(evaluator, d, theta_wc, seed=1)
    for key, wc in worst_case.items():
        status = "OK" if wc.beta_wc > 3 else (
            "VIOLATED" if wc.beta_wc < 0 else "marginal")
        print(f"  {key:>8}: beta_wc = {wc.beta_wc:+6.2f} sigma  [{status}]")

    print("\n=== Yield: spec-wise linearized estimate vs Monte Carlo ===")
    models = build_spec_models(evaluator, d, worst_case, theta_wc)
    samples = SampleSet.draw(10000, template.statistical_space.dim, seed=1)
    estimator = LinearizedYieldEstimator(models, samples)
    y_linear = estimator.yield_estimate(d)
    print(f"  Y_bar   (10,000 samples on the linear models, 0 extra "
          f"simulations) = {y_linear * 100:.1f}%")
    mc = operational_monte_carlo(evaluator, d, theta_wc, n_samples=200,
                                 seed=7)
    print(f"  Y_tilde (200-sample simulation-based Monte Carlo)"
          f"            = {mc.yield_estimate * 100:.1f}%"
          f"  (+- {mc.standard_error * 100:.1f}%)")
    print(f"\n  bad samples per spec (linear models, permille):")
    for key, fraction in estimator.bad_samples_per_spec(d).items():
        print(f"    {key:>8}: {fraction * 1000:6.1f}")
    print(f"\n  total circuit simulations used: "
          f"{evaluator.simulation_count}")


if __name__ == "__main__":
    main()
