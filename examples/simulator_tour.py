"""Tour of the built-in analog circuit simulator substrate.

The yield machinery runs on a from-scratch MNA simulator; this script
shows it standalone: SPICE-style netlist parsing, DC operating point,
AC Bode data, and a large-signal transient.

Run:  python examples/simulator_tour.py
"""

import math

from repro.circuit import (Circuit, log_sweep, parse_netlist, solve_ac,
                           solve_dc, solve_transient, step_waveform)
from repro.pdk import GENERIC035
from repro.units import db, format_si

NETLIST = """five-transistor OTA
.model n nmos (vto=0.5 kp=170u lambda=0.06 gamma=0.58)
.model p pmos (vto=-0.65 kp=58u lambda=0.14 gamma=0.40)
VDD vdd 0 3.3
VCM inp 0 DC 1.2 AC 0.5
VIN inn 0 DC 1.2 AC -0.5
IB vdd nbias 20u
MB nbias nbias 0 0 n W=20u L=1u
M5 tail nbias 0 0 n W=40u L=1u
M1 d1 inn tail 0 n W=50u L=1u
M2 out inp tail 0 n W=50u L=1u
M3 d1 d1 vdd vdd p W=25u L=1u
M4 out d1 vdd vdd p W=25u L=1u
CL out 0 2p
.end
"""


def ota_demo() -> None:
    print("=== SPICE netlist -> DC operating point ===")
    circuit = parse_netlist(NETLIST)
    op = solve_dc(circuit)
    print(f"  parsed {len(circuit)} devices; DC solved with "
          f"{op.iterations} Newton iterations ({op.strategy})")
    for name in ("M1", "M2", "M5"):
        record = op.op(name)
        print(f"  {name}: Id = {format_si(record['ids'], 'A')}, "
              f"gm = {format_si(record['gm'], 'S')}, "
              f"region = {record['region']}")

    print("\n=== AC analysis: differential gain Bode points ===")
    result = solve_ac(circuit, op, log_sweep(1e2, 1e9, 1))
    for freq, h in zip(result.freqs, result.voltage("out")):
        print(f"  f = {format_si(freq, 'Hz'):>10}:  "
              f"|H| = {db(abs(h)):6.1f} dB, "
              f"phase = {math.degrees(math.atan2(h.imag, h.real)):7.1f} deg")


def rc_transient_demo() -> None:
    print("\n=== Transient: RC step response vs closed form ===")
    circuit = Circuit("rc")
    circuit.vsource("V1", "in", "0", dc=0.0,
                    waveform=step_waveform(0.0, 0.0, 1.0))
    circuit.resistor("R1", "in", "out", 1e3)
    circuit.capacitor("C1", "out", "0", 1e-9)
    tau = 1e-6
    result = solve_transient(circuit, t_stop=3 * tau, dt=tau / 100)
    for k in range(0, len(result.times), 60):
        t = result.times[k]
        v = result.voltage("out")[k]
        expected = 1.0 - math.exp(-t / tau)
        print(f"  t = {t * 1e6:5.2f} us: v = {v:6.4f} V "
              f"(analytic {expected:6.4f} V)")


def process_demo() -> None:
    print("\n=== The synthetic PDK ===")
    process = GENERIC035
    print(f"  process {process.name}: VDD = {process.vdd_nominal} V")
    print(f"  NMOS VTO = {process.nmos.vto} V, "
          f"KP = {format_si(process.nmos.kp, 'A/V^2')}")
    print(f"  global variations: "
          + ", ".join(f"{gv.name} (sigma {gv.sigma:g})"
                      for gv in process.global_variations))
    sigma = process.pelgrom.sigma_vth(1, 20e-6, 1e-6)
    print(f"  Pelgrom: per-device dVth sigma of a 20u x 1u NMOS = "
          f"{sigma * 1e3:.2f} mV")


if __name__ == "__main__":
    ota_demo()
    rc_transient_demo()
    process_demo()
