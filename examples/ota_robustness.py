"""Robustness workflow on the five-transistor OTA: corners, noise budget,
then yield optimization.

Shows the pre-statistical tools (PVT corner analysis, noise breakdown)
next to the paper's statistical machinery on a small circuit with a noise
specification.

Run:  python examples/ota_robustness.py
"""

from repro.circuit import log_sweep, solve_noise
from repro.circuits import FiveTransistorOta
from repro.core import OptimizerConfig, YieldOptimizer
from repro.evaluation import Evaluator, corner_analysis
from repro.reporting import optimization_trace_table


def corner_report(template, evaluator, d):
    print("=== PVT corner analysis (one-at-a-time +-3 sigma globals x "
          "operating corners) ===")
    report = corner_analysis(evaluator, d)
    print(report.summary())
    failing = report.failing_specs()
    print(f"\ncorner-failing specs: {failing or 'none'} "
          f"({report.simulations} simulations)\n")


def noise_budget(template, d):
    print("=== Output noise budget at the nominal design ===")
    space = template.statistical_space
    pv = space.to_physical(d, space.nominal())
    theta = template.operating_range.nominal()
    circuit = template.build(d, pv, theta)
    from repro.evaluation.measure import OpenLoopOpampBench
    bench = OpenLoopOpampBench(circuit, temp_c=theta["temp"])
    bench.differential_gain()  # establish the dm drive for context
    freqs = [1e2, 1e4, 1e6]
    noise = solve_noise(circuit, bench.op, "out", freqs)
    for k, freq in enumerate(freqs):
        top = sorted(noise.contributions[k], key=lambda e: -e.density)[:3]
        parts = ", ".join(f"{e.device}/{e.kind} "
                          f"{e.density ** 0.5 * 1e9:.1f}"
                          for e in top)
        total = noise.output_density[k] ** 0.5 * 1e9
        print(f"  f = {freq:8.0f} Hz: {total:6.1f} nV/rtHz total "
              f"(top: {parts})")
    print()


def optimize(template):
    print("=== Yield optimization (Fig. 6 loop) ===")
    config = OptimizerConfig(n_samples_verify=150, max_iterations=4,
                             seed=3)
    result = YieldOptimizer(template, config).run()
    print(optimization_trace_table(template, result))
    print(f"simulations: {result.total_simulations}, wall "
          f"{result.wall_time_s:.1f} s")


def main() -> None:
    template = FiveTransistorOta()
    evaluator = Evaluator(template)
    d = template.initial_design()
    corner_report(template, evaluator, d)
    noise_budget(template, d)
    optimize(template)


if __name__ == "__main__":
    main()
