"""Figure 4: performance behaviour over the feasibility region.

Paper figure: the DC gain A0 plotted over a design parameter is *weakly
nonlinear inside* the feasibility region (v_sat >= 0) and wildly nonlinear
outside — which is why restricting the search to the linearized
feasibility region makes first-order performance models sufficient
(Sec. 5.1, point 2).

Reproduction: sweep the folded-cascode input-pair width across its box,
evaluate A0 and the sizing rules at every point, fit a line to A0 on the
feasible subset, and show the fit error explodes outside.
"""

import numpy as np

from repro.circuits import FoldedCascodeOpamp
from repro.evaluation import Evaluator

N_POINTS = 25
PARAMETER = "w3"  # folding-sink width: strongly constrained both ways


def sweep(template, evaluator):
    d0 = template.initial_design()
    parameter = next(p for p in template.design_parameters
                     if p.name == PARAMETER)
    values = np.linspace(parameter.lower, parameter.upper, N_POINTS)
    a0 = np.empty(N_POINTS)
    feasible = np.zeros(N_POINTS, dtype=bool)
    theta = template.operating_range.nominal()
    s0 = template.statistical_space.nominal()
    for k, value in enumerate(values):
        d = dict(d0)
        d[PARAMETER] = float(value)
        a0[k] = evaluator.evaluate(d, s0, theta)["a0"]
        feasible[k] = min(template.constraints(d).values()) >= 0.0
    return values, a0, feasible


def test_figure4_weak_nonlinearity_inside_feasibility(benchmark):
    template = FoldedCascodeOpamp()
    evaluator = Evaluator(template)
    values, a0, feasible = benchmark.pedantic(
        sweep, args=(template, evaluator), rounds=1, iterations=1)

    print(f"\nFigure 4 — A0 over {PARAMETER} "
          f"(* = inside the feasibility region):")
    for v, g, ok in zip(values, a0, feasible):
        marker = "*" if ok else " "
        print(f"  {PARAMETER} = {v * 1e6:6.1f} um {marker} "
              f"A0 = {g:6.1f} dB")

    assert feasible.any(), "no feasible points in the sweep"
    assert (~feasible).any(), "sweep never leaves the feasibility region"

    inside = feasible
    # Linear fit on the feasible subset.
    coeffs = np.polyfit(values[inside], a0[inside], 1)
    fit = np.polyval(coeffs, values)
    rms_inside = float(np.sqrt(np.mean((a0[inside] - fit[inside]) ** 2)))
    rms_outside = float(np.sqrt(np.mean((a0[~inside] - fit[~inside]) ** 2)))
    print(f"\nlinear-fit RMS error: {rms_inside:.2f} dB inside vs "
          f"{rms_outside:.2f} dB outside the feasibility region")

    # Weakly nonlinear inside; badly modelled outside.
    assert rms_inside < 2.0
    assert rms_outside > 3.0 * rms_inside
    # And A0 itself collapses somewhere outside (dead circuit).
    assert a0[~inside].min() < a0[inside].min() - 6.0
