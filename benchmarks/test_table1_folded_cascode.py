"""Table 1: yield-optimization trace of the folded-cascode opamp with
functional constraints.

Paper result (DAC 2001, Table 1): at the initial design the yield is 0 %,
dominated by the transit frequency (1000 permille bad samples) and CMRR
(980 permille); SR is marginal (272 permille).  After the first iteration
the simulated yield reaches 99.9 %, after the second 100 % with every one
of the 10,000 linear-model samples inside the acceptance region.

Reproduction target (shape, not absolute numbers): 0 % initial yield with
ft at 1000 permille and CMRR a major contributor, and ~100 % final yield
with (near-)zero bad samples; our trust-region variant spreads the paper's
two aggressive iterations over several shallower ones.
"""

from _util import print_comparison
from repro.circuits import FoldedCascodeOpamp
from repro.reporting import optimization_trace_table

PAPER_TABLE_1 = """
Performance        A0[dB]  ft[MHz]  CMRR[dB]  SRp[V/us]  Power[mW]
Specification       >40      >40      >80       >35        <3.5
Initial  f-fb       10.7     -2.3     -1.9       0.18       0.54
  bad samples [o/oo] 0.0   1000.0    980.4      272.5       0.0
  Y_tilde = 0%
1st Iter. f-fb      15.3     3.69     4.70       0.96       0.50
  bad samples [o/oo] 0.0      0.0      0.9        0.2       0.0
  Y_tilde = 99.9%
2nd Iter. f-fb      17.7     4.15     12.8       1.63       0.51
  bad samples [o/oo] 0.0      0.0      0.0        0.0       0.0
  Y_tilde = 100%
""".strip()


def test_table1_trace(benchmark, fc_result):
    template = FoldedCascodeOpamp()
    table = benchmark(optimization_trace_table, template, fc_result)
    print_comparison("Table 1 — folded-cascode yield optimization "
                     "(with functional constraints)", PAPER_TABLE_1, table)

    initial = fc_result.initial
    final = fc_result.final

    # Initial state: total yield loss dominated by ft and CMRR.
    assert initial.yield_mc <= 0.02
    assert initial.bad_samples["ft>="] >= 0.90
    assert initial.bad_samples["cmrr>="] >= 0.25
    assert initial.margins["ft>="] < 0.0
    assert initial.bad_samples["a0>="] <= 0.01
    assert initial.bad_samples["power<="] <= 0.01

    # Final state: yield (essentially) 100 %, all specs clean.
    assert final.yield_mc >= 0.97
    for key, fraction in final.bad_samples.items():
        assert fraction <= 0.005, f"{key} still has bad samples"
    for key, margin in final.margins.items():
        assert margin > 0.0, f"{key} margin still negative"


def test_table1_monotone_overall_improvement(benchmark, fc_result):
    """The verified yield must rise from ~0 to ~1 over the run (individual
    iterations may regress slightly; the paper's two big steps appear here
    as several trust-region-limited ones)."""
    def yields():
        return [r.yield_mc for r in fc_result.records
                if r.yield_mc is not None]

    values = benchmark(yields)
    assert values[0] <= 0.02
    assert max(values) >= 0.97
    assert values[-1] >= 0.97
