"""Ablation benchmarks for this reproduction's own design choices.

Beyond the paper's two ablations (Tables 3 and 4), DESIGN.md calls out
three implementation decisions worth isolating:

1. the **mirrored linear models** for quadratic specs (Eq. 21-22) —
   without them the linearized yield estimate misjudges the CMRR spec;
2. the **linearized-estimate accuracy** — the paper claims the Eq. 17
   estimate tracks the Monte-Carlo yield within 1-2 % (Sec. 5.2, ref. 12);
3. the **trust region** on the coordinate search — with it disabled, a
   single iteration extrapolates the linear models across the whole box
   and the true performances collapse (the same failure class as Table 3,
   but with constraints active).
"""

import numpy as np

from repro.circuits import FoldedCascodeOpamp, MillerOpamp
from repro.core import (LinearizedYieldEstimator, OptimizerConfig,
                        YieldOptimizer, build_spec_models)
from repro.evaluation import Evaluator
from repro.spec.operating import find_worst_case_operating_points
from repro.statistics import SampleSet


def test_ablation_mirror_models_matter_for_cmrr(benchmark, fc_result):
    """Eq. 21-22 ablation: drop the mirrored models and the CMRR
    bad-sample prediction loses a large part of the true failure mass."""
    template = FoldedCascodeOpamp()
    evaluator = Evaluator(template)
    d0 = fc_result.initial.d
    s0 = template.statistical_space.nominal()

    def build_both():
        theta_wc = find_worst_case_operating_points(
            lambda theta: evaluator.evaluate(d0, s0, theta),
            template.specs, template.operating_range)
        worst_case = fc_result.initial.worst_case
        samples = SampleSet.draw(10000, template.statistical_space.dim,
                                 seed=7)
        with_mirror = LinearizedYieldEstimator(
            build_spec_models(evaluator, d0, worst_case, theta_wc,
                              detect_quadratic_specs=True), samples)
        without_mirror = LinearizedYieldEstimator(
            build_spec_models(evaluator, d0, worst_case, theta_wc,
                              detect_quadratic_specs=False), samples)
        return (with_mirror.bad_samples_per_spec(d0)["cmrr>="],
                without_mirror.bad_samples_per_spec(d0)["cmrr>="])

    bad_with, bad_without = benchmark.pedantic(build_both, rounds=1,
                                               iterations=1)
    true_bad = fc_result.initial.mc.bad_fraction["cmrr>="]
    print(f"\nCMRR bad samples at the initial design: "
          f"true {true_bad * 1000:.0f} o/oo, models with mirror "
          f"{bad_with * 1000:.0f} o/oo, without {bad_without * 1000:.0f}")
    # One tangent sees only one side of the tent: it must miss a large
    # part of the failure mass that the mirrored pair captures.
    assert bad_without < bad_with
    assert abs(bad_with - true_bad) < abs(bad_without - true_bad)


def test_ablation_linearized_estimate_accuracy(benchmark, fc_result,
                                               miller_result):
    """Sec. 5.2's accuracy claim, checked at every verified design point
    of both optimization runs."""
    def collect():
        rows = []
        for result in (fc_result, miller_result):
            for record in result.records:
                if record.yield_mc is not None:
                    rows.append((result.template_name, record.index,
                                 record.yield_linear, record.yield_mc))
        return rows

    rows = benchmark(collect)
    print("\nY_bar (linearized) vs Y_tilde (Monte Carlo):")
    errors = []
    for name, index, y_lin, y_mc in rows:
        errors.append(abs(y_lin - y_mc))
        print(f"  {name:>15} iter {index}: Y_bar = {y_lin * 100:5.1f}%  "
              f"Y_tilde = {y_mc * 100:5.1f}%  |diff| = "
              f"{abs(y_lin - y_mc) * 100:4.1f}%")
    # At the linearization point itself (the initial record of each run)
    # the estimate is paper-grade accurate; across *moved* designs the
    # models are extrapolating, so allow a wider envelope.
    initial_errors = [abs(r[2] - r[3]) for r in rows if r[1] == 0]
    assert max(initial_errors) < 0.06
    assert np.median(errors) < 0.15


def test_ablation_no_trust_region_collapses(benchmark):
    """Trust-region ablation on the folded-cascode: one iteration with
    unbounded coordinate moves (constraints still active) walks far outside
    the models' validity."""
    def run():
        config = OptimizerConfig(n_samples_linear=4000,
                                 n_samples_verify=80, max_iterations=1,
                                 seed=7, trust_radius=0.0,
                                 max_step_halvings=0)
        return YieldOptimizer(FoldedCascodeOpamp(), config).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    after = result.records[1]
    print(f"\nwithout trust region, after one iteration: "
          f"Y_bar = {after.yield_linear * 100:.1f}%, "
          f"Y_tilde = {after.yield_mc * 100:.1f}%, margins = "
          + ", ".join(f"{k}: {v:+.1f}" for k, v in after.margins.items()))
    # The models promise a high yield...
    assert after.yield_linear > 0.5
    # ...but reality stays far below what the trust-region run achieves
    # after its full (converged) schedule.
    assert after.yield_mc < 0.5
