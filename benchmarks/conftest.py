"""Shared fixtures for the paper-reproduction benchmarks.

The expensive artifacts (full optimization runs) are computed once per
session and shared by every table/figure benchmark.  Budgets follow the
paper: N = 10,000 Monte-Carlo samples on the linearized models, 300-sample
simulation-based verification (reduced to 150 for the folded-cascode runs
to keep wall time reasonable), seeds fixed for reproducibility.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.circuits import FoldedCascodeOpamp, MillerOpamp
from repro.core import OptimizerConfig, YieldOptimizer


def _run(template, **overrides):
    config = OptimizerConfig(**overrides)
    return YieldOptimizer(template, config).run()


@pytest.fixture(scope="session")
def fc_result():
    """Full folded-cascode optimization (Tables 1, 2, 5, 7; Figs. 1, 5)."""
    return _run(FoldedCascodeOpamp(), n_samples_verify=150,
                max_iterations=10, seed=7)


@pytest.fixture(scope="session")
def miller_result():
    """Full Miller optimization (Tables 6, 7)."""
    return _run(MillerOpamp(), n_samples_verify=300, max_iterations=5,
                seed=1)


@pytest.fixture(scope="session")
def fc_no_constraints_result():
    """Table 3 ablation: same initial design, no functional constraints.

    The paper reports the state after the first iteration."""
    return _run(FoldedCascodeOpamp(), n_samples_verify=150,
                max_iterations=1, seed=7, use_constraints=False)


@pytest.fixture(scope="session")
def fc_nominal_linearization_result():
    """Table 4 ablation: linearization at s = s0 instead of s_wc."""
    return _run(FoldedCascodeOpamp(), n_samples_verify=150,
                max_iterations=1, seed=7, linearize_at="nominal")


@pytest.fixture(scope="session")
def fc_local_worst_case():
    """Worst-case points in the paper's Sec. 3 setting: the mismatch
    analysis runs over the *local* statistical parameters only (design
    parameters constant, s ~ N(0, I) of the local space).  Returns
    ``(template, worst_case_results)`` at the initial design."""
    from repro.core import find_all_worst_case_points
    from repro.evaluation import Evaluator
    from repro.spec.operating import find_worst_case_operating_points

    template = FoldedCascodeOpamp(with_global=False)
    evaluator = Evaluator(template)
    d = template.initial_design()
    s0 = template.statistical_space.nominal()
    theta_wc = find_worst_case_operating_points(
        lambda theta: evaluator.evaluate(d, s0, theta),
        template.specs, template.operating_range)
    worst_case = find_all_worst_case_points(evaluator, d, theta_wc, seed=7)
    return template, worst_case

