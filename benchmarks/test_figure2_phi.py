"""Figure 2: the mismatch-line selector Phi.

Paper figure: Phi, evaluated over the angle arctan(s_wc,k / s_wc,l),
selects pairs on the mismatch line within an uncertainty band given by the
constants Delta_1 and Delta_2.

Reproduction: our trapezoid reconstruction — 1 on the mismatch line
(angle -pi/4) within Delta_1, linear falloff to 0 over Delta_2 — printed
as a series and checked against the four requirements of Sec. 3.1.
"""

import math

import numpy as np

from repro.core.mismatch import DELTA1, DELTA2, phi_window


def sample_phi():
    angles = np.linspace(-math.pi / 2, math.pi / 2, 73)
    return angles, np.array([phi_window(a) for a in angles])


def test_figure2_phi_window(benchmark):
    angles, values = benchmark(sample_phi)

    print("\nFigure 2 — Phi over the angle arctan(s_k/s_l) [deg]:")
    for a, v in zip(angles[::4], values[::4]):
        bar = "#" * int(round(v * 40))
        print(f"  {math.degrees(a):+7.1f}  {v:4.2f} {bar}")

    # Requirement 1: full credit exactly on the mismatch line.
    assert phi_window(-math.pi / 4) == 1.0
    # Zero on the neutral line and on the axes.
    assert phi_window(math.pi / 4) == 0.0
    assert phi_window(0.0) == 0.0
    # Requirement 2: range [0, 1].
    assert values.min() >= 0.0 and values.max() <= 1.0
    # Band structure: flat top of width 2*Delta_1, support 2*(D1+D2).
    inside = [a for a, v in zip(angles, values) if v == 1.0]
    support = [a for a, v in zip(angles, values) if v > 0.0]
    assert max(inside) - min(inside) <= 2 * DELTA1 + 1e-6
    assert max(support) - min(support) <= 2 * (DELTA1 + DELTA2) + 0.1
    # Symmetry about the mismatch line.
    for offset in (0.05, 0.1, 0.2):
        assert phi_window(-math.pi / 4 + offset) == \
            phi_window(-math.pi / 4 - offset)
