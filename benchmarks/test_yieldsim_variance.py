"""Estimator variance at equal simulation budget on a low-yield ablation.

The paper verifies each iteration with a plain N = 300 operational
Monte-Carlo run (Sec. 6).  That estimator degrades exactly where yield
optimization starts: at a low-yield design, 300 samples see zero or a
handful of passes and the interval is dominated by the rule-of-large-N
floor.  The ISLE-style mean-shift importance sampler
(:class:`repro.yieldsim.MeanShiftIS`) recenters the sampling density on
the Eq. 8 worst-case points, so the same 300 simulations concentrate on
the pass/fail boundary.

Ablation setting: the folded-cascode opamp (local statistical parameters
only, as in the Sec. 3 mismatch analysis) at its *initial* design, with
the two active specs (CMRR, slew rate) tightened ~1.5 sigma into the
tail — true operational yield ~0.4 % (measured once with N = 8000).
Both worst-case distances are then slightly negative (beta ~ -0.04 and
-1.6), the regime the optimizer's first verification runs land in.

Acceptance check: at the same N = 300 budget the importance sampler's
95 % confidence interval is strictly narrower than plain Monte-Carlo's,
and it resolves the non-zero yield that Monte-Carlo typically misses.
"""

import pytest

from _util import print_comparison
from repro.circuits import FoldedCascodeOpamp
from repro.core import find_all_worst_case_points
from repro.evaluation import Evaluator
from repro.spec.operating import find_worst_case_operating_points
from repro.spec.specification import Spec
from repro.yieldsim import ExecutionConfig, MeanShiftIS, OperationalMC, \
    SobolQMC

#: verification budget from the paper (Sec. 6)
N_BUDGET = 300
SEED = 2001

#: CMRR/SR bounds ~1.5 sigma above the initial design's typical values
#: (cmrr: mean 78.8, sigma 9.9; sr: mean 35.5, sigma 0.58 at the
#: worst-case corner) -> true yield ~0.4 %.
TIGHT_SPECS = (Spec("cmrr", ">=", 93.7), Spec("sr", ">=", 36.38))


@pytest.fixture(scope="module")
def low_yield_ablation():
    """Folded-cascode low-yield setting shared by every comparison:
    ``(template, d, theta_wc, worst_case)``.  Each estimate runs on a
    fresh :class:`Evaluator` so simulation counts are not confounded by
    another estimator's warm cache (the estimators deliberately share the
    seed-2001 base draws)."""
    template = FoldedCascodeOpamp(with_global=False)
    template.specs = TIGHT_SPECS
    evaluator = Evaluator(template)
    d = template.initial_design()
    s0 = template.statistical_space.nominal()
    theta_wc = find_worst_case_operating_points(
        lambda theta: evaluator.evaluate(d, s0, theta),
        template.specs, template.operating_range)
    worst_case = find_all_worst_case_points(evaluator, d, theta_wc, seed=7)
    return template, d, theta_wc, worst_case


@pytest.fixture(scope="module")
def mc_estimate(low_yield_ablation):
    template, d, theta_wc, _ = low_yield_ablation
    return OperationalMC().estimate(Evaluator(template), d, theta_wc,
                                    n_samples=N_BUDGET, seed=SEED)


@pytest.fixture(scope="module")
def is_estimate(low_yield_ablation):
    template, d, theta_wc, worst_case = low_yield_ablation
    return MeanShiftIS().estimate(Evaluator(template), d, theta_wc,
                                  n_samples=N_BUDGET, seed=SEED,
                                  worst_case=worst_case)


def test_worst_case_regime(low_yield_ablation):
    """The ablation lands where it should: both specs active with small
    negative worst-case distances (slightly infeasible nominal)."""
    _, _, _, worst_case = low_yield_ablation
    assert set(worst_case) == {"cmrr>=", "sr>="}
    for wc in worst_case.values():
        assert wc.on_boundary
        assert -3.0 < wc.beta_wc < 0.0


def test_is_beats_mc_ci_width_at_equal_budget(mc_estimate, is_estimate):
    """Acceptance criterion: strictly narrower 95 % CI for the mean-shift
    importance sampler at the same N = 300 budget."""
    assert mc_estimate.n_samples == is_estimate.n_samples == N_BUDGET
    assert mc_estimate.simulations == is_estimate.simulations
    assert is_estimate.ci_width < mc_estimate.ci_width

    print_comparison(
        "Yield-estimator variance at equal budget (N = 300)",
        f"plain MC      : Y = {100 * mc_estimate.estimate:.2f} %  "
        f"CI width {100 * mc_estimate.ci_width:.2f} %",
        f"mean-shift IS : Y = {100 * is_estimate.estimate:.2f} %  "
        f"CI width {100 * is_estimate.ci_width:.2f} %  "
        f"(ESS {is_estimate.ess:.0f})")


def test_is_resolves_the_nonzero_yield(mc_estimate, is_estimate):
    """True yield is ~0.4 %: plain MC at N = 300 typically reports 0 %
    (0-1 passing samples), while the recentered sampler resolves a
    non-zero estimate of the right magnitude with a healthy ESS."""
    assert mc_estimate.estimate <= 2.0 / N_BUDGET
    assert 0.0 < is_estimate.estimate < 0.02
    assert is_estimate.ess > 0.5 * N_BUDGET


def test_parallel_verification_matches_serial(low_yield_ablation,
                                              mc_estimate):
    """--jobs 2 on the real circuit is bit-identical to serial: same
    estimate, same interval, same per-spec failure split."""
    template, d, theta_wc, _ = low_yield_ablation
    parallel = OperationalMC(
        execution=ExecutionConfig(jobs=2, chunk_size=64)).estimate(
            Evaluator(template), d, theta_wc, n_samples=N_BUDGET,
            seed=SEED)
    assert parallel.report.backend == "process-pool"
    assert parallel.estimate == mc_estimate.estimate
    assert parallel.ci_low == mc_estimate.ci_low
    assert parallel.ci_high == mc_estimate.ci_high
    assert parallel.bad_fraction == mc_estimate.bad_fraction


def test_qmc_comparable_at_equal_budget(low_yield_ablation, mc_estimate):
    """Scrambled Sobol' sampling is a drop-in for plain MC at the same
    budget (its Wilson interval is conservative, so no width claim —
    only that the estimate lands in the same low-yield regime)."""
    template, d, theta_wc, _ = low_yield_ablation
    qmc = SobolQMC().estimate(Evaluator(template), d, theta_wc,
                              n_samples=N_BUDGET, seed=SEED)
    assert qmc.estimator == "qmc"
    assert 0.0 <= qmc.estimate < 0.05
    assert qmc.simulations == mc_estimate.simulations
