"""Micro-benchmarks of the computational kernels.

These time the hot paths that determine the wall-clock column of Table 7:
one full testbench evaluation (DC + AC measurements), a raw DC solve, an
assembled-system AC point, the zero-simulation linearized yield estimate
(Eq. 17-20) and the exact coordinate maximization (Eq. 19 inner problem).
"""

import numpy as np

from repro.circuit import Circuit, solve_dc
from repro.circuit.ac import AcSystem
from repro.circuits import FoldedCascodeOpamp, MillerOpamp
from repro.core.estimator import LinearizedYieldEstimator
from repro.core.linear_model import SpecLinearModel
from repro.evaluation import Evaluator
from repro.pdk.generic035 import NMOS
from repro.spec import Spec
from repro.statistics import SampleSet


def test_bench_full_miller_evaluation(benchmark):
    template = MillerOpamp()
    evaluator = Evaluator(template, cache=False)
    d = template.initial_design()
    theta = template.operating_range.nominal()
    rng = np.random.default_rng(0)
    dim = template.statistical_space.dim

    def evaluate():
        return evaluator.evaluate(d, rng.standard_normal(dim), theta)

    result = benchmark(evaluate)
    assert "a0" in result


def test_bench_full_folded_cascode_evaluation(benchmark):
    template = FoldedCascodeOpamp()
    evaluator = Evaluator(template, cache=False)
    d = template.initial_design()
    theta = template.operating_range.nominal()
    rng = np.random.default_rng(0)
    dim = template.statistical_space.dim

    def evaluate():
        return evaluator.evaluate(d, rng.standard_normal(dim), theta)

    result = benchmark(evaluate)
    assert "cmrr" in result


def _cs_stage():
    circuit = Circuit("cs")
    circuit.vsource("VDD", "vdd", "0", dc=3.3)
    circuit.vsource("VG", "g", "0", dc=0.9, ac=1.0)
    circuit.resistor("RD", "vdd", "d", 10e3)
    circuit.capacitor("CL", "d", "0", 1e-12)
    circuit.mosfet("M1", "d", "g", "0", "0", NMOS, w=10e-6, l=1e-6)
    return circuit


def test_bench_dc_solve(benchmark):
    circuit = _cs_stage()

    def solve():
        return solve_dc(circuit)

    result = benchmark(solve)
    assert result.op("M1")["region"] == "saturation"


def test_bench_ac_point_on_assembled_system(benchmark):
    circuit = _cs_stage()
    op = solve_dc(circuit)
    system = AcSystem(circuit, op)

    def solve_point():
        return system.transfer("d", 1e6)

    value = benchmark(solve_point)
    assert abs(value) > 0


def _estimator(n_models=6, dim=27, n_samples=10000):
    rng = np.random.default_rng(1)
    models = []
    for i in range(n_models):
        models.append(SpecLinearModel(
            spec=Spec(f"f{i}", ">=", 0.0), key=f"f{i}>=",
            theta={"temp": 27.0}, s_ref=rng.standard_normal(dim),
            g_ref=float(rng.uniform(0, 1)),
            grad_s=rng.standard_normal(dim),
            grad_d={f"d{k}": float(rng.standard_normal())
                    for k in range(10)},
            d_ref={f"d{k}": 1.0 for k in range(10)}))
    samples = SampleSet.draw(n_samples, dim, seed=2)
    return LinearizedYieldEstimator(models, samples)


def test_bench_yield_estimate_10000_samples(benchmark):
    estimator = _estimator()
    d = {f"d{k}": 1.1 for k in range(10)}
    value = benchmark(estimator.yield_estimate, d)
    assert 0.0 <= value <= 1.0


def test_bench_exact_coordinate_maximization(benchmark):
    estimator = _estimator()
    d = {f"d{k}": 1.0 for k in range(10)}
    result = benchmark(estimator.maximize_coordinate, d, "d3", 0.5, 1.5)
    assert 0.0 <= result.yield_estimate <= 1.0
