"""Figure 5: the yield estimate over one design parameter.

Paper figure: Y_bar(d) plotted from a parameter's lower to upper bound is
zero over a large part of the range, non-monotone and piecewise constant —
the reasons the paper prefers a robust coordinate search over gradient
methods (Sec. 5.3).

Reproduction: rebuild the initial spec-wise linear models of the
folded-cascode run and sweep one design coordinate through its box,
evaluating Y_bar on 10,000 samples at every point (zero simulations —
Eq. 20's incremental update).
"""

import numpy as np

from repro.circuits import FoldedCascodeOpamp
from repro.core import LinearizedYieldEstimator, build_spec_models
from repro.evaluation import Evaluator
from repro.spec.operating import find_worst_case_operating_points
from repro.statistics import SampleSet

PARAMETER = "w1"  # input-pair width: controls the failing ft spec
N_POINTS = 61


def build_profile(fc_result):
    template = FoldedCascodeOpamp()
    evaluator = Evaluator(template)
    d0 = fc_result.initial.d
    s0 = template.statistical_space.nominal()
    theta_wc = find_worst_case_operating_points(
        lambda theta: evaluator.evaluate(d0, s0, theta),
        template.specs, template.operating_range)
    models = build_spec_models(evaluator, d0,
                               fc_result.initial.worst_case, theta_wc)
    samples = SampleSet.draw(10000, template.statistical_space.dim, seed=7)
    estimator = LinearizedYieldEstimator(models, samples)
    parameter = next(p for p in template.design_parameters
                     if p.name == PARAMETER)
    values = np.linspace(parameter.lower, parameter.upper, N_POINTS)
    profile = np.empty(N_POINTS)
    for k, value in enumerate(values):
        d = dict(d0)
        d[PARAMETER] = float(value)
        profile[k] = estimator.yield_estimate(d)
    return values, profile


def test_figure5_yield_profile(benchmark, fc_result):
    values, profile = benchmark.pedantic(build_profile, args=(fc_result,),
                                         rounds=1, iterations=1)

    print(f"\nFigure 5 — Y_bar over {PARAMETER} (initial linear models):")
    for v, y in list(zip(values, profile))[::3]:
        bar = "#" * int(round(y * 50))
        print(f"  {PARAMETER} = {v * 1e6:6.1f} um  Y = {y:5.3f} {bar}")

    # Flat-zero over a large part of the design range (the paper's point
    # about useless yield gradients).
    zero_fraction = float(np.mean(profile < 1e-3))
    print(f"\nflat-zero fraction of the range: {zero_fraction * 100:.0f}%")
    assert zero_fraction >= 0.15

    # A clearly positive region exists...
    assert profile.max() > 0.3
    # ...with an interior maximum (non-monotone overall).
    k_max = int(np.argmax(profile))
    assert 0 < k_max < N_POINTS - 1 or profile[0] < profile.max()

    # Piecewise-constant: with 10,000 samples many neighbouring grid
    # points share the exact same estimate.
    repeats = np.sum(np.diff(profile) == 0.0)
    assert repeats >= 3
