"""Figure 1: CMRR over two locally varying thresholds — the mismatch tent.

Paper figure: CMRR plotted over (Vth1, Vth2) of a matching pair shows a
ridge along the *neutral line* (dVth1 = dVth2: almost no effect) and
maximal degradation along the *mismatch line* (dVth1 = -dVth2) — the
quadratic/tent behaviour that motivates both the mismatch measure (Eq. 9)
and the mirrored linearization (Eq. 21-22).

Reproduction: sample the CMRR of the folded-cascode over the dominant
matching pair found by the Table 5 analysis and verify the tent shape
quantitatively.
"""

import numpy as np

from repro.circuits import FoldedCascodeOpamp
from repro.evaluation import Evaluator

GRID_MV = np.linspace(-4.0, 4.0, 9)  # threshold offsets in mV


def sample_surface(template, evaluator, pair=("M9", "M10")):
    d = template.initial_design()
    theta = template.operating_range.nominal()
    space = template.statistical_space
    ia = space.index(f"dvt_{pair[0]}")
    ib = space.index(f"dvt_{pair[1]}")
    sigma_a = space.local_variations[ia - space.n_global].sigma(
        template.process, d)
    sigma_b = space.local_variations[ib - space.n_global].sigma(
        template.process, d)
    surface = np.empty((len(GRID_MV), len(GRID_MV)))
    for i, dva in enumerate(GRID_MV):
        for j, dvb in enumerate(GRID_MV):
            s = np.zeros(space.dim)
            s[ia] = dva * 1e-3 / sigma_a
            s[ib] = dvb * 1e-3 / sigma_b
            surface[i, j] = evaluator.evaluate(d, s, theta)["cmrr"]
    return surface


def test_figure1_tent_shape(benchmark):
    template = FoldedCascodeOpamp()
    evaluator = Evaluator(template)
    surface = benchmark.pedantic(sample_surface, args=(template, evaluator),
                                 rounds=1, iterations=1)

    print("\nFigure 1 — CMRR [dB] over (dVth_M9, dVth_M10) in mV:")
    header = "        " + " ".join(f"{v:+5.0f}" for v in GRID_MV)
    print(header)
    for i, dva in enumerate(GRID_MV):
        row = " ".join(f"{surface[i, j]:5.1f}"
                       for j in range(len(GRID_MV)))
        print(f"  {dva:+5.0f} {row}")

    n = len(GRID_MV)
    center = surface[n // 2, n // 2]
    neutral = [surface[k, k] for k in range(n)]
    mismatch = [surface[k, n - 1 - k] for k in range(n)]

    # Neutral line: flat within a few dB of the center (Definition 1).
    assert max(abs(v - center) for v in neutral) < 0.25 * (
        center - min(mismatch))
    # Mismatch line: both ends collapse by a large amount.
    assert mismatch[0] < center - 10.0
    assert mismatch[-1] < center - 10.0
    # The tent peaks on (or near) the neutral line.
    assert np.mean(neutral) > np.mean(mismatch) + 10.0
