"""Benchmark of the batched simulation engine.

Produces ``BENCH_perf_engine.json`` at the repository root with eight
measurements:

* AC kernel: stacked ``solve_many`` vs a per-frequency ``solve`` loop,
* DC kernel: warm-started (anchor + sensitivity-predicted) evaluations
  vs cold homotopy evaluations,
* sparse kernel: the factorization-reusing sparse backend vs the dense
  LAPACK backend on the large two-stage-array template — the DC Newton
  loop (cold homotopy solve) and the AC frequency sweep,
* large template: end-to-end dense-vs-sparse ``evaluate()`` on the same
  template (DC + warm start + every AC measurement),
* worst-case search: serial vs shared process pool, asserting the pooled
  results and Table-7 counters are bit-identical,
* the headline Table-1 comparison: a folded-cascode optimization with
  the engine configuration vs legacy mode (``warm_dc = False``,
  ``SECTION_POINTS = 1``, serial) — the pre-engine measurement path,
* sample-batched MC: the structure-of-arrays lockstep engine
  (``repro.circuit.batch``) vs the scalar per-sample loop on a
  two-stage-array verification Monte-Carlo, asserting bitwise value
  parity and exact effort-counter parity,
* cold sample-batched MC: the same comparison with warm anchors
  disabled (``warm_dc = False``) so every sample runs the full cold
  homotopy chain — the lockstep cold path added by the cold-chain PR.

``REPRO_BENCH_TINY=1`` (the CI smoke setting) shrinks the run budgets and
relaxes the speedup assertions; the committed baseline
``benchmarks/BENCH_perf_engine.baseline.json`` is from a full run.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

import repro.circuit.ac as ac_mod
from repro.circuit import Circuit, solve_dc
from repro.circuit.ac import AcSystem
from repro.circuits import FoldedCascodeOpamp
from repro.core import OptimizerConfig, YieldOptimizer
from repro.evaluation import Evaluator

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"
REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_perf_engine.json"

#: Representative Table-1 run (full folded-cascode optimization).  The
#: tiny variant keeps CI wall time in check while exercising every path.
OPTIMIZE_CFG = dict(n_samples_verify=30, max_iterations=2, seed=7) if TINY \
    else dict(n_samples_verify=100, max_iterations=4, seed=7)


@pytest.fixture(scope="module")
def report():
    data = {"tiny_mode": TINY, "optimize_config": OPTIMIZE_CFG}
    yield data
    REPORT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True)
                           + "\n")


def _fc_bench_system():
    """An AC system of folded-cascode size (20x20-ish MNA matrix)."""
    ckt = Circuit("bench")
    ckt.vsource("V1", "in", "0", dc=0.0, ac=1.0)
    prev = "in"
    for i in range(9):
        node = f"n{i}"
        ckt.resistor(f"R{i}", prev, node, 1e3 * (i + 1))
        ckt.capacitor(f"C{i}", node, "0", 1e-12 * (i + 1))
        prev = node
    return AcSystem(ckt, solve_dc(ckt))


def test_bench_ac_stacked_solves(report):
    system = _fc_bench_system()
    freqs = np.logspace(0, 9, 16 if TINY else 64)
    rounds = 20 if TINY else 100
    t0 = time.perf_counter()
    for _ in range(rounds):
        loop = [system.solve(float(f)) for f in freqs]
    loop_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(rounds):
        stacked = system.solve_many(freqs)
    stacked_s = time.perf_counter() - t0
    for i in range(len(freqs)):
        assert np.array_equal(stacked[i], loop[i])
    report["ac_kernel"] = {
        "n_freqs": len(freqs),
        "loop_ms": loop_s / rounds * 1e3,
        "stacked_ms": stacked_s / rounds * 1e3,
        "speedup": loop_s / stacked_s,
    }
    assert stacked_s < loop_s


def test_bench_dc_warm_vs_cold(report):
    n = 30 if TINY else 150

    def per_eval(warm):
        template = FoldedCascodeOpamp()
        template.warm_dc = warm
        evaluator = Evaluator(template, cache=False)
        d = template.initial_design()
        theta = template.operating_range.nominal()
        rng = np.random.default_rng(0)
        dim = template.statistical_space.dim
        points = [rng.standard_normal(dim) for _ in range(n)]
        evaluator.evaluate(d, points[0], theta)  # pay the anchor cost
        t0 = time.perf_counter()
        for s in points:
            evaluator.evaluate(d, s, theta)
        return (time.perf_counter() - t0) / n * 1e3

    warm_ms = per_eval(True)
    cold_ms = per_eval(False)
    report["dc_kernel"] = {
        "n_evaluations": n,
        "cold_ms_per_eval": cold_ms,
        "warm_ms_per_eval": warm_ms,
        "speedup": cold_ms / warm_ms,
    }
    if not TINY:
        assert cold_ms / warm_ms >= 1.5


def test_bench_sparse_kernel(report):
    """Dense vs sparse backend on the large template's raw solver
    kernels: the cold DC Newton loop and the AC frequency sweep."""
    from repro.circuits import TwoStageArrayOpamp

    template = TwoStageArrayOpamp()
    space = template.statistical_space
    d = template.initial_design()
    theta = template.operating_range.nominal()
    pv = space.to_physical(d, space.nominal())

    dc_rounds = 2 if TINY else 5
    freqs = np.logspace(1, 9, 12 if TINY else 40)
    ac_rounds = 2 if TINY else 5
    results = {}
    for backend in ("dense", "sparse"):
        circuit = template.build(d, pv, theta)
        op = solve_dc(circuit, backend=backend)  # warm the pattern cache
        t0 = time.perf_counter()
        for _ in range(dc_rounds):
            op = solve_dc(circuit, temp_c=theta["temp"], backend=backend)
        dc_s = (time.perf_counter() - t0) / dc_rounds
        system = AcSystem(circuit, op, backend=backend)
        sweep = system.solve_many(freqs)
        t0 = time.perf_counter()
        for _ in range(ac_rounds):
            sweep = system.solve_many(freqs)
        ac_s = (time.perf_counter() - t0) / ac_rounds
        results[backend] = (op.x, sweep, dc_s, ac_s)
    x_d, sweep_d, dc_dense, ac_dense = results["dense"]
    x_s, sweep_s, dc_sparse, ac_sparse = results["sparse"]
    assert np.allclose(x_s, x_d, rtol=1e-6, atol=1e-9)
    assert np.allclose(sweep_s, sweep_d, rtol=1e-8, atol=1e-12)
    report["sparse_kernel"] = {
        "mna_size": template.nominal_mna_size(),
        "dc_dense_ms": dc_dense * 1e3,
        "dc_sparse_ms": dc_sparse * 1e3,
        "dc_speedup": dc_dense / dc_sparse,
        "ac_n_freqs": len(freqs),
        "ac_dense_ms": ac_dense * 1e3,
        "ac_sparse_ms": ac_sparse * 1e3,
        "ac_speedup": ac_dense / ac_sparse,
    }
    assert dc_sparse < dc_dense
    assert ac_sparse < ac_dense
    if not TINY:
        # The ISSUE's acceptance target on the >= 120-node template.
        assert dc_dense / dc_sparse >= 3.0
        assert ac_dense / ac_sparse >= 3.0


def test_bench_large_template(report):
    """End-to-end dense-vs-sparse ``evaluate()`` on the large template:
    the full per-sample pipeline a yield run pays."""
    from repro.circuits import TwoStageArrayOpamp

    n = 3 if TINY else 10
    results = {}
    for backend in ("dense", "sparse"):
        template = TwoStageArrayOpamp()
        template.linsolve = backend
        evaluator = Evaluator(template, cache=False)
        d = template.initial_design()
        theta = template.operating_range.nominal()
        rng = np.random.default_rng(3)
        dim = template.statistical_space.dim
        points = [rng.standard_normal(dim) for _ in range(n)]
        evaluator.evaluate(d, points[0], theta)  # pay the anchor cost
        t0 = time.perf_counter()
        values = [evaluator.evaluate(d, s, theta) for s in points]
        results[backend] = ((time.perf_counter() - t0) / n, values)
    dense_s, dense_values = results["dense"]
    sparse_s, sparse_values = results["sparse"]
    for vd, vs in zip(dense_values, sparse_values):
        for key in vd:
            assert vs[key] == pytest.approx(vd[key], rel=1e-6), key
    report["large_template"] = {
        "n_evaluations": n,
        "dense_ms_per_eval": dense_s * 1e3,
        "sparse_ms_per_eval": sparse_s * 1e3,
        "speedup": dense_s / sparse_s,
    }
    if not TINY:
        assert dense_s / sparse_s >= 1.5


def test_bench_worst_case_serial_vs_pooled(report):
    from repro.core.worst_case import find_all_worst_case_points
    from repro.spec.operating import find_worst_case_operating_points
    from repro.yieldsim import PoolHandle

    def one_pass(jobs):
        template = FoldedCascodeOpamp()
        evaluator = Evaluator(template)
        d = template.initial_design()
        s0 = template.statistical_space.nominal()
        theta_wc = find_worst_case_operating_points(
            lambda theta: evaluator.evaluate(d, s0, theta),
            template.specs, template.operating_range)
        pool = PoolHandle.for_evaluator(evaluator, jobs=jobs)
        t0 = time.perf_counter()
        try:
            wc = find_all_worst_case_points(evaluator, d, theta_wc,
                                            seed=7, pool=pool)
        finally:
            if pool is not None:
                pool.close()
        elapsed = time.perf_counter() - t0
        counters = (evaluator.simulation_count, evaluator.request_count,
                    evaluator.cache_hits)
        return wc, counters, elapsed

    wc_s, counters_s, serial_s = one_pass(jobs=1)
    wc_p, counters_p, pooled_s = one_pass(jobs=2)
    assert counters_s == counters_p
    assert set(wc_s) == set(wc_p)
    for key in wc_s:
        assert wc_s[key].beta_wc == wc_p[key].beta_wc
        assert np.array_equal(wc_s[key].s_wc, wc_p[key].s_wc)
    report["worst_case_pool"] = {
        "jobs": 2,
        "serial_s": serial_s,
        "pooled_s": pooled_s,
        "bit_identical": True,
        "simulations": counters_s[0],
    }


def test_bench_table1_optimize_engine_vs_legacy(report):
    def engine_run():
        template = FoldedCascodeOpamp()
        t0 = time.perf_counter()
        result = YieldOptimizer(template,
                                OptimizerConfig(**OPTIMIZE_CFG)).run()
        return time.perf_counter() - t0, result

    def legacy_run():
        template = FoldedCascodeOpamp()
        template.warm_dc = False
        section_points = ac_mod.SECTION_POINTS
        ac_mod.SECTION_POINTS = 1
        try:
            t0 = time.perf_counter()
            result = YieldOptimizer(template,
                                    OptimizerConfig(**OPTIMIZE_CFG)).run()
            return time.perf_counter() - t0, result
        finally:
            ac_mod.SECTION_POINTS = section_points

    engine_s, engine = engine_run()
    legacy_s, legacy = legacy_run()
    report["table1_optimize"] = {
        "engine_s": engine_s,
        "legacy_s": legacy_s,
        "speedup": legacy_s / engine_s,
        "engine_simulations": engine.total_simulations,
        "legacy_simulations": legacy.total_simulations,
        "engine_final_yield": engine.records[-1].yield_mc,
        "legacy_final_yield": legacy.records[-1].yield_mc,
    }
    assert engine.total_simulations > 0
    if not TINY:
        assert legacy_s / engine_s >= 2.0


def test_bench_batched_mc(report):
    """Sample-batched vs scalar Monte-Carlo on the large template: the
    verification-MC workload the batched engine was built for.  Parity
    is the engine's contract — per-sample values bitwise identical
    (asserted both exactly and at the 1e-10 relative acceptance bar)
    and effort counters exactly equal."""
    from repro.circuits import TwoStageArrayOpamp

    n = 8 if TINY else 64
    chunk = 8 if TINY else 64

    def one_pass(batch_samples):
        template = TwoStageArrayOpamp()
        evaluator = Evaluator(template, cache=False)
        d = template.initial_design()
        theta = template.operating_range.nominal()
        rng = np.random.default_rng(11)
        dim = template.statistical_space.dim
        rows = [rng.standard_normal(dim) for _ in range(n)]
        evaluator.evaluate(d, rows[0], theta)  # pay the anchor cost
        t0 = time.perf_counter()
        values = evaluator.evaluate_batch(d, rows, theta,
                                          batch_samples=batch_samples)
        elapsed = time.perf_counter() - t0
        counters = (evaluator.simulation_count, evaluator.request_count,
                    evaluator.cache_hits)
        return values, counters, template.warm_cache_stats(), elapsed

    serial_vals, serial_ctr, serial_warm, serial_s = one_pass(1)
    batched_vals, batched_ctr, batched_warm, batched_s = one_pass(chunk)
    assert batched_ctr == serial_ctr
    assert batched_warm == serial_warm
    for vs, vb in zip(serial_vals, batched_vals):
        assert set(vs) == set(vb)
        for key in vs:
            assert vb[key] == pytest.approx(vs[key], rel=1e-10, abs=0.0)
            assert vb[key] == vs[key], key  # the bitwise contract
    report["batched_mc"] = {
        "n_samples": n,
        "batch_samples": chunk,
        "serial_ms_per_sample": serial_s / n * 1e3,
        "batched_ms_per_sample": batched_s / n * 1e3,
        "speedup": serial_s / batched_s,
        "bit_identical": True,
        "simulations": serial_ctr[0],
    }
    assert batched_s < serial_s
    if not TINY:
        # The ISSUE's acceptance target on the verification MC.
        assert serial_s / batched_s >= 3.0


def test_bench_cold_mc(report, monkeypatch):
    """Sample-batched vs scalar Monte-Carlo with warm anchors disabled:
    every sample solves through the cold homotopy chain, so this
    measures the lockstep cold path in isolation.  The parity contract
    is unchanged — bitwise per-sample values plus exact per-strategy DC
    effort counters.

    ``speedup`` (the gated ratio) compares the *DC solve phase* —
    serial ``solve_dc`` wall clock against the batched ``plan.solve``
    plus any scalar fallback solves — which is what the lockstep cold
    chain accelerates.  The end-to-end evaluation times ride along as
    ``e2e_speedup``: extraction is scalar by design and its per-sample
    AC factorizations are pinned by the bitwise contract, so they
    dilute the end-to-end ratio identically on both paths."""
    import repro.circuit.batch as batch_mod
    import repro.circuit.dc as dc_mod
    import repro.evaluation.measure as measure_mod
    from repro.circuits import TwoStageArrayOpamp

    n = 8 if TINY else 64
    chunk = 8 if TINY else 64

    dc_clock = [0.0]

    def timed_solve_dc(*args, **kwargs):
        t0 = time.perf_counter()
        result = solve_dc(*args, **kwargs)
        dc_clock[0] += time.perf_counter() - t0
        return result

    plan_solve = batch_mod.SampleBatchPlan.solve

    def timed_plan_solve(self, x0s):
        t0 = time.perf_counter()
        result = plan_solve(self, x0s)
        dc_clock[0] += time.perf_counter() - t0
        return result

    # The serial path solves through the lazy bench (measure.solve_dc);
    # the batched path through plan.solve, with scalar fallback rows
    # going through dc.solve_dc.  All three land in the same clock.
    monkeypatch.setattr(measure_mod, "solve_dc", timed_solve_dc)
    monkeypatch.setattr(dc_mod, "solve_dc", timed_solve_dc)
    monkeypatch.setattr(batch_mod.SampleBatchPlan, "solve",
                        timed_plan_solve)

    def one_pass(batch_samples):
        template = TwoStageArrayOpamp()
        template.warm_dc = False
        evaluator = Evaluator(template, cache=False)
        d = template.initial_design()
        theta = template.operating_range.nominal()
        rng = np.random.default_rng(11)
        dim = template.statistical_space.dim
        rows = [rng.standard_normal(dim) for _ in range(n)]
        evaluator.evaluate(d, rows[0], theta)  # warm the layout caches
        dc_clock[0] = 0.0
        t0 = time.perf_counter()
        values = evaluator.evaluate_batch(d, rows, theta,
                                          batch_samples=batch_samples)
        elapsed = time.perf_counter() - t0
        counters = (evaluator.simulation_count, evaluator.request_count,
                    evaluator.cache_hits)
        return (values, counters, template.dc_effort_stats(), elapsed,
                dc_clock[0])

    def best_pass(batch_samples):
        # Best-of-N wall clocks: the evaluation itself is deterministic
        # (identical values and counters every pass — asserted), so the
        # minimum is the least-noise measurement of the same work.
        values, counters, effort, elapsed, dc_s = one_pass(batch_samples)
        for _ in range(0 if TINY else 1):
            _, ctr2, eff2, t2, d2 = one_pass(batch_samples)
            assert ctr2 == counters and eff2 == effort
            elapsed = min(elapsed, t2)
            dc_s = min(dc_s, d2)
        return values, counters, effort, elapsed, dc_s

    serial_vals, serial_ctr, serial_dc, serial_s, serial_dc_s = \
        best_pass(1)
    batched_vals, batched_ctr, batched_dc, batched_s, batched_dc_s = \
        best_pass(chunk)
    assert batched_ctr == serial_ctr
    assert batched_dc == serial_dc
    for vs, vb in zip(serial_vals, batched_vals):
        assert set(vs) == set(vb)
        for key in vs:
            assert vb[key] == vs[key], key  # the bitwise contract
    report["cold_mc"] = {
        "n_samples": n,
        "batch_samples": chunk,
        "dc_serial_ms_per_sample": serial_dc_s / n * 1e3,
        "dc_batched_ms_per_sample": batched_dc_s / n * 1e3,
        "speedup": serial_dc_s / batched_dc_s,
        "serial_ms_per_sample": serial_s / n * 1e3,
        "batched_ms_per_sample": batched_s / n * 1e3,
        "e2e_speedup": serial_s / batched_s,
        "bit_identical": True,
        "dc_effort": serial_dc,
        "simulations": serial_ctr[0],
    }
    assert batched_dc_s < serial_dc_s
    assert batched_s < serial_s
    if not TINY:
        # The ISSUE's acceptance target: the cold DC solve phase (what
        # the lockstep homotopy chain batches) at >= 2x over the serial
        # chain, with the end-to-end run meaningfully faster too.
        assert serial_dc_s / batched_dc_s >= 2.0
        assert serial_s / batched_s >= 1.5
