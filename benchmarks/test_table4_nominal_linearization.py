"""Table 4: ablation — linearization at the nominal point s0 instead of
the worst-case points.

Paper result (Table 4): with constraints active but tangents taken at
s = s0, the bad-sample counts in the models again decline, yet the true
yield stays 0 % — the nominal-point tangents are wrong exactly where the
yield is decided (at the spec boundary), especially for the quadratic
CMRR (cf. Fig. 1), whose nominal-point gradient misses the mismatch
direction entirely.

Reproduction target: the simulated yield after the nominal-linearization
iteration stays far below what the worst-case-linearized optimizer reaches
from the identical budget, and in particular the CMRR spec is NOT fixed.
"""

from _util import print_comparison
from repro.circuits import FoldedCascodeOpamp
from repro.reporting import optimization_trace_table

PAPER_TABLE_4 = """
Performance        A0[dB]  ft[MHz]  CMRR[dB]  SRp[V/us]  Power[mW]
Specification       >40      >40      >80       >35        <3.5
Initial  f-fb       10.7     -2.3     -1.9       0.18       0.54
  bad samples [o/oo] 0.0   1000.0    546.3       0.0        0.0
  Y_tilde = 0%
1st Iter. f-fb      19.4      5.8     -2.3       3.6        0.6
  bad samples [o/oo] 0.0    437.8    482.1       7.7        0.0
  Y_tilde = 0%
""".strip()


def test_table4_nominal_linearization_fails(
        benchmark, fc_nominal_linearization_result, fc_result):
    template = FoldedCascodeOpamp()
    table = benchmark(optimization_trace_table, template,
                      fc_nominal_linearization_result)
    print_comparison("Table 4 — linearization at the nominal point "
                     "s = s0", PAPER_TABLE_4, table)

    ablation_after = fc_nominal_linearization_result.records[1]

    # The nominal-point models also see fewer bad samples...
    initial = fc_nominal_linearization_result.initial
    assert sum(ablation_after.bad_samples.values()) < \
        sum(initial.bad_samples.values())

    # ...but the true yield barely moves (paper: stays at 0 %).
    assert ablation_after.yield_mc <= 0.15

    # CMRR — the quadratic, mismatch-driven spec — remains badly broken:
    # its tangent at s = s0 points away from the mismatch direction.
    assert ablation_after.bad_samples["cmrr>="] >= 0.15

    # The worst-case-linearized optimizer, by contrast, finishes at
    # (essentially) full yield from the same starting point.
    assert fc_result.final.yield_mc - ablation_after.yield_mc >= 0.5


def test_table4_quadratic_spec_is_the_casualty(
        benchmark, fc_nominal_linearization_result, fc_result):
    """Isolate the mechanism: after the respective runs, the worst-case
    flow leaves CMRR clean while the nominal-point flow leaves it broken
    (paper: CMRR -2.3 dB / 482 permille after the Table 4 iteration vs.
    +4.7 dB / 0.9 permille in Table 1)."""
    def cmrr_bad():
        return (fc_nominal_linearization_result.records[1]
                .bad_samples["cmrr>="],
                fc_result.final.bad_samples["cmrr>="])

    ablated, reference = benchmark(cmrr_bad)
    print(f"\nCMRR bad samples: nominal-point flow "
          f"{ablated * 1000:.1f} o/oo vs worst-case flow "
          f"{reference * 1000:.1f} o/oo")
    assert ablated >= 0.15
    assert reference <= 0.01
