"""Table 5: mismatch measure — ranked matching pairs for CMRR.

Paper result (Table 5): the Eq. 9 measure, evaluated on the worst-case
points already computed for the yield optimization (no extra simulations),
flags exactly three transistor pairs for CMRR — P1 (0.84), P2 (0.11),
P3 (0.06) — and no other performance is mismatch-sensitive.

Setting (Sec. 3): during the mismatch analysis the design parameters stay
fixed and the statistical space is the *local* (mismatch) parameters only,
s ~ N(0, I) — reproduced by the ``fc_local_worst_case`` fixture.

Reproduction target: the top-ranked pairs are true matched pairs of the
topology (the analysis does not know the pairing), CMRR is the only
mismatch-sensitive spec, and the measure decays sharply from P1 onward.
"""

from _util import print_comparison
from repro.circuits.folded_cascode import MATCHED_PAIRS
from repro.core import analyze_mismatch, rank_matching_pairs
from repro.reporting import mismatch_table

PAPER_TABLE_5 = """
Pair       P1     P2     P3
m_kl      0.84   0.11   0.06
""".strip()


def test_table5_cmrr_pair_ranking(benchmark, fc_local_worst_case):
    template, worst_case = fc_local_worst_case
    names = list(template.statistical_space.names)

    pairs = benchmark(rank_matching_pairs, worst_case["cmrr>="], names,
                      candidate_names=template.local_vth_names(), top=3)
    print_comparison("Table 5 — mismatch measure for CMRR at the initial "
                     "design", PAPER_TABLE_5, mismatch_table(pairs, top=3))

    assert pairs[0].measure > 0.05
    known = {frozenset(p) for p in MATCHED_PAIRS}
    top = [p for p in pairs if p.measure > 0.02]
    assert top, "no mismatch pair detected"
    for pair in top:
        assert frozenset(pair.devices) in known, \
            f"{pair.devices} is not a physical matched pair"
    # Sharp ranking decay, as in the paper (0.84 / 0.11 / 0.06).
    if len([p for p in pairs if p.measure > 0]) >= 2:
        assert pairs[0].measure >= 2.0 * pairs[1].measure


def test_table5_only_cmrr_is_mismatch_sensitive(benchmark,
                                                fc_local_worst_case):
    template, worst_case = fc_local_worst_case

    names = list(template.statistical_space.names)
    report = benchmark(
        analyze_mismatch, worst_case, names,
        candidate_names=template.local_vth_names(), threshold=0.05)
    flagged = sorted(key for key, pairs in report.items() if pairs)
    print(f"\nmismatch-sensitive specs (threshold 0.05): {flagged} "
          f"(paper: CMRR only)")
    assert flagged == ["cmrr>="]


def test_table5_worst_case_distances_justify_eta(benchmark,
                                                 fc_local_worst_case):
    """Under local variations alone, CMRR has by far the smallest
    worst-case distance — the eta weighting then suppresses every robust
    spec's pairs (requirement 4 of Sec. 3.1)."""
    template, worst_case = fc_local_worst_case

    def betas():
        return {key: wc.beta_wc for key, wc in worst_case.items()}

    distances = benchmark(betas)
    print("\nlocal-space worst-case distances: "
          + ", ".join(f"{k}: {v:+.1f}" for k, v in distances.items()))
    cmrr_beta = abs(distances["cmrr>="])
    for key, beta in distances.items():
        if key != "cmrr>=":
            assert abs(beta) > 2.0 * cmrr_beta, key
