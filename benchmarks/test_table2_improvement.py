"""Table 2: the optimizer improves yield in *two ways* at once.

Paper result (Table 2, improvement between the 1st and 2nd iteration of
the folded-cascode run): the mean distance from the spec bound grows
(e.g. CMRR +169 %) while the performance spread *shrinks* (CMRR sigma
-53.4 %, ft sigma -11.5 %) — possible only because the optimizer controls
the covariance C(d) through the device areas (Sec. 4).

Reproduction: the mean-margin channel is asserted directly on the
verification Monte-Carlo statistics.  The variance channel is asserted at
its root — the optimizer must have *grown the matched-device areas*, which
shrinks the physical Pelgrom sigmas in C(d).  (The dB-domain standard
deviation of our CMRR is nearly scale-invariant because the synthetic
mirror is perfectly balanced at s = 0, so sigma[dB] is not a faithful
proxy here; see EXPERIMENTS.md.)
"""

from _util import print_comparison
from repro.circuits import FoldedCascodeOpamp
from repro.reporting import improvement_table
from repro.spec.operating import spec_key

PAPER_TABLE_2 = """
Performance   dMu/(Mu-fb)   dSigma/Sigma
A0              +15.5%         +20.4%
ft              +12.8%         -11.5%
CMRR            +169%          -53.4%
SRp             +73.4%         + 3.15%
Power           - 0.59%        - 1.69%
""".strip()


def test_table2_mean_margins_improve(benchmark, fc_result):
    template = FoldedCascodeOpamp()
    verified = [r for r in fc_result.records if r.mc is not None]
    before, after = verified[0], verified[-1]
    table = benchmark(improvement_table, template, before, after)
    print_comparison(
        "Table 2 — mean-margin vs sigma improvement (folded-cascode, "
        f"iteration {before.index} -> {after.index})",
        PAPER_TABLE_2, table)

    # The initially-critical specs must have moved away from their bounds.
    for name in ("cmrr", "ft", "sr"):
        spec = template.spec_for(name)
        key = spec_key(spec)
        margin_before = spec.margin(before.mc.performance_mean[key])
        margin_after = spec.margin(after.mc.performance_mean[key])
        assert margin_after > margin_before, name


def test_table2_variance_reduction_mechanism(benchmark, fc_result):
    """The paper's second channel: the optimizer shrinks C(d) itself.

    Direct evidence: the Pelgrom sigma of the mismatch-critical pair
    (found by the Table 5 analysis: the M9/M10 mirror) must be
    substantially smaller at the final design — the optimizer bought CMRR
    robustness with matched-device area.
    """
    template = FoldedCascodeOpamp()
    space = template.statistical_space
    d0 = fc_result.initial.d
    d1 = fc_result.d_final
    mirror_lv = next(lv for lv in space.local_variations
                     if lv.name == "dvt_M9")

    def sigma_ratio():
        return (mirror_lv.sigma(template.process, d1) /
                mirror_lv.sigma(template.process, d0))

    ratio = benchmark(sigma_ratio)
    area0 = d0["w9"] * d0["l9"]
    area1 = d1["w9"] * d1["l9"]
    print(f"\nmirror pair: area {area0 * 1e12:.1f} -> "
          f"{area1 * 1e12:.1f} um^2, local dVth sigma ratio "
          f"final/initial = {ratio:.2f} (paper's CMRR sigma: x0.47)")
    assert ratio < 0.8
    assert area1 > 1.5 * area0


def test_table2_failing_tail_eliminated(benchmark, fc_result):
    """Scale-free robustness view: the CMRR failure probability in the
    verification Monte-Carlo collapses from tens of percent to zero.
    (The dB-domain sigma is dominated by the harmless *upper* tail of
    -20 log10|.|, so the failing-tail mass is the honest statistic.)"""
    def failing_tail():
        verified = [r for r in fc_result.records if r.mc is not None]
        return (verified[0].mc.bad_fraction["cmrr>="],
                verified[-1].mc.bad_fraction["cmrr>="])

    before, after = benchmark(failing_tail)
    print(f"\nCMRR failing fraction: {before * 100:.1f}% -> "
          f"{after * 100:.1f}%")
    assert before > 0.15
    assert after <= 0.01
