"""Table 6: yield optimization of the Miller opamp (global variations).

Paper result (Table 6): initial yield 33.7 % — slew rate slightly violated
(-0.1 V/us margin, 636 permille bad) and phase margin marginal (+0.8 deg,
167 permille); after one iteration the yield jumps to 99.3 % (SR margin
+0.7, PM +2.7) and the second iteration only polishes robustness.

Reproduction target: an initial yield in the tens of percent dominated by
slew rate, a jump to ~100 % after the first iteration with a positive SR
margin near +1 V/us, and a stable second iteration.
"""

from _util import print_comparison
from repro.circuits import MillerOpamp
from repro.reporting import optimization_trace_table

PAPER_TABLE_6 = """
Performance        A0[dB]  ft[MHz]  PM[deg]  SRp[V/us]  Power[mW]
Specification       >80     >1.3     >60       >3         <1.3
Initial  f-fb        7.4     1.6      0.8      -0.1        0.5
  bad samples [o/oo] 3.6     0.0    166.8     636.2        0.0
  Y_tilde = 33.7%
1st Iter. f-fb       7.8     2.0      2.7       0.7        0.3
  bad samples [o/oo] 2.6     0.0      0.0       0.3        0.0
  Y_tilde = 99.3%
2nd Iter. f-fb       7.7     1.9      3.3       0.7        0.3
  bad samples [o/oo] 1.6     0.0      0.0       0.1        0.0
  Y_tilde = 99.3%
""".strip()


def test_table6_miller_trace(benchmark, miller_result):
    template = MillerOpamp()
    table = benchmark(optimization_trace_table, template, miller_result)
    print_comparison("Table 6 — Miller opamp yield optimization "
                     "(global variations only)", PAPER_TABLE_6, table)

    initial = miller_result.initial
    first = miller_result.records[1]
    final = miller_result.final

    # Initial: tens of percent, slew-rate dominated.
    assert 0.05 <= initial.yield_mc <= 0.6
    assert initial.margins["sr>="] < 0.0
    assert initial.bad_samples["sr>="] >= 0.4
    assert initial.bad_samples["ft>="] <= 0.01
    assert initial.bad_samples["power<="] <= 0.01

    # One iteration fixes it (paper: 33.7 % -> 99.3 %).
    assert first.yield_mc >= 0.95
    assert first.margins["sr>="] > 0.3

    # Final state stays clean.
    assert final.yield_mc >= 0.95
    for key, margin in final.margins.items():
        assert margin > 0.0, f"{key} margin negative at the optimum"


def test_table6_design_moves_are_sensible(benchmark, miller_result):
    """The fix must come from real design changes: more tail current
    and/or less compensation capacitance raise SR = I5/CC."""
    template = MillerOpamp()
    d0 = template.initial_design()

    def sr_drivers():
        d1 = miller_result.d_final
        return (d1["w5"] / d0["w5"], d1["cc"] / d0["cc"],
                d1["rb"] / d0["rb"])

    w5_ratio, cc_ratio, rb_ratio = benchmark(sr_drivers)
    print(f"\nSR drivers: w5 x{w5_ratio:.2f}, cc x{cc_ratio:.2f}, "
          f"rb x{rb_ratio:.2f}")
    # I_tail/CC must have increased.
    assert (w5_ratio / (cc_ratio * rb_ratio)) > 1.05
