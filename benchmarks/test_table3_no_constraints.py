"""Table 3: ablation — the same optimizer WITHOUT functional constraints.

Paper result (Table 3): starting from the same 0 %-yield design, the
unconstrained optimizer drives every bad-sample count in the *linearized
models* to zero — and the true yield stays at 0 %, because without the
feasibility region the linearizations are evaluated far outside their
validity and even the A0/SR margins turn negative (A0 -3.0, SR -1.0
after the first iteration).

Reproduction target: after the unconstrained iteration the linear models
claim (near-)perfect yield while the simulated yield stays (near) zero,
and at least one previously-passing spec's true margin collapses.
"""

from _util import print_comparison
from repro.circuits import FoldedCascodeOpamp
from repro.reporting import optimization_trace_table

PAPER_TABLE_3 = """
Performance        A0[dB]  ft[MHz]  CMRR[dB]  SRp[V/us]  Power[mW]
Specification       >40      >40      >80       >35        <3.5
Initial  f-fb       10.7     -2.3     -1.9       0.18       0.54
  bad samples [o/oo] 0.0   1000.0    980.4      272.5       0.0
  Y_tilde = 0%
1st Iter. f-fb      -3.0     -5.0     -1.9      -1.0        0.6
  bad samples [o/oo] 0.0      0.0      0.0       0.0        0.0
  Y_tilde = 0%
""".strip()


def test_table3_unconstrained_failure(benchmark,
                                      fc_no_constraints_result):
    template = FoldedCascodeOpamp()
    table = benchmark(optimization_trace_table, template,
                      fc_no_constraints_result)
    print_comparison("Table 3 — yield optimization WITHOUT functional "
                     "constraints", PAPER_TABLE_3, table)

    initial = fc_no_constraints_result.initial
    after = fc_no_constraints_result.records[1]

    # The linearized models were driven (nearly) clean...
    assert after.yield_linear >= 0.8
    model_bad_before = sum(initial.bad_samples.values())
    model_bad_after = sum(after.bad_samples.values())
    assert model_bad_after < model_bad_before

    # ...but the *true* yield did not follow.
    assert initial.yield_mc <= 0.02
    assert after.yield_mc <= 0.25

    # And previously healthy margins collapsed (the paper's A0/SR rows).
    regressed = [key for key in initial.margins
                 if initial.margins[key] > 0.0 > after.margins[key]]
    assert regressed, "expected at least one healthy spec to collapse"


def test_table3_leaves_feasible_region(benchmark,
                                       fc_no_constraints_result):
    """The root cause: the unconstrained optimum violates the sizing
    rules (transistors out of saturation / conduction)."""
    template = FoldedCascodeOpamp()

    def worst_constraint():
        values = template.constraints(fc_no_constraints_result.d_final)
        return min(values.values())

    value = benchmark(worst_constraint)
    print(f"\nworst sizing-rule value at the unconstrained optimum: "
          f"{value:.4f} (>= 0 would be feasible)")
    assert value < 0.0
