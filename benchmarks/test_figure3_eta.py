"""Figure 3: the robustness weighting eta(beta_wc).

Paper figure: eta assigns smaller values to more robust circuit
performances; it is 1/2 at beta_wc = 0 and continuously differentiable.

Reproduction: print the eta curve and verify its defining properties
(Eq. 9's case split, limits 1 and 0, value 1/2 at zero, monotone
decreasing, continuous first difference across zero).
"""

import numpy as np

from repro.core.mismatch import eta_weight


def sample_eta():
    betas = np.linspace(-6.0, 6.0, 49)
    return betas, np.array([eta_weight(b) for b in betas])


def test_figure3_eta_curve(benchmark):
    betas, values = benchmark(sample_eta)

    print("\nFigure 3 — eta over the worst-case distance beta_wc:")
    for b, v in zip(betas[::3], values[::3]):
        bar = "#" * int(round(v * 40))
        print(f"  beta = {b:+5.1f}  eta = {v:5.3f} {bar}")

    assert eta_weight(0.0) == 0.5
    assert np.all(np.diff(values) < 0)  # strictly decreasing
    assert values[0] > 0.9  # -> 1 for badly violated specs
    assert values[-1] < 0.1  # -> 0 for very robust specs
    # Continuity of the slope across beta = 0 (the paper highlights that
    # eta is continuously differentiable).
    h = 1e-6
    left_slope = (eta_weight(0.0) - eta_weight(-h)) / h
    right_slope = (eta_weight(h) - eta_weight(0.0)) / h
    assert left_slope == right_slope != 0.0 or \
        abs(left_slope - right_slope) < 1e-3
