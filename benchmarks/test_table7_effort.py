"""Table 7: computational effort of both optimization runs.

Paper result (Table 7): 689 simulations / 30 min wall clock for the
folded-cascode and 627 simulations / 8 min for the Miller opamp, on a
5-machine Pentium-III cluster with the industrial TITAN simulator.

Reproduction notes: the *scale* is what the table demonstrates — direct
yield optimization for hundreds-to-thousands of simulator calls instead of
the ~10^5 a Monte-Carlo-in-the-loop method would need (every yield
estimate during the search is free, Eq. 17-20).  Our counts are higher
than the paper's because (a) gradients come from finite differences
instead of simulator-internal sensitivities ((dim(s)+1) runs per
linearization step), and (b) we verify with a Monte-Carlo run at every
iteration and run more, shallower trust-region iterations.  Wall time is
single-process Python on one machine.
"""

from _util import print_comparison
from repro.reporting import effort_table

PAPER_TABLE_7 = """
Circuit          # Simulations   Wall Clock Time
Folded-Cascode             689            30 min
Miller                     627             8 min
""".strip()


def test_table7_effort(benchmark, fc_result, miller_result):
    def build_table():
        rows = [
            ("Folded-Cascode", fc_result.total_simulations,
             fc_result.wall_time_s, fc_result.total_cache_hits),
            ("Miller", miller_result.total_simulations,
             miller_result.wall_time_s, miller_result.total_cache_hits),
        ]
        return effort_table(rows)

    table = benchmark(build_table)
    print_comparison("Table 7 — computational effort", PAPER_TABLE_7,
                     table)

    # Orders of magnitude: far below brute-force Monte-Carlo-in-the-loop
    # (which would need ~10^5-10^6 simulations), well above trivial.
    # Cache accounting closes: every evaluator request either hit the
    # cache or became a simulation.
    for result in (fc_result, miller_result):
        assert 100 < result.total_simulations < 100_000
        assert result.total_requests == \
            result.total_simulations + result.total_cache_hits

    # The linearized-model yield queries are free: during the coordinate
    # search the optimizer evaluates the yield thousands of times per
    # sweep; if each were a simulation the counts would explode.
    n_yield_queries_lower_bound = 10_000  # N samples, re-evaluated often
    assert fc_result.total_simulations < n_yield_queries_lower_bound * 10


def test_table7_verification_dominates(benchmark, fc_result):
    """Most simulations go into the *optional* verification Monte-Carlo
    and the worst-case searches, not the optimization itself — counted
    per iteration record."""
    def per_phase():
        counts = [r.simulations for r in fc_result.records]
        return counts

    counts = benchmark(per_phase)
    print(f"\ncumulative simulations per record: {counts}")
    assert counts == sorted(counts)
