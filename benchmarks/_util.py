"""Helpers shared by the benchmark modules."""

from repro.reporting import side_by_side


def print_comparison(title, paper, measured):
    """Emit a paper-vs-measured block to stdout (visible with pytest -s,
    and in the captured benchmark logs)."""
    print()
    print(side_by_side(paper, measured, title))
