"""Command-line interface: ``python -m repro <command> ...``.

Exposes the main workflows on the bundled benchmark circuits without
writing any Python:

* ``optimize``  — run the Fig. 6 yield-optimization loop and print the
  paper-style trace table,
* ``yield``     — estimate the operational yield at the initial design
  with a pluggable estimator (plain Monte-Carlo, worst-case mean-shift
  importance sampling, or scrambled-Sobol QMC), optionally in parallel
  or as one shard of a multi-machine split (``--shard i/N --out ...``),
* ``merge-verify`` — combine per-shard yield results exactly (pooled
  sufficient statistics) and optionally splice the merged verification
  into an optimizer checkpoint for ``optimize --resume``,
* ``analyze``   — worst-case operating corners, worst-case distances and
  the Sec. 3 mismatch-pair ranking at the initial design,
* ``corners``   — the PVT corner report,
* ``evaluate``  — nominal performances and constraint values,
* ``simulate``  — DC operating point (and optional AC gain) of a
  SPICE-style netlist file,
* ``serve``     — run the optimization-as-a-service job daemon
  (submit/status/result/cancel JSON API, content-addressed result
  cache, automatic shard orchestration),
* ``submit`` / ``status`` / ``result`` / ``cancel`` — the matching
  client commands against a running daemon.

Examples::

    python -m repro optimize miller --iterations 3 --estimator is --jobs 4
    python -m repro yield folded-cascode --estimator is --samples 300
    python -m repro yield miller --estimator qmc --jobs 2 --json
    python -m repro yield miller --shard 1/4 --out shard1.json
    python -m repro merge-verify shard*.json --checkpoint ckpt.json
    python -m repro analyze folded-cascode --local-only
    python -m repro corners ota
    python -m repro simulate my_circuit.sp --node out --ac 1e3
    python -m repro serve --port 8754 --store /tmp/repro-store
    python -m repro submit folded-cascode --samples 300 --shards 4 --wait
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .circuits import CIRCUITS


def _make_template(name: str, local_only: bool = False):
    try:
        factory = CIRCUITS[name]
    except KeyError:
        raise SystemExit(
            f"unknown circuit {name!r}; choose from "
            f"{', '.join(sorted(CIRCUITS))}")
    if local_only:
        try:
            return factory(with_global=False)
        except TypeError:
            raise SystemExit(
                f"circuit {name!r} does not support --local-only")
    return factory()


def cmd_optimize(args: argparse.Namespace) -> int:
    import json

    from .reporting import health_table, optimization_trace_table
    from .runtime import RunBudget
    from .serve.jobs import (OptimizeRequest, execute_optimize,
                             optimize_artifact)

    template = _make_template(args.circuit)
    verify_shard = None
    if args.verify_shard:
        from .yieldsim import ShardPlan
        verify_shard = ShardPlan.parse(args.verify_shard)
    # The CLI and the job-server workers execute through the same
    # request path (repro.serve.jobs), so an API-submitted optimize job
    # is trajectory-identical to this command.
    request = OptimizeRequest(
        circuit=args.circuit,
        iterations=args.iterations,
        samples_linear=args.samples,
        samples_verify=args.verify_samples,
        seed=args.seed,
        estimator=args.estimator,
        use_constraints=not args.no_constraints,
        linearize_at="nominal" if args.nominal_linearization
        else "worst_case",
        linsolve=args.linsolve,
        jobs=args.jobs,
        batch_samples=args.batch_samples)
    evaluator = None
    if args.inject_faults > 0.0:
        from .evaluation import Evaluator
        from .runtime import FaultInjectingEvaluator
        evaluator = FaultInjectingEvaluator(
            Evaluator(template), rate=args.inject_faults,
            seed=args.fault_seed)
    result = execute_optimize(
        request,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        budget=RunBudget(deadline_s=args.deadline,
                         max_simulations=args.max_sims),
        evaluator=evaluator,
        verify_shard=verify_shard)
    if args.out:
        artifact = optimize_artifact(request, result,
                                     command="optimize")
        with open(args.out, "w") as handle:
            json.dump(artifact, handle, indent=2)
        print(f"optimize artifact written to {args.out}")
    print(optimization_trace_table(template, result))
    print(f"stop reason: {result.stop_reason}; "
          f"converged: {result.converged}; "
          f"simulations: {result.total_simulations} "
          f"(+{result.total_constraint_simulations} constraint checks, "
          f"{result.total_cache_hits} cache hits); "
          f"wall time {result.wall_time_s:.1f} s")
    if result.total_failed_samples or result.total_retried_evaluations:
        print(f"fault policy: {result.total_failed_samples} failed "
              f"evaluations counted as spec-violating, "
              f"{result.total_retried_evaluations} retries with jitter")
    health = health_table(result)
    if health:
        print(health)
    print("final design:")
    for name in template.design_names:
        print(f"  {name} = {result.d_final[name]:.6g}")
    return 0


def cmd_yield(args: argparse.Namespace) -> int:
    import json

    from .serve.jobs import YieldRequest, execute_yield, yield_artifact

    if args.circuit not in CIRCUITS:
        raise SystemExit(
            f"unknown circuit {args.circuit!r}; choose from "
            f"{', '.join(sorted(CIRCUITS))}")
    # The CLI and the job-server workers execute through the same
    # request path (repro.serve.jobs), so an API-submitted job is
    # bit-identical to this command.
    request = YieldRequest(
        circuit=args.circuit, estimator=args.estimator,
        n_samples=args.samples, seed=args.seed, jobs=args.jobs,
        linsolve=args.linsolve, chunk_timeout=args.chunk_timeout,
        batch_samples=args.batch_samples,
        shard=args.shard or None,
        cold_dc=args.cold_dc)
    result = execute_yield(request)
    if args.out:
        # Self-describing artifact: schema version + provenance block,
        # validated on load by merge-verify and the serve result store.
        artifact = yield_artifact(request, result, command="yield")
        with open(args.out, "w") as handle:
            json.dump(artifact, handle, indent=2)
    if args.json:
        print(result.to_json(indent=2))
        return 0
    template = _make_template(args.circuit)
    report = result.report
    shard_note = f", shard {args.shard}" if args.shard else ""
    print(f"circuit: {template.name}  (estimator: {args.estimator}, "
          f"N = {result.n_samples}, jobs = {args.jobs}{shard_note})")
    print(f"yield = {result.estimate * 100:.2f}%  "
          f"(95% CI {result.ci_low * 100:.2f}-{result.ci_high * 100:.2f}%, "
          f"ESS {result.ess:.1f})")
    print("bad-sample fraction per spec:")
    for key, fraction in result.bad_fraction.items():
        print(f"  {key:>12}: {fraction * 100:6.2f}%")
    if result.failed_samples:
        print(f"failed samples: {result.failed_samples} "
              f"(counted as spec-violating)")
    print(f"simulations: {report.simulations} "
          f"({report.cache_hits} cache hits, "
          f"{report.theta_groups} worst-case corners, "
          f"backend {report.backend})")
    warm = getattr(report, "warm_cache", {})
    if warm.get("hits", 0) or warm.get("misses", 0):
        chain = ""
        if warm.get("chain_seeds", 0) or warm.get("chain_solves", 0):
            chain = (f", chain seeds/solves "
                     f"{warm.get('chain_seeds', 0)}"
                     f"/{warm.get('chain_solves', 0)}")
        print(f"warm-start cache: {warm.get('hits', 0)} hits / "
              f"{warm.get('misses', 0)} misses{chain}")
    dc_effort = getattr(report, "dc_effort", {})
    if any(dc_effort.values()):
        parts = ", ".join(f"{label} {count}"
                          for label, count in sorted(dc_effort.items())
                          if count)
        print(f"dc solve strategies: {parts}")
    if report.retried_chunks:
        print(f"warning: {report.retried_chunks}/{report.chunks} chunks "
              f"re-run serially in the parent "
              f"({report.timed_out_chunks} timed out)")
    if report.degraded_to_serial:
        print("warning: worker pool died mid-run; remainder of the "
              "batch was executed serially")
    phases = ", ".join(f"{phase} {seconds:.3f}"
                       for phase, seconds in report.phase_seconds.items())
    print(f"wall time [s]: {phases}")
    if args.out:
        print(f"shard result written to {args.out}")
    return 0


def cmd_merge_verify(args: argparse.Namespace) -> int:
    import json

    from .errors import ReproError
    from .reporting import merged_provenance_table
    from .serve.contract import (KIND_MERGED, check_merge_compatible,
                                 load_result_artifact, merged_provenance,
                                 wrap_result)
    from .yieldsim import merge_results

    results = []
    provenances = []
    for path in args.shards:
        try:
            with open(path) as handle:
                data = json.load(handle)
        except OSError as exc:
            raise SystemExit(f"cannot read shard result {path!r}: {exc}")
        except ValueError as exc:
            raise SystemExit(f"corrupt shard result {path!r}: {exc}")
        try:
            result, provenance = load_result_artifact(data, source=path)
        except ReproError as exc:
            raise SystemExit(str(exc))
        results.append(result)
        provenances.append(provenance)
    try:
        # Shards of one run must agree on template/seed/estimator —
        # pooling mismatched statistics would be silently meaningless.
        check_merge_compatible(provenances, sources=args.shards)
        merged = merge_results(results)
    except ReproError as exc:
        raise SystemExit(str(exc))
    if args.out:
        artifact = wrap_result(
            merged,
            merged_provenance(provenances, n_samples=merged.n_samples,
                              shards=merged.merged_from),
            kind=KIND_MERGED)
        with open(args.out, "w") as handle:
            json.dump(artifact, handle, indent=2)
    if args.checkpoint:
        from .runtime import splice_merged_result
        splice_merged_result(args.checkpoint, merged)
    if args.json:
        print(merged.to_json(indent=2))
        return 0
    print(merged_provenance_table(merged))
    if args.checkpoint:
        print(f"merged verification spliced into {args.checkpoint} "
              f"(continue with: repro optimize ... --checkpoint "
              f"{args.checkpoint} --resume)")
    if args.out:
        print(f"merged result written to {args.out}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from .core import analyze_mismatch, find_all_worst_case_points
    from .evaluation import Evaluator
    from .reporting import mismatch_table
    from .spec.operating import find_worst_case_operating_points

    template = _make_template(args.circuit, local_only=args.local_only)
    evaluator = Evaluator(template)
    d = template.initial_design()
    s0 = template.statistical_space.nominal()
    theta_wc = find_worst_case_operating_points(
        lambda theta: evaluator.evaluate(d, s0, theta),
        template.specs, template.operating_range)
    print("worst-case operating points:")
    for key, theta in theta_wc.items():
        print(f"  {key:>10} -> "
              + ", ".join(f"{k}={v:g}" for k, v in theta.items()))
    worst_case = find_all_worst_case_points(evaluator, d, theta_wc,
                                            seed=args.seed)
    print("\nworst-case distances (sigma):")
    for key, wc in worst_case.items():
        print(f"  {key:>10}: beta = {wc.beta_wc:+7.2f}  "
              f"({wc.method}{'' if wc.on_boundary else ', clamped'})")
    names = list(template.statistical_space.names)
    candidates = template.local_vth_names() \
        if hasattr(template, "local_vth_names") else None
    if candidates:
        report = analyze_mismatch(worst_case, names,
                                  candidate_names=candidates,
                                  threshold=args.threshold)
        print("\nmismatch-sensitive specs:")
        for key, pairs in report.items():
            if pairs:
                print(f"  {key}:")
                print("  " + mismatch_table(pairs).replace("\n", "\n  "))
    print(f"\nsimulations: {evaluator.simulation_count}")
    return 0


def cmd_corners(args: argparse.Namespace) -> int:
    from .evaluation import Evaluator, corner_analysis

    template = _make_template(args.circuit)
    evaluator = Evaluator(template)
    report = corner_analysis(evaluator, template.initial_design(),
                             sigma_level=args.sigma)
    print(report.summary())
    failing = report.failing_specs()
    print(f"\ncorner-failing specs: {failing or 'none'} "
          f"({report.simulations} simulations)")
    return 1 if failing else 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    template = _make_template(args.circuit)
    if args.linsolve is not None:
        template.linsolve = args.linsolve
    d = template.initial_design()
    values = template.evaluate(d, template.statistical_space.nominal(),
                               template.operating_range.nominal())
    print("nominal performances:")
    for performance in template.performances:
        spec = template.spec_for(performance.name)
        value = values[performance.name]
        status = "PASS" if spec.passes(value) else "FAIL"
        print(f"  {performance.name:>8} = {value:10.3f} "
              f"{performance.unit:8} (spec {spec.kind} {spec.bound:g})"
              f"  [{status}]")
    constraints = template.constraints(d)
    worst = min(constraints, key=constraints.get)
    print(f"\nsizing rules: {'all satisfied' if constraints[worst] >= 0 else 'VIOLATED'}"
          f" (tightest: {worst} = {constraints[worst]:+.4f})")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from .circuit import parse_netlist, solve_dc, transfer_at
    from .units import db, format_si

    with open(args.netlist) as handle:
        circuit = parse_netlist(handle.read())
    op = solve_dc(circuit, temp_c=args.temp, backend=args.linsolve)
    print(f"DC operating point ({op.iterations} Newton iterations, "
          f"{op.strategy}):")
    for node, voltage in sorted(op.voltages().items()):
        print(f"  V({node}) = {voltage:.6f}")
    for name, record in sorted(op.operating_points().items()):
        if "region" in record:
            print(f"  {name}: Id = {format_si(record['ids'], 'A')}, "
                  f"{record['region']}")
    if args.node and args.ac:
        h = transfer_at(circuit, op, args.node, args.ac,
                        backend=args.linsolve)
        print(f"\nAC transfer to {args.node} at "
              f"{format_si(args.ac, 'Hz')}: |H| = {abs(h):.4g} "
              f"({db(abs(h)):.1f} dB)")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import run_daemon

    try:
        asyncio.run(run_daemon(
            store_dir=args.store, host=args.host, port=args.port,
            workers=args.workers,
            max_queued_per_tenant=args.max_queued_per_tenant,
            store_max_bytes=args.store_max_bytes,
            store_max_age_s=args.store_max_age,
            heartbeat_timeout_s=args.heartbeat_timeout,
            max_attempts=args.max_attempts,
            drain_grace_s=args.drain_grace))
    except KeyboardInterrupt:
        print("serve daemon stopped")
    return 0


def _client(args: argparse.Namespace):
    from .serve import ServeClient
    return ServeClient(args.server)


def cmd_submit(args: argparse.Namespace) -> int:
    import json

    from .errors import ServeError

    client = _client(args)
    budget = {}
    if args.deadline is not None:
        budget["deadline_s"] = args.deadline
    if args.max_sims is not None:
        budget["max_simulations"] = args.max_sims
    if args.kind == "optimize":
        request = {
            "circuit": args.circuit,
            "iterations": args.iterations,
            "samples_linear": args.opt_samples,
            "samples_verify": args.verify_samples,
            "seed": args.seed,
            "estimator": args.estimator,
            "linsolve": args.linsolve,
        }
    else:
        request = {
            "circuit": args.circuit,
            "estimator": args.estimator,
            "n_samples": args.samples,
            "seed": args.seed,
            "linsolve": args.linsolve,
        }
    payload = {
        "kind": args.kind,
        "request": request,
        "shards": args.shards,
        "tenant": args.tenant,
        "priority": args.priority,
    }
    if budget:
        payload["budget"] = budget
    if args.splice_checkpoint:
        payload["splice_checkpoint"] = args.splice_checkpoint
    try:
        job = client.submit(payload)
        if args.wait:
            job = client.wait(job["id"], timeout_s=args.timeout)
    except ServeError as exc:
        raise SystemExit(str(exc))
    if not args.wait:
        print(json.dumps(job, indent=2))
        return 0
    if job["state"] != "done":
        print(json.dumps(job, indent=2))
        return 1
    artifact = client.result(job["id"])
    print(json.dumps(artifact, indent=2))
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    import json

    from .errors import ServeError

    client = _client(args)
    try:
        # No job id = daemon-level view: health plus queue/store stats.
        payload = client.status(args.job) if args.job else client.stats()
    except ServeError as exc:
        raise SystemExit(str(exc))
    if args.job:
        print(json.dumps(payload, indent=2))
    else:
        from .reporting import queue_table
        print(queue_table(payload))
    return 0


def cmd_result(args: argparse.Namespace) -> int:
    import json

    from .errors import ServeError

    client = _client(args)
    try:
        if args.wait:
            job = client.wait(args.job, timeout_s=args.timeout)
            if job["state"] != "done":
                raise SystemExit(
                    f"job {args.job} ended {job['state']}"
                    + (f": {job['error']}" if job.get("error") else ""))
        artifact = client.result(args.job)
    except ServeError as exc:
        raise SystemExit(str(exc))
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(artifact, handle, indent=2)
        print(f"result written to {args.out}")
    else:
        print(json.dumps(artifact, indent=2))
    return 0


def cmd_cancel(args: argparse.Namespace) -> int:
    import json

    from .errors import ServeError

    client = _client(args)
    try:
        job = client.cancel(args.job)
    except ServeError as exc:
        raise SystemExit(str(exc))
    print(json.dumps(job, indent=2))
    return 0


def _add_linsolve(p: argparse.ArgumentParser) -> None:
    p.add_argument("--linsolve", choices=("dense", "sparse", "auto"),
                   default=None,
                   help="MNA linear-solver backend: dense LU, sparse "
                        "LU with factorization reuse, or auto-select "
                        "by circuit size (default: auto)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DAC 2001 mismatch analysis and yield optimization")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("optimize", help="run the Fig. 6 yield optimizer")
    p.add_argument("circuit", choices=sorted(CIRCUITS))
    p.add_argument("--iterations", type=int, default=5)
    p.add_argument("--samples", type=int, default=10000)
    p.add_argument("--verify-samples", type=int, default=150)
    p.add_argument("--seed", type=int, default=2001)
    p.add_argument("--no-constraints", action="store_true",
                   help="Table 3 ablation")
    p.add_argument("--nominal-linearization", action="store_true",
                   help="Table 4 ablation")
    p.add_argument("--estimator", choices=("mc", "is", "qmc"),
                   default="mc",
                   help="Y_tilde verification estimator (default: mc)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for verification batches")
    p.add_argument("--batch-samples", type=int, default=None,
                   metavar="K",
                   help="samples per vectorized verification-MC chunk "
                        "(default: auto; 1 = scalar per-sample path; "
                        "results are bit-identical either way)")
    p.add_argument("--verify-shard", metavar="i/N",
                   help="run only shard i of an N-way split of every "
                        "verification Monte-Carlo (merge the shards' "
                        "results with merge-verify)")
    p.add_argument("--checkpoint", metavar="PATH",
                   help="write a JSON checkpoint after every iteration")
    p.add_argument("--resume", action="store_true",
                   help="continue from --checkpoint when it exists")
    p.add_argument("--deadline", type=float, metavar="S",
                   help="wall-clock budget [s]; exhaustion returns the "
                        "partial trace with stop_reason=deadline")
    p.add_argument("--max-sims", type=int, metavar="N",
                   help="simulation budget; exhaustion returns the "
                        "partial trace with stop_reason=sim_budget")
    p.add_argument("--inject-faults", type=float, default=0.0,
                   metavar="RATE",
                   help="fault-injection testing: fail this fraction of "
                        "simulations with a ConvergenceError")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed of the injected-fault schedule")
    p.add_argument("--out", metavar="PATH",
                   help="also write the optimization trace as a "
                        "provenance-carrying artifact JSON (the serve "
                        "layer's optimize-result format)")
    _add_linsolve(p)
    p.set_defaults(func=cmd_optimize)

    p = sub.add_parser(
        "yield", help="estimate the operational yield at the initial "
                      "design with a pluggable estimator")
    p.add_argument("circuit", choices=sorted(CIRCUITS))
    p.add_argument("--estimator", choices=("mc", "is", "qmc"),
                   default="mc",
                   help="mc = operational Monte-Carlo (Eq. 6-7), "
                        "is = worst-case mean-shift importance sampling, "
                        "qmc = scrambled-Sobol quasi-Monte-Carlo")
    p.add_argument("--samples", type=int, default=300,
                   help="statistical samples N (default: 300)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (1 = serial)")
    p.add_argument("--chunk-timeout", type=float, default=None,
                   help="per-chunk timeout [s] before the in-parent retry")
    p.add_argument("--batch-samples", type=int, default=None,
                   metavar="K",
                   help="samples per vectorized simulation chunk "
                        "(default: auto; 1 = scalar per-sample path; "
                        "results are bit-identical either way)")
    p.add_argument("--seed", type=int, default=2001)
    p.add_argument("--cold-dc", action="store_true",
                   help="disable warm-start DC anchors: every sample "
                        "solves through the cold homotopy chain (newton "
                        "-> gmin -> source stepping); batched and scalar "
                        "paths stay bit-identical")
    p.add_argument("--shard", metavar="i/N",
                   help="run only shard i of an N-way split of the "
                        "logical sample budget (1-based); results merge "
                        "exactly via merge-verify")
    p.add_argument("--out", metavar="PATH",
                   help="also write the result JSON to PATH (the "
                        "merge-verify input format)")
    p.add_argument("--json", action="store_true",
                   help="emit the full result + run report as JSON")
    _add_linsolve(p)
    p.set_defaults(func=cmd_yield)

    p = sub.add_parser(
        "merge-verify",
        help="combine per-shard yield results (from yield --shard i/N "
             "--out ...) into one exact pooled estimate")
    p.add_argument("shards", nargs="+", metavar="SHARD_JSON",
                   help="per-shard result files written by yield --out")
    p.add_argument("--checkpoint", metavar="PATH",
                   help="splice the merged verification into the last "
                        "record of this optimizer checkpoint")
    p.add_argument("--out", metavar="PATH",
                   help="write the merged result JSON to PATH")
    p.add_argument("--json", action="store_true",
                   help="emit the merged result as JSON")
    p.set_defaults(func=cmd_merge_verify)

    p = sub.add_parser("analyze",
                       help="worst-case distances + mismatch pairs")
    p.add_argument("circuit", choices=sorted(CIRCUITS))
    p.add_argument("--local-only", action="store_true",
                   help="Sec. 3 setting: local statistical space only")
    p.add_argument("--threshold", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=2001)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("corners", help="PVT corner report")
    p.add_argument("circuit", choices=sorted(CIRCUITS))
    p.add_argument("--sigma", type=float, default=3.0)
    p.set_defaults(func=cmd_corners)

    p = sub.add_parser("evaluate", help="nominal performances")
    p.add_argument("circuit", choices=sorted(CIRCUITS))
    _add_linsolve(p)
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("simulate", help="solve a SPICE-style netlist")
    p.add_argument("netlist", help="netlist file path")
    p.add_argument("--temp", type=float, default=27.0)
    p.add_argument("--node", help="node for an AC transfer readout")
    p.add_argument("--ac", type=float,
                   help="frequency [Hz] for the AC readout")
    _add_linsolve(p)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser(
        "serve", help="run the optimization-as-a-service job daemon")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument("--store", default=".repro-store", metavar="DIR",
                   help="content-addressed result store directory "
                        "(default: .repro-store)")
    p.add_argument("--workers", type=int, default=2,
                   help="worker processes executing jobs (default: 2)")
    p.add_argument("--max-queued-per-tenant", type=int, default=None,
                   metavar="N",
                   help="reject a tenant's submissions beyond N queued "
                        "jobs (default: unlimited)")
    p.add_argument("--store-max-bytes", type=int, default=None,
                   metavar="BYTES",
                   help="store GC: evict least-recently-accessed "
                        "artifacts beyond this footprint (default: "
                        "unbounded)")
    p.add_argument("--store-max-age", type=float, default=None,
                   metavar="S",
                   help="store GC: evict artifacts not accessed within "
                        "S seconds (default: unbounded)")
    p.add_argument("--heartbeat-timeout", type=float, default=60.0,
                   metavar="S",
                   help="declare a worker wedged after S seconds "
                        "without a heartbeat and retry its jobs "
                        "(default: 60)")
    p.add_argument("--max-attempts", type=int, default=3, metavar="N",
                   help="attempts per job before a transient fault "
                        "becomes terminal (default: 3)")
    p.add_argument("--drain-grace", type=float, default=10.0,
                   metavar="S",
                   help="SIGTERM drain: grace period for running jobs "
                        "before the pool is killed (default: 10)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit a yield or optimize job to a repro serve daemon")
    p.add_argument("circuit", choices=sorted(CIRCUITS))
    p.add_argument("--kind", choices=("yield", "optimize"),
                   default="yield",
                   help="job kind: a one-shot yield estimation or a "
                        "full checkpoint-backed Fig. 6 optimization "
                        "(default: yield)")
    p.add_argument("--server", default="http://127.0.0.1:8642",
                   help="daemon base URL (default: "
                        "http://127.0.0.1:8642)")
    p.add_argument("--estimator", choices=("mc", "is", "qmc"),
                   default="mc")
    p.add_argument("--samples", type=int, default=300,
                   help="yield jobs: statistical samples N "
                        "(default: 300)")
    p.add_argument("--iterations", type=int, default=5,
                   help="optimize jobs: Fig. 6 iterations (default: 5)")
    p.add_argument("--opt-samples", type=int, default=10000,
                   metavar="N",
                   help="optimize jobs: linearized-model samples "
                        "(default: 10000)")
    p.add_argument("--verify-samples", type=int, default=150,
                   metavar="N",
                   help="optimize jobs: verification samples per "
                        "iteration (default: 150)")
    p.add_argument("--seed", type=int, default=2001)
    p.add_argument("--shards", type=int, default=1, metavar="N",
                   help="decompose the verification into N shard "
                        "workers merged server-side (default: 1)")
    p.add_argument("--tenant", default="default")
    p.add_argument("--priority", type=int, default=0,
                   help="higher runs first (default: 0)")
    p.add_argument("--deadline", type=float, metavar="S",
                   help="per-job wall-clock budget [s]")
    p.add_argument("--max-sims", type=int, metavar="N",
                   help="per-job simulation budget (advisory: overspend "
                        "is flagged budget_exceeded)")
    p.add_argument("--splice-checkpoint", metavar="PATH",
                   help="server-side checkpoint to splice the merged "
                        "verification into")
    p.add_argument("--wait", action="store_true",
                   help="block until the job finishes and print its "
                        "result artifact")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="--wait polling timeout [s] (default: 600)")
    _add_linsolve(p)
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "status", help="job status, or daemon queue/store telemetry")
    p.add_argument("job", nargs="?", default=None,
                   help="job id (omit for the daemon-level summary)")
    p.add_argument("--server", default="http://127.0.0.1:8642")
    p.set_defaults(func=cmd_status)

    p = sub.add_parser(
        "result", help="fetch a finished job's result artifact")
    p.add_argument("job", help="job id")
    p.add_argument("--server", default="http://127.0.0.1:8642")
    p.add_argument("--out", metavar="PATH",
                   help="write the artifact to PATH instead of stdout")
    p.add_argument("--wait", action="store_true",
                   help="poll until the job reaches a terminal state "
                        "first")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="--wait polling timeout [s] (default: 600)")
    p.set_defaults(func=cmd_result)

    p = sub.add_parser("cancel", help="cancel a queued or running job")
    p.add_argument("job", help="job id")
    p.add_argument("--server", default="http://127.0.0.1:8642")
    p.set_defaults(func=cmd_cancel)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
