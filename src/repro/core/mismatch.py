"""Mismatch analysis: the Sec. 3 measure and matching-pair ranking.

A performance is *mismatch-sensitive* (Definition 1) when two statistical
parameters moving in opposite directions degrade it strongly while moving
together leaves it unchanged — the tent-shaped CMRR surface of Fig. 1,
with its *neutral line* ``ds_k = ds_l`` and *mismatch line*
``ds_k = -ds_l``.

Because the worst-case point aligns with the direction of maximum
performance degradation (``s_wc = -kappa * grad f``), a matching pair shows
up in ``s_wc`` as two components of (nearly) equal magnitude and opposite
sign.  The measure of Eq. 9 scores every parameter pair on that signature:

    m_kl = eta(beta_wc) * max(|s_wc,k|, |s_wc,l|)/s_max * Phi(arctan(s_wc,k/s_wc,l))

* ``Phi`` selects pairs near the mismatch line (angle -pi/4), with an
  uncertainty band ``Delta_1`` (full credit) + ``Delta_2`` (linear falloff)
  — the paper's Fig. 2 window, reconstructed as a trapezoid since the
  figure is not machine-readable (defaults 5 deg / 15 deg),
* the magnitude ratio weights dominant components,
* ``eta`` weights robust performances down (it is 1/2 at beta_wc = 0,
  approaches 1 for badly failing specs and 0 for very robust ones, and is
  continuous — Fig. 3).

Since the worst-case points are computed anyway during yield optimization,
this analysis costs **no extra simulations** (Sec. 3.2).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError
from .worst_case import WorstCaseResult

#: Default Phi window half-widths [rad]: full credit within DELTA1 of the
#: mismatch line, linear falloff over the next DELTA2.
DELTA1 = math.radians(5.0)
DELTA2 = math.radians(15.0)

#: Parameters with |s_wc| below this fraction of the candidate s_max are
#: noise, not mismatch signatures.
COMPONENT_FLOOR = 1e-3

#: Candidate components below this fraction of the *overall* worst-case
#: point magnitude are ignored entirely.  This matters in mixed
#: global+local spaces: a spec driven by global parameters has negligible
#: local components, and normalizing those among themselves (the paper's
#: s_max runs over the analysis set) would otherwise manufacture
#: full-strength "pairs" out of finite-difference noise.
NOISE_FLOOR = 0.1


def phi_window(angle: float, delta1: float = DELTA1,
               delta2: float = DELTA2) -> float:
    """Mismatch-line selector ``Phi`` (Fig. 2).

    ``angle = arctan(s_k / s_l)`` lies in (-pi/2, pi/2]; the mismatch line
    maps to -pi/4 (opposite signs), the neutral line to +pi/4 (same
    signs).  Returns 1 within ``delta1`` of -pi/4, 0 beyond
    ``delta1 + delta2``, linear in between.
    """
    if delta1 < 0 or delta2 <= 0:
        raise ReproError("phi_window: delta1 must be >= 0, delta2 > 0")
    distance = abs(angle + math.pi / 4.0)
    if distance <= delta1:
        return 1.0
    if distance >= delta1 + delta2:
        return 0.0
    return 1.0 - (distance - delta1) / delta2


def eta_weight(beta_wc: float) -> float:
    """Robustness weighting ``eta`` of Eq. 9 (Fig. 3).

    ``beta_wc`` is the signed worst-case distance.  eta(0) = 1/2;
    eta -> 1 as beta -> -inf (badly violated spec, mismatch matters most);
    eta -> 0 as beta -> +inf (very robust spec, mismatch irrelevant).
    """
    if beta_wc < 0.0:
        return 1.0 - 1.0 / (2.0 * (-beta_wc + 1.0))
    return 1.0 / (2.0 * (beta_wc + 1.0))


def mismatch_measure(s_wc: np.ndarray, beta_wc: float, k: int, l: int,
                     candidate_indices: Optional[Sequence[int]] = None,
                     delta1: float = DELTA1,
                     delta2: float = DELTA2) -> float:
    """The pairwise mismatch measure ``m_kl`` of Eq. 9.

    ``candidate_indices`` restricts the normalization ``s_max`` to the
    statistical parameters under analysis (the local/mismatch parameters);
    by default all components are used, matching the paper's setting where
    the analysis runs on a purely local statistical space.
    """
    s_wc = np.asarray(s_wc, dtype=float)
    if k == l:
        raise ReproError("mismatch measure needs two distinct parameters")
    if candidate_indices is None:
        candidate_indices = range(len(s_wc))
    s_max = max(abs(float(s_wc[j])) for j in candidate_indices)
    if s_max <= 0.0:
        return 0.0
    sk = float(s_wc[k])
    sl = float(s_wc[l])
    overall_max = float(np.max(np.abs(s_wc)))
    if max(abs(sk), abs(sl)) < NOISE_FLOOR * overall_max:
        return 0.0
    if abs(sk) < COMPONENT_FLOOR * s_max and \
            abs(sl) < COMPONENT_FLOOR * s_max:
        return 0.0
    if sl == 0.0:
        angle = math.pi / 2.0
    else:
        angle = math.atan(sk / sl)
    magnitude = max(abs(sk), abs(sl)) / s_max
    return eta_weight(beta_wc) * magnitude * \
        phi_window(angle, delta1, delta2)


@dataclass(frozen=True)
class PairMismatch:
    """Ranked mismatch result for one parameter (transistor) pair."""

    parameter_k: str
    parameter_l: str
    measure: float
    spec_key: str

    @property
    def devices(self) -> Tuple[str, str]:
        """Best-effort device names, assuming ``<kind>_<device>`` naming."""
        def device_of(parameter: str) -> str:
            return parameter.split("_", 1)[1] if "_" in parameter \
                else parameter
        return device_of(self.parameter_k), device_of(self.parameter_l)


def rank_matching_pairs(
    result: WorstCaseResult,
    parameter_names: Sequence[str],
    candidate_names: Optional[Sequence[str]] = None,
    top: Optional[int] = None,
    delta1: float = DELTA1,
    delta2: float = DELTA2,
) -> List[PairMismatch]:
    """Rank all candidate parameter pairs by the Eq. 9 measure.

    ``parameter_names`` names the components of ``result.s_wc``;
    ``candidate_names`` restricts the analysis (typically to the local
    threshold parameters).  Returns pairs sorted by decreasing measure,
    optionally truncated to the ``top`` entries.
    """
    from ..spec.operating import spec_key
    if not result.on_boundary:
        # No worst-case point exists within the statistically relevant
        # sphere — the spec boundary is unreachable under these (local)
        # variations, so Definition 1 cannot apply and the clamped
        # surrogate point carries no mismatch signature.
        return []
    if len(parameter_names) != len(result.s_wc):
        raise ReproError(
            f"got {len(parameter_names)} parameter names for a worst-case "
            f"point of dimension {len(result.s_wc)}")
    if candidate_names is None:
        candidate_names = parameter_names
    index_of = {name: i for i, name in enumerate(parameter_names)}
    indices = []
    for name in candidate_names:
        if name not in index_of:
            raise ReproError(f"unknown statistical parameter {name!r}")
        indices.append(index_of[name])
    pairs: List[PairMismatch] = []
    for k, l in itertools.combinations(indices, 2):
        measure = mismatch_measure(result.s_wc, result.beta_wc, k, l,
                                   candidate_indices=indices,
                                   delta1=delta1, delta2=delta2)
        pairs.append(PairMismatch(parameter_names[k], parameter_names[l],
                                  measure, spec_key(result.spec)))
    pairs.sort(key=lambda p: p.measure, reverse=True)
    return pairs[:top] if top is not None else pairs


def analyze_mismatch(
    worst_case_results: Mapping[str, WorstCaseResult],
    parameter_names: Sequence[str],
    candidate_names: Optional[Sequence[str]] = None,
    threshold: float = 0.05,
) -> Dict[str, List[PairMismatch]]:
    """Full mismatch analysis over all specs (the Sec. 3 procedure).

    Returns, per spec key, the pairs whose measure exceeds ``threshold``
    (mismatch-sensitive pairs).  Specs with no qualifying pair map to an
    empty list — those performances are not mismatch-sensitive.
    """
    report: Dict[str, List[PairMismatch]] = {}
    for key, result in worst_case_results.items():
        ranked = rank_matching_pairs(result, parameter_names,
                                     candidate_names=candidate_names)
        report[key] = [p for p in ranked if p.measure >= threshold]
    return report
