"""Core of the reproduction: the paper's primary contribution.

* :mod:`repro.core.worst_case`        — worst-case points (Eq. 8),
* :mod:`repro.core.mismatch`          — the mismatch measure (Eq. 9),
* :mod:`repro.core.linear_model`      — spec-wise linearization (Eq. 16,
  21-22),
* :mod:`repro.core.estimator`         — linearized-model Monte-Carlo yield
  with incremental/exact coordinate evaluation (Eq. 17-20),
* :mod:`repro.core.constraints`       — linearized feasibility region
  (Eq. 15),
* :mod:`repro.core.feasible_point`    — feasible starting point (Sec. 5.5),
* :mod:`repro.core.coordinate_search` — Eq. 19 maximization,
* :mod:`repro.core.line_search`       — feasibility line search (Eq. 23),
* :mod:`repro.core.optimizer`         — the full Fig. 6 loop,
* :mod:`repro.core.montecarlo`        — simulation-based operational yield
  (Eq. 6-7) used for verification.
"""

from .constraints import (LinearConstraints, UnconstrainedRegion,
                          linearize_constraints, true_feasible, violation)
from .coordinate_search import CoordinateSearchResult, coordinate_search
from .estimator import CoordinateMaximum, LinearizedYieldEstimator
from .feasible_point import find_feasible_point
from .line_search import LineSearchResult, feasibility_line_search
from .linear_model import SpecLinearModel, build_spec_models, detect_quadratic
from .mismatch import (PairMismatch, analyze_mismatch, eta_weight,
                       mismatch_measure, phi_window, rank_matching_pairs)
from .montecarlo import MonteCarloResult, operational_monte_carlo
from .optimizer import (IterationRecord, OptimizationResult, OptimizerConfig,
                        YieldOptimizer)
from .wcd_report import (SpecYield, WcdYieldReport, partial_yield,
                         wcd_yield_report)
from .worst_case import (WorstCaseResult, find_all_worst_case_points,
                         find_worst_case_point)

__all__ = [
    "CoordinateMaximum", "CoordinateSearchResult", "IterationRecord",
    "LinearConstraints", "LinearizedYieldEstimator", "LineSearchResult",
    "MonteCarloResult", "OptimizationResult", "OptimizerConfig",
    "PairMismatch", "SpecLinearModel", "UnconstrainedRegion",
    "WorstCaseResult", "YieldOptimizer", "analyze_mismatch",
    "build_spec_models", "coordinate_search", "detect_quadratic",
    "eta_weight", "feasibility_line_search", "find_all_worst_case_points",
    "find_feasible_point", "find_worst_case_point", "linearize_constraints",
    "mismatch_measure", "operational_monte_carlo", "partial_yield",
    "phi_window", "rank_matching_pairs", "true_feasible", "violation",
    "SpecYield", "WcdYieldReport", "wcd_yield_report",
]
