"""Feasibility line search (Sec. 5.4, Eq. 23).

The coordinate search works on *linearized* constraints, so its optimum
``d*`` may leave the true feasibility region.  A simulation-based line
search along ``r = d* - d_f`` finds the largest step that stays truly
feasible:

    gamma_max = argmax { gamma | c(d_f + gamma r) >= 0, 0 <= gamma <= 1 }

using a small number of real (DC) simulations — the paper quotes ~10.
The new iterate ``d_f + gamma_max r`` seeds the next linearization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from ..evaluation.evaluator import Evaluator
from .constraints import FEASIBILITY_TOL, violation

#: Bisection steps after the initial full-step probe (total simulations
#: <= BISECTION_STEPS + 1, matching the paper's "e.g. 10").
BISECTION_STEPS = 9


@dataclass
class LineSearchResult:
    """Outcome of the Eq. 23 search."""

    d_new: Dict[str, float]
    gamma: float
    simulations: int
    feasible: bool


def feasibility_line_search(evaluator: Evaluator,
                            d_f: Mapping[str, float],
                            d_star: Mapping[str, float],
                            steps: int = BISECTION_STEPS
                            ) -> LineSearchResult:
    """Solve Eq. 23 by bisection on gamma.

    ``d_f`` must be truly feasible (it is the previous iterate).  If the
    full step is feasible, gamma = 1 with a single simulation.
    """
    names = evaluator.template.design_names
    direction = {name: d_star[name] - d_f[name] for name in names}

    def point(gamma: float) -> Dict[str, float]:
        return {name: d_f[name] + gamma * direction[name] for name in names}

    simulations = 1
    if violation(evaluator.constraints(d_star)) <= FEASIBILITY_TOL:
        return LineSearchResult(dict(d_star), 1.0, simulations, True)

    lo, hi = 0.0, 1.0  # lo feasible, hi infeasible
    for _ in range(steps):
        mid = 0.5 * (lo + hi)
        simulations += 1
        if violation(evaluator.constraints(point(mid))) <= FEASIBILITY_TOL:
            lo = mid
        else:
            hi = mid
    gamma = lo
    return LineSearchResult(point(gamma), gamma, simulations, True)
