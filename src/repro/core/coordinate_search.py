"""Coordinate-search yield maximization (Sec. 5.3, Eq. 19).

The linearized-model yield estimate ``Y_bar`` is maximized over the design
parameters one coordinate at a time, restricted to the linearized
feasibility region and the design box.  The paper prefers this robust
search over gradient methods because ``Y_bar`` is flat-zero over much of
the design space, non-monotone, and piecewise constant (Fig. 5); along a
single coordinate, however, its exact maximum is computable in closed form
from the model structure (see
:meth:`repro.core.estimator.LinearizedYieldEstimator.maximize_coordinate`),
so each coordinate step is solved exactly with zero simulations.

Sweeps repeat until a full pass improves the estimate by less than
``tol`` — "until the yield estimate cannot be further improved".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple, Union

from ..evaluation.template import CircuitTemplate
from .constraints import LinearConstraints, UnconstrainedRegion
from .estimator import LinearizedYieldEstimator

#: Absolute improvement per sweep below which the search stops.
SWEEP_TOL = 1e-9

#: Hard cap on full sweeps (each sweep is simulation-free).
MAX_SWEEPS = 25


@dataclass
class CoordinateSearchResult:
    """Outcome of one Eq. 19 maximization."""

    d_star: Dict[str, float]
    yield_estimate: float
    initial_estimate: float
    sweeps: int
    #: per-step log: (sweep, coordinate, new value, new estimate)
    steps: List[Tuple[int, str, float, float]] = field(default_factory=list)


def coordinate_search(
    estimator: LinearizedYieldEstimator,
    constraints: Union[LinearConstraints, UnconstrainedRegion],
    template: CircuitTemplate,
    d_start: Mapping[str, float],
    max_sweeps: int = MAX_SWEEPS,
    tol: float = SWEEP_TOL,
    trust_radius: float = 0.0,
) -> CoordinateSearchResult:
    """Maximize ``Y_bar`` by exact per-coordinate line maximization.

    ``constraints`` is the linearized feasibility region of this iteration
    (or :class:`UnconstrainedRegion` for the Table 3 ablation); the design
    box of the template always applies.

    ``trust_radius > 0`` additionally limits every coordinate to a relative
    move of ``+-trust_radius`` around its starting value — the paper reads
    the (linearized) feasibility region as "a 'trust region' of the
    performance linearization with respect to the design parameters"
    (Sec. 7); an explicit relative cap makes that trust region honest for
    design spaces whose box bounds span decades, at the cost of a few more
    outer iterations.
    """
    d = dict(d_start)
    initial = estimator.yield_estimate(d)
    current = initial
    steps: List[Tuple[int, str, float, float]] = []
    sweeps = 0
    for sweep in range(1, max_sweeps + 1):
        sweeps = sweep
        before_sweep = current
        for parameter in template.design_parameters:
            name = parameter.name
            lower, upper = parameter.lower, parameter.upper
            if trust_radius > 0.0:
                start = d_start[name]
                lower = max(lower, start * (1.0 - trust_radius))
                upper = min(upper, start * (1.0 + trust_radius))
            interval = constraints.coordinate_interval(
                d, name, lower, upper)
            if interval is None:
                continue  # no feasible move along this coordinate
            lo, hi = interval
            best = estimator.maximize_coordinate(d, name, lo, hi)
            if best.yield_estimate > current and best.value != d[name]:
                d[name] = best.value
                current = best.yield_estimate
                steps.append((sweep, name, best.value, current))
        if current - before_sweep < tol:
            break
    return CoordinateSearchResult(
        d_star=d, yield_estimate=current, initial_estimate=initial,
        sweeps=sweeps, steps=steps)
