"""Finding a feasible starting point (Sec. 5.5).

If the initial design violates the functional constraints, the closest
feasible point in the design space is determined before the yield loop
starts.  The search iterates the same linearize-and-solve structure the
paper uses everywhere: linearize ``c`` at the current point (dim(d)+1 DC
simulations), solve the resulting linearly-constrained
closest-point problem with SLSQP (no simulations — the subproblem is
algebraic), step, re-check the true constraints, repeat.

Distances are measured relative to the parameter magnitudes so that a 1 %
move of a 100 um width and of a 10 pF capacitor count equally.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np
from scipy import optimize

from ..errors import FeasibilityError
from ..evaluation.evaluator import Evaluator
from .constraints import (FEASIBILITY_TOL, LinearConstraints,
                          linearize_constraints, violation)

#: Maximum linearize-and-project iterations.
MAX_ITERATIONS = 15

#: Extra margin requested from the linearized constraints so that the true
#: (weakly nonlinear) constraints end up satisfied as well.
TARGET_MARGIN = 1e-6


def _solve_projection(linear: LinearConstraints, d_current: np.ndarray,
                      d_target: np.ndarray, scale: np.ndarray,
                      lower: np.ndarray, upper: np.ndarray
                      ) -> Optional[np.ndarray]:
    """Closest point to ``d_target`` satisfying the linearized constraints
    and box bounds; distances scaled by ``scale``.  Pure algebra."""
    d_ref = np.array([linear.d_ref[name] for name in linear.design_names])

    def objective(x):
        w = (x - d_target) / scale
        return float(w @ w)

    def objective_grad(x):
        return 2.0 * (x - d_target) / scale**2

    def constraint_values(x):
        return linear.c0 + linear.jacobian @ (x - d_ref) - TARGET_MARGIN

    result = optimize.minimize(
        objective, d_current, jac=objective_grad, method="SLSQP",
        bounds=list(zip(lower, upper)),
        constraints=[{"type": "ineq", "fun": constraint_values,
                      "jac": lambda x: linear.jacobian}],
        options={"maxiter": 100, "ftol": 1e-12})
    if not result.success:
        return None
    return np.asarray(result.x, dtype=float)


def find_feasible_point(evaluator: Evaluator,
                        d0: Mapping[str, float],
                        max_iterations: int = MAX_ITERATIONS
                        ) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Sec. 5.5: the closest feasible point to ``d0``.

    Returns ``(d_f, c(d_f))``.  If ``d0`` is already feasible it is
    returned unchanged.  Raises :class:`FeasibilityError` when no feasible
    point is found within the iteration budget.
    """
    template = evaluator.template
    names = template.design_names
    lower, upper = template.design_bounds()
    d_target = template.design_vector(d0)
    scale = np.maximum(np.abs(d_target), 1e-12)

    d_current = dict(d0)
    values = evaluator.constraints(d_current)
    if violation(values) == 0.0:
        return dict(d_current), values

    best: Optional[Tuple[float, Dict[str, float], Dict[str, float]]] = None
    for _ in range(max_iterations):
        linear = linearize_constraints(evaluator, d_current)
        x = _solve_projection(linear, template.design_vector(d_current),
                              d_target, scale, lower, upper)
        if x is None:
            # Fall back to relaxing toward the feasible side along the
            # steepest violation-reduction direction of the linearization.
            gradient = np.zeros(len(names))
            for i, c in enumerate(linear.c0):
                if c < 0.0:
                    gradient += linear.jacobian[i]
            norm = float(np.linalg.norm(gradient * scale))
            if norm < 1e-18:
                break
            x = template.design_vector(d_current) + \
                gradient * scale**2 / norm * 0.1
            x = np.clip(x, lower, upper)
        candidate = template.design_dict(x)
        values = evaluator.constraints(candidate)
        total = violation(values)
        if best is None or total < best[0]:
            best = (total, dict(candidate), dict(values))
        if total == 0.0:
            return dict(candidate), values
        d_current = candidate
    if best is not None and best[0] <= 1e-6:
        # Numerically feasible (violation below solver noise).
        return best[1], best[2]
    detail = f"best violation {best[0]:.3g}" if best else "no candidate"
    if best is not None and best[2]:
        offender = min(best[2], key=best[2].get)
        detail += (f", most violated constraint {offender!r} = "
                   f"{best[2][offender]:.3g}")
    raise FeasibilityError(
        f"no feasible starting point found for template "
        f"{template.name!r} within {max_iterations} iterations "
        f"({detail})")
