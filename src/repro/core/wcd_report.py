"""Worst-case-distance yield report.

The companion estimate to the Monte-Carlo machinery: under the spec-wise
linearization at the worst-case point, the partial yield of spec ``i`` is

    Y_i = Phi(beta_wc_i)

(the Gaussian CDF of the signed worst-case distance) — the classic result
of the worst-case-distance methodology [Antreich/Graeb/Wieser 1994,
ref. 10 of the paper].  The total yield obeys

    1 - sum_i (1 - Y_i)  <=  Y  <=  min_i Y_i

(union bound below, weakest-spec bound above).  This report turns a set of
worst-case results into a per-spec *yield-loss budget*: which spec costs
how much yield, before any sampling.

For quadratic (mismatch-type) specs with a mirrored worst-case point the
two-sided partial yield ``Phi(beta) - Phi(-beta) = 2 Phi(beta) - 1`` is
used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from scipy.stats import norm

from .worst_case import WorstCaseResult


@dataclass(frozen=True)
class SpecYield:
    """Per-spec partial yield derived from the worst-case distance."""

    key: str
    beta_wc: float
    partial_yield: float
    two_sided: bool

    @property
    def loss(self) -> float:
        """Yield loss attributable to this spec alone."""
        return 1.0 - self.partial_yield


@dataclass
class WcdYieldReport:
    """Yield-loss budget from worst-case distances (no sampling)."""

    specs: List[SpecYield]

    @property
    def lower_bound(self) -> float:
        """Union bound: ``max(0, 1 - sum of losses)``."""
        return max(0.0, 1.0 - sum(s.loss for s in self.specs))

    @property
    def upper_bound(self) -> float:
        """Weakest-spec bound: ``min_i Y_i``."""
        return min(s.partial_yield for s in self.specs)

    @property
    def independent_estimate(self) -> float:
        """Product estimate assuming independent spec failures."""
        product = 1.0
        for spec in self.specs:
            product *= spec.partial_yield
        return product

    def dominant_loss(self) -> SpecYield:
        """The spec costing the most yield."""
        return max(self.specs, key=lambda s: s.loss)

    def summary(self) -> str:
        lines = [f"{'spec':>10} | {'beta_wc':>8} | {'partial Y':>9} | "
                 f"{'loss':>8}"]
        lines.append("-" * len(lines[0]))
        for spec in sorted(self.specs, key=lambda s: s.partial_yield):
            lines.append(
                f"{spec.key:>10} | {spec.beta_wc:>+8.2f} | "
                f"{spec.partial_yield * 100:>8.2f}% | "
                f"{spec.loss * 100:>7.2f}%"
                + ("  (two-sided)" if spec.two_sided else ""))
        lines.append(
            f"total yield in [{self.lower_bound * 100:.2f}%, "
            f"{self.upper_bound * 100:.2f}%], independent estimate "
            f"{self.independent_estimate * 100:.2f}%")
        return "\n".join(lines)


def partial_yield(beta_wc: float, two_sided: bool = False) -> float:
    """``Phi(beta)`` (or ``2 Phi(beta) - 1`` for a two-sided spec)."""
    if two_sided:
        return max(0.0, 2.0 * float(norm.cdf(beta_wc)) - 1.0)
    return float(norm.cdf(beta_wc))


def wcd_yield_report(
    worst_case: Mapping[str, WorstCaseResult],
    two_sided_keys: Optional[set] = None,
) -> WcdYieldReport:
    """Build the yield-loss budget from a worst-case result set.

    ``two_sided_keys`` marks specs whose acceptance region is a slab
    between two parallel boundaries (the quadratic/mirror case of
    Eq. 21-22); by default every spec is treated one-sided.
    """
    two_sided_keys = two_sided_keys or set()
    specs = []
    for key, result in worst_case.items():
        two_sided = key in two_sided_keys
        specs.append(SpecYield(
            key=key,
            beta_wc=result.beta_wc,
            partial_yield=partial_yield(result.beta_wc, two_sided),
            two_sided=two_sided))
    if not specs:
        raise ValueError("empty worst-case result set")
    return WcdYieldReport(specs=specs)
