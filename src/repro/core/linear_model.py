"""Spec-wise linearized performance models (Eq. 16, 21-22).

Each spec gets a first-order model built at its *own* worst-case point
(and worst-case operating point):

    f_bar(d, s) = f_b + grad_s f . (s - s_wc) + grad_d f . (d - d_f)

Because the worst-case point is the most probable point on the spec
boundary, this tangent plane is exact where yield is decided — the
"spec-wise linearization" that gives the paper its accuracy (vs. the
nominal-point linearization of the Table 4 ablation, which this module can
also build for the ablation benchmark).

Quadratic (mismatch-type) performances are additionally linearized at the
*mirrored* worst-case point ``s_wc' = -s_wc`` with the flipped gradient
(Eq. 21-22); detection costs exactly one extra simulation per spec, as the
paper notes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..evaluation.evaluator import Evaluator
from ..evaluation.gradient import performance_gradient_d
from ..spec.operating import spec_key
from ..spec.specification import Spec
from .worst_case import WorstCaseResult



@dataclass
class SpecLinearModel:
    """One linearized spec model, in normalized (``g >= g_b``) convention.

    ``value = g_ref + grad_s . (s - s_ref) + sum_k grad_d[k] (d_k - d_ref[k])``

    For worst-case linearization ``g_ref = g_b`` and ``s_ref = s_wc``
    (Eq. 16); the nominal-point ablation uses ``s_ref = 0`` and
    ``g_ref = g(d_f, 0)``.
    """

    spec: Spec
    key: str
    theta: Mapping[str, float]
    s_ref: np.ndarray
    g_ref: float
    grad_s: np.ndarray
    grad_d: Dict[str, float]
    d_ref: Dict[str, float]
    is_mirror: bool = False

    @property
    def g_bound(self) -> float:
        return self.spec.normalized_bound

    def value(self, d: Mapping[str, float], s_hat: np.ndarray) -> float:
        """Model prediction of the normalized performance."""
        s_hat = np.asarray(s_hat, dtype=float)
        result = self.g_ref + float(self.grad_s @ (s_hat - self.s_ref))
        for name, slope in self.grad_d.items():
            result += slope * (d[name] - self.d_ref[name])
        return result

    def margin(self, d: Mapping[str, float], s_hat: np.ndarray) -> float:
        """Model margin (>= 0 passes)."""
        return self.value(d, s_hat) - self.g_bound

    def statistical_part(self, samples: np.ndarray) -> np.ndarray:
        """Per-sample constant part at ``d = d_ref`` minus the bound.

        This is the quantity the paper stores per sample (Sec. 5.3): during
        the coordinate search only the ``grad_d . (d - d_f)`` shift needs
        recomputing (Eq. 20).
        """
        samples = np.asarray(samples, dtype=float)
        return (self.g_ref - self.g_bound) + \
            (samples - self.s_ref) @ self.grad_s


def _grad_d_normalized(evaluator: Evaluator, spec: Spec,
                       d: Mapping[str, float], s_hat: np.ndarray,
                       theta: Mapping[str, float],
                       base_value: Optional[float],
                       pool=None) -> Dict[str, float]:
    raw = performance_gradient_d(evaluator, spec.performance, d, s_hat,
                                 theta, base_value=base_value, pool=pool)
    return {name: spec.sign * slope for name, slope in raw.items()}


def quadratic_mirror_reference(
    evaluator: Evaluator,
    wc: WorstCaseResult,
    d: Mapping[str, float],
    theta: Mapping[str, float],
) -> Optional[Tuple[np.ndarray, float]]:
    """Eq. 21, generalized: locate the *second* linearization point of a
    quadratic (tent-shaped) spec.

    The paper mirrors the worst-case point about the nominal point
    (``s_wc' = -s_wc``), which assumes the tent's ridge passes through
    ``s = 0``.  A systematic offset (a non-zero common-mode error, for
    CMRR) shifts the ridge, so the second acceptance boundary sits at the
    reflection about the *ridge* instead.  Fitting a parabola to the three
    known samples along the ``s_wc`` line —

        g(0) = g_nominal,  g(s_wc) = g_b,  g(-s_wc)  (1 extra simulation)

    gives the ridge position ``t* = -b/(2a)`` and the mirror reference
    ``s' = (2 t* - 1) s_wc``; one more simulation reads the value there.
    For a ridge through the origin this reduces exactly to the paper's
    ``s' = -s_wc``.  Returns ``(s_ref, g_ref)`` or None when the
    performance is not meaningfully concave along the line (monotone
    specs) — in that case the single tangent is sufficient and, per the
    paper, only the one detection simulation was spent.
    """
    if not wc.on_boundary:
        return None
    norm = float(np.linalg.norm(wc.s_wc))
    if norm < 1e-6:
        return None  # nominal sits on the bound: no distinct mirror
    g0 = wc.g_nominal
    g1 = wc.g_wc  # == g_b up to solver tolerance
    g_minus = wc.spec.normalize(evaluator.performance(
        wc.spec.performance, d, -wc.s_wc, theta))
    # Parabola g(t) = a t^2 + b t + g0 through t = -1, 0, +1.
    a = 0.5 * ((g1 - g0) + (g_minus - g0))
    b = 0.5 * ((g1 - g0) - (g_minus - g0))
    scale = max(abs(g0 - wc.spec.normalized_bound), abs(g1 - g0), 1e-12)
    if a >= -0.25 * scale:
        return None  # not concave enough: effectively monotone
    t_ridge = -b / (2.0 * a)
    if t_ridge >= 1.0:
        return None  # ridge beyond the worst-case point: one-sided here
    t_mirror = 2.0 * t_ridge - 1.0
    from .worst_case import BETA_MAX
    if abs(t_mirror) * norm > BETA_MAX:
        return None  # second boundary statistically irrelevant
    s_mirror = t_mirror * wc.s_wc
    g_mirror = wc.spec.normalize(evaluator.performance(
        wc.spec.performance, d, s_mirror, theta))
    return np.asarray(s_mirror), float(g_mirror)


def detect_quadratic(evaluator: Evaluator, wc: WorstCaseResult,
                     d: Mapping[str, float],
                     theta: Mapping[str, float]) -> bool:
    """True when the spec needs a second (mirrored) linearization."""
    return quadratic_mirror_reference(evaluator, wc, d, theta) is not None


def build_spec_models(
    evaluator: Evaluator,
    d_f: Mapping[str, float],
    worst_case: Mapping[str, WorstCaseResult],
    theta_per_spec: Mapping[str, Mapping[str, float]],
    linearize_at: str = "worst_case",
    detect_quadratic_specs: bool = True,
    pool=None,
) -> List[SpecLinearModel]:
    """Build the full model set for one optimizer iteration.

    ``linearize_at = "worst_case"`` implements Eq. 16; ``"nominal"``
    implements the Table 4 ablation (tangent at ``s = 0``).  With quadratic
    detection enabled, mismatch-type specs get their mirrored twin
    (Eq. 21-22); the mirror model reuses the design-space gradient of the
    primary model (the design dependence of a tent-shaped performance is
    symmetric to first order), so it costs only the one detection
    simulation.
    """
    if linearize_at not in ("worst_case", "nominal"):
        raise ValueError(f"linearize_at must be 'worst_case' or 'nominal', "
                         f"got {linearize_at!r}")
    models: List[SpecLinearModel] = []
    d_ref = dict(d_f)
    for spec in evaluator.template.specs:
        key = spec_key(spec)
        wc = worst_case[key]
        theta = theta_per_spec[key]
        if linearize_at == "worst_case":
            s_ref = wc.s_wc
            g_ref = wc.g_wc if wc.on_boundary else wc.g_nominal
            if not wc.on_boundary:
                s_ref = np.zeros_like(wc.s_wc)
            grad_s = wc.gradient
            base = spec.denormalize(g_ref)
            grad_d = _grad_d_normalized(evaluator, spec, d_f, s_ref, theta,
                                        base_value=base, pool=pool)
        else:
            s_ref = np.zeros_like(wc.s_wc)
            g_ref = wc.g_nominal
            from ..evaluation.gradient import performance_gradient_s
            grad_s = performance_gradient_s(
                evaluator, spec.performance, d_f, s_ref, theta,
                base_value=spec.denormalize(g_ref), pool=pool) * spec.sign
            grad_d = _grad_d_normalized(evaluator, spec, d_f, s_ref, theta,
                                        base_value=spec.denormalize(g_ref),
                                        pool=pool)
        primary = SpecLinearModel(
            spec=spec, key=key, theta=dict(theta), s_ref=np.array(s_ref),
            g_ref=g_ref, grad_s=np.array(grad_s), grad_d=grad_d,
            d_ref=d_ref)
        models.append(primary)
        if linearize_at == "worst_case" and detect_quadratic_specs:
            reference = quadratic_mirror_reference(evaluator, wc, d_f,
                                                   theta)
            if reference is not None:
                s_mirror, g_mirror = reference
                models.append(SpecLinearModel(
                    spec=spec, key=key + "#mirror", theta=dict(theta),
                    s_ref=np.array(s_mirror), g_ref=g_mirror,
                    grad_s=-np.array(wc.gradient), grad_d=dict(grad_d),
                    d_ref=d_ref, is_mirror=True))
    return models
