"""Linearized feasibility region (Sec. 5.1, Eq. 15).

The functional constraints ``c(d) >= 0`` (all transistors conducting and
saturated, etc.) define the feasibility region F.  During one optimizer
iteration only their linearization at the current feasible point is used:

    c_bar(d) = c_0 + grad_d c(d_f) . (d - d_f)                      (Eq. 15)

This trust region is what keeps the spec-wise linear performance models
accurate (Fig. 4 of the paper) and what the Table 3 ablation removes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import FeasibilityError
from ..evaluation.evaluator import Evaluator
from ..evaluation.gradient import constraint_jacobian

#: Numerical slack when testing feasibility.
FEASIBILITY_TOL = 1e-9


@dataclass
class LinearConstraints:
    """The linearized constraint set of one optimizer iteration."""

    names: Tuple[str, ...]
    c0: np.ndarray  # constraint values at d_ref
    jacobian: np.ndarray  # (n_constraints, n_design)
    d_ref: Dict[str, float]
    design_names: Tuple[str, ...]

    def values(self, d: Mapping[str, float]) -> np.ndarray:
        """Linearized constraint values c_bar(d)."""
        delta = np.array([d[name] - self.d_ref[name]
                          for name in self.design_names])
        return self.c0 + self.jacobian @ delta

    def satisfied(self, d: Mapping[str, float],
                  tol: float = FEASIBILITY_TOL) -> bool:
        return bool(np.all(self.values(d) >= -tol))

    def coordinate_interval(self, d: Mapping[str, float], name: str,
                            lower: float, upper: float
                            ) -> Optional[Tuple[float, float]]:
        """Feasible interval of one coordinate with the others fixed.

        Intersects ``c_bar >= 0`` (each linear in the coordinate) with the
        box ``[lower, upper]``.  Returns None if empty.
        """
        k = self.design_names.index(name)
        partial = dict(d)
        partial[name] = self.d_ref[name]
        base = self.values(partial)
        slopes = self.jacobian[:, k]
        ref = self.d_ref[name]
        lo, hi = lower, upper
        for c_base, slope in zip(base, slopes):
            if slope == 0.0:
                if c_base < -FEASIBILITY_TOL:
                    return None
                continue
            crossing = ref - c_base / slope
            if slope > 0.0:
                lo = max(lo, crossing)
            else:
                hi = min(hi, crossing)
        if lo > hi:
            return None
        return lo, hi


class UnconstrainedRegion:
    """Drop-in replacement used by the Table 3 ablation: only the design
    box limits the search, no functional constraints."""

    def coordinate_interval(self, d, name, lower, upper):
        return lower, upper

    def satisfied(self, d, tol=FEASIBILITY_TOL):
        return True


def linearize_constraints(evaluator: Evaluator,
                          d_f: Mapping[str, float]) -> LinearConstraints:
    """Build Eq. 15 at the feasible point ``d_f`` by forward differences
    (dim(d)+1 DC simulations)."""
    c0_dict, jac_dict = constraint_jacobian(evaluator, d_f)
    names = tuple(evaluator.template.constraint_names)
    design_names = tuple(evaluator.template.design_names)
    c0 = np.array([c0_dict[name] for name in names])
    jacobian = np.array([[jac_dict[cname][pname] for pname in design_names]
                         for cname in names])
    return LinearConstraints(names=names, c0=c0, jacobian=jacobian,
                             d_ref=dict(d_f), design_names=design_names)


def true_feasible(evaluator: Evaluator, d: Mapping[str, float],
                  tol: float = FEASIBILITY_TOL) -> bool:
    """Check the *simulated* constraints (one DC analysis)."""
    values = evaluator.constraints(d)
    return all(value >= -tol for value in values.values())


def violation(values: Mapping[str, float]) -> float:
    """Total constraint violation (0 when feasible)."""
    return float(sum(max(0.0, -v) for v in values.values()))
