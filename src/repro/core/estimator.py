"""Monte-Carlo yield estimation on the linearized models (Eq. 17-20).

A fixed set of ``N`` standard-normal samples (drawn once, Sec. 5.3) is
pushed through the spec-wise linear models.  The per-sample statistical
part ``f_bar(d_f, s_j) - f_b`` is precomputed and stored; a design change
only shifts every sample of model ``i`` by the *same* scalar
``grad_d . (d - d_f)`` (Eq. 20), so re-estimating the yield after a design
move is a pure array comparison with zero simulations.

For the coordinate search the structure is even stronger: along one
coordinate each (sample, model) pair passes on a half-line of the
coordinate value, so a sample's overall pass set is an interval and the
exact 1-D yield profile is a piecewise-constant function whose maximum is
found by an O(N log N) breakpoint sweep — no grid, no tolerance
(:meth:`LinearizedYieldEstimator.maximize_coordinate`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError
from ..statistics.sampling import SampleSet
from .linear_model import SpecLinearModel


@dataclass
class CoordinateMaximum:
    """Result of the exact 1-D yield maximization along one coordinate."""

    value: float  # best coordinate value
    yield_estimate: float  # yield at the maximum
    interval: Tuple[float, float]  # the full maximizing plateau


class LinearizedYieldEstimator:
    """Yield estimate over a fixed sample set and fixed linear models."""

    def __init__(self, models: Sequence[SpecLinearModel],
                 samples: SampleSet):
        if not models:
            raise ReproError("need at least one spec model")
        self.models: Tuple[SpecLinearModel, ...] = tuple(models)
        self.samples = samples
        self.d_ref: Dict[str, float] = dict(models[0].d_ref)
        # (N, n_models): statistical margin of sample j under model i at
        # d = d_ref.  This is the stored constant of Eq. 20.
        self._stat = np.column_stack([
            model.statistical_part(samples.matrix) for model in self.models])
        # (n_models, n_design): design-space slopes.
        self._design_names = list(self.d_ref.keys())
        self._slopes = np.array([
            [model.grad_d[name] for name in self._design_names]
            for model in self.models])

    # -- bookkeeping -------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        return self.samples.n

    @property
    def model_keys(self) -> List[str]:
        return [model.key for model in self.models]

    def _shifts(self, d: Mapping[str, float]) -> np.ndarray:
        """Per-model margin shift ``grad_d . (d - d_ref)`` (Eq. 20)."""
        delta = np.array([d[name] - self.d_ref[name]
                          for name in self._design_names])
        return self._slopes @ delta

    # -- estimates ----------------------------------------------------------------
    def margins(self, d: Mapping[str, float]) -> np.ndarray:
        """(N, n_models) model margins at design ``d``."""
        return self._stat + self._shifts(d)[None, :]

    def pass_matrix(self, d: Mapping[str, float]) -> np.ndarray:
        """(N, n_models) boolean pass matrix."""
        return self.margins(d) >= 0.0

    def yield_estimate(self, d: Mapping[str, float]) -> float:
        """The linearized-model yield ``Y_bar`` (Eq. 17-18)."""
        return float(np.mean(np.all(self.pass_matrix(d), axis=1)))

    def bad_sample_fraction(self, d: Mapping[str, float]
                            ) -> Dict[str, float]:
        """Per-model fraction of failing samples — the per-mille
        "bad samples" rows of the paper's result tables."""
        fails = ~self.pass_matrix(d)
        return {model.key: float(np.mean(fails[:, i]))
                for i, model in enumerate(self.models)}

    def bad_samples_per_spec(self, d: Mapping[str, float]
                             ) -> Dict[str, float]:
        """Like :meth:`bad_sample_fraction` but with mirror models folded
        into their primary spec (a sample is bad for a spec if *either*
        linearization fails it)."""
        fails = ~self.pass_matrix(d)
        result: Dict[str, float] = {}
        for i, model in enumerate(self.models):
            key = model.key.split("#", 1)[0]
            column = fails[:, i]
            if key in result:
                result[key] = np.logical_or(result[key], column)
            else:
                result[key] = column
        return {key: float(np.mean(value)) for key, value in result.items()}

    # -- exact coordinate maximization ----------------------------------------------
    def maximize_coordinate(self, d: Mapping[str, float], name: str,
                            lower: float, upper: float
                            ) -> CoordinateMaximum:
        """Exactly maximize ``Y_bar(d with d[name] = x)`` over
        ``x in [lower, upper]`` (the inner problem of Eq. 19).

        Builds each sample's pass interval from the per-model half-lines
        and sweeps the interval endpoints.  Ties are broken toward the
        plateau containing (or nearest) the current value, which keeps the
        coordinate search from wandering along flat yield regions.
        """
        if upper < lower:
            raise ReproError(f"empty coordinate range for {name!r}")
        k = self._design_names.index(name)
        current = float(d[name])
        # Margin of sample j under model i as a function of x:
        #   m_ij(x) = base_ij + slope_i * (x - ref_k)
        partial = dict(d)
        partial[name] = self.d_ref[name]  # remove coordinate-k contribution
        base = self._stat + self._shifts(partial)[None, :]
        slopes = self._slopes[:, k]
        ref = self.d_ref[name]

        n, m = base.shape
        lo = np.full(n, lower)
        hi = np.full(n, upper)
        for i in range(m):
            slope = slopes[i]
            if slope == 0.0:
                # Pass/fail independent of x.
                failing = base[:, i] < 0.0
                lo[failing] = np.inf  # empty interval
                continue
            crossing = ref - base[:, i] / slope
            if slope > 0.0:
                lo = np.maximum(lo, crossing)
            else:
                hi = np.minimum(hi, crossing)
        valid = (lo <= hi) & (lo <= upper) & (hi >= lower)
        if not np.any(valid):
            return CoordinateMaximum(current, 0.0, (current, current))
        starts = np.clip(lo[valid], lower, upper)
        ends = np.clip(hi[valid], lower, upper)
        # Sweep: +1 at interval start, -1 just after interval end.
        events = np.concatenate([
            np.column_stack([starts, np.ones_like(starts)]),
            np.column_stack([ends, -np.ones_like(ends)]),
        ])
        # Sort by position; at equal positions, starts (+1) before ends
        # (-1) because intervals are closed.
        order = np.lexsort((-events[:, 1], events[:, 0]))
        events = events[order]
        # Running interval count after each event; the maximizing plateau
        # begins at the first start event whose running count attains the
        # maximum over start events (ends can never open a plateau).
        counts = np.cumsum(events[:, 1]).astype(np.int64)
        start_counts = np.where(events[:, 1] > 0, counts, -1)
        best_count = int(start_counts.max())
        idx = int(np.argmax(start_counts == best_count))
        next_x = events[idx + 1, 0] if idx + 1 < len(events) else upper
        best_interval = (events[idx, 0], next_x)
        a, b = best_interval
        b = min(b, upper)
        a = min(max(a, lower), b)
        if a <= current <= b:
            best_x = current
        elif current < a:
            best_x = a
        else:
            best_x = b
        return CoordinateMaximum(float(best_x), best_count / n,
                                 (float(a), float(b)))
