"""The feasibility-guided yield optimizer — the Fig. 6 loop.

One iteration:

1. worst-case operating points per spec (Eq. 2, corner enumeration),
2. worst-case statistical points per spec (Eq. 8, warm-started),
3. spec-wise linear performance models at those points (Eq. 16), with
   mirrored models for quadratic/mismatch performances (Eq. 21-22),
4. linearization of the functional constraints (Eq. 15),
5. coordinate-search maximization of the linearized-model Monte-Carlo
   yield estimate inside the linearized feasibility region (Eq. 17-20),
6. simulation-based feasibility line search back onto the true feasible
   region (Eq. 23).

The loop starts from the closest feasible point to the initial design
(Sec. 5.5) and stops when the yield estimate no longer improves.

Ablation switches reproduce the paper's negative results:

* ``use_constraints=False``   — Table 3 (optimizer wanders out of the
  weakly-nonlinear region; true yield stays at 0 %),
* ``linearize_at="nominal"``  — Table 4 (tangents at s = 0 misjudge the
  specs, especially quadratic CMRR; true yield stays at 0 %).

The loop routes every evaluator call through the
:mod:`repro.runtime` fault-tolerance layer: verification Monte-Carlo
runs in lenient mode (a non-convergent sample is recorded as
spec-violating and counted in ``failed_samples``), model building runs
in strict mode (retry-with-jitter, then abort with the partial trace).
Per-run :class:`~repro.runtime.RunBudget` limits and per-iteration JSON
checkpointing make runs schedulable and resumable; see
``OptimizationResult.stop_reason`` for how a run ended.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..errors import ReproError
from ..evaluation.evaluator import Evaluator
from ..evaluation.template import CircuitTemplate
from ..runtime import (FaultPolicy, FaultTolerantEvaluator,
                       OptimizerCheckpoint, RunBudget, STOP_ABORTED_PREFIX,
                       STOP_CONVERGED, STOP_MAX_ITERATIONS,
                       load_checkpoint, save_checkpoint)
from ..spec.operating import find_worst_case_operating_points, spec_key
from ..statistics.sampling import SampleSet
from ..yieldsim import (ExecutionConfig, OperationalMC, ShardPlan,
                        YieldEstimator, YieldResult)
from .constraints import UnconstrainedRegion, linearize_constraints
from .coordinate_search import coordinate_search
from .estimator import LinearizedYieldEstimator
from .feasible_point import find_feasible_point
from .line_search import feasibility_line_search
from .linear_model import SpecLinearModel, build_spec_models
from .worst_case import WorstCaseResult, find_all_worst_case_points


@dataclass
class OptimizerConfig:
    """Knobs of the Fig. 6 loop (defaults follow the paper's setup)."""

    n_samples_linear: int = 10000  # N of Eq. 17 (paper: 10,000)
    n_samples_verify: int = 300  # N of the Y_tilde verification (paper: 300)
    max_iterations: int = 5
    min_improvement: float = 1e-3  # stop when Y_bar gain falls below this
    seed: int = 2001
    use_constraints: bool = True  # False = Table 3 ablation
    linearize_at: str = "worst_case"  # "nominal" = Table 4 ablation
    detect_quadratic: bool = True
    multistart: int = 2  # worst-case search restarts
    verify: bool = True  # run the simulation-based Y_tilde checks
    #: per-iteration relative trust region on each design parameter; the
    #: linearized models are only trusted this far from the expansion point
    trust_radius: float = 0.35
    #: damped step acceptance: when a spec whose nominal margin was positive
    #: at d_f flips negative at the proposed point (a linearization error
    #: the models cannot see), the step is halved, up to this many times.
    #: Each check costs at most n_spec simulations.  0 disables.
    max_step_halvings: int = 2
    #: worker processes of the persistent shared pool (1 = serial); the
    #: pool is created once per run and shared by the worst-case
    #: searches, the gradient probes and the verification Monte-Carlo.
    #: Results are bit-identical to a serial run.
    jobs: int = 1
    #: per-task wait budget of the shared pool, seconds (None = forever);
    #: a timed-out task kills the pool and the run degrades to serial
    task_timeout_s: Optional[float] = None
    #: run only this shard of every verification Monte-Carlo (one
    #: machine of a ``ShardPlan(i, k)`` fleet); the per-iteration
    #: results carry shard provenance and merge exactly with the other
    #: shards' via :func:`repro.yieldsim.merge_results`.  ``None`` (and
    #: the 1-shard plan) reproduce the unsharded run bit for bit.
    verify_shard: Optional[ShardPlan] = None
    #: linear-solver backend override for every circuit solve of the run
    #: ("dense"/"sparse"/"auto"; see :mod:`repro.circuit.linsolve`).
    #: ``None`` keeps the template's own setting (default "auto": by
    #: node count, which leaves all small templates on the bit-identical
    #: dense path).
    linsolve: Optional[str] = None
    #: samples per vectorized simulation chunk of the verification
    #: Monte-Carlo (None = the template's default chunk, 1 = force the
    #: scalar per-sample path).  A throughput knob only: the batched
    #: engine is bit-identical to the scalar loop.
    batch_samples: Optional[int] = None


@dataclass
class IterationRecord:
    """State after one optimizer iteration (row group of Tables 1/3/4/6).

    ``index = 0`` is the initial (feasible) design before any yield step.
    """

    index: int
    d: Dict[str, float]
    #: spec key -> f - f_b at (d, s=0, theta_wc) in presentation units
    margins: Dict[str, float]
    #: spec key -> bad-sample fraction in the linearized models
    bad_samples: Dict[str, float]
    #: linearized-model yield estimate Y_bar at this design
    yield_linear: float
    #: simulation-based operational yield Y_tilde (None if not verified)
    yield_mc: Optional[float]
    #: the verifying estimator's full result (a
    #: :class:`repro.yieldsim.YieldResult`, or a legacy
    #: :class:`MonteCarloResult` when constructed by older code)
    mc: Optional[object]
    #: worst-case results used in this iteration (mismatch analysis input)
    worst_case: Dict[str, WorstCaseResult]
    #: cumulative simulation counts up to the end of this record
    simulations: int
    constraint_simulations: int
    #: line-search step fraction (None for the initial record)
    gamma: Optional[float] = None
    #: verification samples that failed to evaluate under the fault
    #: policy and were counted as spec-violating (Eq. 6-7 denominator
    #: still includes them)
    failed_samples: int = 0
    #: verification sample count actually used (None = not verified);
    #: smaller than ``n_samples_verify`` when the simulation budget
    #: could no longer afford the full verification
    verify_samples: Optional[int] = None
    #: True when the remaining simulation budget shrank (or skipped)
    #: this record's verification
    verify_shrunk: bool = False


@dataclass
class OptimizationResult:
    """Full optimizer trace."""

    template_name: str
    records: List[IterationRecord]
    d_final: Dict[str, float]
    converged: bool
    wall_time_s: float
    total_simulations: int
    total_constraint_simulations: int
    #: evaluator requests answered from cache / issued in total (Table-7
    #: effort accounting; defaults keep older call sites working)
    total_cache_hits: int = 0
    total_requests: int = 0
    #: why the loop ended: "converged", "max_iterations", "deadline",
    #: "sim_budget", or "aborted: <ErrorType>: <message>"
    stop_reason: str = STOP_MAX_ITERATIONS
    #: total evaluations counted as failed by the fault policy
    total_failed_samples: int = 0
    #: total retry-with-jitter attempts issued by the fault policy
    total_retried_evaluations: int = 0
    #: aggregated failure/recovery telemetry of the verification runs
    #: (a :class:`repro.yieldsim.SimulatorHealth`, None on legacy traces)
    health: Optional[object] = None
    #: shared-pool usage: worker count, tasks dispatched, and whether the
    #: pool died mid-run (timeout/breakage -> serial degradation)
    pool_jobs: int = 1
    pool_tasks: int = 0
    pool_died: bool = False
    #: warm-start cache counters of the template at run end
    #: (hits/misses/chain_seeds/chain_solves/evictions/...), when the
    #: template exposes them
    warm_cache: Optional[Dict[str, int]] = None
    #: per-strategy DC solve counters of the template at run end
    #: (newton-warm/newton/gmin-stepping/source-stepping/failed), when
    #: the template exposes them
    dc_effort: Optional[Dict[str, int]] = None

    @property
    def initial(self) -> IterationRecord:
        return self.records[0]

    @property
    def aborted(self) -> bool:
        """True when the run ended on an abort-class error (the trace is
        still valid up to the last completed iteration)."""
        return self.stop_reason.startswith(STOP_ABORTED_PREFIX)

    @property
    def final(self) -> IterationRecord:
        return self.records[-1]

    def final_yield(self) -> Optional[float]:
        return self.final.yield_mc


class YieldOptimizer:
    """Driver of the Fig. 6 loop over one circuit template."""

    def __init__(self, template: CircuitTemplate,
                 config: Optional[OptimizerConfig] = None,
                 evaluator: Optional[Evaluator] = None,
                 verifier: Optional[YieldEstimator] = None,
                 policy: Optional[FaultPolicy] = None,
                 budget: Optional[RunBudget] = None,
                 checkpoint_path: Optional[str] = None,
                 resume: bool = False):
        self.template = template
        self.config = config or OptimizerConfig()
        self.evaluator = evaluator or Evaluator(template)
        if self.config.linsolve is not None:
            # Push the override onto the template so every solve of the
            # run — evaluations, warm anchors, constraint benches — uses
            # the requested backend (pool workers inherit it via pickle).
            template.linsolve = self.config.linsolve
            self.evaluator.linsolve = self.config.linsolve
        #: pluggable Y_tilde verifier; the paper's Eq. 6-7 Monte-Carlo by
        #: default, or e.g. :class:`repro.yieldsim.MeanShiftIS`, which
        #: reuses the iteration's Eq. 8 worst-case points as mean shifts
        self.verifier = verifier or OperationalMC(
            execution=ExecutionConfig(
                batch_samples=self.config.batch_samples))
        #: fault policy every evaluator call is routed through
        self.policy = policy or FaultPolicy()
        #: wall-clock/simulation budget of this run
        self.budget = budget or RunBudget()
        #: JSON checkpoint written after every completed iteration
        self.checkpoint_path = checkpoint_path
        #: continue from ``checkpoint_path`` when it exists
        self.resume = resume
        self._guarded = FaultTolerantEvaluator(self.evaluator, self.policy)

    # -- helpers -----------------------------------------------------------------
    def _theta_wc(self, d: Mapping[str, float]) -> Dict[str, Dict[str, float]]:
        s0 = self.template.statistical_space.nominal()

        def evaluate(theta):
            return self._guarded.evaluate(d, s0, theta)

        return find_worst_case_operating_points(
            evaluate, self.template.specs, self.template.operating_range)

    def _margins(self, d: Mapping[str, float],
                 theta_wc: Mapping[str, Mapping[str, float]]
                 ) -> Dict[str, float]:
        s0 = self.template.statistical_space.nominal()
        return self._guarded.margins(d, s0, theta_wc)

    def _verify_budget(self, theta_wc: Mapping[str, Mapping[str, float]]
                       ) -> tuple:
        """``(n_samples, shrunk)`` the simulation budget can afford.

        A full verification costs roughly ``n_samples x theta_groups``
        simulations.  Rather than blowing through ``max_simulations`` (or
        skipping verification outright and returning a trace with no
        Y_tilde at all), the sample count is shrunk to what the remaining
        budget covers; the shrunken N is recorded in the trace.
        """
        n = self.config.n_samples_verify
        if self.budget.max_simulations is None:
            return n, False
        from ..spec.operating import group_by_theta
        groups = max(1, len(group_by_theta(
            theta_wc, self.template.operating_range)))
        remaining = self.budget.max_simulations \
            - self.evaluator.simulation_count
        affordable = max(0, remaining) // groups
        if affordable >= n:
            return n, False
        return int(affordable), True

    def _verify(self, d: Mapping[str, float],
                theta_wc: Mapping[str, Mapping[str, float]],
                worst_case: Optional[Mapping[str, WorstCaseResult]] = None
                ) -> tuple:
        """``(result_or_None, n_used_or_None, shrunk)``."""
        if not self.config.verify:
            return None, None, False
        n, shrunk = self._verify_budget(theta_wc)
        if n < 1:
            # Budget entirely spent: nothing affordable, record the skip.
            return None, 0, True
        # Lenient mode: a sample the simulator cannot evaluate is a
        # failed sample (counts against the yield), not a failed run.
        # The shard plan travels by keyword only when set, so
        # duck-typed verifiers without a ``shard`` parameter keep
        # working for unsharded runs.
        kwargs = {}
        if self.config.verify_shard is not None:
            kwargs["shard"] = self.config.verify_shard
        with self._guarded.lenient():
            result = self.verifier.estimate(
                self._guarded, d, theta_wc, n_samples=n,
                seed=self.config.seed + 17,
                worst_case=worst_case, **kwargs)
        return result, n, shrunk

    def _budget_stop(self, start_time: float,
                     wall_offset: float) -> Optional[str]:
        if self.budget.unlimited:
            return None
        elapsed = wall_offset + (time.time() - start_time)
        return self.budget.exhausted(elapsed,
                                     self.evaluator.simulation_count)

    def _write_checkpoint(self, iteration: int,
                          records: List[IterationRecord],
                          d_f: Mapping[str, float],
                          previous_wc: Optional[Dict[str,
                                                     WorstCaseResult]],
                          samples: SampleSet, start_time: float,
                          wall_offset: float,
                          stop_reason: Optional[str] = None) -> None:
        if not self.checkpoint_path:
            return
        evaluator = self.evaluator
        save_checkpoint(self.checkpoint_path, OptimizerCheckpoint(
            template_name=self.template.name,
            seed=self.config.seed,
            iteration=iteration,
            d_f=dict(d_f),
            records=records,
            previous_wc=previous_wc,
            sample_state={"n": samples.n, "dim": samples.dim,
                          "seed": self.config.seed},
            counters={
                "simulations": evaluator.simulation_count,
                "requests": evaluator.request_count,
                "constraint": evaluator.constraint_count,
                "cache_hits": evaluator.cache_hits,
                "cache_misses": evaluator.cache_misses,
            },
            wall_time_s=wall_offset + (time.time() - start_time),
            stop_reason=stop_reason))

    def _load_checkpoint(self) -> Optional[OptimizerCheckpoint]:
        if not (self.resume and self.checkpoint_path
                and os.path.exists(self.checkpoint_path)):
            return None
        state = load_checkpoint(self.checkpoint_path, self.template)
        if state.seed != self.config.seed:
            raise ReproError(
                f"checkpoint {self.checkpoint_path!r} was written with "
                f"seed {state.seed}, but this run uses seed "
                f"{self.config.seed}; resuming would not reproduce the "
                f"original trajectory")
        # Fold the checkpointed effort back in, so cumulative Table-7
        # accounting spans the whole logical run across restarts.
        self.evaluator.absorb_counts(
            simulations=state.counters.get("simulations", 0),
            requests=state.counters.get("requests", 0),
            constraint=state.counters.get("constraint", 0),
            cache_hits=state.counters.get("cache_hits", 0),
            cache_misses=state.counters.get("cache_misses", 0))
        return state

    # -- main loop ----------------------------------------------------------------
    def run(self) -> OptimizationResult:
        config = self.config
        evaluator = self.evaluator  # raw counters (Table-7 accounting)
        guarded = self._guarded     # policy-routed evaluation
        template = self.template
        start_time = time.time()
        wall_offset = 0.0

        # One persistent worker pool for the whole run (jobs >= 2): the
        # worst-case searches, the gradient probes and the verification
        # Monte-Carlo all share it, so process spawn and template
        # pickling are paid once.  Serial when jobs == 1 (or the
        # evaluation stack is not worker-replicable); results are
        # bit-identical either way.
        from ..yieldsim import PoolHandle
        pool = PoolHandle.for_evaluator(
            guarded, config.jobs, task_timeout_s=config.task_timeout_s)
        self.verifier.pool = pool
        try:
            return self._run_loop(pool, start_time, wall_offset)
        finally:
            self.verifier.pool = None
            if pool is not None:
                pool.close()

    def _run_loop(self, pool, start_time: float,
                  wall_offset: float) -> OptimizationResult:
        config = self.config
        evaluator = self.evaluator  # raw counters (Table-7 accounting)
        guarded = self._guarded     # policy-routed evaluation
        template = self.template

        state = self._load_checkpoint()
        samples = SampleSet.draw(config.n_samples_linear,
                                 template.statistical_space.dim,
                                 seed=config.seed)
        if state is not None:
            expected = {"n": samples.n, "dim": samples.dim,
                        "seed": config.seed}
            if state.sample_state and state.sample_state != expected:
                raise ReproError(
                    f"checkpoint {self.checkpoint_path!r} sampling state "
                    f"{state.sample_state} does not match this run's "
                    f"{expected}; resuming would not reproduce the "
                    f"original trajectory")
            records = list(state.records)
            d_f = dict(state.d_f)
            previous_wc = state.previous_wc
            start_iteration = state.iteration + 1
            wall_offset = state.wall_time_s
            if state.stop_reason == STOP_CONVERGED:
                # The checkpointed run already converged; nothing left.
                start_iteration = config.max_iterations + 1
        else:
            d0 = template.initial_design()
            if config.use_constraints:
                d_f, _ = find_feasible_point(guarded, d0)
            else:
                d_f = dict(d0)
            records = []
            previous_wc = None
            start_iteration = 1

        converged = False
        stop_reason = STOP_MAX_ITERATIONS
        if state is not None and state.stop_reason == STOP_CONVERGED:
            converged = True
            stop_reason = STOP_CONVERGED
        try:
            for iteration in range(start_iteration,
                                   config.max_iterations + 1):
                # Budget gate at the iteration boundary; skipped until a
                # record exists so even a zero deadline yields a valid
                # (initial-state) trace.
                if records:
                    reason = self._budget_stop(start_time, wall_offset)
                    if reason is not None:
                        stop_reason = reason
                        break

                theta_wc = self._theta_wc(d_f)
                wc = find_all_worst_case_points(
                    guarded, d_f, theta_wc, previous=previous_wc,
                    multistart=config.multistart, seed=config.seed,
                    pool=pool)
                models = build_spec_models(
                    guarded, d_f, wc, theta_wc,
                    linearize_at=config.linearize_at,
                    detect_quadratic_specs=config.detect_quadratic,
                    pool=pool)
                estimator = LinearizedYieldEstimator(models, samples)

                if iteration == 1:
                    records.append(IterationRecord(
                        index=0, d=dict(d_f),
                        margins=self._margins(d_f, theta_wc),
                        bad_samples=estimator.bad_samples_per_spec(d_f),
                        yield_linear=estimator.yield_estimate(d_f),
                        yield_mc=None, mc=None, worst_case=dict(wc),
                        simulations=evaluator.simulation_count,
                        constraint_simulations=evaluator.constraint_count))
                    mc0, n0, shrunk0 = self._verify(d_f, theta_wc,
                                                    worst_case=wc)
                    records[0].mc = mc0
                    records[0].yield_mc = \
                        mc0.yield_estimate if mc0 else None
                    records[0].failed_samples = \
                        getattr(mc0, "failed_samples", 0) if mc0 else 0
                    records[0].verify_samples = n0
                    records[0].verify_shrunk = shrunk0
                    records[0].simulations = evaluator.simulation_count
                    records[0].constraint_simulations = \
                        evaluator.constraint_count

                baseline = estimator.yield_estimate(d_f)
                if config.use_constraints:
                    region = linearize_constraints(guarded, d_f)
                else:
                    region = UnconstrainedRegion()
                search = coordinate_search(estimator, region, template,
                                           d_f,
                                           trust_radius=config.trust_radius)

                if config.use_constraints:
                    line = feasibility_line_search(guarded, d_f,
                                                   search.d_star)
                    d_new, gamma = line.d_new, line.gamma
                else:
                    d_new, gamma = dict(search.d_star), 1.0

                # Damped acceptance (OptimizerConfig.max_step_halvings):
                # the spec-wise linear models cannot see a sign flip of a
                # *systematic* margin caused by their own extrapolation
                # error; halving the step restores the trust-region
                # contract.
                theta_wc_new = self._theta_wc(d_new)
                if config.use_constraints and config.max_step_halvings > 0:
                    margins_old = self._margins(d_f, theta_wc)
                    for _ in range(config.max_step_halvings):
                        margins_new = self._margins(d_new, theta_wc_new)
                        regressed = any(
                            margins_old[key] > 0.0 > margins_new[key]
                            for key in margins_old)
                        if not regressed:
                            break
                        gamma *= 0.5
                        d_new = {name: d_f[name] +
                                 gamma * (search.d_star[name] - d_f[name])
                                 for name in template.design_names}
                        theta_wc_new = self._theta_wc(d_new)
                mc, n_verify, shrunk = self._verify(d_new, theta_wc_new,
                                                    worst_case=wc)
                record = IterationRecord(
                    index=iteration, d=dict(d_new),
                    margins=self._margins(d_new, theta_wc_new),
                    bad_samples=estimator.bad_samples_per_spec(d_new),
                    yield_linear=estimator.yield_estimate(d_new),
                    yield_mc=mc.yield_estimate if mc else None,
                    mc=mc, worst_case=dict(wc),
                    simulations=evaluator.simulation_count,
                    constraint_simulations=evaluator.constraint_count,
                    gamma=gamma,
                    failed_samples=getattr(mc, "failed_samples", 0)
                    if mc else 0,
                    verify_samples=n_verify, verify_shrunk=shrunk)
                records.append(record)

                improvement = record.yield_linear - baseline
                d_f = dict(d_new)
                previous_wc = wc
                if improvement < config.min_improvement:
                    converged = True
                    stop_reason = STOP_CONVERGED
                self._write_checkpoint(
                    iteration, records, d_f, previous_wc, samples,
                    start_time, wall_offset,
                    stop_reason=STOP_CONVERGED if converged else None)
                if converged:
                    break
        except ReproError as exc:
            if not records:
                # Nothing recoverable happened yet; fail loudly.
                raise
            stop_reason = f"{STOP_ABORTED_PREFIX}{type(exc).__name__}: " \
                          f"{exc}"

        from ..yieldsim import SimulatorHealth
        health = SimulatorHealth.from_reports(
            getattr(record.mc, "report", None) for record in records)
        return OptimizationResult(
            template_name=template.name,
            records=records,
            d_final=dict(d_f),
            converged=converged,
            wall_time_s=wall_offset + (time.time() - start_time),
            total_simulations=evaluator.simulation_count,
            total_constraint_simulations=evaluator.constraint_count,
            total_cache_hits=evaluator.cache_hits,
            total_requests=evaluator.request_count,
            stop_reason=stop_reason,
            total_failed_samples=guarded.failed_evaluations,
            total_retried_evaluations=guarded.retried_evaluations,
            health=health,
            pool_jobs=pool.jobs if pool is not None else 1,
            pool_tasks=pool.tasks_dispatched if pool is not None else 0,
            pool_died=pool is not None and not pool.alive,
            warm_cache=template.warm_cache_stats()
            if hasattr(template, "warm_cache_stats") else None,
            dc_effort=template.dc_effort_stats()
            if hasattr(template, "dc_effort_stats") else None)
