"""Worst-case point search in the statistical space (Eq. 8).

The worst-case point of spec ``i`` is the statistical parameter vector of
highest probability density on the specification boundary:

    s_wc = argmin { s^T s  |  f(d, s, theta_wc) = f_b }            (Eq. 8)

in *normalized* coordinates (Sec. 4 transform already applied, so the
probability contours are spheres and the Euclidean norm is the right
metric).  The signed **worst-case distance** ``beta_wc = +-||s_wc||`` is
positive when the nominal circuit satisfies the spec and negative when it
does not [Antreich/Graeb/Wieser 1994, ref. 10].

Algorithm: iterated linearization, the classic worst-case-distance solver —
linearize ``f`` at the current point (dim(s)+1 simulations), solve the
minimum-norm-on-hyperplane problem in closed form, re-simulate, repeat.
Mismatch-type performances (e.g. CMRR) are *quadratic* around the nominal
point with a near-zero gradient, which stalls the iteration when started at
the origin (the difficulty Sec. 5.2 attributes to ref. [12]); a multistart
over random perturbed origins handles this, and a scipy SLSQP run is kept
as a final fallback.
"""

from __future__ import annotations

import math
from concurrent import futures as _futures
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

import numpy as np
from scipy import optimize

#: Exceptions that mark the shared pool dead (vs. a single failed task,
#: which is simply retried serially in the parent).
_POOL_FATAL = (_futures.TimeoutError, BrokenProcessPool)

from ..errors import WorstCaseError
from ..evaluation.evaluator import Evaluator
from ..evaluation.gradient import performance_gradient_s
from ..spec.specification import Spec

#: Search sphere radius: points beyond this many sigmas are statistically
#: irrelevant (Phi(8) ~ 1 - 6e-16), so specs whose boundary lies outside
#: are reported as unreachable with beta clamped here.
BETA_MAX = 8.0

#: Maximum iterated-linearization steps.
MAX_ITERATIONS = 15

#: Step damping: maximum move per iteration in normalized coordinates.
MAX_STEP = 2.5

#: Relative tolerance on the boundary condition |g - g_b|.
BOUNDARY_RTOL = 1e-3

#: Convergence tolerance on the point movement.
POINT_ATOL = 1e-3


@dataclass
class WorstCaseResult:
    """Outcome of one worst-case point search.

    All quantities are in the internal normalized convention (``g >= g_b``
    after :meth:`repro.spec.Spec.normalize`):

    * ``s_wc``      — the worst-case point (normalized coordinates),
    * ``beta_wc``   — signed worst-case distance,
    * ``gradient``  — grad_s_hat g at ``s_wc`` (this *is* the spec-wise
      linearization gradient of Eq. 16; no extra simulations needed),
    * ``g_wc``      — performance value at ``s_wc``,
    * ``g_nominal`` — performance value at ``s_hat = 0``,
    * ``on_boundary`` — False when the boundary is unreachable within
      :data:`BETA_MAX` and the result is a clamped surrogate.
    """

    spec: Spec
    s_wc: np.ndarray
    beta_wc: float
    gradient: np.ndarray
    g_wc: float
    g_nominal: float
    on_boundary: bool
    iterations: int
    method: str

    @property
    def nominal_satisfied(self) -> bool:
        return self.g_nominal >= self.spec.normalized_bound


def _boundary_tolerance(g_bound: float, g_nominal: float) -> float:
    scale = max(abs(g_bound), abs(g_nominal - g_bound), 1.0)
    return BOUNDARY_RTOL * scale


def _closed_form_step(s_a: np.ndarray, g_a: float, grad: np.ndarray,
                      g_bound: float) -> Optional[np.ndarray]:
    """Minimum-norm point on the linearized boundary
    ``g_a + grad . (s - s_a) = g_bound``; None for a vanishing gradient."""
    gg = float(grad @ grad)
    if gg < 1e-20:
        return None
    return grad * ((g_bound - g_a + float(grad @ s_a)) / gg)


def _iterate(evaluator: Evaluator, spec: Spec, d: Mapping[str, float],
             theta: Mapping[str, float], s_start: np.ndarray,
             g_nominal: float) -> Optional[WorstCaseResult]:
    """One iterated-linearization run from ``s_start``; None on failure."""
    g_bound = spec.normalized_bound
    tol = _boundary_tolerance(g_bound, g_nominal)
    s_a = np.asarray(s_start, dtype=float).copy()
    g_a = spec.normalize(
        evaluator.performance(spec.performance, d, s_a, theta))
    grad = np.zeros_like(s_a)
    for iteration in range(1, MAX_ITERATIONS + 1):
        grad = performance_gradient_s(
            evaluator, spec.performance, d, s_a, theta,
            base_value=spec.denormalize(g_a)) * spec.sign
        s_new = _closed_form_step(s_a, g_a, grad, g_bound)
        if s_new is None:
            return None
        step = s_new - s_a
        step_norm = float(np.linalg.norm(step))
        if step_norm > MAX_STEP:
            s_new = s_a + step * (MAX_STEP / step_norm)
        norm = float(np.linalg.norm(s_new))
        if norm > BETA_MAX:
            s_new = s_new * (BETA_MAX / norm)
        g_new = spec.normalize(
            evaluator.performance(spec.performance, d, s_new, theta))
        moved = float(np.linalg.norm(s_new - s_a))
        s_a, g_a = s_new, g_new
        if abs(g_a - g_bound) <= tol and moved <= POINT_ATOL * \
                max(1.0, float(np.linalg.norm(s_a))):
            sign = 1.0 if g_nominal >= g_bound else -1.0
            return WorstCaseResult(
                spec=spec, s_wc=s_a, beta_wc=sign * float(np.linalg.norm(s_a)),
                gradient=grad, g_wc=g_a, g_nominal=g_nominal,
                on_boundary=True, iterations=iteration,
                method="iterated-linearization")
    return None


def _slsqp_fallback(evaluator: Evaluator, spec: Spec,
                    d: Mapping[str, float], theta: Mapping[str, float],
                    s_start: np.ndarray, g_nominal: float
                    ) -> Optional[WorstCaseResult]:
    """scipy SLSQP on Eq. 8 directly (each constraint probe = 1 simulation)."""
    g_bound = spec.normalized_bound
    dim = len(s_start)

    def objective(s):
        return float(s @ s)

    def objective_grad(s):
        return 2.0 * s

    def boundary(s):
        return spec.normalize(
            evaluator.performance(spec.performance, d, s, theta)) - g_bound

    start = np.asarray(s_start, dtype=float)
    if float(np.linalg.norm(start)) < 1e-9:
        start = np.full(dim, 0.3)
    result = optimize.minimize(
        objective, start, jac=objective_grad, method="SLSQP",
        bounds=[(-BETA_MAX, BETA_MAX)] * dim,
        constraints=[{"type": "eq", "fun": boundary}],
        options={"maxiter": 25, "ftol": 1e-8})
    if not result.success:
        return None
    s_wc = np.asarray(result.x, dtype=float)
    if float(np.linalg.norm(s_wc)) > BETA_MAX:
        return None
    g_wc = spec.normalize(
        evaluator.performance(spec.performance, d, s_wc, theta))
    tol = _boundary_tolerance(g_bound, g_nominal)
    if abs(g_wc - g_bound) > 10 * tol:
        return None
    gradient = performance_gradient_s(
        evaluator, spec.performance, d, s_wc, theta,
        base_value=spec.denormalize(g_wc)) * spec.sign
    sign = 1.0 if g_nominal >= g_bound else -1.0
    return WorstCaseResult(
        spec=spec, s_wc=s_wc, beta_wc=sign * float(np.linalg.norm(s_wc)),
        gradient=gradient, g_wc=g_wc, g_nominal=g_nominal,
        on_boundary=True, iterations=int(result.nit), method="slsqp")


def _unreachable(evaluator: Evaluator, spec: Spec, d: Mapping[str, float],
                 theta: Mapping[str, float], g_nominal: float
                 ) -> WorstCaseResult:
    """Surrogate result when the spec boundary lies outside the BETA_MAX
    sphere: the spec contributes (almost) no yield loss if satisfied, or is
    hopeless if violated.  The gradient at the nominal point still provides
    a usable linearization direction."""
    s0 = np.zeros(evaluator.template.statistical_space.dim)
    gradient = performance_gradient_s(
        evaluator, spec.performance, d, s0, theta,
        base_value=spec.denormalize(g_nominal)) * spec.sign
    sign = 1.0 if g_nominal >= spec.normalized_bound else -1.0
    norm = float(np.linalg.norm(gradient))
    direction = gradient / norm if norm > 1e-20 else np.zeros_like(gradient)
    return WorstCaseResult(
        spec=spec, s_wc=-sign * BETA_MAX * direction,
        beta_wc=sign * BETA_MAX, gradient=gradient, g_wc=g_nominal,
        g_nominal=g_nominal, on_boundary=False, iterations=0,
        method="unreachable")


def find_worst_case_point(
    evaluator: Evaluator,
    spec: Spec,
    d: Mapping[str, float],
    theta: Mapping[str, float],
    s_start: Optional[np.ndarray] = None,
    multistart: int = 2,
    seed: int = 0,
) -> WorstCaseResult:
    """Solve Eq. 8 for one spec at the design point ``d`` and operating
    point ``theta``.

    ``s_start`` seeds the first run (e.g. the previous iteration's
    worst-case point, which the paper notes changes with ``d``).
    ``multistart`` additional randomized starts cover quadratic
    (mismatch-type) performances; among converged runs the one with the
    smallest ``||s_wc||`` wins, as required by the argmin of Eq. 8.
    """
    dim = evaluator.template.statistical_space.dim
    g_nominal = spec.normalize(
        evaluator.performance(spec.performance, d,
                              np.zeros(dim), theta))
    # Cheap unreachability precheck: with the nominal-point gradient, the
    # boundary sits at roughly (g_b - g0)/||grad|| sigmas.  Specs whose
    # first-order boundary lies far outside the BETA_MAX sphere (very
    # robust, or hopeless) are not worth a full search — this is where the
    # bulk of wasted simulations would otherwise go.  The gradient probes
    # are cached, so a subsequent full search reuses them.
    grad0 = performance_gradient_s(
        evaluator, spec.performance, d, np.zeros(dim), theta,
        base_value=spec.denormalize(g_nominal)) * spec.sign
    norm0 = float(np.linalg.norm(grad0))
    beta_estimate = abs(g_nominal - spec.normalized_bound) / norm0 \
        if norm0 > 1e-20 else float("inf")
    probe_start: Optional[np.ndarray] = None
    if beta_estimate > 1.5 * BETA_MAX:
        # First-order unreachable — but a tent-shaped (quadratic) spec has
        # a near-zero gradient at the origin and may still have a nearby
        # boundary (Fig. 1 / Sec. 5.2).  Confirm with far probes along the
        # coordinate axes (a mismatch tent responds to every axis of its
        # parameter pair, so axis probes see it even in high dimension,
        # where random directions would not).  A probe that crosses or
        # substantially approaches the bound re-opens the search and
        # seeds it.
        margin0 = g_nominal - spec.normalized_bound
        radius = 0.6 * BETA_MAX
        for axis in range(dim):
            s_probe = np.zeros(dim)
            s_probe[axis] = radius if axis % 2 == 0 else -radius
            g_probe = spec.normalize(
                evaluator.performance(spec.performance, d, s_probe, theta))
            margin_probe = g_probe - spec.normalized_bound
            if margin_probe * margin0 < 0 or \
                    abs(margin_probe) < 0.5 * abs(margin0):
                probe_start = s_probe
                beta_estimate = BETA_MAX  # reachable after all
                break
        if probe_start is None:
            return _unreachable(evaluator, spec, d, theta, g_nominal)
    starts = []
    if s_start is not None and float(np.linalg.norm(s_start)) > 1e-12:
        starts.append(np.asarray(s_start, dtype=float))
    if probe_start is not None:
        starts.append(probe_start)
    starts.append(np.zeros(dim))
    rng = np.random.default_rng(seed)
    for _ in range(multistart):
        starts.append(rng.standard_normal(dim) * 0.5)

    best: Optional[WorstCaseResult] = None
    for start in starts:
        result = _iterate(evaluator, spec, d, theta, start, g_nominal)
        if result is None:
            continue
        if best is None or abs(result.beta_wc) < abs(best.beta_wc):
            best = result
        # A converged boundary point well inside the search sphere is the
        # answer; further restarts would only re-derive it (each costs
        # O(dim) simulations).  Restarts are kept only while nothing has
        # converged or the point sits suspiciously at the clamp radius.
        if best.on_boundary and abs(best.beta_wc) < 0.95 * BETA_MAX:
            break
    if best is None and beta_estimate <= BETA_MAX:
        best = _slsqp_fallback(evaluator, spec, d, theta,
                               starts[0], g_nominal)
    if best is None:
        best = _unreachable(evaluator, spec, d, theta, g_nominal)
    return best


def find_all_worst_case_points(
    evaluator: Evaluator,
    d: Mapping[str, float],
    theta_per_spec: Mapping[str, Mapping[str, float]],
    previous: Optional[Mapping[str, WorstCaseResult]] = None,
    multistart: int = 2,
    seed: int = 0,
    pool=None,
) -> Dict[str, WorstCaseResult]:
    """Worst-case points for every template spec, keyed by
    :func:`repro.spec.spec_key`.  Warm-starts from ``previous`` results.

    With a live :class:`~repro.yieldsim.executor.PoolHandle`, the per-spec
    searches run concurrently (one pool task each — the Eq.-8 searches of
    different specs are independent).  Results and Table-7 accounting are
    identical to the serial loop: each search is a pure function of its
    inputs, and worker effort is folded back in spec order.
    """
    from ..spec.operating import spec_key
    specs = list(evaluator.template.specs)
    warm_starts = {
        spec_key(spec): (previous[spec_key(spec)].s_wc
                         if previous and spec_key(spec) in previous else None)
        for spec in specs}

    results: Dict[str, WorstCaseResult] = {}
    remaining = list(specs)
    if pool is not None and pool.alive and pool.compatible(evaluator) \
            and len(specs) > 1:
        from ..yieldsim.executor import fold_task, unwrap_pool_stack
        maybe = unwrap_pool_stack(evaluator)
        _, policy, fail_mode = maybe
        from ..yieldsim.executor import _pool_worst_case
        pending = []
        for spec in specs:
            key = spec_key(spec)
            pending.append((spec, pool.submit(
                _pool_worst_case, spec, dict(d),
                dict(theta_per_spec[key]), warm_starts[key],
                multistart, seed, policy, fail_mode)))
        from ..yieldsim.executor import BatchExecutor
        remaining = []
        for spec, future in pending:
            key = spec_key(spec)
            if not pool.alive:
                # Pool died mid-batch: still harvest searches that
                # finished before the collapse (results are identical).
                harvest = BatchExecutor._harvest_finished(future)
                if harvest is not None:
                    result, counts = harvest
                    fold_task(evaluator, counts)
                    results[key] = result
                else:
                    remaining.append(spec)
                continue
            try:
                result, counts = future.result(timeout=pool.task_timeout_s)
                fold_task(evaluator, counts)
                results[key] = result
            except _POOL_FATAL:
                pool.kill()
                remaining.append(spec)
            except Exception:
                remaining.append(spec)
    for spec in remaining:
        key = spec_key(spec)
        results[key] = find_worst_case_point(
            evaluator, spec, d, theta_per_spec[key],
            s_start=warm_starts[key], multistart=multistart, seed=seed)
    # Re-key in template spec order so downstream iteration order never
    # depends on which path produced each entry.
    return {spec_key(spec): results[spec_key(spec)] for spec in specs}
