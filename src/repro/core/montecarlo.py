"""Simulation-based operational Monte-Carlo yield (Sec. 2, Eq. 6-7).

.. deprecated-shim::
   The estimation logic now lives in :mod:`repro.yieldsim`
   (:class:`~repro.yieldsim.OperationalMC` behind the pluggable
   :class:`~repro.yieldsim.YieldEstimator` interface, with importance
   sampling and QMC siblings plus parallel batch execution).  This module
   remains as a thin compatibility shim: :func:`operational_monte_carlo`
   keeps its historical signature and produces numerically identical
   estimates (same seeded draws, same pass/fail logic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..evaluation.evaluator import Evaluator
from ..statistics.intervals import wilson_interval
from ..statistics.sampling import SampleSet


@dataclass
class MonteCarloResult:
    """Operational Monte-Carlo outcome (legacy record)."""

    yield_estimate: float
    n_samples: int
    #: per spec key, fraction of samples violating that spec
    bad_fraction: Dict[str, float]
    #: simulations actually run (after worst-case-corner grouping)
    simulations: int
    #: per spec key, sample mean of the performance at its worst-case
    #: operating point (presentation units)
    performance_mean: Dict[str, float] = field(default_factory=dict)
    #: per spec key, sample standard deviation of the performance
    performance_std: Dict[str, float] = field(default_factory=dict)

    @property
    def standard_error(self) -> float:
        """Binomial standard error of the yield estimate.

        Collapses to 0 at estimates of exactly 0 or 1; prefer
        :meth:`confidence_interval`, which stays honest there.
        """
        y = self.yield_estimate
        return float(np.sqrt(max(y * (1.0 - y), 0.0) / self.n_samples))

    def confidence_interval(self, level: float = 0.95
                            ) -> Tuple[float, float]:
        """Wilson score interval for the yield estimate.

        Unlike :attr:`standard_error`, the interval has nonzero width at
        0 %/100 % estimates: a 0-of-300 run still admits a ~1.3 % yield
        at the 95 % level, which is what small-N reports should say.
        """
        successes = self.yield_estimate * self.n_samples
        return wilson_interval(successes, self.n_samples, level)


def operational_monte_carlo(
    evaluator: Evaluator,
    d: Mapping[str, float],
    theta_per_spec: Mapping[str, Mapping[str, float]],
    n_samples: int = 300,
    seed: Optional[int] = 2001,
    samples: Optional[SampleSet] = None,
) -> MonteCarloResult:
    """Estimate ``Y_tilde`` (Eq. 6-7) with real simulations.

    ``theta_per_spec`` maps spec keys to their worst-case operating
    points (from
    :func:`repro.spec.find_worst_case_operating_points`).  Pass an explicit
    ``samples`` set to reuse draws across designs (paired comparison).

    Compatibility shim over :class:`repro.yieldsim.OperationalMC`; new
    code should use the estimator interface directly (it adds confidence
    intervals, telemetry, and parallel execution).
    """
    from ..yieldsim import OperationalMC
    result = OperationalMC().estimate(
        evaluator, d, theta_per_spec, n_samples=n_samples, seed=seed,
        samples=samples)
    return MonteCarloResult(
        yield_estimate=result.estimate,
        n_samples=result.n_samples,
        bad_fraction=dict(result.bad_fraction),
        simulations=result.simulations,
        performance_mean=dict(result.performance_mean),
        performance_std=dict(result.performance_std),
    )
