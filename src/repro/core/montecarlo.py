"""Simulation-based operational Monte-Carlo yield (Sec. 2, Eq. 6-7).

The reference yield estimate ``Y_tilde``: draw N statistical samples, and
for each sample check every spec *at that spec's worst-case operating
point*.  Specs sharing a worst-case corner share one simulation, which is
the paper's remark that the true effort ``N*`` is usually well below
``N * min(n_spec, 2^dim(Theta))``.

This is the verifier the paper runs with N = 300 between optimizer
iterations and at the end — it never drives the optimization itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..evaluation.evaluator import Evaluator
from ..spec.operating import group_by_theta, spec_key
from ..statistics.sampling import SampleSet


@dataclass
class MonteCarloResult:
    """Operational Monte-Carlo outcome."""

    yield_estimate: float
    n_samples: int
    #: per spec key, fraction of samples violating that spec
    bad_fraction: Dict[str, float]
    #: simulations actually run (after worst-case-corner grouping)
    simulations: int
    #: per spec key, sample mean of the performance at its worst-case
    #: operating point (presentation units)
    performance_mean: Dict[str, float] = field(default_factory=dict)
    #: per spec key, sample standard deviation of the performance
    performance_std: Dict[str, float] = field(default_factory=dict)

    @property
    def standard_error(self) -> float:
        """Binomial standard error of the yield estimate."""
        y = self.yield_estimate
        return float(np.sqrt(max(y * (1.0 - y), 0.0) / self.n_samples))


def operational_monte_carlo(
    evaluator: Evaluator,
    d: Mapping[str, float],
    theta_per_spec: Mapping[str, Mapping[str, float]],
    n_samples: int = 300,
    seed: Optional[int] = 2001,
    samples: Optional[SampleSet] = None,
) -> MonteCarloResult:
    """Estimate ``Y_tilde`` (Eq. 6-7) with real simulations.

    ``theta_per_spec`` maps spec keys to their worst-case operating
    points (from
    :func:`repro.spec.find_worst_case_operating_points`).  Pass an explicit
    ``samples`` set to reuse draws across designs (paired comparison).
    """
    template = evaluator.template
    space = template.statistical_space
    if samples is None:
        samples = SampleSet.draw(n_samples, space.dim, seed=seed)
    operating_range = template.operating_range
    groups = group_by_theta(theta_per_spec, operating_range)
    # Representative theta per group.
    thetas: List[Tuple[Mapping[str, float], List[str]]] = []
    for corner, keys in groups.items():
        theta = dict(theta_per_spec[keys[0]])
        thetas.append((theta, keys))

    specs = {spec_key(spec): spec for spec in template.specs}
    bad_counts: Dict[str, int] = {key: 0 for key in specs}
    values_per_spec: Dict[str, List[float]] = {key: [] for key in specs}
    pass_count = 0
    simulations = 0
    for j in range(samples.n):
        s_hat = samples[j]
        sample_ok = True
        for theta, keys in thetas:
            values = evaluator.evaluate(d, s_hat, theta)
            simulations += 1
            for key in keys:
                spec = specs[key]
                value = values[spec.performance]
                values_per_spec[key].append(value)
                if not spec.passes(value):
                    bad_counts[key] += 1
                    sample_ok = False
        if sample_ok:
            pass_count += 1
    means = {key: float(np.mean(vals))
             for key, vals in values_per_spec.items()}
    stds = {key: float(np.std(vals, ddof=1)) if len(vals) > 1 else 0.0
            for key, vals in values_per_spec.items()}
    return MonteCarloResult(
        yield_estimate=pass_count / samples.n,
        n_samples=samples.n,
        bad_fraction={key: count / samples.n
                      for key, count in bad_counts.items()},
        simulations=simulations,
        performance_mean=means,
        performance_std=stds,
    )
