"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError`, so user
code can catch a single base class.  Subsystems raise the more specific
subclasses below; each carries a human-readable message that names the
offending entity (device, node, parameter, spec, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class NetlistError(ReproError):
    """Raised for malformed circuits: duplicate device names, unknown nodes,
    devices with the wrong number of terminals, and similar structural
    problems detected before any analysis is run."""


class ParseError(NetlistError):
    """Raised by the SPICE-style netlist parser for unreadable input.

    Carries the 1-based source line number in :attr:`line_number` when it is
    known.
    """

    def __init__(self, message: str, line_number: int | None = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class AnalysisError(ReproError):
    """Base class for analysis failures (DC, AC, transient)."""


class ConvergenceError(AnalysisError):
    """Raised when the DC Newton solver (including its gmin-stepping and
    source-stepping homotopies) fails to converge."""


class SingularMatrixError(AnalysisError):
    """Raised when the MNA matrix is structurally or numerically singular,
    typically caused by floating nodes or voltage-source loops."""


class ExtractionError(ReproError):
    """Raised when a performance cannot be extracted from analysis results,
    e.g. the gain curve never crosses unity so there is no transit
    frequency."""


class SpecificationError(ReproError):
    """Raised for ill-formed performance specifications."""


class FeasibilityError(ReproError):
    """Raised when no feasible design point can be found (Sec. 5.5 of the
    paper) or when a constraint function cannot be evaluated."""


class WorstCaseError(ReproError):
    """Raised when the worst-case point search (Eq. 8) cannot locate a point
    on the specification boundary."""


class OptimizationError(ReproError):
    """Raised for unrecoverable failures inside the yield optimization loop
    (Fig. 6 of the paper)."""


class ArtifactError(ReproError):
    """Raised for malformed, incompatible, or unvalidatable stored result
    artifacts (the versioned JSON files written by ``yield --out``,
    ``merge-verify`` and the ``repro.serve`` result store)."""


class ServeError(ReproError):
    """Raised by the ``repro.serve`` job server and client for invalid
    job specifications, unknown job ids, and protocol-level failures."""
