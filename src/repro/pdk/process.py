"""Process-kit container types.

A :class:`Process` bundles everything the statistical machinery needs to
know about a fabrication technology:

* nominal NMOS/PMOS level-1 model cards,
* supply/temperature nominals,
* **global** variation: per-parameter standard deviations and a correlation
  matrix (all global parameters act identically on every device of the
  affected polarity),
* **local** (mismatch) variation: Pelgrom coefficients, from which the
  per-device standard deviations follow as ``sigma = A / sqrt(2 W L m)`` so
  that the *difference* of a device pair has the textbook Pelgrom value
  ``A / sqrt(W L)`` [Pelgrom 1989, ref. 1 of the paper].

The paper used an unnamed industrial process; :mod:`repro.pdk.generic035`
provides a synthetic 0.35 um CMOS process of realistic magnitude (see
DESIGN.md, substitutions table).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from ..circuit.mos import MosModel
from ..errors import ReproError


@dataclass(frozen=True)
class GlobalVariation:
    """One global statistical parameter of the process.

    ``target`` names what the parameter perturbs:

    * ``"vth_nmos"`` / ``"vth_pmos"`` — additive threshold-magnitude shift
      [V] on every device of that polarity,
    * ``"beta_nmos"`` / ``"beta_pmos"`` — relative gain-factor variation
      (the physical multiplier applied to ``kp`` is ``1 + value``),
    * ``"res"`` — relative sheet-resistance variation applied to every
      resistor (multiplier ``1 + value``); typically the largest global
      spread in a CMOS process and the dominant source of bias-current
      variation for supply-referred bias generators.

    ``sigma`` is the physical standard deviation of the parameter.
    """

    name: str
    target: str
    sigma: float

    _TARGETS = ("vth_nmos", "vth_pmos", "beta_nmos", "beta_pmos", "res")

    def __post_init__(self):
        if self.target not in self._TARGETS:
            raise ReproError(f"unknown global-variation target "
                             f"{self.target!r}; expected one of "
                             f"{self._TARGETS}")
        if self.sigma <= 0:
            raise ReproError(f"global variation {self.name!r}: sigma must "
                             f"be positive")


@dataclass(frozen=True)
class PelgromCoefficients:
    """Area scaling constants of local (mismatch) variation.

    ``avt`` in V*m (threshold), ``abeta`` in m (relative gain factor), per
    polarity.  The *pair-difference* standard deviation of two identically
    drawn devices of area ``W*L`` is ``avt / sqrt(W*L)``; individual devices
    get ``avt / sqrt(2*W*L)`` each.
    """

    avt_nmos: float = 9.5e-9  # 9.5 mV*um
    avt_pmos: float = 14.0e-9
    abeta_nmos: float = 1.0e-8  # 1 %*um
    abeta_pmos: float = 1.2e-8
    #: Distance coefficient S_VT [V/m]: the second Pelgrom term
    #: sigma^2(dVth_pair) = A_VT^2/(W L) + S_VT^2 D^2, realized as a
    #: random die-level threshold gradient.  The paper neglects it
    #: (Sec. 3, citing ref. [1]); it is available as an opt-in extension
    #: via StatisticalSpace(with_gradient=True).  Typical magnitude for a
    #: 0.35 um process: a few uV/um = a few V/m.
    svt: float = 4.0

    def sigma_vth(self, polarity: int, w: float, l: float, m: int = 1
                  ) -> float:
        """Per-device local threshold sigma [V] for area ``w*l*m``."""
        avt = self.avt_nmos if polarity > 0 else self.avt_pmos
        return avt / math.sqrt(2.0 * w * l * m)

    def sigma_beta(self, polarity: int, w: float, l: float, m: int = 1
                   ) -> float:
        """Per-device relative gain-factor sigma for area ``w*l*m``."""
        abeta = self.abeta_nmos if polarity > 0 else self.abeta_pmos
        return abeta / math.sqrt(2.0 * w * l * m)


@dataclass(frozen=True)
class Process:
    """A fabrication process: nominal models plus statistical description."""

    name: str
    nmos: MosModel
    pmos: MosModel
    vdd_nominal: float
    temp_nominal: float
    global_variations: Tuple[GlobalVariation, ...]
    global_correlation: np.ndarray
    pelgrom: PelgromCoefficients = field(default_factory=PelgromCoefficients)

    def __post_init__(self):
        n = len(self.global_variations)
        corr = np.asarray(self.global_correlation, dtype=float)
        if corr.shape != (n, n):
            raise ReproError(
                f"process {self.name!r}: correlation matrix shape "
                f"{corr.shape} does not match {n} global variations")
        if not np.allclose(corr, corr.T):
            raise ReproError(
                f"process {self.name!r}: correlation matrix not symmetric")
        if not np.allclose(np.diag(corr), 1.0):
            raise ReproError(
                f"process {self.name!r}: correlation diagonal must be 1")
        eigenvalues = np.linalg.eigvalsh(corr)
        if np.min(eigenvalues) < -1e-12:
            raise ReproError(
                f"process {self.name!r}: correlation matrix not positive "
                f"semidefinite (min eigenvalue {np.min(eigenvalues):.3g})")
        object.__setattr__(self, "global_correlation", corr)

    @property
    def global_names(self) -> Tuple[str, ...]:
        return tuple(gv.name for gv in self.global_variations)

    def global_covariance(self) -> np.ndarray:
        """Physical covariance matrix of the global parameters."""
        sigmas = np.array([gv.sigma for gv in self.global_variations])
        return self.global_correlation * np.outer(sigmas, sigmas)

    def model(self, polarity: int) -> MosModel:
        """Nominal model card for the given polarity (+1 NMOS, -1 PMOS)."""
        return self.nmos if polarity > 0 else self.pmos
