"""Synthetic 0.35 um CMOS process ("generic035").

This stands in for the industrial fabrication process of the paper's
Section 6 (see DESIGN.md).  All values are of textbook magnitude for a
0.35 um, 3.3 V CMOS generation:

* NMOS: VTO = 0.50 V, KP = 170 uA/V^2; PMOS: VTO = -0.65 V, KP = 58 uA/V^2,
* channel-length modulation 0.06 / 0.14 per volt at L = 1 um,
* global threshold sigma ~ 25-30 mV, gain-factor sigma ~ 4 %, with the
  NMOS/PMOS gain factors positively correlated (common oxide thickness),
* Pelgrom A_VT ~ 9.5 / 14 mV*um (ref. [1] of the paper reports 10-20 mV*um
  for this era of processes).
"""

from __future__ import annotations

import numpy as np

from ..circuit.mos import MosModel
from .process import GlobalVariation, PelgromCoefficients, Process

NMOS = MosModel(
    name="generic035_nmos",
    polarity=1,
    vto=0.50,
    kp=170e-6,
    lambda_=0.06,
    gamma=0.58,
    phi=0.7,
    tox=7.6e-9,
    cgso=1.2e-10,
    cgdo=1.2e-10,
    cj=9.0e-4,
    tcv=1.5e-3,
    bex=-1.5,
)

PMOS = MosModel(
    name="generic035_pmos",
    polarity=-1,
    vto=-0.65,
    kp=58e-6,
    lambda_=0.14,
    gamma=0.40,
    phi=0.7,
    tox=7.6e-9,
    cgso=1.0e-10,
    cgdo=1.0e-10,
    cj=11.0e-4,
    tcv=1.2e-3,
    bex=-1.2,
)

_GLOBALS = (
    GlobalVariation("gvtn", "vth_nmos", sigma=0.025),
    GlobalVariation("gvtp", "vth_pmos", sigma=0.030),
    GlobalVariation("gbetan", "beta_nmos", sigma=0.04),
    GlobalVariation("gbetap", "beta_pmos", sigma=0.04),
    GlobalVariation("gres", "res", sigma=0.08),
)

# NMOS/PMOS gain factors share the oxide, so they are positively
# correlated; thresholds are treated as independent implants and the
# poly sheet resistance as an independent back-end parameter.
_CORRELATION = np.array([
    [1.0, 0.0, 0.0, 0.0, 0.0],
    [0.0, 1.0, 0.0, 0.0, 0.0],
    [0.0, 0.0, 1.0, 0.6, 0.0],
    [0.0, 0.0, 0.6, 1.0, 0.0],
    [0.0, 0.0, 0.0, 0.0, 1.0],
])

GENERIC035 = Process(
    name="generic035",
    nmos=NMOS,
    pmos=PMOS,
    vdd_nominal=3.3,
    temp_nominal=27.0,
    global_variations=_GLOBALS,
    global_correlation=_CORRELATION,
    pelgrom=PelgromCoefficients(
        avt_nmos=9.5e-9,
        avt_pmos=14.0e-9,
        abeta_nmos=1.0e-8,
        abeta_pmos=1.2e-8,
    ),
)
