"""Process design kits (PDKs) for the reproduction.

:class:`~repro.pdk.process.Process` describes a technology (nominal model
cards + global/local statistics); :data:`~repro.pdk.generic035.GENERIC035`
is the synthetic 0.35 um process used by the benchmark circuits in place of
the paper's industrial process.
"""

from .generic035 import GENERIC035, NMOS, PMOS
from .process import GlobalVariation, PelgromCoefficients, Process

__all__ = ["GENERIC035", "NMOS", "PMOS", "GlobalVariation",
           "PelgromCoefficients", "Process"]
