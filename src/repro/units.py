"""Engineering-unit helpers shared across the package.

The circuit world mixes linear quantities (volts, amperes) with logarithmic
ones (dB) and SI-suffixed magnitudes (``10u``, ``2.2k``, ``1meg``).  This
module centralizes those conversions so every subsystem formats and parses
them identically.
"""

from __future__ import annotations

import math

from .errors import ReproError

#: Celsius offset used by the device temperature models.
KELVIN_OFFSET = 273.15

#: SPICE magnitude suffixes, longest first so ``meg`` wins over ``m``.
_SI_SUFFIXES = [
    ("meg", 1e6),
    ("mil", 25.4e-6),
    ("t", 1e12),
    ("g", 1e9),
    ("k", 1e3),
    ("m", 1e-3),
    ("u", 1e-6),
    ("n", 1e-9),
    ("p", 1e-12),
    ("f", 1e-15),
    ("a", 1e-18),
]


def db(magnitude: float) -> float:
    """Convert a linear voltage ratio to decibels (20*log10).

    Raises :class:`ReproError` for non-positive magnitudes, which indicate an
    upstream extraction bug rather than a legitimate gain.
    """
    if magnitude <= 0.0:
        raise ReproError(f"cannot express non-positive magnitude {magnitude!r} in dB")
    return 20.0 * math.log10(magnitude)


def from_db(value_db: float) -> float:
    """Convert decibels back to a linear voltage ratio."""
    return 10.0 ** (value_db / 20.0)


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a Celsius temperature to Kelvin."""
    return temp_c + KELVIN_OFFSET


def parse_value(text: str) -> float:
    """Parse a SPICE-style magnitude such as ``"4.7k"``, ``"10u"`` or ``"1meg"``.

    Trailing unit letters after the suffix are tolerated (``"10uF"``), as in
    SPICE.  Plain Python floats (``"1e-6"``) parse unchanged.
    """
    token = text.strip().lower()
    if not token:
        raise ReproError("empty value string")
    # Fast path: plain number.
    try:
        return float(token)
    except ValueError:
        pass
    # Find the longest numeric prefix.
    split = len(token)
    while split > 0:
        try:
            number = float(token[:split])
            break
        except ValueError:
            split -= 1
    else:
        raise ReproError(f"cannot parse value {text!r}")
    rest = token[split:]
    for suffix, scale in _SI_SUFFIXES:
        if rest.startswith(suffix):
            return number * scale
    # No recognized suffix: unit letters only (e.g. "3v") are allowed.
    if rest.isalpha():
        return number
    raise ReproError(f"cannot parse value {text!r}")


def format_si(value: float, unit: str = "", digits: int = 4) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_si(4.7e3, "Ohm")``
    returns ``"4.7 kOhm"``.  Zero and non-finite values format plainly."""
    if value == 0.0 or not math.isfinite(value):
        return f"{value:g} {unit}".rstrip()
    prefixes = [
        (1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k"), (1.0, ""),
        (1e-3, "m"), (1e-6, "u"), (1e-9, "n"), (1e-12, "p"), (1e-15, "f"),
    ]
    magnitude = abs(value)
    for scale, prefix in prefixes:
        if magnitude >= scale:
            return f"{value / scale:.{digits}g} {prefix}{unit}".rstrip()
    scale, prefix = prefixes[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}".rstrip()
