"""ASCII renderings of the paper's result tables.

These formatters turn :class:`~repro.core.optimizer.OptimizationResult`
traces and mismatch rankings into the exact row structure of the paper's
Tables 1-7, so the benchmark harness can print "paper vs. measured"
side by side.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.mismatch import PairMismatch
from ..core.optimizer import IterationRecord, OptimizationResult
from ..evaluation.template import CircuitTemplate
from ..spec.operating import spec_key


def _format_row(label: str, cells: Sequence[str], widths: Sequence[int]
                ) -> str:
    parts = [f"{label:<18}"]
    parts.extend(f"{cell:>{width}}" for cell, width in zip(cells, widths))
    return " | ".join(parts)


def _iteration_label(index: int) -> str:
    if index == 0:
        return "Initial"
    suffix = {1: "st", 2: "nd", 3: "rd"}.get(index if index < 20
                                             else index % 10, "th")
    return f"{index}{suffix} Iter."


def _confidence_interval(mc) -> Optional[Tuple[float, float]]:
    """Extract a 95 % CI from either result flavor: a yieldsim
    ``YieldResult`` carries explicit bounds, the legacy
    ``MonteCarloResult`` computes a Wilson interval on demand."""
    if mc is None:
        return None
    low = getattr(mc, "ci_low", None)
    if low is not None:
        return (low, mc.ci_high)
    interval = getattr(mc, "confidence_interval", None)
    if callable(interval):
        return interval()
    return None


def optimization_trace_table(template: CircuitTemplate,
                             result: OptimizationResult,
                             records: Optional[Sequence[IterationRecord]]
                             = None) -> str:
    """Render an optimization trace in the layout of Tables 1/3/4/6.

    Per iteration block: the ``f - f_b`` margins (presentation units), the
    per-mille bad-sample counts in the linearized models, and the
    simulation-based yield ``Y_tilde``.
    """
    if records is None:
        records = result.records
    specs = template.specs
    keys = [spec_key(spec) for spec in specs]
    header_cells = [f"{spec.performance}" for spec in specs]
    bound_cells = [f"{spec.kind}{spec.bound:g}" for spec in specs]
    widths = [max(len(h), len(b), 9) for h, b in zip(header_cells,
                                                     bound_cells)]
    lines: List[str] = []
    lines.append(_format_row("Performance", header_cells, widths))
    lines.append(_format_row("Specification", bound_cells, widths))
    lines.append("-" * len(lines[0]))
    for record in records:
        label = _iteration_label(record.index)
        margin_cells = [f"{record.margins[key]:.2f}" for key in keys]
        bad_cells = [f"{record.bad_samples.get(key, 0.0) * 1000:.1f}"
                     for key in keys]
        lines.append(_format_row(f"{label} f-fb", margin_cells, widths))
        lines.append(_format_row("  bad samples [permille]", bad_cells,
                                 widths))
        if record.yield_mc is not None:
            text = f"  Y_tilde = {record.yield_mc * 100:.1f}%"
            ci = _confidence_interval(record.mc)
            if ci is not None:
                text += (f" (95% CI {ci[0] * 100:.1f}"
                         f"-{ci[1] * 100:.1f}%)")
            lines.append(text)
            if getattr(record, "verify_shrunk", False):
                n = getattr(record, "verify_samples", None)
                lines.append(f"  verification shrunk to N = {n} "
                             f"(remaining simulation budget)")
            failed = getattr(record, "failed_samples", 0)
            if failed:
                n = getattr(record.mc, "n_samples", None)
                total = f"/{n}" if n else ""
                lines.append(f"  failed samples = {failed}{total} "
                             f"(counted as spec-violating)")
        elif getattr(record, "verify_shrunk", False):
            lines.append("  Y_tilde skipped (simulation budget spent)")
        lines.append("")
    return "\n".join(lines)


def improvement_table(template: CircuitTemplate,
                      before: IterationRecord,
                      after: IterationRecord) -> str:
    """Render the Table 2 layout: relative mean-margin improvement and
    relative sigma change per performance between two iterations.

    ``delta_mu / (mu - f_b)`` > 0 means the mean moved away from the spec
    bound; ``delta_sigma / sigma`` < 0 means the spread shrank.  Requires
    both records to carry verification Monte-Carlo statistics.
    """
    if before.mc is None or after.mc is None:
        raise ValueError("improvement table needs verified records")
    lines = [f"{'Performance':<14} | {'dMu/(Mu-fb)':>12} | "
             f"{'dSigma/Sigma':>12}"]
    lines.append("-" * len(lines[0]))
    for spec in template.specs:
        key = spec_key(spec)
        mu0 = before.mc.performance_mean[key]
        mu1 = after.mc.performance_mean[key]
        s0 = before.mc.performance_std[key]
        s1 = after.mc.performance_std[key]
        margin0 = spec.sign * (mu0 - spec.bound)
        dmu = spec.sign * (mu1 - mu0)
        rel_mu = dmu / abs(margin0) if margin0 != 0 else float("inf")
        rel_sigma = (s1 - s0) / s0 if s0 > 0 else 0.0
        lines.append(f"{spec.performance:<14} | {rel_mu * 100:>+11.1f}% | "
                     f"{rel_sigma * 100:>+11.1f}%")
    return "\n".join(lines)


def mismatch_table(pairs: Sequence[PairMismatch], top: int = 3) -> str:
    """Render the Table 5 layout: the top mismatch pairs and measures."""
    chosen = list(pairs)[:top]
    labels = []
    for i, pair in enumerate(chosen, start=1):
        da, db = pair.devices
        labels.append(f"P{i}=({da},{db})")
    lines = ["Pair     | " + " | ".join(f"{label:>16}"
                                        for label in labels)]
    lines.append("m_kl     | " + " | ".join(f"{pair.measure:>16.2f}"
                                            for pair in chosen))
    return "\n".join(lines)


def effort_table(rows: Sequence[Tuple]) -> str:
    """Render the Table 7 layout: circuit, #simulations, wall-clock time.

    Each row is ``(name, simulations, seconds)`` or, with evaluator cache
    accounting, ``(name, simulations, seconds, cache_hits)``; the cache
    column appears only when at least one row provides it.
    """
    with_cache = any(len(row) > 3 for row in rows)
    header = (f"{'Circuit':<16} | {'# Simulations':>14} | "
              f"{'Wall Clock Time':>16}")
    if with_cache:
        header += f" | {'Cache Hits':>10}"
    lines = [header, "-" * len(header)]
    for row in rows:
        name, simulations, seconds = row[0], row[1], row[2]
        if seconds >= 90:
            time_text = f"{seconds / 60:.1f} min"
        else:
            time_text = f"{seconds:.1f} s"
        line = f"{name:<16} | {simulations:>14} | {time_text:>16}"
        if with_cache:
            hits = f"{row[3]}" if len(row) > 3 else "-"
            line += f" | {hits:>10}"
        lines.append(line)
    return "\n".join(lines)


def health_table(result: OptimizationResult) -> str:
    """Render the failure/recovery telemetry of one optimization run:
    fault-policy activity, executor retries/timeouts, shared-pool usage,
    and warm-start cache effectiveness.  Empty string when the run was
    entirely clean and serial (nothing worth reporting)."""
    health = getattr(result, "health", None)
    pool_tasks = getattr(result, "pool_tasks", 0)
    rows: List[Tuple[str, str]] = []
    if pool_tasks:
        rows.append(("pool workers", str(result.pool_jobs)))
        rows.append(("pool tasks", str(pool_tasks)))
        if result.pool_died:
            rows.append(("pool died", "yes (degraded to serial)"))
    warm = getattr(result, "warm_cache", None)
    if warm and (warm.get("hits", 0) or warm.get("misses", 0)):
        rows.append(("warm-cache hits/misses",
                     f"{warm.get('hits', 0)}/{warm.get('misses', 0)}"))
        if warm.get("chain_seeds", 0) or warm.get("chain_solves", 0):
            rows.append(("warm-chain seeds/solves",
                         f"{warm.get('chain_seeds', 0)}"
                         f"/{warm.get('chain_solves', 0)}"))
        if warm.get("evictions", 0):
            rows.append(("warm-cache evictions",
                         str(warm.get("evictions", 0))))
    dc_effort = getattr(result, "dc_effort", None)
    if dc_effort and any(dc_effort.values()):
        parts = [f"{label}={count}"
                 for label, count in sorted(dc_effort.items()) if count]
        rows.append(("dc solve strategies", " ".join(parts)))
    if result.total_failed_samples:
        rows.append(("failed evaluations",
                     str(result.total_failed_samples)))
    if result.total_retried_evaluations:
        rows.append(("retried evaluations",
                     str(result.total_retried_evaluations)))
    if health is not None and not health.clean:
        if getattr(health, "no_data", False):
            # runs == 0 is *unobserved*, not healthy: say so explicitly
            # instead of printing an empty (clean-looking) section.
            rows.append(("verification telemetry", "none recorded"))
        if health.retried_chunks:
            rows.append(("retried chunks", str(health.retried_chunks)))
        if health.timed_out_chunks:
            rows.append(("timed-out chunks",
                         str(health.timed_out_chunks)))
        if health.degraded_runs:
            rows.append(("degraded verifications",
                         str(health.degraded_runs)))
        if getattr(health, "incompatible_runs", 0):
            rows.append(("pool-incompatible verifications",
                         str(health.incompatible_runs)))
    if not rows:
        return ""
    width = max(len(label) for label, _ in rows)
    lines = ["Simulator health", "-" * 32]
    lines.extend(f"{label:<{width}} : {value}" for label, value in rows)
    return "\n".join(lines)


def _report_flags(report) -> str:
    """One-line status summary of a shard's :class:`RunReport`."""
    flags: List[str] = []
    if getattr(report, "failed_samples", 0):
        flags.append(f"{report.failed_samples} failed samples")
    if getattr(report, "retried_chunks", 0):
        flags.append(f"{report.retried_chunks} retried chunks")
    if getattr(report, "timed_out_chunks", 0):
        flags.append(f"{report.timed_out_chunks} timed out")
    if getattr(report, "degraded_to_serial", False):
        flags.append("degraded to serial")
    if getattr(report, "pool_incompatible", False):
        flags.append("pool incompatible")
    return ", ".join(flags) if flags else "clean"


def merged_provenance_table(result) -> str:
    """Render the provenance of a merged sharded verification: the
    pooled estimate, how many shards contributed, and one telemetry
    line per shard (a :class:`repro.yieldsim.YieldResult` produced by
    :func:`repro.yieldsim.merge_results`)."""
    total = result.shard_total or result.merged_from or 1
    lines = [f"Merged verification ({result.merged_from} of "
             f"{total} shard(s), estimator {result.estimator})"]
    lines.append("-" * len(lines[0]))
    lines.append(
        f"yield = {result.estimate * 100:.2f}%  "
        f"({result.ci_level * 100:.0f}% CI "
        f"{result.ci_low * 100:.2f}-{result.ci_high * 100:.2f}%, "
        f"ESS {result.ess:.1f})")
    lines.append(f"samples = {result.n_samples}, "
                 f"simulations = {result.simulations}, "
                 f"failed = {result.failed_samples}")
    reports = list(getattr(result, "shard_reports", []) or [])
    for index, report in enumerate(reports, start=1):
        lines.append(
            f"  shard {index}/{len(reports)}: "
            f"n = {report.n_samples}, sims = {report.simulations}, "
            f"backend = {report.backend}, {_report_flags(report)}")
    if not reports:
        lines.append("  (no per-shard telemetry recorded)")
    return "\n".join(lines)


def queue_table(stats: Mapping) -> str:
    """Render ``repro serve`` daemon telemetry (the ``/v1/stats``
    payload): job counts by state and tenant, per-job supervision state
    (attempt, recovered, heartbeat age) for everything queued or
    running, aggregate cache hits and simulation spend, and the
    result-store footprint."""
    queue = stats.get("queue", stats)
    by_state = queue.get("by_state", {})
    order = ("queued", "running", "done", "failed", "cancelled")
    lines = [f"Jobs ({queue.get('jobs', 0)} total)", "-" * 32]
    for state in order:
        if by_state.get(state):
            lines.append(f"  {state:<10} : {by_state[state]}")
    for state in sorted(set(by_state) - set(order)):
        lines.append(f"  {state:<10} : {by_state[state]}")
    by_tenant = queue.get("by_tenant", {})
    if by_tenant:
        lines.append("By tenant")
        for tenant in sorted(by_tenant):
            counts = by_tenant[tenant]
            text = ", ".join(f"{state}={counts[state]}"
                             for state in order if counts.get(state))
            lines.append(f"  {tenant:<10} : {text or '-'}")
    active = stats.get("active") or []
    if active:
        lines.append("Active jobs")
        lines.append(f"  {'id':<12} {'kind':<8} {'state':<8} "
                     f"{'att':>3} {'rec':>3} {'beat':>7}")
        for job in active:
            age = job.get("heartbeat_age_s")
            beat = f"{age:6.1f}s" if age is not None else "      -"
            rec = "yes" if job.get("recovered") else "no"
            lines.append(
                f"  {job.get('id', '?'):<12} {job.get('kind', '?'):<8} "
                f"{job.get('state', '?'):<8} "
                f"{job.get('attempt', 1):>3} {rec:>3} {beat}")
    lines.append(f"cache hits   : {queue.get('cache_hits', 0)}")
    lines.append(f"simulations  : {queue.get('simulations', 0)}")
    if queue.get("recovered"):
        lines.append(f"recovered    : {queue['recovered']} "
                     f"(re-enqueued after a daemon restart)")
    if queue.get("retries"):
        lines.append(f"retries      : {queue['retries']} "
                     f"(supervised re-attempts)")
    store = stats.get("store")
    if store:
        lines.append(f"store        : {store.get('objects', 0)} "
                     f"object(s) at {store.get('root', '?')}")
        if store.get("invalid"):
            lines.append(f"store invalid: {store['invalid']} "
                         f"(corrupt entries treated as misses)")
        if store.get("evictions"):
            bound = store.get("max_bytes")
            bound_text = f" (bound: {bound} bytes)" if bound else ""
            lines.append(f"store GC     : {store['evictions']} "
                         f"eviction(s){bound_text}")
    return "\n".join(lines)


def side_by_side(paper: str, measured: str, title: str) -> str:
    """Join a paper excerpt and our measured table under one banner."""
    bar = "=" * 72
    return (f"{bar}\n{title}\n{bar}\n"
            f"--- paper ---\n{paper.rstrip()}\n\n"
            f"--- this reproduction ---\n{measured.rstrip()}\n")
