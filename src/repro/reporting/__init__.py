"""Presentation helpers: paper-style result tables."""

from .tables import (effort_table, health_table, improvement_table,
                     merged_provenance_table, mismatch_table,
                     optimization_trace_table, queue_table, side_by_side)

__all__ = ["effort_table", "health_table", "improvement_table",
           "merged_provenance_table", "mismatch_table",
           "optimization_trace_table", "queue_table", "side_by_side"]
