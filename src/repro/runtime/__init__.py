"""Fault-tolerant optimization runtime.

The optimizer, the yield estimators, and the CLI all route their
evaluator calls and loop control through this layer:

* :class:`FaultPolicy` / :class:`FaultAction` / :class:`RetryConfig` —
  classify evaluator exceptions against the :mod:`repro.errors` taxonomy
  and decide retry-with-jitter, count-as-fail, or abort,
* :class:`FaultTolerantEvaluator` — the policy-applying evaluator facade
  (lenient mode: failed samples become NaN records that count as
  spec-violating; strict mode: exhausted retries propagate),
* :class:`RunBudget` — wall-clock deadline and max-simulation budget,
  enforced inside the Fig. 6 loop; exhaustion yields a partial
  ``OptimizationResult`` with a ``stop_reason`` instead of an exception,
* :func:`save_checkpoint` / :func:`load_checkpoint` /
  :class:`OptimizerCheckpoint` — per-iteration JSON checkpointing and
  deterministic resume,
* :class:`FaultInjectingEvaluator` — seeded, deterministic fault
  injection for testing every recovery path.
"""

from __future__ import annotations

from .budget import (RunBudget, STOP_ABORTED_PREFIX, STOP_CONVERGED,
                     STOP_DEADLINE, STOP_MAX_ITERATIONS, STOP_SIM_BUDGET)
from .checkpoint import (CHECKPOINT_VERSION, CheckpointError,
                         OptimizerCheckpoint, READABLE_VERSIONS,
                         load_checkpoint, peek_checkpoint,
                         record_from_dict, record_to_dict,
                         save_checkpoint, splice_merged_result)
from .faults import FaultInjectingEvaluator
from .policy import (DEFAULT_ACTIONS, FaultAction, FaultPolicy,
                     RetryConfig, point_digest)
from .tolerant import FaultTolerantEvaluator

__all__ = [
    "CHECKPOINT_VERSION", "CheckpointError", "DEFAULT_ACTIONS",
    "READABLE_VERSIONS",
    "FaultAction", "FaultInjectingEvaluator", "FaultPolicy",
    "FaultTolerantEvaluator", "OptimizerCheckpoint", "RetryConfig",
    "RunBudget", "STOP_ABORTED_PREFIX", "STOP_CONVERGED", "STOP_DEADLINE",
    "STOP_MAX_ITERATIONS", "STOP_SIM_BUDGET", "load_checkpoint",
    "peek_checkpoint", "point_digest", "record_from_dict",
    "record_to_dict",
    "save_checkpoint", "splice_merged_result",
]
