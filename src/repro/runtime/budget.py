"""Per-run resource budgets for the Fig. 6 loop.

A production run must terminate on schedule even when individual
iterations are slower than expected; aborting with an exception would
throw away the partial trace.  :class:`RunBudget` carries a wall-clock
deadline and a maximum-simulation budget; the optimizer checks it at the
iteration boundaries of the Fig. 6 loop and, when a budget is exhausted,
returns a valid partial :class:`~repro.core.optimizer.OptimizationResult`
whose ``stop_reason`` names the binding budget instead of raising.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ReproError

#: canonical ``stop_reason`` values of an optimization run
STOP_CONVERGED = "converged"
STOP_MAX_ITERATIONS = "max_iterations"
STOP_DEADLINE = "deadline"
STOP_SIM_BUDGET = "sim_budget"
#: prefix of abort-class stop reasons ("aborted: <ErrorType>: <message>")
STOP_ABORTED_PREFIX = "aborted: "


@dataclass(frozen=True)
class RunBudget:
    """Wall-clock and simulation-count limits of one optimization run.

    ``None`` disables a limit.  Both limits are checked against effort
    spent *so far*; an iteration in flight when the limit trips finishes
    naturally (simulations are not interrupted mid-call), so runs may
    overshoot by at most one loop stage.
    """

    #: wall-clock deadline in seconds from run start (resume runs count
    #: the checkpointed wall time of previous attempts toward it)
    deadline_s: Optional[float] = None
    #: maximum performance simulations (evaluator ``simulation_count``)
    max_simulations: Optional[int] = None

    def __post_init__(self):
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ReproError(
                f"deadline_s must be >= 0, got {self.deadline_s}")
        if self.max_simulations is not None and self.max_simulations < 1:
            raise ReproError(
                f"max_simulations must be >= 1, got {self.max_simulations}")

    @property
    def unlimited(self) -> bool:
        return self.deadline_s is None and self.max_simulations is None

    def exhausted(self, elapsed_s: float,
                  simulations: int) -> Optional[str]:
        """The ``stop_reason`` of the binding budget, or ``None``.

        The deadline binds first when both are exhausted (it is the
        externally visible contract; the simulation count is internal
        effort accounting).
        """
        if self.deadline_s is not None and elapsed_s >= self.deadline_s:
            return STOP_DEADLINE
        if self.max_simulations is not None and \
                simulations >= self.max_simulations:
            return STOP_SIM_BUDGET
        return None
