"""Deterministic fault injection for testing the recovery paths.

:class:`FaultInjectingEvaluator` wraps any evaluator and raises scheduled
or probabilistic failures, so every branch of the fault-tolerance layer
— retry-with-jitter, count-as-fail, abort, checkpoint/resume under
faults — can be exercised without a flaky simulator:

* **probabilistic** mode (``rate > 0``): each evaluation point fails with
  probability ``rate``.  The decision is a pure function of the point
  digest and the seed — *not* of call order — so a resumed run, a cached
  re-request, or a differently-chunked parallel run sees exactly the same
  faults as an uninterrupted serial run.  Retries at jittered points hash
  differently, which is what lets a RETRY policy recover.
* **scheduled** mode (``schedule``): the listed 1-based request indices
  fail unconditionally.  Call-order-dependent by design; unit tests use
  it to hit a specific evaluation (e.g. "the third verification sample").

``error`` is the exception type (or zero-argument factory) to raise,
:class:`~repro.errors.ConvergenceError` by default.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Mapping, Optional

import numpy as np

from ..errors import ConvergenceError, ReproError
from .policy import point_digest


class FaultInjectingEvaluator:
    """Evaluator wrapper raising deterministic, seeded faults."""

    def __init__(self, evaluator, rate: float = 0.0, seed: int = 0,
                 schedule: Iterable[int] = (),
                 error: Callable[[], BaseException] = None):
        if not 0.0 <= rate <= 1.0:
            raise ReproError(f"fault rate must be in [0, 1], got {rate}")
        self._inner = evaluator
        self.rate = float(rate)
        self.seed = int(seed)
        self.schedule = frozenset(int(i) for i in schedule)
        self._error = error or (
            lambda: ConvergenceError("injected fault: DC Newton solver "
                                     "diverged at a statistical sample"))
        #: faults raised so far
        self.injected_count = 0
        #: evaluate() requests seen so far (basis of scheduled faults)
        self.request_index = 0

    def __getattr__(self, name):
        if name == "_inner":  # guard pickling/copying before __init__ ran
            raise AttributeError(name)
        return getattr(self._inner, name)

    @property
    def inner(self):
        """The wrapped evaluator."""
        return self._inner

    # -- fault decision -----------------------------------------------------------
    def _point_fails(self, d: Mapping[str, float], s_hat: np.ndarray,
                     theta: Mapping[str, float]) -> bool:
        if self.rate <= 0.0:
            return False
        digest = point_digest(d, s_hat, theta, salt=self.seed)
        return digest / 2.0 ** 32 < self.rate

    def _raise_fault(self) -> None:
        self.injected_count += 1
        raise self._error()

    # -- evaluator interface ------------------------------------------------------
    def evaluate(self, d: Mapping[str, float], s_hat: np.ndarray,
                 theta: Mapping[str, float]) -> Dict[str, float]:
        self.request_index += 1
        if self.request_index in self.schedule or \
                self._point_fails(d, s_hat, theta):
            self._raise_fault()
        return self._inner.evaluate(d, s_hat, theta)

    def performance(self, name: str, d: Mapping[str, float],
                    s_hat: np.ndarray,
                    theta: Mapping[str, float]) -> float:
        return self.evaluate(d, s_hat, theta)[name]

    def margins(self, d: Mapping[str, float], s_hat: np.ndarray,
                theta_per_spec: Mapping[str, Mapping[str, float]]
                ) -> Dict[str, float]:
        from ..spec.operating import spec_key
        result: Dict[str, float] = {}
        for spec in self._inner.template.specs:
            key = spec_key(spec)
            values = self.evaluate(d, s_hat, theta_per_spec[key])
            result[key] = spec.margin(values[spec.performance])
        return result
