"""Fault classification and retry policy for evaluator exceptions.

A yield-optimization run issues thousands of simulator calls, and in any
realistic setting some of them fail: the DC Newton solver diverges at an
extreme statistical sample, the MNA matrix goes singular, a gain curve
never crosses unity.  The :class:`FaultPolicy` maps each exception from
the :mod:`repro.errors` taxonomy to one of three actions:

* :attr:`FaultAction.RETRY` — transient numerical failures
  (:class:`~repro.errors.ConvergenceError`,
  :class:`~repro.errors.SingularMatrixError`): re-evaluate at a slightly
  jittered statistical point, with the perturbation magnitude growing
  exponentially over a bounded number of attempts.  When every attempt
  fails, the failure degrades to *count-as-fail*.
* :attr:`FaultAction.COUNT_AS_FAIL` — the point is genuinely outside the
  circuit's working region (:class:`~repro.errors.ExtractionError`, e.g.
  no unity-gain crossing): the sample is recorded as violating every
  spec, which is exactly the pessimistic reading Eq. 6-7 needs, and a
  ``failed_samples`` counter surfaces it in results and trace tables.
* :attr:`FaultAction.ABORT` — structural problems
  (:class:`~repro.errors.NetlistError` and friends) that no retry can
  fix: the error propagates, and the optimizer returns the partial trace
  accumulated so far.

Retry jitter is **deterministic in the evaluation point**, not in call
order: the RNG is seeded from a digest of ``(d, s, theta)``.  Two runs —
or one run resumed from a checkpoint — that evaluate the same point
therefore retry through the identical perturbation sequence, which keeps
checkpoint/resume bit-reproducible.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Type

import numpy as np

from ..errors import (AnalysisError, ExtractionError, NetlistError,
                      ReproError)


class FaultAction(enum.Enum):
    """What to do with a classified evaluator exception."""

    RETRY = "retry"
    COUNT_AS_FAIL = "count-as-fail"
    ABORT = "abort"


@dataclass(frozen=True)
class RetryConfig:
    """Bounds of the retry-with-jitter loop.

    Attempt ``k`` (0-based) re-evaluates at ``s + jitter * backoff**k *
    z`` with ``z ~ N(0, I)`` drawn from the point-digest RNG: the first
    retry barely moves (absorbing pure numerical bad luck), later ones
    step progressively further off the pathological point.
    """

    #: additional evaluation attempts after the first failure
    attempts: int = 2
    #: perturbation magnitude of the first retry (normalized sigma units)
    jitter: float = 1e-6
    #: exponential growth factor of the magnitude per attempt
    backoff: float = 8.0

    def __post_init__(self):
        if self.attempts < 0:
            raise ReproError(
                f"retry attempts must be >= 0, got {self.attempts}")
        if self.jitter < 0.0:
            raise ReproError(f"jitter must be >= 0, got {self.jitter}")
        if self.backoff < 1.0:
            raise ReproError(f"backoff must be >= 1, got {self.backoff}")

    def magnitude(self, attempt: int) -> float:
        """Perturbation magnitude of 0-based retry ``attempt``."""
        return self.jitter * self.backoff ** attempt


#: Default classification of the :mod:`repro.errors` taxonomy.  Lookup
#: walks the exception's MRO, so subclasses inherit their parent's action
#: unless listed explicitly.  Anything not derived from a listed class
#: (including non-ReproError bugs) aborts.
DEFAULT_ACTIONS: Dict[Type[BaseException], FaultAction] = {
    AnalysisError: FaultAction.RETRY,        # Convergence/SingularMatrix
    ExtractionError: FaultAction.COUNT_AS_FAIL,
    NetlistError: FaultAction.ABORT,
    ReproError: FaultAction.ABORT,
}


def point_digest(d: Mapping[str, float], s_hat: np.ndarray,
                 theta: Mapping[str, float], salt: int = 0) -> int:
    """Stable 32-bit digest of an evaluation point.

    Built from CRC32 over a canonical text encoding, so it is identical
    across processes and interpreter runs (unlike ``hash()``, which is
    salted per process).
    """
    parts = [f"{name}={d[name]!r}" for name in sorted(d)]
    parts.append(np.ascontiguousarray(
        np.asarray(s_hat, dtype=float)).tobytes().hex())
    parts.extend(f"{name}={value!r}" for name, value in sorted(theta.items()))
    parts.append(str(salt))
    return zlib.crc32("|".join(parts).encode("ascii"))


class FaultPolicy:
    """Maps evaluator exceptions to :class:`FaultAction` decisions.

    ``actions`` overrides/extends :data:`DEFAULT_ACTIONS`; ``retry``
    bounds the retry-with-jitter loop executed by
    :class:`~repro.runtime.tolerant.FaultTolerantEvaluator`.
    """

    def __init__(self,
                 actions: Optional[Mapping[Type[BaseException],
                                           FaultAction]] = None,
                 retry: Optional[RetryConfig] = None):
        self.actions: Dict[Type[BaseException], FaultAction] = \
            dict(DEFAULT_ACTIONS)
        if actions:
            self.actions.update(actions)
        self.retry = retry or RetryConfig()

    def classify(self, exc: BaseException) -> FaultAction:
        """The action for ``exc``: the most specific match in its MRO."""
        for cls in type(exc).__mro__:
            if cls in self.actions:
                return self.actions[cls]
        return FaultAction.ABORT

    def jittered(self, d: Mapping[str, float], s_hat: np.ndarray,
                 theta: Mapping[str, float], attempt: int) -> np.ndarray:
        """The statistical point to use for 0-based retry ``attempt``.

        Deterministic in the *original* point (see module docstring); the
        perturbation is always applied to the original ``s_hat``, never
        compounded across attempts.
        """
        s = np.asarray(s_hat, dtype=float)
        rng = np.random.default_rng(
            point_digest(d, s, theta, salt=1000 + attempt))
        return s + self.retry.magnitude(attempt) * \
            rng.standard_normal(s.shape)

    def describe(self) -> Dict[str, str]:
        """Error-class name -> action value (for docs and CLI output)."""
        return {cls.__name__: action.value
                for cls, action in sorted(self.actions.items(),
                                          key=lambda kv: kv[0].__name__)}
