"""JSON checkpoint/resume for the Fig. 6 optimization loop.

After every completed iteration the optimizer serializes its full loop
state — the iteration records, the current design point, the sampling
state, and the warm-start worst-case points — to a JSON checkpoint
(written atomically: temp file + rename).  A later run with ``resume``
restores that state and continues from the next iteration; because every
random draw in the loop is derived from the configured seed and fault
injection/retry jitter are deterministic in the evaluation *point* (not
call order), a resumed run reproduces the same trajectory — and the same
final design — as an uninterrupted run.

Floats survive bit-identically: ``json`` serializes with ``repr``
(shortest round-trip) and parses back to the exact same double, so
restored :class:`~repro.core.optimizer.IterationRecord` objects compare
equal to the originals field by field.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..errors import ReproError

#: current checkpoint schema version
CHECKPOINT_VERSION = 2

#: schema versions :func:`load_checkpoint` can read
READABLE_VERSIONS = (1, 2)

#: delta marker: "same serialized value as the previous record's entry"
_PREV = "@prev"


class CheckpointError(ReproError):
    """Raised for unreadable, incompatible, or mismatched checkpoints."""


# -- worst-case results -------------------------------------------------------
def _wc_to_dict(wc) -> Dict:
    return {
        "spec_key": f"{wc.spec.performance}{wc.spec.kind}",
        "s_wc": [float(v) for v in np.asarray(wc.s_wc, dtype=float)],
        "beta_wc": float(wc.beta_wc),
        "gradient": [float(v) for v in np.asarray(wc.gradient,
                                                  dtype=float)],
        "g_wc": float(wc.g_wc),
        "g_nominal": float(wc.g_nominal),
        "on_boundary": bool(wc.on_boundary),
        "iterations": int(wc.iterations),
        "method": str(wc.method),
    }


def _wc_from_dict(data: Mapping, template) -> "object":
    from ..core.worst_case import WorstCaseResult
    from ..spec.operating import spec_key
    specs = {spec_key(spec): spec for spec in template.specs}
    try:
        spec = specs[data["spec_key"]]
    except KeyError:
        raise CheckpointError(
            f"checkpoint references spec {data['spec_key']!r} unknown to "
            f"template {template.name!r}")
    return WorstCaseResult(
        spec=spec,
        s_wc=np.asarray(data["s_wc"], dtype=float),
        beta_wc=float(data["beta_wc"]),
        gradient=np.asarray(data["gradient"], dtype=float),
        g_wc=float(data["g_wc"]),
        g_nominal=float(data["g_nominal"]),
        on_boundary=bool(data["on_boundary"]),
        iterations=int(data["iterations"]),
        method=str(data["method"]))


# -- verification results -----------------------------------------------------
def _mc_to_dict(mc) -> Optional[Dict]:
    """Serialize a verification result: a yieldsim ``YieldResult`` (or
    anything else exposing a compatible ``to_dict``).  Legacy records
    without one (:class:`repro.core.montecarlo.MonteCarloResult`) keep
    their scalar summary in a ``legacy-summary`` stub, so ``--resume``
    round-trips a checkpointed trace instead of silently dropping the
    verification result."""
    if mc is None:
        return None
    to_dict = getattr(mc, "to_dict", None)
    if callable(to_dict):
        return {"kind": "yieldsim", "data": to_dict()}
    return {"kind": "legacy-summary", "data": {
        "yield_estimate": float(mc.yield_estimate),
        "n_samples": int(mc.n_samples),
        "simulations": int(mc.simulations),
        "bad_fraction": {key: float(value)
                         for key, value in mc.bad_fraction.items()},
        "performance_mean": {
            key: float(value)
            for key, value in getattr(mc, "performance_mean",
                                      {}).items()},
        "performance_std": {
            key: float(value)
            for key, value in getattr(mc, "performance_std",
                                      {}).items()},
    }}


def _mc_from_dict(data: Optional[Mapping]):
    if data is None:
        return None
    kind = data.get("kind", "yieldsim")
    if kind == "legacy-summary":
        from ..core.montecarlo import MonteCarloResult
        summary = data["data"]
        return MonteCarloResult(
            yield_estimate=float(summary["yield_estimate"]),
            n_samples=int(summary["n_samples"]),
            bad_fraction=dict(summary["bad_fraction"]),
            simulations=int(summary["simulations"]),
            performance_mean=dict(summary.get("performance_mean", {})),
            performance_std=dict(summary.get("performance_std", {})))
    from ..yieldsim.result import YieldResult
    return YieldResult.from_dict(data["data"])


# -- iteration records --------------------------------------------------------
def record_to_dict(record) -> Dict:
    """Serialize one :class:`~repro.core.optimizer.IterationRecord`."""
    return {
        "index": record.index,
        "d": dict(record.d),
        "margins": dict(record.margins),
        "bad_samples": dict(record.bad_samples),
        "yield_linear": record.yield_linear,
        "yield_mc": record.yield_mc,
        "mc": _mc_to_dict(record.mc),
        "worst_case": {key: _wc_to_dict(wc)
                       for key, wc in record.worst_case.items()},
        "simulations": record.simulations,
        "constraint_simulations": record.constraint_simulations,
        "gamma": record.gamma,
        "failed_samples": record.failed_samples,
        "verify_samples": record.verify_samples,
        "verify_shrunk": record.verify_shrunk,
    }


def record_from_dict(data: Mapping, template):
    """Restore one :class:`~repro.core.optimizer.IterationRecord`."""
    from ..core.optimizer import IterationRecord
    return IterationRecord(
        index=int(data["index"]),
        d=dict(data["d"]),
        margins=dict(data["margins"]),
        bad_samples=dict(data["bad_samples"]),
        yield_linear=float(data["yield_linear"]),
        yield_mc=None if data["yield_mc"] is None
        else float(data["yield_mc"]),
        mc=_mc_from_dict(data.get("mc")),
        worst_case={key: _wc_from_dict(wc, template)
                    for key, wc in data["worst_case"].items()},
        simulations=int(data["simulations"]),
        constraint_simulations=int(data["constraint_simulations"]),
        gamma=None if data.get("gamma") is None
        else float(data["gamma"]),
        failed_samples=int(data.get("failed_samples", 0)),
        verify_samples=None if data.get("verify_samples") is None
        else int(data["verify_samples"]),
        verify_shrunk=bool(data.get("verify_shrunk", False)))


# -- the checkpoint record ----------------------------------------------------
@dataclass
class OptimizerCheckpoint:
    """Everything needed to continue a run after the last completed
    iteration (in-memory form; see :func:`save_checkpoint` for the JSON
    shape)."""

    template_name: str
    seed: int
    #: index of the last completed iteration (records run up to here)
    iteration: int
    #: current design point (start of the next iteration)
    d_f: Dict[str, float]
    records: List = field(default_factory=list)
    #: warm-start worst-case points of the last iteration (or None)
    previous_wc: Optional[Dict[str, object]] = None
    #: sampling state: the Eq. 17 sample matrix is fully determined by
    #: these three values, so storing them *is* storing the RNG state
    sample_state: Dict[str, int] = field(default_factory=dict)
    #: evaluator counters at checkpoint time (folded back on resume so
    #: Table-7 effort accounting spans the whole logical run)
    counters: Dict[str, int] = field(default_factory=dict)
    #: wall time consumed before this checkpoint (summed across resumes)
    wall_time_s: float = 0.0
    #: terminal stop reason when the run already ended at this
    #: checkpoint (e.g. "converged"); None while the run is in progress.
    #: Resume returns the restored trace directly instead of iterating.
    stop_reason: Optional[str] = None


def _compact_wc(records: List[Dict],
                previous_wc: Optional[Dict]) -> None:
    """Delta-encode the serialized worst-case blocks in place (the
    version-2 compaction).

    The warm-started Eq. 8 searches converge: from some iteration on, a
    spec's worst-case point stops moving, and every later record repeats
    the identical (s_wc, gradient, ...) block — the bulk of a long run's
    checkpoint.  A per-spec entry that serializes identically to the
    previous record's entry is replaced by the :data:`_PREV` marker;
    ``previous_wc`` is compared against the *last* record the same way.
    Expansion (:func:`_expand_wc`) restores the exact dicts, so the
    round-trip is bit-identical.
    """
    reference: Optional[Dict] = None
    for record in records:
        worst_case = record.get("worst_case") or {}
        if reference is not None:
            compact = {}
            for key, wc in worst_case.items():
                if reference.get(key) == wc:
                    compact[key] = _PREV
                else:
                    compact[key] = wc
            record["worst_case"] = compact
        reference = worst_case
    if previous_wc is not None and reference is not None:
        for key in list(previous_wc):
            if reference.get(key) == previous_wc[key]:
                previous_wc[key] = _PREV


def _expand_wc(records: List[Dict], previous_wc: Optional[Dict],
               path: str) -> None:
    """Resolve :data:`_PREV` markers in place (inverse of
    :func:`_compact_wc`); a no-op on version-1 payloads."""
    reference: Dict = {}
    for index, record in enumerate(records):
        expanded = {}
        for key, wc in (record.get("worst_case") or {}).items():
            if wc == _PREV:
                if key not in reference:
                    raise CheckpointError(
                        f"checkpoint {path!r}: record {index} marks "
                        f"worst-case {key!r} as unchanged but no "
                        f"previous record defines it")
                expanded[key] = reference[key]
            else:
                expanded[key] = wc
        record["worst_case"] = expanded
        reference = expanded
    if previous_wc is not None:
        for key, wc in previous_wc.items():
            if wc == _PREV:
                if key not in reference:
                    raise CheckpointError(
                        f"checkpoint {path!r}: previous_wc marks "
                        f"{key!r} as unchanged but the last record "
                        f"does not define it")
                previous_wc[key] = reference[key]


def save_checkpoint(path: str, checkpoint: OptimizerCheckpoint) -> None:
    """Atomically write ``checkpoint`` as JSON to ``path`` (version-2
    schema: repeated worst-case blocks are delta-compacted)."""
    records = [record_to_dict(record) for record in checkpoint.records]
    previous_wc = None if checkpoint.previous_wc is None else {
        key: _wc_to_dict(wc)
        for key, wc in checkpoint.previous_wc.items()}
    _compact_wc(records, previous_wc)
    payload = {
        "version": CHECKPOINT_VERSION,
        "template_name": checkpoint.template_name,
        "seed": checkpoint.seed,
        "iteration": checkpoint.iteration,
        "d_f": dict(checkpoint.d_f),
        "records": records,
        "previous_wc": previous_wc,
        "sample_state": dict(checkpoint.sample_state),
        "counters": dict(checkpoint.counters),
        "wall_time_s": checkpoint.wall_time_s,
        "stop_reason": checkpoint.stop_reason,
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w", dir=directory, suffix=".tmp", delete=False)
    try:
        with handle:
            json.dump(payload, handle)
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


def splice_merged_result(path: str, result) -> None:
    """Replace the last record's verification result in the checkpoint
    at ``path`` with a merged sharded ``YieldResult``.

    Operates on the raw checkpoint JSON (no template rebinding), so any
    circuit's checkpoint can be spliced.  The record's scalar summary
    fields (``yield_mc``, ``failed_samples``, ``verify_samples``) are
    updated alongside, and the file is rewritten atomically — a
    subsequent ``--resume`` continues the trajectory with the merged
    verification in place.

    Shard-aware budget accounting: the other shards' simulation effort
    (the merged report's counts minus what the local shard already
    recorded) is folded into the checkpoint's evaluator ``counters`` and
    the record's cumulative ``simulations``, so a resumed run's
    ``RunBudget``/Table-7 effort reporting reflects the *fleet-wide*
    spend instead of under-reporting to one shard's share.
    """
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}")
    except ValueError as exc:
        raise CheckpointError(f"corrupt checkpoint {path!r}: {exc}")
    version = payload.get("version")
    if version not in READABLE_VERSIONS:
        raise CheckpointError(
            f"checkpoint {path!r} has schema version {version!r}; "
            f"this build reads versions "
            f"{', '.join(map(str, READABLE_VERSIONS))}")
    records = payload.get("records") or []
    if not records:
        raise CheckpointError(
            f"checkpoint {path!r} has no iteration records to splice a "
            f"merged verification into")
    record = records[-1]
    old_mc = record.get("mc") or {}
    old_report = (old_mc.get("data") or {}).get("report") or {} \
        if old_mc.get("kind") == "yieldsim" else {}
    merged = result.to_dict()
    record["mc"] = {"kind": "yieldsim", "data": merged}
    record["yield_mc"] = float(result.estimate)
    record["failed_samples"] = int(result.failed_samples)
    record["verify_samples"] = int(result.n_samples)
    # Fold the sibling shards' effort (merged minus what this
    # checkpoint's own verification already counted) into the pooled
    # budget counters.
    merged_report = merged.get("report") or {}
    counters = payload.setdefault("counters", {})
    for merged_key, counter_key in (("simulations", "simulations"),
                                    ("requests", "requests"),
                                    ("cache_hits", "cache_hits"),
                                    ("cache_misses", "cache_misses")):
        delta = int(merged_report.get(merged_key, 0)) \
            - int(old_report.get(merged_key, 0))
        if delta > 0:
            counters[counter_key] = \
                int(counters.get(counter_key, 0)) + delta
    sims_delta = int(merged_report.get("simulations", 0)) \
        - int(old_report.get("simulations", 0))
    if sims_delta > 0 and "simulations" in record:
        record["simulations"] = int(record["simulations"]) + sims_delta
    directory = os.path.dirname(os.path.abspath(path))
    handle = tempfile.NamedTemporaryFile(
        "w", dir=directory, suffix=".tmp", delete=False)
    try:
        with handle:
            json.dump(payload, handle)
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


def peek_checkpoint(path: str) -> Dict:
    """Light-weight checkpoint inspection: summary fields only, no
    template rebinding (the serve layer's recovery/status path uses
    this to describe a resumable job without instantiating circuits).

    Returns ``{"version", "template_name", "seed", "iteration",
    "stop_reason"}``; raises :class:`CheckpointError` on unreadable or
    version-incompatible files.
    """
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}")
    except ValueError as exc:
        raise CheckpointError(f"corrupt checkpoint {path!r}: {exc}")
    version = payload.get("version")
    if version not in READABLE_VERSIONS:
        raise CheckpointError(
            f"checkpoint {path!r} has schema version {version!r}; "
            f"this build reads versions "
            f"{', '.join(map(str, READABLE_VERSIONS))}")
    return {
        "version": version,
        "template_name": payload.get("template_name"),
        "seed": payload.get("seed"),
        "iteration": int(payload.get("iteration", 0)),
        "stop_reason": payload.get("stop_reason"),
    }


def load_checkpoint(path: str, template) -> OptimizerCheckpoint:
    """Load a checkpoint and rebind it to ``template``.

    Raises :class:`CheckpointError` for unreadable files, incompatible
    schema versions, or a template-name mismatch.
    """
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}")
    except ValueError as exc:
        raise CheckpointError(f"corrupt checkpoint {path!r}: {exc}")
    version = payload.get("version")
    if version not in READABLE_VERSIONS:
        raise CheckpointError(
            f"checkpoint {path!r} has schema version {version!r}; "
            f"this build reads versions "
            f"{', '.join(map(str, READABLE_VERSIONS))}")
    if payload["template_name"] != template.name:
        raise CheckpointError(
            f"checkpoint {path!r} was written for template "
            f"{payload['template_name']!r}, not {template.name!r}")
    previous_wc = payload.get("previous_wc")
    _expand_wc(payload.get("records") or [], previous_wc, path)
    return OptimizerCheckpoint(
        template_name=payload["template_name"],
        seed=int(payload["seed"]),
        iteration=int(payload["iteration"]),
        d_f=dict(payload["d_f"]),
        records=[record_from_dict(record, template)
                 for record in payload["records"]],
        previous_wc=None if previous_wc is None else {
            key: _wc_from_dict(wc, template)
            for key, wc in previous_wc.items()},
        sample_state=dict(payload.get("sample_state", {})),
        counters={key: int(value)
                  for key, value in payload.get("counters", {}).items()},
        wall_time_s=float(payload.get("wall_time_s", 0.0)),
        stop_reason=payload.get("stop_reason"))
