"""A fault-tolerant facade over :class:`~repro.evaluation.evaluator.Evaluator`.

:class:`FaultTolerantEvaluator` wraps any evaluator-shaped object and
applies a :class:`~repro.runtime.policy.FaultPolicy` to every
``evaluate()`` call:

* RETRY-class errors re-evaluate at a jittered point (bounded attempts,
  exponentially growing perturbation; see
  :class:`~repro.runtime.policy.RetryConfig`),
* COUNT-AS-FAIL-class errors (and exhausted retries) either return an
  all-NaN performance record in **lenient** mode — NaN fails every spec
  comparison, so the sample counts as spec-violating downstream without
  any special-casing — or re-raise in **strict** mode,
* ABORT-class errors always propagate.

The optimizer runs verification Monte-Carlo in lenient mode (a
non-convergent sample is just a failed sample) and model building in
strict mode (a NaN gradient would silently poison the spec-wise linear
models; better to abort with a partial trace).

Everything else — counters, cache, template access — delegates to the
wrapped evaluator, so the facade drops into any call site that accepts
an :class:`Evaluator`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Mapping, Optional

import numpy as np

from .policy import FaultAction, FaultPolicy

#: fail-mode values
MODE_RAISE = "raise"
MODE_NAN = "nan"


class FaultTolerantEvaluator:
    """Policy-applying evaluator facade (see module docstring)."""

    def __init__(self, evaluator, policy: Optional[FaultPolicy] = None,
                 fail_mode: str = MODE_RAISE):
        self._inner = evaluator
        self.policy = policy or FaultPolicy()
        self.fail_mode = fail_mode
        #: evaluations that ended count-as-fail (lenient: NaN returned;
        #: strict: the error re-raised after classification)
        self.failed_evaluations = 0
        #: individual retry attempts issued
        self.retried_evaluations = 0
        #: evaluations that failed at least once but succeeded on a retry
        self.recovered_evaluations = 0

    # -- delegation ---------------------------------------------------------------
    def __getattr__(self, name):
        if name == "_inner":  # guard pickling/copying before __init__ ran
            raise AttributeError(name)
        return getattr(self._inner, name)

    @property
    def inner(self):
        """The wrapped evaluator."""
        return self._inner

    # -- modes --------------------------------------------------------------------
    @contextmanager
    def lenient(self):
        """Within this context, count-as-fail returns NaN performances."""
        previous = self.fail_mode
        self.fail_mode = MODE_NAN
        try:
            yield self
        finally:
            self.fail_mode = previous

    @contextmanager
    def strict(self):
        """Within this context, count-as-fail re-raises."""
        previous = self.fail_mode
        self.fail_mode = MODE_RAISE
        try:
            yield self
        finally:
            self.fail_mode = previous

    # -- policy-applying evaluation ----------------------------------------------
    def _failure_values(self) -> Dict[str, float]:
        return {performance.name: float("nan")
                for performance in self._inner.template.performances}

    def evaluate(self, d: Mapping[str, float], s_hat: np.ndarray,
                 theta: Mapping[str, float]) -> Dict[str, float]:
        retry = self.policy.retry
        attempt = 0
        failed_before = False
        point = np.asarray(s_hat, dtype=float)
        while True:
            try:
                values = self._inner.evaluate(d, point, theta)
                if failed_before:
                    self.recovered_evaluations += 1
                return values
            except Exception as exc:
                action = self.policy.classify(exc)
                if action is FaultAction.ABORT:
                    raise
                failed_before = True
                if action is FaultAction.RETRY and attempt < retry.attempts:
                    self.retried_evaluations += 1
                    point = self.policy.jittered(d, s_hat, theta, attempt)
                    attempt += 1
                    continue
                # COUNT_AS_FAIL, or RETRY with the attempt budget spent.
                self.failed_evaluations += 1
                if self.fail_mode == MODE_RAISE:
                    raise
                return self._failure_values()

    def resume_after_failure(self, d: Mapping[str, float],
                             s_hat: np.ndarray,
                             theta: Mapping[str, float],
                             error: BaseException) -> Dict[str, float]:
        """Continue the policy loop of :meth:`evaluate` after the first
        attempt already failed with ``error`` elsewhere.

        The batched engine evaluates first attempts in bulk; a sample
        whose attempt raised is handed here, and this method replicates
        the tail of :meth:`evaluate` exactly — same classification,
        same jittered retry points (the jitter is a deterministic
        function of ``(d, s_hat, theta, attempt)``), same counter
        updates — so a batched run's fault handling is bit- and
        counter-identical to the serial run's.
        """
        retry = self.policy.retry
        attempt = 0
        exc: BaseException = error
        point = np.asarray(s_hat, dtype=float)
        while True:
            action = self.policy.classify(exc)
            if action is FaultAction.ABORT:
                raise exc
            if action is FaultAction.RETRY and attempt < retry.attempts:
                self.retried_evaluations += 1
                point = self.policy.jittered(d, s_hat, theta, attempt)
                attempt += 1
                try:
                    values = self._inner.evaluate(d, point, theta)
                    self.recovered_evaluations += 1
                    return values
                except Exception as new_exc:
                    exc = new_exc
                    continue
            # COUNT_AS_FAIL, or RETRY with the attempt budget spent.
            self.failed_evaluations += 1
            if self.fail_mode == MODE_RAISE:
                raise exc
            return self._failure_values()

    # -- conveniences routed through the policy ----------------------------------
    def performance(self, name: str, d: Mapping[str, float],
                    s_hat: np.ndarray,
                    theta: Mapping[str, float]) -> float:
        return self.evaluate(d, s_hat, theta)[name]

    def margins(self, d: Mapping[str, float], s_hat: np.ndarray,
                theta_per_spec: Mapping[str, Mapping[str, float]]
                ) -> Dict[str, float]:
        from ..spec.operating import spec_key
        result: Dict[str, float] = {}
        for spec in self._inner.template.specs:
            key = spec_key(spec)
            values = self.evaluate(d, s_hat, theta_per_spec[key])
            result[key] = spec.margin(values[spec.performance])
        return result
