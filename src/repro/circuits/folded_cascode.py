"""Folded-cascode operational amplifier — Fig. 7 of the paper.

Single-ended folded cascode with PMOS input pair:

* ``M0``       PMOS tail current source (mirrored from the diode ``MBP``),
* ``M1/M2``    PMOS input differential pair (pair **P?** candidates),
* ``M3/M4``    NMOS folding current sinks (mirrored from ``MBN``),
* ``M5/M6``    NMOS cascodes (gate bias ``vcn`` from a two-diode stack),
* ``M7/M8``    PMOS cascodes (gate bias ``vcp`` from a high-overdrive
  diode, giving the cascode-mirror loop its headroom),
* ``M9/M10``   PMOS cascode current mirror (gates at the ``cas1`` node),
* supply-referred resistor bias branches (so bias currents vary with
  supply, temperature, and the global sheet-resistance spread),
* 2 pF load.

Following the paper (Sec. 6, Table 1), this template models **local
(mismatch) and global** variations: every core transistor carries a local
threshold and gain-factor variation whose sigma follows the Pelgrom law
``sigma ~ 1/sqrt(W L)`` of the *current design point* — the design-
dependent covariance ``C(d)`` that motivates the Sec. 4 transform.

Performances: ``a0`` [dB], ``ft`` [MHz], ``cmrr`` [dB], ``sr`` [V/us],
``power`` [mW]; specs follow Table 1: A0 > 40 dB, ft > 40 MHz,
CMRR > 80 dB, SR > 35 V/us, Power < 3.5 mW.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from ..circuit.netlist import Circuit
from ..evaluation.measure import OpenLoopOpampBench, add_openloop_bench
from ..evaluation.template import DesignParameter
from ..pdk.generic035 import GENERIC035
from ..pdk.process import Process
from ..spec.specification import Performance, Spec
from ..statistics.space import (DeviceGeometry, LocalVariation,
                                PhysicalVariations, StatisticalSpace)
from .base import OpampTemplate, default_operating_range

#: Fixed elements.
LOAD_CAPACITANCE = 2e-12
CASCODE_LENGTH = 0.7e-6
BIAS_PMOS_W = 40e-6  # MBP diode
BIAS_NMOS_W = 20e-6  # MBN diode
RPB = 30e3
RNB = 30e3
RCN = 80e3
RCP = 75e3
INPUT_VCM_FRACTION = 0.45

_DESIGN_PARAMETERS = (
    DesignParameter("w0", 10e-6, 300e-6, 42.5e-6),  # tail width
    DesignParameter("l0", 0.35e-6, 5e-6, 1.0e-6),   # tail length
    DesignParameter("w1", 5e-6, 300e-6, 46e-6),     # input pair width
    DesignParameter("l1", 0.35e-6, 5e-6, 1.0e-6),   # input pair length
    DesignParameter("w3", 5e-6, 300e-6, 13.4e-6),   # folding sink width
    DesignParameter("l3", 0.35e-6, 5e-6, 0.7e-6),   # folding sink length
    DesignParameter("w5", 5e-6, 300e-6, 30e-6),     # NMOS cascode width
    DesignParameter("w7", 5e-6, 300e-6, 40e-6),     # PMOS cascode width
    DesignParameter("w9", 5e-6, 300e-6, 20e-6),     # mirror width
    DesignParameter("l9", 0.35e-6, 5e-6, 0.5e-6),   # mirror length
)

_PERFORMANCES = (
    Performance("a0", "dB", "open-loop DC gain"),
    Performance("ft", "MHz", "unity-gain (transit) frequency"),
    Performance("cmrr", "dB", "common-mode rejection ratio"),
    Performance("sr", "V/us", "positive slew rate (I_tail / CL)"),
    Performance("power", "mW", "static supply power"),
)

_SPECS = (
    Spec("a0", ">=", 40.0),
    Spec("ft", ">=", 40.0),
    Spec("cmrr", ">=", 80.0),
    Spec("sr", ">=", 35.0),
    Spec("power", "<=", 3.5),
)

#: Core transistors: polarity and geometry binding (design-parameter names).
_DEVICES: Dict[str, Tuple[int, str, str]] = {
    "M0": (-1, "w0", "l0"),
    "M1": (-1, "w1", "l1"),
    "M2": (-1, "w1", "l1"),
    "M3": (1, "w3", "l3"),
    "M4": (1, "w3", "l3"),
    "M5": (1, "w5", "_lc"),
    "M6": (1, "w5", "_lc"),
    "M7": (-1, "w7", "_lc"),
    "M8": (-1, "w7", "_lc"),
    "M9": (-1, "w9", "l9"),
    "M10": (-1, "w9", "l9"),
}

#: All transistors (incl. bias) for global-variation application.
_POLARITIES = {
    **{name: pol for name, (pol, _, _) in _DEVICES.items()},
    "MBP": -1, "MBN": 1, "MC1": 1, "MC2": 1, "MC3": -1,
}

#: The matched pairs of the topology (used by tests and reporting; the
#: mismatch *analysis* does not know them — it must find them).
MATCHED_PAIRS = (("M1", "M2"), ("M3", "M4"), ("M5", "M6"), ("M7", "M8"),
                 ("M9", "M10"))


def _local_variations() -> Tuple[LocalVariation, ...]:
    """One vth and one beta local parameter per core transistor, with
    Pelgrom sigmas bound to the device's design-parameter geometry."""
    variations: List[LocalVariation] = []
    for device, (polarity, w_name, l_name) in _DEVICES.items():
        geometry = DeviceGeometry(
            w=w_name,
            l=CASCODE_LENGTH if l_name == "_lc" else l_name)
        variations.append(LocalVariation(
            name=f"dvt_{device}", device=device, kind="vth",
            polarity=polarity, geometry=geometry))
        variations.append(LocalVariation(
            name=f"dbeta_{device}", device=device, kind="beta",
            polarity=polarity, geometry=geometry))
    return tuple(variations)


class FoldedCascodeOpamp(OpampTemplate):
    """The Fig.-7 benchmark circuit as a sizing problem."""

    name = "folded-cascode"
    saturation_devices = ("M0", "M1", "M2", "M3", "M4", "M5", "M6", "M7",
                          "M8", "M9", "M10")

    def __init__(self, process: Process = GENERIC035,
                 with_local: bool = True, with_global: bool = True):
        self.process = process
        space = StatisticalSpace(
            process,
            local_variations=_local_variations() if with_local else (),
            with_global=with_global,
            device_polarities=_POLARITIES)
        super().__init__(_DESIGN_PARAMETERS, _PERFORMANCES, _SPECS,
                         default_operating_range(), space)

    # -- netlist ----------------------------------------------------------------
    def build(self, d: Mapping[str, float], pv: PhysicalVariations,
              theta: Mapping[str, float]) -> Circuit:
        vdd = theta["vdd"]
        vcm = INPUT_VCM_FRACTION * vdd
        nmos = self.process.nmos
        pmos = self.process.pmos
        rf = pv.resistance_factor
        ckt = Circuit("folded-cascode-opamp")
        ckt.vsource("VDD", "vdd", "0", dc=vdd)

        # Bias branches (supply-referred resistors + mirror diodes).
        ckt.resistor("RPB", "pbias", "0", RPB * rf)
        self.add_mosfet(ckt, pv, "MBP", "pbias", "pbias", "vdd", "vdd",
                        pmos, w=BIAS_PMOS_W, l=1e-6)
        ckt.resistor("RNB", "vdd", "nbias", RNB * rf)
        self.add_mosfet(ckt, pv, "MBN", "nbias", "nbias", "0", "0",
                        nmos, w=BIAS_NMOS_W, l=1e-6)

        # Cascode gate biases: vth-tracking diode stacks.
        ckt.resistor("RCN", "vdd", "vcn", RCN * rf)
        self.add_mosfet(ckt, pv, "MC1", "vcn", "vcn", "xn", "0",
                        nmos, w=10e-6, l=1e-6)
        self.add_mosfet(ckt, pv, "MC2", "xn", "xn", "0", "0",
                        nmos, w=10e-6, l=1e-6)
        ckt.resistor("RCP", "vcp", "0", RCP * rf)
        self.add_mosfet(ckt, pv, "MC3", "vcp", "vcp", "vdd", "vdd",
                        pmos, w=1.2e-6, l=1e-6)

        # Input stage.
        self.add_mosfet(ckt, pv, "M0", "tail", "pbias", "vdd", "vdd",
                        pmos, w=d["w0"], l=d["l0"])
        self.add_mosfet(ckt, pv, "M1", "fold1", "inp", "tail", "vdd",
                        pmos, w=d["w1"], l=d["l1"])
        self.add_mosfet(ckt, pv, "M2", "fold2", "inn", "tail", "vdd",
                        pmos, w=d["w1"], l=d["l1"])

        # Folding sinks and cascodes.
        self.add_mosfet(ckt, pv, "M3", "fold1", "nbias", "0", "0",
                        nmos, w=d["w3"], l=d["l3"])
        self.add_mosfet(ckt, pv, "M4", "fold2", "nbias", "0", "0",
                        nmos, w=d["w3"], l=d["l3"])
        self.add_mosfet(ckt, pv, "M5", "cas1", "vcn", "fold1", "0",
                        nmos, w=d["w5"], l=CASCODE_LENGTH)
        self.add_mosfet(ckt, pv, "M6", "out", "vcn", "fold2", "0",
                        nmos, w=d["w5"], l=CASCODE_LENGTH)

        # Cascoded PMOS mirror load (gates of M9/M10 at cas1).
        self.add_mosfet(ckt, pv, "M7", "cas1", "vcp", "mir1", "vdd",
                        pmos, w=d["w7"], l=CASCODE_LENGTH)
        self.add_mosfet(ckt, pv, "M8", "out", "vcp", "mir2", "vdd",
                        pmos, w=d["w7"], l=CASCODE_LENGTH)
        self.add_mosfet(ckt, pv, "M9", "mir1", "cas1", "vdd", "vdd",
                        pmos, w=d["w9"], l=d["l9"])
        self.add_mosfet(ckt, pv, "M10", "mir2", "cas1", "vdd", "vdd",
                        pmos, w=d["w9"], l=d["l9"])

        ckt.capacitor("CL", "out", "0", LOAD_CAPACITANCE)
        add_openloop_bench(ckt, inp="inp", inn="inn", out="out", vcm=vcm)
        return ckt

    # -- extraction ----------------------------------------------------------------
    def extract(self, bench: OpenLoopOpampBench, d: Mapping[str, float],
                theta: Mapping[str, float]) -> Dict[str, float]:
        vdd = theta["vdd"]
        meas = bench.measure(vdd, with_pm=False)
        i_tail = abs(bench.op.op("M0")["ids"])
        sr = i_tail / LOAD_CAPACITANCE  # output slewed by the tail current
        return {
            "a0": meas.a0_db,
            "ft": meas.ft_hz / 1e6,
            "cmrr": meas.cmrr_db,
            "sr": sr / 1e6,
            "power": meas.power_w * 1e3,
        }

    # -- conveniences ----------------------------------------------------------------
    def local_vth_names(self) -> List[str]:
        """Names of the local threshold parameters (mismatch-analysis
        candidates)."""
        return [lv.name for lv in self.statistical_space.local_variations
                if lv.kind == "vth"]
