"""Five-transistor OTA — a compact teaching/benchmark circuit.

Not part of the paper's evaluation, but a standard first analog sizing
problem that exercises every part of the library on a smaller scale, and
additionally demonstrates a *noise* specification (input-referred thermal
+ flicker noise at 100 kHz) driven by the built-in noise analysis:

* ``M1/M2``  NMOS input differential pair,
* ``M3/M4``  PMOS current-mirror load (single-ended output at M4's drain),
* ``M5``     NMOS tail source, mirrored from the diode ``MB`` biased by a
  supply-referred resistor,
* 2 pF load.

Performances: ``a0`` [dB], ``ft`` [MHz], ``cmrr`` [dB], ``sr`` [V/us],
``power`` [mW], ``noise`` [nV/sqrt(Hz), input-referred at 100 kHz].
Both global and local variations are modelled.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Tuple

from ..circuit.netlist import Circuit
from ..circuit.noise import input_referred_density, solve_noise
from ..evaluation.measure import OpenLoopOpampBench, add_openloop_bench
from ..evaluation.template import DesignParameter
from ..pdk.generic035 import GENERIC035
from ..pdk.process import Process
from ..spec.specification import Performance, Spec
from ..statistics.space import (DeviceGeometry, LocalVariation,
                                PhysicalVariations, StatisticalSpace)
from .base import OpampTemplate, default_operating_range

LOAD_CAPACITANCE = 2e-12
DIODE_W = 20e-6
NOISE_FREQUENCY = 100e3
INPUT_VCM_FRACTION = 0.42

_DESIGN_PARAMETERS = (
    DesignParameter("w1", 5e-6, 200e-6, 50e-6),    # input pair width
    DesignParameter("l1", 0.35e-6, 5e-6, 1.0e-6),  # input pair length
    DesignParameter("w3", 5e-6, 200e-6, 25e-6),    # mirror load width
    DesignParameter("l3", 0.35e-6, 5e-6, 1.0e-6),  # mirror load length
    DesignParameter("w5", 5e-6, 300e-6, 40e-6),    # tail width
    DesignParameter("l5", 0.35e-6, 5e-6, 1.0e-6),  # tail/mirror length
    DesignParameter("rb", 3e4, 5e5, 6e4, unit="Ohm"),  # bias resistor
)

_PERFORMANCES = (
    Performance("a0", "dB", "open-loop DC gain"),
    Performance("ft", "MHz", "unity-gain (transit) frequency"),
    Performance("cmrr", "dB", "common-mode rejection ratio"),
    Performance("sr", "V/us", "positive slew rate (I_tail / CL)"),
    Performance("power", "mW", "static supply power"),
    Performance("noise", "nV/rtHz",
                "input-referred noise density at 100 kHz"),
)

_SPECS = (
    Spec("a0", ">=", 38.0),
    Spec("ft", ">=", 25.0),
    Spec("cmrr", ">=", 55.0),
    Spec("sr", ">=", 15.0),
    Spec("power", "<=", 1.0),
    Spec("noise", "<=", 25.0),
)

_DEVICES: Dict[str, Tuple[int, str, str]] = {
    "M1": (1, "w1", "l1"),
    "M2": (1, "w1", "l1"),
    "M3": (-1, "w3", "l3"),
    "M4": (-1, "w3", "l3"),
    "M5": (1, "w5", "l5"),
}

_POLARITIES = {**{k: v[0] for k, v in _DEVICES.items()}, "MB": 1}

MATCHED_PAIRS = (("M1", "M2"), ("M3", "M4"))


def _local_variations() -> Tuple[LocalVariation, ...]:
    variations: List[LocalVariation] = []
    for device, (polarity, w_name, l_name) in _DEVICES.items():
        geometry = DeviceGeometry(w=w_name, l=l_name)
        variations.append(LocalVariation(
            name=f"dvt_{device}", device=device, kind="vth",
            polarity=polarity, geometry=geometry))
        variations.append(LocalVariation(
            name=f"dbeta_{device}", device=device, kind="beta",
            polarity=polarity, geometry=geometry))
    return tuple(variations)


class FiveTransistorOta(OpampTemplate):
    """The classic 5T OTA as a sizing problem with a noise spec."""

    name = "five-transistor-ota"
    saturation_devices = ("M1", "M2", "M3", "M4", "M5")

    def __init__(self, process: Process = GENERIC035,
                 with_local: bool = True, with_global: bool = True):
        self.process = process
        space = StatisticalSpace(
            process,
            local_variations=_local_variations() if with_local else (),
            with_global=with_global,
            device_polarities=_POLARITIES)
        super().__init__(_DESIGN_PARAMETERS, _PERFORMANCES, _SPECS,
                         default_operating_range(), space)

    def build(self, d: Mapping[str, float], pv: PhysicalVariations,
              theta: Mapping[str, float]) -> Circuit:
        vdd = theta["vdd"]
        vcm = INPUT_VCM_FRACTION * vdd
        nmos = self.process.nmos
        pmos = self.process.pmos
        ckt = Circuit("five-transistor-ota")
        ckt.vsource("VDD", "vdd", "0", dc=vdd)
        ckt.resistor("RB", "vdd", "nbias", d["rb"] * pv.resistance_factor)
        self.add_mosfet(ckt, pv, "MB", "nbias", "nbias", "0", "0",
                        nmos, w=DIODE_W, l=d["l5"])
        self.add_mosfet(ckt, pv, "M5", "tail", "nbias", "0", "0",
                        nmos, w=d["w5"], l=d["l5"])
        # M2 drains into the output, so its gate is the *inverting*
        # input (the bench closes the feedback loop on "inn").
        self.add_mosfet(ckt, pv, "M1", "d1", "inp", "tail", "0",
                        nmos, w=d["w1"], l=d["l1"])
        self.add_mosfet(ckt, pv, "M2", "out", "inn", "tail", "0",
                        nmos, w=d["w1"], l=d["l1"])
        self.add_mosfet(ckt, pv, "M3", "d1", "d1", "vdd", "vdd",
                        pmos, w=d["w3"], l=d["l3"])
        self.add_mosfet(ckt, pv, "M4", "out", "d1", "vdd", "vdd",
                        pmos, w=d["w3"], l=d["l3"])
        ckt.capacitor("CL", "out", "0", LOAD_CAPACITANCE)
        add_openloop_bench(ckt, inp="inp", inn="inn", out="out", vcm=vcm)
        return ckt

    def extract(self, bench: OpenLoopOpampBench, d: Mapping[str, float],
                theta: Mapping[str, float]) -> Dict[str, float]:
        vdd = theta["vdd"]
        meas = bench.measure(vdd, with_pm=False)
        i_tail = abs(bench.op.op("M5")["ids"])
        sr = i_tail / LOAD_CAPACITANCE
        adm = abs(bench.differential_gain(NOISE_FREQUENCY))
        noise = solve_noise(bench.circuit, bench.op, "out",
                            [NOISE_FREQUENCY], temp_c=theta["temp"])
        input_density = input_referred_density(noise, adm)[0]
        return {
            "a0": meas.a0_db,
            "ft": meas.ft_hz / 1e6,
            "cmrr": meas.cmrr_db,
            "sr": sr / 1e6,
            "power": meas.power_w * 1e3,
            "noise": math.sqrt(input_density) * 1e9,
        }

    def local_vth_names(self) -> List[str]:
        """Names of the local threshold parameters."""
        return [lv.name for lv in self.statistical_space.local_variations
                if lv.kind == "vth"]
