"""Benchmark circuits of the paper's Section 6 plus a teaching circuit."""

from typing import Callable, Dict

from .base import OpampTemplate, default_operating_range
from .folded_cascode import FoldedCascodeOpamp
from .miller import MillerOpamp
from .ota import FiveTransistorOta
from .two_stage_array import TwoStageArrayOpamp

#: Registered benchmark circuits by CLI/service name.  The CLI and the
#: ``repro.serve`` job runner both resolve circuit names here, so a job
#: submitted over the wire instantiates exactly the template a local
#: command would.
CIRCUITS: Dict[str, Callable] = {
    "miller": MillerOpamp,
    "folded-cascode": FoldedCascodeOpamp,
    "ota": FiveTransistorOta,
    "two-stage-array": TwoStageArrayOpamp,
}

__all__ = ["CIRCUITS", "FiveTransistorOta", "FoldedCascodeOpamp",
           "MillerOpamp", "OpampTemplate", "TwoStageArrayOpamp",
           "default_operating_range"]
