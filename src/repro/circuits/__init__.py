"""Benchmark circuits of the paper's Section 6 plus a teaching circuit."""

from .base import OpampTemplate, default_operating_range
from .folded_cascode import FoldedCascodeOpamp
from .miller import MillerOpamp
from .ota import FiveTransistorOta
from .two_stage_array import TwoStageArrayOpamp

__all__ = ["FiveTransistorOta", "FoldedCascodeOpamp", "MillerOpamp",
           "OpampTemplate", "TwoStageArrayOpamp",
           "default_operating_range"]
