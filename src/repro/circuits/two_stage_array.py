"""Two-stage amplifier with a segmented output array — the large
benchmark circuit for the sparse MNA backend.

Architecturally a Miller opamp scaled to a realistic layout-extracted
size: the clean two-stage core is surrounded by the parasitic networks
that a production netlist drags along, which is exactly what pushes the
MNA system past the break-even point of the sparse factorization-reusing
backend (:mod:`repro.circuit.linsolve`):

* ``M5``        NMOS tail current source (mirrored from the diode ``MB``),
* ``M1/M2``     NMOS input differential pair (matched, Pelgrom locals),
* ``M3/M4``     PMOS current-mirror load (matched, Pelgrom locals),
* ``MP1..MPn``  segmented PMOS output drivers — one multi-finger device
  laid out as ``N_SEGMENTS`` parallel segments, each with its own source
  ballast resistor and a per-segment RC snubber ladder,
* ``MN1..MNn``  the matching segmented NMOS output sinks (mirrored from
  ``MB``), also ballasted per segment,
* ``CC``/``RZ`` Miller compensation across the second stage,
* an RC supply-decoupling ladder (``SUPPLY_SECTIONS`` sections) feeding
  the bias branch,
* an RC gate-distribution ladder spreading the first-stage output across
  the segment driver gates,
* a distributed RC output load line (``LOAD_SECTIONS`` sections)
  terminated by the load capacitor.

All parasitic ladders are series-R/shunt-C, so they carry **no DC
current**: the operating point equals the clean two-stage core's and the
homotopy chain converges as readily as on the small templates, while the
MNA system grows to ~260 unknowns (``assert_large()`` checks the >= 120
floor that makes the auto backend pick sparse).

Statistical model: global process variations plus **local (mismatch)
variations restricted to the two matched pairs that dominate offset and
CMRR** — the input pair ``M1/M2`` and the mirror load ``M3/M4`` (vth and
beta each, Pelgrom sigmas bound to the design geometry).  Keeping the
local space at 8 dimensions keeps worst-case searches affordable on a
circuit this size.

Performances: ``a0`` [dB], ``ft`` [MHz], ``cmrr`` [dB], ``sr`` [V/us],
``power`` [mW].
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from ..circuit.netlist import Circuit
from ..evaluation.measure import OpenLoopOpampBench, add_openloop_bench
from ..evaluation.template import DesignParameter
from ..pdk.generic035 import GENERIC035
from ..pdk.process import Process
from ..spec.specification import Performance, Spec
from ..statistics.space import (DeviceGeometry, LocalVariation,
                                PhysicalVariations, StatisticalSpace)
from .base import OpampTemplate, default_operating_range

#: Output-stage segmentation (parallel fingers of the drivers/sinks).
N_SEGMENTS = 8
#: RC sections of the supply-decoupling ladder feeding the bias branch.
SUPPLY_SECTIONS = 40
#: RC sections of the distributed output load line.
LOAD_SECTIONS = 390
#: RC sections of each per-segment output snubber ladder.
SNUB_SECTIONS = 4

#: Fixed elements.
LOAD_CAPACITANCE = 20e-12
DIODE_W = 20e-6        # bias diode MB width
BIAS_L = 1.0e-6        # bias diode / tail / sink length
DRIVER_L = 1.0e-6      # segment driver length
RB = 120e3             # bias resistor
RZ = 2.0e3             # Miller nulling resistor
INPUT_VCM_FRACTION = 0.45

#: Parasitic element values (per section / per segment).
R_SUPPLY, C_SUPPLY = 2.0, 5e-12       # supply ladder section
R_GATE, C_GATE = 30.0, 50e-15         # gate-distribution section
R_BALLAST = 15.0                      # segment source ballast
R_MERGE = 5.0                         # segment drain merge resistor
R_SNUB, C_SNUB = 25.0, 200e-15        # snubber ladder section
# Output load line: fixed lumped totals discretized over LOAD_SECTIONS,
# so refining the line grows the MNA system without moving the AC
# response (or any measured performance).
R_LINE_TOTAL, C_LINE_TOTAL = 70.0, 8.4e-12
R_LINE = R_LINE_TOTAL / LOAD_SECTIONS
C_LINE = C_LINE_TOTAL / LOAD_SECTIONS

_DESIGN_PARAMETERS = (
    DesignParameter("w1", 5e-6, 200e-6, 40e-6),    # input pair width
    DesignParameter("l1", 0.35e-6, 5e-6, 1.0e-6),  # input pair length
    DesignParameter("w3", 5e-6, 200e-6, 25e-6),    # mirror load width
    DesignParameter("l3", 0.35e-6, 5e-6, 1.0e-6),  # mirror load length
    DesignParameter("w5", 5e-6, 300e-6, 30e-6),    # tail width
    DesignParameter("wp", 5e-6, 300e-6, 30e-6),    # driver width/segment
    DesignParameter("wn", 5e-6, 300e-6, 18e-6),    # sink width/segment
    DesignParameter("cc", 2e-12, 40e-12, 12e-12, unit="F"),  # Miller cap
)

_PERFORMANCES = (
    Performance("a0", "dB", "open-loop DC gain"),
    Performance("ft", "MHz", "unity-gain (transit) frequency"),
    Performance("cmrr", "dB", "common-mode rejection ratio"),
    Performance("sr", "V/us", "positive slew rate (I_tail / CC)"),
    Performance("power", "mW", "static supply power"),
)

_SPECS = (
    Spec("a0", ">=", 75.0),
    Spec("ft", ">=", 3.0),
    Spec("cmrr", ">=", 70.0),
    Spec("sr", ">=", 1.5),
    Spec("power", "<=", 2.5),
)

#: Matched pairs carrying local variations, with their geometry binding.
_LOCAL_DEVICES: Dict[str, Tuple[int, str, str]] = {
    "M1": (1, "w1", "l1"),
    "M2": (1, "w1", "l1"),
    "M3": (-1, "w3", "l3"),
    "M4": (-1, "w3", "l3"),
}

#: All transistors (incl. bias + segments) for global variations.
_POLARITIES = {
    "M1": 1, "M2": 1, "M3": -1, "M4": -1, "M5": 1, "MB": 1,
    **{f"MP{k}": -1 for k in range(1, N_SEGMENTS + 1)},
    **{f"MN{k}": 1 for k in range(1, N_SEGMENTS + 1)},
}

#: The matched pairs of the topology (for tests and reporting).
MATCHED_PAIRS = (("M1", "M2"), ("M3", "M4"))


def _local_variations() -> Tuple[LocalVariation, ...]:
    """vth + beta locals for the two matched pairs only (see module
    docstring), with Pelgrom sigmas bound to the design geometry."""
    variations: List[LocalVariation] = []
    for device, (polarity, w_name, l_name) in _LOCAL_DEVICES.items():
        geometry = DeviceGeometry(w=w_name, l=l_name)
        variations.append(LocalVariation(
            name=f"dvt_{device}", device=device, kind="vth",
            polarity=polarity, geometry=geometry))
        variations.append(LocalVariation(
            name=f"dbeta_{device}", device=device, kind="beta",
            polarity=polarity, geometry=geometry))
    return tuple(variations)


class TwoStageArrayOpamp(OpampTemplate):
    """The segmented-output two-stage amplifier as a sizing problem."""

    name = "two-stage-array"
    saturation_devices = ("M1", "M2", "M3", "M4", "M5", "MP1", "MN1")

    def __init__(self, process: Process = GENERIC035,
                 with_local: bool = True, with_global: bool = True):
        self.process = process
        space = StatisticalSpace(
            process,
            local_variations=_local_variations() if with_local else (),
            with_global=with_global,
            device_polarities=_POLARITIES)
        super().__init__(_DESIGN_PARAMETERS, _PERFORMANCES, _SPECS,
                         default_operating_range(), space)

    # -- netlist ----------------------------------------------------------------
    def build(self, d: Mapping[str, float], pv: PhysicalVariations,
              theta: Mapping[str, float]) -> Circuit:
        vdd = theta["vdd"]
        vcm = INPUT_VCM_FRACTION * vdd
        nmos = self.process.nmos
        pmos = self.process.pmos
        rf = pv.resistance_factor
        ckt = Circuit("two-stage-array-opamp")
        ckt.vsource("VDD", "vdd", "0", dc=vdd)

        # Supply-decoupling RC ladder: vdd -> sf1 -> ... -> sfN; the bias
        # branch hangs off the filtered end, so the only DC current in
        # the ladder is the (small) bias current.
        prev = "vdd"
        for k in range(1, SUPPLY_SECTIONS + 1):
            node = f"sf{k}"
            ckt.resistor(f"RSF{k}", prev, node, R_SUPPLY * rf)
            ckt.capacitor(f"CSF{k}", node, "0", C_SUPPLY)
            prev = node
        vddf = prev
        ckt.resistor("RB", vddf, "nbias", RB * rf)
        self.add_mosfet(ckt, pv, "MB", "nbias", "nbias", "0", "0",
                        nmos, w=DIODE_W, l=BIAS_L)

        # First stage: NMOS pair, PMOS mirror load (M3 diode).
        self.add_mosfet(ckt, pv, "M5", "tail", "nbias", "0", "0",
                        nmos, w=d["w5"], l=BIAS_L)
        self.add_mosfet(ckt, pv, "M1", "x1", "inn", "tail", "0",
                        nmos, w=d["w1"], l=d["l1"])
        self.add_mosfet(ckt, pv, "M2", "x2", "inp", "tail", "0",
                        nmos, w=d["w1"], l=d["l1"])
        self.add_mosfet(ckt, pv, "M3", "x1", "x1", "vdd", "vdd",
                        pmos, w=d["w3"], l=d["l3"])
        self.add_mosfet(ckt, pv, "M4", "x2", "x1", "vdd", "vdd",
                        pmos, w=d["w3"], l=d["l3"])

        # Miller compensation across the second stage.
        ckt.resistor("RZ", "x2", "zc", RZ * rf)
        ckt.capacitor("CC", "zc", "out", d["cc"])

        # Gate-distribution ladder: the first-stage output snakes across
        # the driver gates of the output array (no DC drop: gates + caps).
        gate = "x2"
        for k in range(1, N_SEGMENTS + 1):
            node = f"g{k}"
            ckt.resistor(f"RG{k}", gate, node, R_GATE * rf)
            ckt.capacitor(f"CG{k}", node, "0", C_GATE)
            gate = node

        # Segmented output stage: per segment a ballasted PMOS driver, a
        # ballasted NMOS sink (mirrored from MB), a drain merge resistor
        # into the shared output, and an RC snubber ladder.
        for k in range(1, N_SEGMENTS + 1):
            seg = f"o{k}"
            ckt.resistor(f"RBP{k}", "vdd", f"vsp{k}", R_BALLAST * rf)
            self.add_mosfet(ckt, pv, f"MP{k}", seg, f"g{k}", f"vsp{k}",
                            "vdd", pmos, w=d["wp"], l=DRIVER_L)
            ckt.resistor(f"RBN{k}", f"vsn{k}", "0", R_BALLAST * rf)
            self.add_mosfet(ckt, pv, f"MN{k}", seg, "nbias", f"vsn{k}",
                            "0", nmos, w=d["wn"], l=BIAS_L)
            ckt.resistor(f"RM{k}", seg, "out", R_MERGE * rf)
            prev = seg
            for j in range(1, SNUB_SECTIONS + 1):
                node = f"sn{k}_{j}"
                ckt.resistor(f"RSN{k}_{j}", prev, node, R_SNUB * rf)
                ckt.capacitor(f"CSN{k}_{j}", node, "0", C_SNUB)
                prev = node

        # Distributed output load line, terminated by the load capacitor.
        prev = "out"
        for k in range(1, LOAD_SECTIONS + 1):
            node = f"ld{k}"
            ckt.resistor(f"RLD{k}", prev, node, R_LINE * rf)
            ckt.capacitor(f"CLD{k}", node, "0", C_LINE)
            prev = node
        ckt.capacitor("CL", prev, "0", LOAD_CAPACITANCE)

        add_openloop_bench(ckt, inp="inp", inn="inn", out="out", vcm=vcm)
        return ckt

    # -- extraction ----------------------------------------------------------------
    def extract(self, bench: OpenLoopOpampBench, d: Mapping[str, float],
                theta: Mapping[str, float]) -> Dict[str, float]:
        vdd = theta["vdd"]
        meas = bench.measure(vdd, with_pm=False)
        i_tail = abs(bench.op.op("M5")["ids"])
        sr = i_tail / d["cc"]  # CC slewed by the tail current
        return {
            "a0": meas.a0_db,
            "ft": meas.ft_hz / 1e6,
            "cmrr": meas.cmrr_db,
            "sr": sr / 1e6,
            "power": meas.power_w * 1e3,
        }

    # -- conveniences ----------------------------------------------------------------
    def local_vth_names(self) -> List[str]:
        """Names of the local threshold parameters (mismatch-analysis
        candidates)."""
        return [lv.name for lv in self.statistical_space.local_variations
                if lv.kind == "vth"]

    def nominal_mna_size(self) -> int:
        """MNA unknown count of the nominal netlist (used by tests and
        benchmarks to confirm the template sits in sparse territory)."""
        space = self.statistical_space
        d = self.initial_design()
        pv = space.to_physical(d, space.nominal())
        circuit = self.build(d, pv, self.operating_range.nominal())
        return circuit.layout().size

    def assert_large(self) -> None:
        """Fail loudly if a refactor shrinks the netlist below the
        sparse auto-selection floor this template exists to exercise."""
        from ..circuit.linsolve import AUTO_SPARSE_MIN_NODES
        size = self.nominal_mna_size()
        if size < AUTO_SPARSE_MIN_NODES:
            raise AssertionError(
                f"two-stage-array MNA size {size} fell below the sparse "
                f"auto-selection floor {AUTO_SPARSE_MIN_NODES}")
