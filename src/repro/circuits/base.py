"""Shared machinery for the benchmark opamp templates.

Both example circuits of the paper (folded-cascode, Fig. 7; Miller, Fig. 8)
follow the same evaluation recipe:

* build the transistor-level netlist at ``(d, s, theta)`` with the
  open-loop measurement bench attached,
* one DC solve + AC measurements give A0, f_t, PM, CMRR and power,
* slew rate comes from the bias currents and compensation/load capacitance
  (first-order estimate; validated against the transient engine in the
  test suite),
* the functional constraints c(d) >= 0 (Sec. 5.1) are *electrical sizing
  rules* evaluated at the nominal statistical point: every analog
  transistor must conduct (overdrive above a margin) and sit in saturation
  (drain-source voltage above its saturation voltage by a margin) —
  the "transistors must be in saturation" rules the paper cites from [13].

:class:`OpampTemplate` implements this recipe; concrete circuits provide
the netlist builder and the performance mapping.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..circuit.batch import (BatchUnsupported, PROBE_RESISTANCE_FACTOR,
                             SampleBatchPlan, probe_maps)
from ..circuit.dc import DcEffort, WarmStartCache, solve_dc
from ..circuit.netlist import Circuit
from ..errors import AnalysisError, ExtractionError, ReproError
from ..evaluation.measure import OpenLoopOpampBench
from ..evaluation.template import CircuitTemplate, DesignParameter
from ..spec.operating import OperatingParameter, OperatingRange
from ..spec.specification import Performance, Spec
from ..statistics.space import PhysicalVariations, StatisticalSpace

#: Required saturation margin ``vds - vdsat`` [V].
SAT_MARGIN = 0.05

#: Required overdrive ``vgs - vth`` [V] (device must actually conduct).
VOV_MARGIN = 0.05

#: Performance values reported when the testbench itself fails (dead
#: circuit, no DC convergence).  Chosen to violate every spec by a wide
#: margin so failed samples count as failures, not as crashes.
DEAD_CIRCUIT_PERFORMANCES = {
    "a0": -40.0, "ft": 0.0, "pm": -180.0, "cmrr": -40.0,
    "sr": 0.0, "power": 1e3, "noise": 1e6,
}

#: Chunk size of the sample-batched simulation path when the caller asks
#: for "auto" (``batch_samples=None``).  Large enough to amortize the
#: vectorized model evaluation and the per-chunk plan bookkeeping (the
#: two-stage array crosses 3x over the serial path at this size), small
#: enough that the per-chunk value arrays stay cache-resident even for
#: the array template.
DEFAULT_BATCH_SAMPLES = 32


class _ProbeGlobals(dict):
    """Probe-build global-variation mapping that refuses to be read.

    The probe build (see :mod:`repro.circuit.batch`) verifies that a
    builder consumes statistical variations only through the three
    supported accessors.  A builder reaching into ``pv.global_values``
    directly would be invisible to that check — so the probe's mapping
    raises instead, which fails the probe build and routes the template
    to the serial path."""

    def _refuse(self, *args, **kwargs):
        raise BatchUnsupported(
            "builder reads pv.global_values directly; the sample-batched "
            "path cannot verify it")

    __getitem__ = _refuse
    get = _refuse
    __contains__ = _refuse
    keys = _refuse
    values = _refuse
    items = _refuse
    __iter__ = _refuse


#: Significant decimal digits kept by the warm-start key quantization:
#: coarse enough that finite-difference probes (1e-3 relative) and nearby
#: Monte-Carlo samples land in the same anchor cell, fine enough that the
#: cell representative is a few Newton iterations from any member.
WARM_KEY_SIG = 2


def _warm_rep(value: float, sig: int = WARM_KEY_SIG) -> float:
    """Quantize ``value`` to its anchor-cell representative (the key *is*
    the representative, so the anchor is a pure function of the key —
    the property that keeps warm-started runs order-independent).

    ``sig`` controls the cell size; ``sig = WARM_KEY_SIG - 1`` yields the
    *parent* cell of the anchor-of-anchor chain (a strictly coarser
    quantization of the same point, hence itself a pure function of the
    fine key)."""
    if value == 0.0 or not math.isfinite(value):
        return float(value)
    scale = 10.0 ** (math.floor(math.log10(abs(value))) - sig + 1)
    return round(value / scale) * scale


def default_operating_range() -> OperatingRange:
    """Industrial-style operating box: -40..125 C, VDD 3.0..3.6 V."""
    return OperatingRange([
        OperatingParameter("temp", -40.0, 125.0, 27.0),
        OperatingParameter("vdd", 3.0, 3.6, 3.3),
    ])


class OpampTemplate(CircuitTemplate):
    """Base class for the benchmark opamps; see module docstring."""

    #: devices subject to the conduction + saturation sizing rules
    saturation_devices: Tuple[str, ...] = ()

    def __init__(self, design_parameters: Sequence[DesignParameter],
                 performances: Sequence[Performance],
                 specs: Sequence[Spec],
                 operating_range: OperatingRange,
                 statistical_space: StatisticalSpace):
        constraint_names = []
        for device in self.saturation_devices:
            constraint_names.append(f"vov_{device}")
            constraint_names.append(f"sat_{device}")
        super().__init__(design_parameters, performances, specs,
                         operating_range, statistical_space,
                         constraint_names)
        #: warm-start the DC solve of every testbench from a cached anchor
        #: operating point (set False to force cold homotopy solves, e.g.
        #: for benchmarking)
        self.warm_dc = True
        #: linearize the anchor operating point along every statistical
        #: axis (one warm solve per axis, paid once per anchor cell) so the
        #: warm start is predicted *at the sample* instead of at the
        #: anchor; cuts another 1-2 Newton iterations per evaluation
        self.warm_sensitivities = True
        #: seed a new anchor cell's representative solve from the
        #: cold-solved representative of its *coarser parent* cell (the
        #: ROADMAP anchor-of-anchor chain) instead of cold-solving it
        self.warm_chain = True
        #: linear-solver backend spec for every solve this template runs
        #: ("auto"/"dense"/"sparse"; see :mod:`repro.circuit.linsolve`)
        self.linsolve = "auto"
        self._warm_cache = WarmStartCache()
        self._dc_effort = DcEffort()

    # -- hooks for concrete circuits -------------------------------------------
    @abc.abstractmethod
    def build(self, d: Mapping[str, float], pv: PhysicalVariations,
              theta: Mapping[str, float]) -> Circuit:
        """Construct the netlist with the measurement bench attached."""

    @abc.abstractmethod
    def extract(self, bench: OpenLoopOpampBench, d: Mapping[str, float],
                theta: Mapping[str, float]) -> Dict[str, float]:
        """Map bench measurements to the declared performances."""

    # -- CircuitTemplate implementation ------------------------------------------
    def _bench(self, d: Mapping[str, float], s_hat: np.ndarray,
               theta: Mapping[str, float]) -> OpenLoopOpampBench:
        pv = self.statistical_space.to_physical(d, s_hat)
        circuit = self.build(d, pv, theta)
        x0 = None
        ft_hint = None
        if self.warm_dc:
            anchor = self._warm_anchor(d, theta)
            if anchor is not None:
                x, slopes, ft_hint = anchor
                x0 = x if slopes is None else x + slopes @ s_hat
        return OpenLoopOpampBench(circuit, out="out", supply_source="VDD",
                                  temp_c=theta["temp"], x0=x0,
                                  ft_hint=ft_hint, linsolve=self.linsolve,
                                  dc_effort=self._dc_effort)

    def _warm_anchor(self, d: Mapping[str, float],
                     theta: Mapping[str, float]) -> Optional[tuple]:
        """Warm-start anchor of the cell containing ``(d, theta)``:
        ``(x, slopes, ft)``.

        ``x`` is the DC solution at the cell's quantized representative
        point (nominal statistical point), solved with the full *cold*
        homotopy chain — never at whichever sample happened to arrive
        first — so the warm start, and therefore every downstream result,
        is a pure function of the evaluation point and identical between
        serial and parallel runs.

        ``slopes`` (``n x dim_s``, optional) are unit-sigma secants of the
        operating point along each statistical axis, so the Newton start
        can be *predicted at the sample*: ``x0 = x + slopes @ s_hat``.
        ``ft`` (optional) is the representative's transit frequency, used
        to bracket the unity-gain search tightly.  Both are computed once
        per cell from the representative alone (order-independent), and
        both only seed searches that verify/fall back — a bad prediction
        can cost iterations, never correctness.

        On a cell miss with ``warm_chain`` enabled, the representative is
        not cold-solved directly: it is Newton-seeded from the
        cold-solved representative of its *parent* cell — the strictly
        coarser ``WARM_KEY_SIG - 1`` quantization of the same point — so
        successive optimizer iterations with nearby ``d`` chain into the
        same parent anchors instead of cold-solving every new cell.  The
        parent key is a deterministic function of the fine key (never of
        solve history), and the seeded solve falls back to the full cold
        homotopy chain, so anchors stay pure functions of their keys:
        chaining affects iteration counts only, never results.

        Failed anchors are cached as None (the bench then cold starts,
        exactly the pre-warm-start behavior).
        """
        key = (tuple(_warm_rep(d[name]) for name in self.design_names),
               tuple((name, _warm_rep(theta[name]))
                     for name in sorted(theta)))
        cached = self._warm_cache.lookup(key)
        if cached is not WarmStartCache._MISSING:
            return cached
        d_rep = dict(zip(self.design_names, key[0]))
        theta_rep = dict(key[1])
        space = self.statistical_space
        anchor: Optional[tuple] = None
        try:
            pv = space.to_physical(d_rep, space.nominal())
            circuit = self.build(d_rep, pv, theta_rep)
            x_seed = self._chain_seed(key, d_rep, theta_rep) \
                if self.warm_chain else None
            x = solve_dc(circuit, temp_c=theta_rep["temp"], x0=x_seed,
                         backend=self.linsolve, effort=self._dc_effort).x
            ft = None
            try:
                bench = OpenLoopOpampBench(
                    circuit, out="out", supply_source="VDD",
                    temp_c=theta_rep["temp"], x0=x,
                    linsolve=self.linsolve, dc_effort=self._dc_effort)
                ft = bench.transit_frequency()
            except (AnalysisError, ExtractionError):
                ft = None
            slopes = self._anchor_slopes(d_rep, theta_rep, x) \
                if self.warm_sensitivities else None
            anchor = (x, slopes, ft)
        except ReproError:
            anchor = None
        self._warm_cache.store(key, anchor)
        return anchor

    def _chain_seed(self, key: tuple, d_rep: Mapping[str, float],
                    theta_rep: Mapping[str, float]
                    ) -> Optional[np.ndarray]:
        """Newton seed for a fine cell's representative: the cold-solved
        representative of its parent (coarser) cell, or ``None`` when the
        parent coincides with the fine cell or its solve failed."""
        sig = WARM_KEY_SIG - 1
        parent_key = ("chain",
                      tuple(_warm_rep(v, sig) for v in key[0]),
                      tuple((name, _warm_rep(v, sig))
                            for name, v in key[1]))
        cache = self._warm_cache
        x_parent = cache.lookup_chain(parent_key)
        if x_parent is WarmStartCache._MISSING:
            d_parent = dict(zip(self.design_names, parent_key[1]))
            theta_parent = dict(parent_key[2])
            if d_parent == dict(zip(self.design_names, key[0])) \
                    and theta_parent == dict(key[1]):
                # The point already sits on the coarse grid: seeding from
                # the parent would just cold-solve the same point twice.
                return None
            space = self.statistical_space
            try:
                pv = space.to_physical(d_parent, space.nominal())
                circuit = self.build(d_parent, pv, theta_parent)
                x_parent = solve_dc(circuit, temp_c=theta_parent["temp"],
                                    backend=self.linsolve,
                                    effort=self._dc_effort).x
            except ReproError:
                x_parent = None
            cache.chain_solves += 1
            cache.store_chain(parent_key, x_parent)
        if x_parent is not None:
            cache.chain_seeds += 1
        return x_parent

    def warm_cache_stats(self) -> Dict[str, int]:
        """Warm-start cache counters for run telemetry."""
        return self._warm_cache.stats()

    def dc_effort_stats(self) -> Dict[str, int]:
        """Per-strategy DC solve counters for run telemetry."""
        return self._dc_effort.stats()

    def _anchor_slopes(self, d_rep: Mapping[str, float],
                       theta_rep: Mapping[str, float],
                       x: np.ndarray) -> Optional[np.ndarray]:
        """Unit-sigma operating-point secants along each statistical axis
        (one warm solve per axis from the anchor solution).  Axes whose
        perturbed solve fails contribute a zero column — the prediction
        simply degrades toward the plain anchor."""
        space = self.statistical_space
        slopes = np.zeros((x.size, space.dim))
        for i in range(space.dim):
            e_i = np.zeros(space.dim)
            e_i[i] = 1.0
            try:
                pv = space.to_physical(d_rep, e_i)
                circuit = self.build(d_rep, pv, theta_rep)
                x_i = solve_dc(circuit, temp_c=theta_rep["temp"], x0=x,
                               backend=self.linsolve,
                               effort=self._dc_effort).x
            except ReproError:
                continue
            if x_i.size == x.size:
                slopes[:, i] = x_i - x
        return slopes

    def evaluate(self, d: Mapping[str, float], s_hat: np.ndarray,
                 theta: Mapping[str, float]) -> Dict[str, float]:
        """Simulate and extract; a failed testbench yields spec-violating
        sentinel values rather than an exception — a manufactured circuit
        that cannot be measured (no gain crossing, and in pathological
        design corners not even a DC solution) is a yield loss, not a
        tool crash."""
        bench = self._bench(d, s_hat, theta)
        try:
            return self.extract(bench, d, theta)
        except (AnalysisError, ExtractionError):
            return {p.name: DEAD_CIRCUIT_PERFORMANCES.get(p.name, 0.0)
                    for p in self.performances}

    def evaluate_batch(self, d: Mapping[str, float],
                       rows: Sequence[np.ndarray],
                       theta: Mapping[str, float],
                       batch_samples: Optional[int] = None) -> list:
        """Sample-batched evaluation: one vectorized lockstep homotopy
        chain per chunk of statistical rows, bitwise identical to the
        serial loop.

        Warm-started and cold-started samples both run batched: a sample
        that fails the warm Newton stage re-enters the lockstep cold
        chain (cold Newton, gmin stepping, source stepping) instead of
        serializing the chunk; with ``warm_dc`` off the whole chunk
        starts at the cold stage, matching the serial ``solve_dc`` with
        no ``x0``.  Any row the plan cannot carry — no warm anchor,
        non-finite warm start, singular matrix, exhausted chain — is
        re-run through the exact serial body, so results *and* fault
        classification match the serial loop sample for sample.
        ``batch_samples``:

        * ``None`` — auto (:data:`DEFAULT_BATCH_SAMPLES` rows per chunk),
        * ``0`` or ``1`` — force the serial loop,
        * ``n >= 2`` — chunk size of the vectorized path.
        """
        chunk_size = DEFAULT_BATCH_SAMPLES if batch_samples is None \
            else batch_samples
        if chunk_size <= 1 or len(rows) <= 1:
            return super().evaluate_batch(d, rows, theta,
                                          batch_samples=batch_samples)
        try:
            plan = self._batch_plan(d, theta)
        except (BatchUnsupported, ReproError):
            return super().evaluate_batch(d, rows, theta,
                                          batch_samples=batch_samples)
        space = self.statistical_space
        size = plan.layout.size
        entries: list = [None] * len(rows)
        for start in range(0, len(rows), chunk_size):
            chunk = list(range(start, min(start + chunk_size, len(rows))))
            # Row-order pre-pass, replicating _bench's per-row effort:
            # to_physical, then exactly one warm-anchor lookup per row.
            pv_of: dict = {}
            warm_of: dict = {}
            batched: list = []
            serial: list = []
            for i in chunk:
                try:
                    pv = space.to_physical(d, rows[i])
                except Exception as exc:
                    entries[i] = exc
                    continue
                pv_of[i] = pv
                if not self.warm_dc:
                    # Serial _bench does no anchor lookup either: the
                    # whole chunk enters the chain at the cold stage.
                    warm_of[i] = (None, None)
                    batched.append(i)
                    continue
                anchor = self._warm_anchor(d, theta)
                if anchor is None:
                    warm_of[i] = (None, None)
                    serial.append(i)
                    continue
                x, slopes, ft_hint = anchor
                x0 = x if slopes is None else x + slopes @ rows[i]
                warm_of[i] = (x0, ft_hint)
                if len(x0) == size and np.all(np.isfinite(x0)):
                    batched.append(i)
                else:
                    serial.append(i)  # solve_dc would skip the warm stage
            ok = np.zeros(len(batched), dtype=bool)
            strategies: list = []
            if batched:
                plan.set_samples([pv_of[i] for i in batched])
                x0s = np.stack([warm_of[i][0] for i in batched]) \
                    if self.warm_dc else None
                x_sol, iters, ok, strategies = plan.solve(x0s)
            batch_pos = {i: k for k, i in enumerate(batched)}
            for i in chunk:
                if entries[i] is not None:
                    continue
                k = batch_pos.get(i)
                if k is not None and ok[k]:
                    x0, ft_hint = warm_of[i]
                    bench = OpenLoopOpampBench(
                        plan.sample_circuit(k), out="out",
                        supply_source="VDD", temp_c=theta["temp"], x0=x0,
                        ft_hint=ft_hint, linsolve=self.linsolve,
                        dc_effort=self._dc_effort)
                    bench._op = plan.dc_result(k, int(iters[k]),
                                               strategies[k])
                    # The serial body counts when extract touches the
                    # lazy bench.op; the injected result counts here.
                    self._dc_effort.count(strategies[k])
                    bench._systems = plan.systems(k, bench._op)
                    try:
                        entries[i] = self.extract(bench, d, theta)
                    except (AnalysisError, ExtractionError):
                        entries[i] = {
                            p.name: DEAD_CIRCUIT_PERFORMANCES.get(p.name,
                                                                  0.0)
                            for p in self.performances}
                    except Exception as exc:
                        entries[i] = exc
                else:
                    entries[i] = self._serial_row(d, pv_of[i], theta,
                                                  warm_of[i])
        return entries

    def _serial_row(self, d: Mapping[str, float], pv: PhysicalVariations,
                    theta: Mapping[str, float], warm: tuple):
        """The exact serial body of :meth:`evaluate` for one row whose
        physical variations and warm anchor were already resolved (the
        anchor lookup must not be repeated — counter parity)."""
        x0, ft_hint = warm
        try:
            circuit = self.build(d, pv, theta)
            bench = OpenLoopOpampBench(
                circuit, out="out", supply_source="VDD",
                temp_c=theta["temp"], x0=x0, ft_hint=ft_hint,
                linsolve=self.linsolve, dc_effort=self._dc_effort)
        except Exception as exc:
            return exc
        try:
            return self.extract(bench, d, theta)
        except (AnalysisError, ExtractionError):
            return {p.name: DEAD_CIRCUIT_PERFORMANCES.get(p.name, 0.0)
                    for p in self.performances}
        except Exception as exc:
            return exc

    def _batch_plan(self, d: Mapping[str, float],
                    theta: Mapping[str, float]) -> SampleBatchPlan:
        """Build + verify the sample-batched plan for ``(d, theta)``:
        a prototype netlist at the nominal statistical point and a probe
        netlist at distinct per-device perturbations, compared device by
        device (see :mod:`repro.circuit.batch`)."""
        space = self.statistical_space
        proto = self.build(d, space.to_physical(d, space.nominal()), theta)
        dvto, beta = probe_maps(proto)
        probe_pv = PhysicalVariations(
            global_values=_ProbeGlobals(),
            device_delta_vto=dvto,
            device_beta_factor=beta,
            resistance_factor=PROBE_RESISTANCE_FACTOR)
        try:
            probe = self.build(d, probe_pv, theta)
        except BatchUnsupported:
            raise
        except Exception as exc:
            raise BatchUnsupported(
                f"probe build failed: {exc}") from exc
        return SampleBatchPlan(proto, probe, dvto, beta, theta["temp"],
                               self.linsolve)

    def constraints(self, d: Mapping[str, float],
                    theta: Optional[Mapping[str, float]] = None
                    ) -> Dict[str, float]:
        """Sizing rules at the nominal statistical point."""
        if theta is None:
            theta = self.operating_range.nominal()
        bench = self._bench(d, self.statistical_space.nominal(), theta)
        values: Dict[str, float] = {}
        try:
            ops = bench.op.operating_points()
        except Exception:
            # No DC solution at all: report every rule as badly violated.
            return {name: -1.0 for name in self.constraint_names}
        for device in self.saturation_devices:
            op = ops[device]
            values[f"vov_{device}"] = op["vov"] - VOV_MARGIN
            values[f"sat_{device}"] = (op["vds"] - op["vdsat"]) - SAT_MARGIN
        return values

    # -- shared sub-circuit builders -----------------------------------------------
    @staticmethod
    def add_mosfet(circuit: Circuit, pv: PhysicalVariations, name: str,
                   d_node: str, g_node: str, s_node: str, b_node: str,
                   model, w: float, l: float, m: int = 1) -> None:
        """Add a transistor with its statistical perturbations applied."""
        circuit.mosfet(name, d_node, g_node, s_node, b_node, model,
                       w=w, l=l, m=m,
                       delta_vto=pv.delta_vto(name),
                       beta_factor=pv.beta_factor(name))
