"""Shared machinery for the benchmark opamp templates.

Both example circuits of the paper (folded-cascode, Fig. 7; Miller, Fig. 8)
follow the same evaluation recipe:

* build the transistor-level netlist at ``(d, s, theta)`` with the
  open-loop measurement bench attached,
* one DC solve + AC measurements give A0, f_t, PM, CMRR and power,
* slew rate comes from the bias currents and compensation/load capacitance
  (first-order estimate; validated against the transient engine in the
  test suite),
* the functional constraints c(d) >= 0 (Sec. 5.1) are *electrical sizing
  rules* evaluated at the nominal statistical point: every analog
  transistor must conduct (overdrive above a margin) and sit in saturation
  (drain-source voltage above its saturation voltage by a margin) —
  the "transistors must be in saturation" rules the paper cites from [13].

:class:`OpampTemplate` implements this recipe; concrete circuits provide
the netlist builder and the performance mapping.
"""

from __future__ import annotations

import abc
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..circuit.netlist import Circuit
from ..errors import AnalysisError, ExtractionError
from ..evaluation.measure import OpenLoopOpampBench
from ..evaluation.template import CircuitTemplate, DesignParameter
from ..spec.operating import OperatingParameter, OperatingRange
from ..spec.specification import Performance, Spec
from ..statistics.space import PhysicalVariations, StatisticalSpace

#: Required saturation margin ``vds - vdsat`` [V].
SAT_MARGIN = 0.05

#: Required overdrive ``vgs - vth`` [V] (device must actually conduct).
VOV_MARGIN = 0.05

#: Performance values reported when the testbench itself fails (dead
#: circuit, no DC convergence).  Chosen to violate every spec by a wide
#: margin so failed samples count as failures, not as crashes.
DEAD_CIRCUIT_PERFORMANCES = {
    "a0": -40.0, "ft": 0.0, "pm": -180.0, "cmrr": -40.0,
    "sr": 0.0, "power": 1e3, "noise": 1e6,
}


def default_operating_range() -> OperatingRange:
    """Industrial-style operating box: -40..125 C, VDD 3.0..3.6 V."""
    return OperatingRange([
        OperatingParameter("temp", -40.0, 125.0, 27.0),
        OperatingParameter("vdd", 3.0, 3.6, 3.3),
    ])


class OpampTemplate(CircuitTemplate):
    """Base class for the benchmark opamps; see module docstring."""

    #: devices subject to the conduction + saturation sizing rules
    saturation_devices: Tuple[str, ...] = ()

    def __init__(self, design_parameters: Sequence[DesignParameter],
                 performances: Sequence[Performance],
                 specs: Sequence[Spec],
                 operating_range: OperatingRange,
                 statistical_space: StatisticalSpace):
        constraint_names = []
        for device in self.saturation_devices:
            constraint_names.append(f"vov_{device}")
            constraint_names.append(f"sat_{device}")
        super().__init__(design_parameters, performances, specs,
                         operating_range, statistical_space,
                         constraint_names)

    # -- hooks for concrete circuits -------------------------------------------
    @abc.abstractmethod
    def build(self, d: Mapping[str, float], pv: PhysicalVariations,
              theta: Mapping[str, float]) -> Circuit:
        """Construct the netlist with the measurement bench attached."""

    @abc.abstractmethod
    def extract(self, bench: OpenLoopOpampBench, d: Mapping[str, float],
                theta: Mapping[str, float]) -> Dict[str, float]:
        """Map bench measurements to the declared performances."""

    # -- CircuitTemplate implementation ------------------------------------------
    def _bench(self, d: Mapping[str, float], s_hat: np.ndarray,
               theta: Mapping[str, float]) -> OpenLoopOpampBench:
        pv = self.statistical_space.to_physical(d, s_hat)
        circuit = self.build(d, pv, theta)
        return OpenLoopOpampBench(circuit, out="out", supply_source="VDD",
                                  temp_c=theta["temp"])

    def evaluate(self, d: Mapping[str, float], s_hat: np.ndarray,
                 theta: Mapping[str, float]) -> Dict[str, float]:
        """Simulate and extract; a failed testbench yields spec-violating
        sentinel values rather than an exception — a manufactured circuit
        that cannot be measured (no gain crossing, and in pathological
        design corners not even a DC solution) is a yield loss, not a
        tool crash."""
        bench = self._bench(d, s_hat, theta)
        try:
            return self.extract(bench, d, theta)
        except (AnalysisError, ExtractionError):
            return {p.name: DEAD_CIRCUIT_PERFORMANCES.get(p.name, 0.0)
                    for p in self.performances}

    def constraints(self, d: Mapping[str, float],
                    theta: Optional[Mapping[str, float]] = None
                    ) -> Dict[str, float]:
        """Sizing rules at the nominal statistical point."""
        if theta is None:
            theta = self.operating_range.nominal()
        bench = self._bench(d, self.statistical_space.nominal(), theta)
        values: Dict[str, float] = {}
        try:
            ops = bench.op.operating_points()
        except Exception:
            # No DC solution at all: report every rule as badly violated.
            return {name: -1.0 for name in self.constraint_names}
        for device in self.saturation_devices:
            op = ops[device]
            values[f"vov_{device}"] = op["vov"] - VOV_MARGIN
            values[f"sat_{device}"] = (op["vds"] - op["vdsat"]) - SAT_MARGIN
        return values

    # -- shared sub-circuit builders -----------------------------------------------
    @staticmethod
    def add_mosfet(circuit: Circuit, pv: PhysicalVariations, name: str,
                   d_node: str, g_node: str, s_node: str, b_node: str,
                   model, w: float, l: float, m: int = 1) -> None:
        """Add a transistor with its statistical perturbations applied."""
        circuit.mosfet(name, d_node, g_node, s_node, b_node, model,
                       w=w, l=l, m=m,
                       delta_vto=pv.delta_vto(name),
                       beta_factor=pv.beta_factor(name))
