"""Miller (two-stage) operational amplifier — Fig. 8 of the paper.

Classic two-stage topology with Miller compensation:

* ``M1/M2``  NMOS input differential pair,
* ``M3/M4``  PMOS current-mirror load (M3 diode-connected),
* ``M5``     NMOS tail current source, mirrored from the diode ``M8``,
* ``M6``     PMOS common-source second stage,
* ``M7``     NMOS output current sink (same mirror as M5),
* ``CC``(+ nulling resistor ``RZ``) Miller compensation, ``CL`` load,
* ``RB``     supply-referred bias resistor: the bias current is
  ``(VDD - VGS(M8)) / RB`` and therefore varies with supply, temperature
  and global process shifts — which is what gives the specs their
  operational spread.

Following the paper (Sec. 6, Table 6), this template models **global
variations only**.

Performances (presentation units): ``a0`` [dB], ``ft`` [MHz], ``pm`` [deg],
``sr`` [V/us], ``power`` [mW].  Specifications follow Table 6 of the
paper: A0 > 80 dB, ft > 1.3 MHz, PM > 60 deg, SR > 3 V/us, Power < 1.3 mW.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping

from ..circuit.netlist import Circuit
from ..evaluation.measure import OpenLoopOpampBench, add_openloop_bench
from ..evaluation.template import DesignParameter
from ..pdk.generic035 import GENERIC035
from ..pdk.process import Process
from ..spec.specification import Performance, Spec
from ..statistics.space import PhysicalVariations, StatisticalSpace
from .base import OpampTemplate, default_operating_range

#: Fixed elements (not designable).
LOAD_CAPACITANCE = 20e-12
DIODE_W = 20e-6  # bias diode M8 width
INPUT_VCM_FRACTION = 0.45  # input common mode as fraction of VDD

_DESIGN_PARAMETERS = (
    DesignParameter("w1", 5e-6, 200e-6, 40e-6),    # input pair width
    DesignParameter("l1", 0.35e-6, 5e-6, 2.0e-6),  # input pair length
    DesignParameter("w3", 5e-6, 200e-6, 25e-6),    # mirror load width
    DesignParameter("l3", 0.35e-6, 5e-6, 2.0e-6),  # mirror load length
    DesignParameter("w5", 5e-6, 300e-6, 30e-6),    # tail width
    DesignParameter("l5", 0.35e-6, 5e-6, 1.0e-6),  # tail/mirror length
    DesignParameter("w6", 20e-6, 1000e-6, 200e-6),  # 2nd stage width
    DesignParameter("l6", 0.35e-6, 5e-6, 1.0e-6),  # 2nd stage length
    DesignParameter("w7", 5e-6, 500e-6, 60e-6),    # output sink width
    DesignParameter("cc", 2e-12, 30e-12, 10e-12, unit="F"),  # Miller cap
    DesignParameter("rb", 3e4, 5e5, 1.2e5, unit="Ohm"),      # bias resistor
)

_PERFORMANCES = (
    Performance("a0", "dB", "open-loop DC gain"),
    Performance("ft", "MHz", "unity-gain (transit) frequency"),
    Performance("pm", "deg", "phase margin"),
    Performance("sr", "V/us", "positive slew rate (I_tail / CC)"),
    Performance("power", "mW", "static supply power"),
)

_SPECS = (
    Spec("a0", ">=", 80.0),
    Spec("ft", ">=", 1.3),
    Spec("pm", ">=", 60.0),
    Spec("sr", ">=", 3.0),
    Spec("power", "<=", 1.3),
)

#: All transistors and their polarities (for global-variation application).
_POLARITIES = {"M1": 1, "M2": 1, "M3": -1, "M4": -1, "M5": 1, "M6": -1,
               "M7": 1, "M8": 1}


class MillerOpamp(OpampTemplate):
    """The Fig.-8 benchmark circuit as a sizing problem."""

    name = "miller"
    saturation_devices = ("M1", "M2", "M3", "M4", "M5", "M6", "M7")

    def __init__(self, process: Process = GENERIC035):
        self.process = process
        space = StatisticalSpace(process, local_variations=(),
                                 with_global=True,
                                 device_polarities=_POLARITIES)
        super().__init__(_DESIGN_PARAMETERS, _PERFORMANCES, _SPECS,
                         default_operating_range(), space)

    # -- design equations -----------------------------------------------------
    def bias_current_estimate(self, d: Mapping[str, float],
                              vdd: float) -> float:
        """First-order estimate of the M8 bias current (for RZ sizing)."""
        vgs8 = -self.process.nmos.vto * -1 + 0.25  # ~ vth_n + overdrive
        return max((vdd - vgs8) / d["rb"], 1e-7)

    def nulling_resistance(self, d: Mapping[str, float],
                           vdd: float) -> float:
        """RZ ~ 1/gm6 from the square-law design equations."""
        i6 = self.bias_current_estimate(d, vdd) * d["w7"] / DIODE_W
        kp = self.process.pmos.kp
        gm6 = math.sqrt(max(2.0 * kp * (d["w6"] / d["l6"]) * i6, 1e-18))
        return 1.0 / gm6

    # -- netlist ----------------------------------------------------------------
    def build(self, d: Mapping[str, float], pv: PhysicalVariations,
              theta: Mapping[str, float]) -> Circuit:
        vdd = theta["vdd"]
        vcm = INPUT_VCM_FRACTION * vdd
        nmos = self.process.nmos
        pmos = self.process.pmos
        ckt = Circuit("miller-opamp")
        ckt.vsource("VDD", "vdd", "0", dc=vdd)

        # Bias branch: RB from the supply into the diode-connected M8.
        # Resistors carry the global sheet-resistance variation.
        res_factor = pv.resistance_factor
        ckt.resistor("RB", "vdd", "nbias", d["rb"] * res_factor)
        self.add_mosfet(ckt, pv, "M8", "nbias", "nbias", "0", "0",
                        nmos, w=DIODE_W, l=d["l5"])

        # First stage.
        self.add_mosfet(ckt, pv, "M5", "tail", "nbias", "0", "0",
                        nmos, w=d["w5"], l=d["l5"])
        self.add_mosfet(ckt, pv, "M1", "d1", "inn", "tail", "0",
                        nmos, w=d["w1"], l=d["l1"])
        self.add_mosfet(ckt, pv, "M2", "d2", "inp", "tail", "0",
                        nmos, w=d["w1"], l=d["l1"])
        self.add_mosfet(ckt, pv, "M3", "d1", "d1", "vdd", "vdd",
                        pmos, w=d["w3"], l=d["l3"])
        self.add_mosfet(ckt, pv, "M4", "d2", "d1", "vdd", "vdd",
                        pmos, w=d["w3"], l=d["l3"])

        # Second stage with Miller compensation.
        self.add_mosfet(ckt, pv, "M6", "out", "d2", "vdd", "vdd",
                        pmos, w=d["w6"], l=d["l6"])
        self.add_mosfet(ckt, pv, "M7", "out", "nbias", "0", "0",
                        nmos, w=d["w7"], l=d["l5"])
        rz = self.nulling_resistance(d, vdd)
        ckt.resistor("RZ", "d2", "zc", rz * res_factor)
        ckt.capacitor("CC", "zc", "out", d["cc"])
        ckt.capacitor("CL", "out", "0", LOAD_CAPACITANCE)

        add_openloop_bench(ckt, inp="inp", inn="inn", out="out", vcm=vcm)
        return ckt

    # -- extraction ----------------------------------------------------------------
    def extract(self, bench: OpenLoopOpampBench, d: Mapping[str, float],
                theta: Mapping[str, float]) -> Dict[str, float]:
        vdd = theta["vdd"]
        meas = bench.measure(vdd, with_pm=True)
        i5 = abs(bench.op.op("M5")["ids"])
        sr = i5 / d["cc"]  # positive slew: CC charged by the tail current
        return {
            "a0": meas.a0_db,
            "ft": meas.ft_hz / 1e6,
            "pm": meas.pm_deg,
            "sr": sr / 1e6,
            "power": meas.power_w * 1e3,
        }
