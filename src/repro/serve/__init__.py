"""Optimization-as-a-service: the ``repro.serve`` job server.

The paper's feasibility-guided yield flow is a long-running, restartable
computation; this subsystem turns the pieces the runtime already
provides — checkpoints, :class:`~repro.yieldsim.ShardPlan` workers,
``merge-verify`` splicing, budgets, fault policies — into a daemon that
clients talk to over a versioned JSON API:

* :class:`ServeApp` / :class:`ServeDaemon` — the asyncio job server
  (``repro serve``): submit/status/result/cancel plus health and queue
  telemetry,
* :class:`~repro.serve.queue.JobQueue` — multi-tenant priority queue;
  each job carries its own budget and fault policy,
* :class:`~repro.serve.store.ResultStore` — persistent result store
  keyed by a canonical content hash of (template + specs, seed,
  estimator config, schema version): identical requests are served from
  cache without simulation,
* :mod:`~repro.serve.jobs` — the request-execution path shared with the
  CLI (bit-identical results either way) and the automatic shard
  fan-out/merge,
* :mod:`~repro.serve.contract` — the wire format: versioned artifacts
  with provenance, validated on load,
* :class:`ServeClient` — the stdlib HTTP client behind ``repro
  submit/status/result/cancel``.
"""

from __future__ import annotations

from .client import ServeClient
from .contract import (KIND_MERGED, KIND_OPTIMIZE, KIND_YIELD,
                       SCHEMA_VERSION, check_merge_compatible,
                       load_result_artifact, make_provenance,
                       merged_provenance, validate_artifact, wrap_result)
from .jobs import (OptimizeRequest, YieldRequest, cache_key,
                   canonical_optimize_request, canonical_request,
                   execute_optimize, execute_optimize_job,
                   execute_yield, execute_yield_job, merge_artifacts,
                   optimize_artifact, optimize_cache_key,
                   optimize_result_dict, trace_fingerprint,
                   worker_heartbeat, yield_artifact)
from .queue import CANCELLED, DONE, FAILED, Job, JobQueue, QUEUED, RUNNING
from .server import ServeApp, ServeDaemon, ServerThread, run_daemon
from .store import ResultStore
from .wal import WriteAheadLog

__all__ = [
    "CANCELLED", "DONE", "FAILED", "Job", "JobQueue", "KIND_MERGED",
    "KIND_OPTIMIZE", "KIND_YIELD", "OptimizeRequest", "QUEUED",
    "RUNNING", "ResultStore", "SCHEMA_VERSION", "ServeApp",
    "ServeClient", "ServeDaemon", "ServerThread", "WriteAheadLog",
    "YieldRequest", "cache_key", "canonical_optimize_request",
    "canonical_request", "check_merge_compatible", "execute_optimize",
    "execute_optimize_job", "execute_yield", "execute_yield_job",
    "load_result_artifact", "make_provenance", "merge_artifacts",
    "merged_provenance", "optimize_artifact", "optimize_cache_key",
    "optimize_result_dict", "run_daemon", "trace_fingerprint",
    "validate_artifact", "worker_heartbeat", "wrap_result",
    "yield_artifact",
]
