"""Content-addressed persistent result store of the job server.

Artifacts are stored under their request's canonical content hash
(:func:`repro.serve.jobs.cache_key`), two-level sharded like git's
object store (``objects/ab/abcdef....json``) so a directory never holds
millions of entries.  Writes are atomic (temp file + rename in the same
directory), so a concurrently reading daemon — or a second daemon
sharing the store over a network filesystem — sees either the complete
artifact or nothing.  Every artifact is validated against the wire
contract on ``get`` *and* ``put``: a corrupt or schema-incompatible
entry is treated as a miss, never served.

Beyond the object cache, the store root owns the daemon's durable
state: the job write-ahead log (``wal.jsonl``, see
:mod:`repro.serve.wal`), per-job optimizer checkpoints
(``checkpoints/<job>.json``) that recovered ``optimize`` jobs resume
from, and transient worker heartbeat files (``heartbeats/<job>``).

**Garbage collection** (:meth:`gc`) keeps the store bounded: entries
older than ``max_age_s`` are evicted, and when the object + checkpoint
footprint exceeds ``max_bytes``, the least-recently-*accessed* entries
go first (every cache hit refreshes the entry's mtime, so mtime is the
access clock — unlike atime it survives ``noatime`` mounts).  Paths in
the caller's ``protect`` set — the daemon passes the checkpoints of
every live job — are never evicted regardless of age or pressure.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import time
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ArtifactError
from .contract import validate_artifact

_KEY_CHARS = set("0123456789abcdef")

#: characters a job-derived filename may contain
_SAFE_NAME = re.compile(r"^[A-Za-z0-9._-]+$")


class ResultStore:
    """Filesystem-backed content-addressed artifact store."""

    def __init__(self, root: str, max_bytes: Optional[int] = None,
                 max_age_s: Optional[float] = None):
        self.root = os.path.abspath(root)
        self.objects = os.path.join(self.root, "objects")
        self.checkpoints = os.path.join(self.root, "checkpoints")
        self.heartbeats = os.path.join(self.root, "heartbeats")
        os.makedirs(self.objects, exist_ok=True)
        #: GC bounds (None = unbounded on that axis)
        self.max_bytes = max_bytes
        self.max_age_s = max_age_s
        #: cache telemetry since this process opened the store
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.invalid = 0
        self.evictions = 0

    def _path(self, key: str) -> str:
        if len(key) < 3 or not set(key) <= _KEY_CHARS:
            raise ArtifactError(f"malformed store key {key!r}")
        return os.path.join(self.objects, key[:2], f"{key}.json")

    def _job_file(self, directory: str, name: str,
                  suffix: str = "") -> str:
        if not _SAFE_NAME.match(name):
            raise ArtifactError(f"malformed job id {name!r}")
        os.makedirs(directory, exist_ok=True)
        return os.path.join(directory, name + suffix)

    def checkpoint_path(self, job_id: str) -> str:
        """The store-owned optimizer checkpoint of ``job_id`` (written
        by optimize workers, resumed from after a crash)."""
        return self._job_file(self.checkpoints, job_id, ".json")

    def heartbeat_path(self, job_id: str) -> str:
        """The heartbeat file workers of ``job_id`` touch while alive
        (its mtime is the supervisor's liveness clock)."""
        return self._job_file(self.heartbeats, job_id)

    def wal_path(self) -> str:
        """Location of the job write-ahead log inside this store."""
        return os.path.join(self.root, "wal.jsonl")

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def get(self, key: str) -> Optional[Dict]:
        """The stored artifact under ``key``, or None.  Unreadable or
        contract-violating entries count as misses (and are left in
        place for forensics — the daemon recomputes and overwrites).
        A hit refreshes the entry's mtime (the LRU access clock)."""
        path = self._path(key)
        try:
            with open(path) as handle:
                artifact = json.load(handle)
            validate_artifact(artifact, source=path)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, ArtifactError):
            self.invalid += 1
            self.misses += 1
            return None
        try:
            os.utime(path, None)
        except OSError:  # pragma: no cover - concurrent eviction
            pass
        self.hits += 1
        return artifact

    def put(self, key: str, artifact: Dict) -> str:
        """Atomically store ``artifact`` under ``key``; returns the
        object path.  Last-writer-wins on a race — both writers hold a
        complete, validated artifact for the same canonical request, so
        either outcome is correct."""
        validate_artifact(artifact, source=f"store key {key}")
        path = self._path(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=directory, suffix=".tmp", delete=False)
        try:
            with handle:
                json.dump(artifact, handle)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    # -- garbage collection ----------------------------------------------------
    def _entries(self) -> List[Tuple[float, int, str]]:
        """``(mtime, size, path)`` of every evictable file (objects,
        checkpoints, and stale heartbeat droppings)."""
        entries = []
        for base in (self.objects, self.checkpoints, self.heartbeats):
            for dirpath, _, files in os.walk(base):
                for name in files:
                    if name.endswith(".tmp"):
                        continue
                    path = os.path.join(dirpath, name)
                    try:
                        stat = os.stat(path)
                    except OSError:
                        continue
                    entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def gc(self, protect: Iterable[str] = (),
           now: Optional[float] = None) -> int:
        """Evict stored entries down to the configured bounds; returns
        the number of files removed.

        Two passes: everything older than ``max_age_s`` goes first, then
        least-recently-accessed entries until the total footprint is
        under ``max_bytes``.  Paths in ``protect`` (live jobs'
        checkpoints and heartbeats) are never evicted; the WAL lives
        outside the swept directories and is never touched.
        """
        if self.max_bytes is None and self.max_age_s is None:
            return 0
        protected = {os.path.abspath(path) for path in protect}
        now = time.time() if now is None else now
        entries = self._entries()
        evicted = 0

        def _evict(path: str) -> bool:
            try:
                os.unlink(path)
            except OSError:
                return False
            return True

        if self.max_age_s is not None:
            survivors = []
            for mtime, size, path in entries:
                if path not in protected \
                        and now - mtime > self.max_age_s:
                    evicted += _evict(path)
                else:
                    survivors.append((mtime, size, path))
            entries = survivors
        if self.max_bytes is not None:
            total = sum(size for _, size, _ in entries)
            for mtime, size, path in sorted(entries):
                if total <= self.max_bytes:
                    break
                if path in protected:
                    continue
                if _evict(path):
                    evicted += 1
                    total -= size
        self.evictions += evicted
        return evicted

    def total_bytes(self) -> int:
        return sum(size for _, size, _ in self._entries())

    def __len__(self) -> int:
        count = 0
        for _, _, files in os.walk(self.objects):
            count += sum(1 for name in files if name.endswith(".json"))
        return count

    def stats(self) -> Dict:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "invalid": self.invalid,
                "evictions": self.evictions, "objects": len(self),
                "total_bytes": self.total_bytes(),
                "max_bytes": self.max_bytes,
                "max_age_s": self.max_age_s, "root": self.root}


__all__ = ["ResultStore"]
