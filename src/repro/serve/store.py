"""Content-addressed persistent result store of the job server.

Artifacts are stored under their request's canonical content hash
(:func:`repro.serve.jobs.cache_key`), two-level sharded like git's
object store (``objects/ab/abcdef....json``) so a directory never holds
millions of entries.  Writes are atomic (temp file + rename in the same
directory), so a concurrently reading daemon — or a second daemon
sharing the store over a network filesystem — sees either the complete
artifact or nothing.  Every artifact is validated against the wire
contract on ``get`` *and* ``put``: a corrupt or schema-incompatible
entry is treated as a miss, never served.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Optional

from ..errors import ArtifactError
from .contract import validate_artifact

_KEY_CHARS = set("0123456789abcdef")


class ResultStore:
    """Filesystem-backed content-addressed artifact store."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self.objects = os.path.join(self.root, "objects")
        os.makedirs(self.objects, exist_ok=True)
        #: cache telemetry since this process opened the store
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.invalid = 0

    def _path(self, key: str) -> str:
        if len(key) < 3 or not set(key) <= _KEY_CHARS:
            raise ArtifactError(f"malformed store key {key!r}")
        return os.path.join(self.objects, key[:2], f"{key}.json")

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def get(self, key: str) -> Optional[Dict]:
        """The stored artifact under ``key``, or None.  Unreadable or
        contract-violating entries count as misses (and are left in
        place for forensics — the daemon recomputes and overwrites)."""
        path = self._path(key)
        try:
            with open(path) as handle:
                artifact = json.load(handle)
            validate_artifact(artifact, source=path)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, ArtifactError):
            self.invalid += 1
            self.misses += 1
            return None
        self.hits += 1
        return artifact

    def put(self, key: str, artifact: Dict) -> str:
        """Atomically store ``artifact`` under ``key``; returns the
        object path.  Last-writer-wins on a race — both writers hold a
        complete, validated artifact for the same canonical request, so
        either outcome is correct."""
        validate_artifact(artifact, source=f"store key {key}")
        path = self._path(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=directory, suffix=".tmp", delete=False)
        try:
            with handle:
                json.dump(artifact, handle)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    def __len__(self) -> int:
        count = 0
        for _, _, files in os.walk(self.objects):
            count += sum(1 for name in files if name.endswith(".json"))
        return count

    def stats(self) -> Dict:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "invalid": self.invalid,
                "objects": len(self), "root": self.root}


__all__ = ["ResultStore"]
