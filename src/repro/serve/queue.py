"""Multi-tenant priority job queue of the ``repro.serve`` daemon.

Jobs are plain records with a small state machine::

    queued -> running -> done
                      -> failed
    queued -> cancelled            (before dispatch)
    running -> cancelled           (cancel requested; result discarded)

Scheduling is strict priority (higher first), FIFO within a priority
level; a ``max_queued_per_tenant`` cap keeps one chatty client from
starving the queue for everyone else.  The queue is a pure data
structure — no threads, no asyncio — so the daemon drives it from its
event loop and the tests drive it directly.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..errors import ServeError

#: job states
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: states a job can still leave
_ACTIVE = (QUEUED, RUNNING)


@dataclass
class Job:
    """One submitted job and its lifecycle record."""

    id: str
    kind: str
    request: Dict
    tenant: str = "default"
    priority: int = 0
    #: shard fan-out of the verification (1 = no decomposition)
    shards: int = 1
    #: optional per-job budget: {"deadline_s": float,
    #: "max_simulations": int}
    budget: Optional[Dict] = None
    #: optional checkpoint path to splice a merged verification into
    splice_checkpoint: Optional[str] = None
    state: str = QUEUED
    #: canonical content hash of the request (the result-store key)
    cache_key: str = ""
    #: True when the result was served from the store without simulation
    cache_hit: bool = False
    #: simulator calls spent by *this* job (0 on a cache hit)
    simulations: int = 0
    #: True when fresh spend exceeded budget["max_simulations"]
    budget_exceeded: bool = False
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def to_dict(self) -> Dict:
        return {
            "id": self.id,
            "kind": self.kind,
            "request": dict(self.request),
            "tenant": self.tenant,
            "priority": self.priority,
            "shards": self.shards,
            "budget": self.budget,
            "splice_checkpoint": self.splice_checkpoint,
            "state": self.state,
            "cache_key": self.cache_key,
            "cache_hit": self.cache_hit,
            "simulations": self.simulations,
            "budget_exceeded": self.budget_exceeded,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


class JobQueue:
    """Priority queue + job registry (see module docstring)."""

    def __init__(self, max_queued_per_tenant: Optional[int] = None):
        self.jobs: Dict[str, Job] = {}
        self._heap: List = []
        self._seq = itertools.count()
        self.max_queued_per_tenant = max_queued_per_tenant

    # -- submission ------------------------------------------------------------
    def submit(self, job: Job) -> Job:
        if job.id in self.jobs:
            raise ServeError(f"duplicate job id {job.id!r}")
        if self.max_queued_per_tenant is not None:
            queued = sum(1 for other in self.jobs.values()
                         if other.tenant == job.tenant
                         and other.state == QUEUED)
            if queued >= self.max_queued_per_tenant:
                raise ServeError(
                    f"tenant {job.tenant!r} already has {queued} queued "
                    f"job(s); per-tenant limit is "
                    f"{self.max_queued_per_tenant}")
        self.jobs[job.id] = job
        if job.state == QUEUED:
            heapq.heappush(self._heap,
                           (-job.priority, next(self._seq), job.id))
        return job

    # -- scheduling ------------------------------------------------------------
    def pop_next(self) -> Optional[Job]:
        """The highest-priority queued job, marked running; None when
        nothing is dispatchable."""
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            job = self.jobs.get(job_id)
            # Cancelled-while-queued entries stay in the heap until
            # popped here (lazy deletion).
            if job is not None and job.state == QUEUED:
                job.state = RUNNING
                job.started_at = time.time()
                return job
        return None

    # -- lookups ---------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise ServeError(f"unknown job id {job_id!r}")

    # -- transitions -----------------------------------------------------------
    def finish(self, job_id: str, *, error: Optional[str] = None) -> Job:
        job = self.get(job_id)
        if job.state not in _ACTIVE:
            return job  # cancelled mid-flight: keep the terminal state
        job.state = FAILED if error else DONE
        job.error = error
        job.finished_at = time.time()
        return job

    def cancel(self, job_id: str) -> Job:
        """Best-effort cancel: a queued job never runs; a running job is
        marked cancelled and its eventual result is discarded (worker
        processes are not killed mid-simulation)."""
        job = self.get(job_id)
        if job.state in _ACTIVE:
            job.state = CANCELLED
            job.finished_at = time.time()
        return job

    # -- telemetry -------------------------------------------------------------
    def stats(self) -> Dict:
        by_state: Dict[str, int] = {}
        by_tenant: Dict[str, Dict[str, int]] = {}
        cache_hits = 0
        simulations = 0
        for job in self.jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
            tenant = by_tenant.setdefault(job.tenant, {})
            tenant[job.state] = tenant.get(job.state, 0) + 1
            cache_hits += int(job.cache_hit)
            simulations += job.simulations
        return {
            "jobs": len(self.jobs),
            "by_state": by_state,
            "by_tenant": by_tenant,
            "cache_hits": cache_hits,
            "simulations": simulations,
        }


__all__ = ["CANCELLED", "DONE", "FAILED", "Job", "JobQueue", "QUEUED",
           "RUNNING"]
