"""Multi-tenant priority job queue of the ``repro.serve`` daemon.

Jobs are plain records with a small state machine::

    queued -> running -> done
                      -> failed
                      -> queued               (supervised retry)
    queued -> cancelled            (before dispatch)
    running -> cancelled           (cancel requested; worker terminated)

Scheduling is strict priority (higher first), FIFO within a priority
level; a ``max_queued_per_tenant`` cap keeps one chatty client from
starving the queue for everyone else.  The queue is a pure data
structure — no threads, no asyncio — so the daemon drives it from its
event loop and the tests drive it directly.

When constructed with a :class:`~repro.serve.wal.WriteAheadLog`, every
state transition is durably appended *before* the in-memory update, so
a crashed daemon can replay the log and pick up exactly where it died
(see :meth:`restore` for the replay side).
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..errors import ServeError
from .wal import (EVENT_CANCEL, EVENT_FINISH, EVENT_RETRY, EVENT_START,
                  EVENT_SUBMIT, WriteAheadLog)

#: job states
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: states a job can still leave
_ACTIVE = (QUEUED, RUNNING)


@dataclass
class Job:
    """One submitted job and its lifecycle record."""

    id: str
    kind: str
    request: Dict
    tenant: str = "default"
    priority: int = 0
    #: shard fan-out of the verification (1 = no decomposition)
    shards: int = 1
    #: optional per-job budget: {"deadline_s": float,
    #: "max_simulations": int}
    budget: Optional[Dict] = None
    #: optional checkpoint path to splice a merged verification into
    splice_checkpoint: Optional[str] = None
    #: store-owned checkpoint path of an ``optimize`` job (the file a
    #: recovered attempt resumes from)
    checkpoint: Optional[str] = None
    state: str = QUEUED
    #: canonical content hash of the request (the result-store key)
    cache_key: str = ""
    #: True when the result was served from the store without simulation
    cache_hit: bool = False
    #: simulator calls spent by *this* job (0 on a cache hit)
    simulations: int = 0
    #: True when fresh spend exceeded budget["max_simulations"]
    budget_exceeded: bool = False
    error: Optional[str] = None
    #: 1-based execution attempt (bumped by retries and crash recovery)
    attempt: int = 1
    #: True when this job was re-enqueued by daemon-restart recovery
    recovered: bool = False
    #: last worker heartbeat timestamp observed by the supervisor
    heartbeat_at: Optional[float] = None
    #: why a terminal job stopped the way it did (e.g. "cancelled")
    stop_reason: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def to_dict(self) -> Dict:
        return {
            "id": self.id,
            "kind": self.kind,
            "request": dict(self.request),
            "tenant": self.tenant,
            "priority": self.priority,
            "shards": self.shards,
            "budget": self.budget,
            "splice_checkpoint": self.splice_checkpoint,
            "checkpoint": self.checkpoint,
            "state": self.state,
            "cache_key": self.cache_key,
            "cache_hit": self.cache_hit,
            "simulations": self.simulations,
            "budget_exceeded": self.budget_exceeded,
            "error": self.error,
            "attempt": self.attempt,
            "recovered": self.recovered,
            "heartbeat_at": self.heartbeat_at,
            "stop_reason": self.stop_reason,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Job":
        """Rebuild a job from its :meth:`to_dict` form (WAL replay).
        Unknown fields are ignored, missing ones default, so logs from
        adjacent code versions stay readable."""
        try:
            return cls(
                id=data["id"],
                kind=data.get("kind", "yield"),
                request=dict(data.get("request", {})),
                tenant=data.get("tenant", "default"),
                priority=int(data.get("priority", 0)),
                shards=int(data.get("shards", 1)),
                budget=dict(data["budget"]) if data.get("budget") else None,
                splice_checkpoint=data.get("splice_checkpoint"),
                checkpoint=data.get("checkpoint"),
                state=data.get("state", QUEUED),
                cache_key=data.get("cache_key", ""),
                cache_hit=bool(data.get("cache_hit", False)),
                simulations=int(data.get("simulations", 0)),
                budget_exceeded=bool(data.get("budget_exceeded", False)),
                error=data.get("error"),
                attempt=int(data.get("attempt", 1)),
                recovered=bool(data.get("recovered", False)),
                heartbeat_at=data.get("heartbeat_at"),
                stop_reason=data.get("stop_reason"),
                submitted_at=float(data.get("submitted_at", time.time())),
                started_at=data.get("started_at"),
                finished_at=data.get("finished_at"))
        except (KeyError, TypeError, ValueError) as exc:
            raise ServeError(f"invalid job record: {exc}")


class JobQueue:
    """Priority queue + job registry (see module docstring)."""

    def __init__(self, max_queued_per_tenant: Optional[int] = None,
                 wal: Optional[WriteAheadLog] = None):
        self.jobs: Dict[str, Job] = {}
        self._heap: List = []
        self._seq = itertools.count()
        self.max_queued_per_tenant = max_queued_per_tenant
        #: optional write-ahead log; every transition is appended before
        #: the in-memory state changes
        self.wal = wal

    # -- submission ------------------------------------------------------------
    def submit(self, job: Job) -> Job:
        if job.id in self.jobs:
            raise ServeError(f"duplicate job id {job.id!r}")
        if self.max_queued_per_tenant is not None:
            queued = sum(1 for other in self.jobs.values()
                         if other.tenant == job.tenant
                         and other.state == QUEUED)
            if queued >= self.max_queued_per_tenant:
                raise ServeError(
                    f"tenant {job.tenant!r} already has {queued} queued "
                    f"job(s); per-tenant limit is "
                    f"{self.max_queued_per_tenant}")
        if self.wal is not None:
            # Cache-hit submissions arrive already terminal; the single
            # submit event carries their full (done) record.
            self.wal.append(EVENT_SUBMIT, job=job.to_dict())
        self.jobs[job.id] = job
        if job.state == QUEUED:
            self._push(job)
        return job

    def restore(self, job: Job) -> Job:
        """Register a replayed job without logging (the WAL snapshot
        already holds its state); queued jobs re-enter the heap."""
        if job.id in self.jobs:
            raise ServeError(f"duplicate job id {job.id!r}")
        self.jobs[job.id] = job
        if job.state == QUEUED:
            self._push(job)
        return job

    def _push(self, job: Job) -> None:
        heapq.heappush(self._heap,
                       (-job.priority, next(self._seq), job.id))

    # -- scheduling ------------------------------------------------------------
    def pop_next(self) -> Optional[Job]:
        """The highest-priority queued job, marked running; None when
        nothing is dispatchable."""
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            job = self.jobs.get(job_id)
            # Cancelled-while-queued entries stay in the heap until
            # popped here (lazy deletion).
            if job is not None and job.state == QUEUED:
                if self.wal is not None:
                    self.wal.append(EVENT_START, id=job.id,
                                    attempt=job.attempt)
                job.state = RUNNING
                job.started_at = time.time()
                return job
        return None

    # -- lookups ---------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise ServeError(f"unknown job id {job_id!r}")

    def active_jobs(self) -> List[Job]:
        """Queued and running jobs, oldest first (supervision view)."""
        return sorted((job for job in self.jobs.values()
                       if job.state in _ACTIVE),
                      key=lambda job: job.submitted_at)

    # -- transitions -----------------------------------------------------------
    def finish(self, job_id: str, *, error: Optional[str] = None) -> Job:
        job = self.get(job_id)
        if job.state not in _ACTIVE:
            return job  # cancelled mid-flight: keep the terminal state
        if self.wal is not None:
            self.wal.append(
                EVENT_FINISH, id=job.id,
                state=FAILED if error else DONE, error=error,
                simulations=job.simulations, cache_hit=job.cache_hit,
                budget_exceeded=job.budget_exceeded,
                stop_reason=job.stop_reason)
        job.state = FAILED if error else DONE
        job.error = error
        job.finished_at = time.time()
        return job

    def requeue(self, job_id: str, *, error: Optional[str] = None) -> Job:
        """Send a running job back to the queue for another attempt
        (worker crash / wedge recovery); bumps ``attempt``."""
        job = self.get(job_id)
        if job.state not in _ACTIVE:
            return job  # cancelled while the retry was pending
        if self.wal is not None:
            self.wal.append(EVENT_RETRY, id=job.id,
                            attempt=job.attempt + 1, error=error)
        job.attempt += 1
        job.state = QUEUED
        job.started_at = None
        job.heartbeat_at = None
        job.error = error
        self._push(job)
        return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: a queued job never runs; a running job's worker
        is terminated by the daemon and the job records
        ``stop_reason="cancelled"``."""
        job = self.get(job_id)
        if job.state in _ACTIVE:
            if self.wal is not None:
                self.wal.append(EVENT_CANCEL, id=job.id,
                                stop_reason="cancelled")
            job.state = CANCELLED
            job.stop_reason = "cancelled"
            job.finished_at = time.time()
        return job

    # -- telemetry -------------------------------------------------------------
    def stats(self) -> Dict:
        by_state: Dict[str, int] = {}
        by_tenant: Dict[str, Dict[str, int]] = {}
        cache_hits = 0
        simulations = 0
        recovered = 0
        retried = 0
        for job in self.jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
            tenant = by_tenant.setdefault(job.tenant, {})
            tenant[job.state] = tenant.get(job.state, 0) + 1
            cache_hits += int(job.cache_hit)
            simulations += job.simulations
            recovered += int(job.recovered)
            retried += max(0, job.attempt - 1)
        return {
            "jobs": len(self.jobs),
            "by_state": by_state,
            "by_tenant": by_tenant,
            "cache_hits": cache_hits,
            "simulations": simulations,
            "recovered": recovered,
            "retries": retried,
        }


__all__ = ["CANCELLED", "DONE", "FAILED", "Job", "JobQueue", "QUEUED",
           "RUNNING"]
