"""The ``repro.serve`` daemon: asyncio HTTP front end, durable job
dispatch, worker supervision, shard orchestration, and the
content-addressed cache path.

Layering::

    ServeDaemon   -- minimal HTTP/1.1 on asyncio streams (stdlib only)
      ServeApp    -- submit/status/result/cancel/stats; owns the queue,
                     the WAL, the result store, the worker pool, and
                     the supervisor task
        JobQueue  -- priority scheduling (repro.serve.queue), WAL-backed
        WriteAheadLog -- durable job transitions (repro.serve.wal)
        ResultStore -- content-addressed artifacts + per-job optimizer
                     checkpoints + heartbeat files (repro.serve.store)
        workers   -- repro.serve.jobs.execute_yield_job /
                     execute_optimize_job in a ProcessPoolExecutor

**Durability.**  Every queue transition is WAL-appended before it takes
effect, so construction replays the log: terminal jobs rejoin the
registry (their artifacts live in the store), queued jobs re-enter the
heap, and jobs that were *running* when the previous process died are
re-enqueued with ``attempt + 1`` and ``recovered: true``.  A recovered
``optimize`` job resumes from its store-owned checkpoint and — by the
runtime's determinism contract — reproduces the uninterrupted
trajectory bit-identically (see
:func:`~repro.serve.jobs.trace_fingerprint`).

**Supervision.**  Workers heartbeat a per-job file once a second; the
supervisor reads the file's mtime.  A running job whose heartbeat goes
stale past ``heartbeat_timeout_s`` is declared wedged: the pool is
killed (the same degradation path :class:`BrokenProcessPool` failures
take) and every affected job is retried with exponential backoff,
``retry_backoff_s * 2**(attempt-1)``, up to ``max_attempts``.  Worker
faults are classified through the runtime's
:class:`~repro.runtime.FaultPolicy` taxonomy: transient analysis
failures and pool breakage retry; structural errors fail the job
immediately.  The supervisor also compacts the WAL and runs store GC
(protecting live jobs' checkpoints) in the background.

**Cancellation** of a running job cancels its pool futures and, when a
worker already picked the task up, kills the pool — the job records
``stop_reason="cancelled"`` and innocent siblings caught in the pool
kill are retried, not failed.

**Drain** (``SIGTERM``): stop accepting submissions, give running jobs
a grace period, then kill the pool and compact the WAL — interrupted
jobs stay ``running`` in the log, so the next start recovers them.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import time
import uuid
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Mapping, Optional

from ..errors import ArtifactError, ReproError, ServeError
from .jobs import (OptimizeRequest, YieldRequest, cache_key,
                   execute_optimize_job, execute_yield_job,
                   merge_artifacts, optimize_cache_key)
from .queue import CANCELLED, DONE, Job, JobQueue, QUEUED, RUNNING
from .store import ResultStore
from .wal import WriteAheadLog

#: API version prefix of every route
API_PREFIX = "/v1"

#: job kinds this build serves
_KINDS = ("yield", "optimize")

#: WAL appends between background compactions
_COMPACT_EVERY = 500

#: exception types that indicate the worker died rather than the job
#: being wrong (always retryable, like the BatchExecutor degradation)
_POOL_FAULTS = (BrokenProcessPool, ConnectionError, OSError)


def _pool_worker_guard(poll_interval_s: float = 1.0) -> None:
    """Pool-worker initializer: hard-exit when the daemon dies.

    A SIGKILLed daemon cannot clean up its pool, and an orphaned
    worker would otherwise block forever on the call queue.  The guard
    watches for re-parenting (``getppid`` changes when the parent is
    gone) from a daemon thread and exits the worker outright.
    """
    parent = os.getppid()

    def watch() -> None:
        while os.getppid() == parent:
            time.sleep(poll_interval_s)
        os._exit(1)

    threading.Thread(target=watch, daemon=True).start()


def _is_retryable(exc: BaseException) -> bool:
    """True when a failed attempt should be retried: the pool broke
    under it, or the fault classifies as transient in the runtime's
    :class:`~repro.runtime.FaultPolicy` taxonomy."""
    if isinstance(exc, _POOL_FAULTS):
        return True
    from ..runtime import FaultAction, FaultPolicy
    return FaultPolicy().classify(exc) == FaultAction.RETRY


class ServeApp:
    """The daemon's protocol-independent core (one per event loop)."""

    def __init__(self, store: ResultStore, workers: int = 2,
                 max_concurrent: Optional[int] = None,
                 max_queued_per_tenant: Optional[int] = None,
                 heartbeat_timeout_s: float = 60.0,
                 supervise_interval_s: float = 1.0,
                 max_attempts: int = 3,
                 retry_backoff_s: float = 0.5,
                 retry_after_s: float = 1.0,
                 gc_interval_s: float = 60.0):
        self.store = store
        self.workers = max(1, int(workers))
        self.wal = WriteAheadLog(store.wal_path())
        self.queue = JobQueue(
            max_queued_per_tenant=max_queued_per_tenant, wal=self.wal)
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self.supervise_interval_s = float(supervise_interval_s)
        self.max_attempts = max(1, int(max_attempts))
        self.retry_backoff_s = float(retry_backoff_s)
        self.retry_after_s = float(retry_after_s)
        self.gc_interval_s = float(gc_interval_s)
        self._max_concurrent = max_concurrent or self.workers
        self._executor: Optional[ProcessPoolExecutor] = None
        self._results: Dict[str, Dict] = {}
        self._running: set = set()
        #: live pool futures per running job (cancel/supervision handle)
        self._futures: Dict[str, List] = {}
        self._wakeup = asyncio.Event()
        self._closing = False
        self._draining = False
        self._dispatcher: Optional[asyncio.Task] = None
        self._supervisor: Optional[asyncio.Task] = None
        self._compacted_appends = 0
        self._last_gc = time.monotonic()
        #: pool kills since start (wedge detection + cancellation)
        self.pool_kills = 0
        #: job ids re-enqueued by startup recovery
        self.recovered_jobs: List[str] = []
        self._recover()

    # -- recovery --------------------------------------------------------------
    def _recover(self) -> None:
        """Replay the WAL into the registry; re-enqueue interrupted
        work (see module docstring)."""
        records = self.wal.replay()
        if not records:
            return
        for record in records:
            job = Job.from_dict(record)
            if job.state == RUNNING:
                # The previous process died mid-attempt: back to the
                # queue as a new, recovered attempt.
                job.state = QUEUED
                job.attempt += 1
                job.recovered = True
                job.started_at = None
                job.heartbeat_at = None
                job.error = None
            elif job.state == QUEUED:
                job.recovered = True
            self.queue.restore(job)
            if job.state == QUEUED:
                self.recovered_jobs.append(job.id)
        self._compact_wal()

    def _compact_wal(self) -> None:
        self.wal.compact(job.to_dict()
                         for job in self.queue.jobs.values())
        self._compacted_appends = self.wal.appends

    # -- lifecycle -------------------------------------------------------------
    def _ensure_started(self) -> None:
        loop = asyncio.get_running_loop()
        if self._dispatcher is None:
            self._dispatcher = loop.create_task(self._dispatch_loop())
            # Recovered queued jobs must dispatch without a new submit.
            self._wakeup.set()
        if self._supervisor is None:
            self._supervisor = loop.create_task(self._supervise_loop())

    def start(self) -> None:
        """Start the dispatcher and supervisor on the running loop
        (idempotent; also called lazily by :meth:`submit`)."""
        self._ensure_started()

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_pool_worker_guard)
        return self._executor

    def _kill_pool(self) -> None:
        """Forcibly terminate every pool worker (cancellation / wedge
        recovery).  Pending futures raise :class:`BrokenProcessPool`,
        which the retry path classifies as retryable."""
        executor = self._executor
        self._executor = None
        if executor is None:
            return
        self.pool_kills += 1
        for process in list(
                getattr(executor, "_processes", {}).values()):
            try:
                process.kill()
            except OSError:  # pragma: no cover - already gone
                pass
        executor.shutdown(wait=False, cancel_futures=True)

    async def drain(self, grace_s: float = 10.0) -> None:
        """Graceful SIGTERM path: stop accepting, give running jobs
        ``grace_s`` to finish, then kill the pool and compact the WAL.
        Interrupted jobs stay ``running`` in the log — the next daemon
        start recovers and resumes them."""
        self._draining = True
        deadline = time.monotonic() + max(0.0, grace_s)
        while self._running and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        if self._running:
            self._kill_pool()
            # Give the broken-pool exceptions a beat to propagate so
            # the WAL compaction below sees settled state.
            await asyncio.sleep(0.05)
        self._compact_wal()

    async def close(self) -> None:
        self._closing = True
        self._wakeup.set()
        for task in (self._dispatcher, self._supervisor):
            if task is not None:
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
        self._dispatcher = None
        self._supervisor = None
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # -- API methods -----------------------------------------------------------
    async def submit(self, payload: Mapping) -> Dict:
        """Submit a job; returns the job record (already ``done`` on a
        cache hit)."""
        if not isinstance(payload, Mapping):
            raise ServeError("job submission must be a JSON object")
        if self._draining:
            raise ServeError("daemon is draining; not accepting jobs")
        kind = payload.get("kind", "yield")
        if kind not in _KINDS:
            raise ServeError(
                f"unsupported job kind {kind!r}; this build serves "
                f"{', '.join(_KINDS)} jobs")
        shards = int(payload.get("shards", 1))
        if shards < 1:
            raise ServeError(f"shards must be >= 1, got {shards}")
        budget = payload.get("budget")
        if budget is not None and not isinstance(budget, Mapping):
            raise ServeError("budget must be an object")
        job = Job(
            id=uuid.uuid4().hex[:12],
            kind=kind,
            request={},
            tenant=str(payload.get("tenant", "default")),
            priority=int(payload.get("priority", 0)),
            shards=shards,
            budget=dict(budget) if budget else None,
            splice_checkpoint=payload.get("splice_checkpoint"))
        if kind == "optimize":
            request = OptimizeRequest.from_dict(
                payload.get("request", {}))
            if shards != 1:
                raise ServeError(
                    "optimize jobs do not shard; submit shards=1 (the "
                    "optimizer owns its own verification parallelism)")
            if job.splice_checkpoint:
                raise ServeError(
                    "splice_checkpoint applies to sharded yield jobs, "
                    "not optimize jobs")
            job.request = request.to_dict()
            job.cache_key = optimize_cache_key(request)
            # Every optimize job owns a store-resident checkpoint: the
            # worker writes it per iteration and a recovered attempt
            # resumes from it.
            job.checkpoint = self.store.checkpoint_path(job.id)
        else:
            request = YieldRequest.from_dict(payload.get("request", {}))
            if request.shard is not None:
                raise ServeError(
                    "submit the unsharded request and set 'shards': N; "
                    "the service orchestrates the shard fan-out itself")
            if shards > request.n_samples:
                raise ServeError(
                    f"cannot split {request.n_samples} samples into "
                    f"{shards} non-empty shards")
            job.request = request.to_dict()
            job.cache_key = cache_key(request, shards=shards)
        cached = self.store.get(job.cache_key)
        if cached is not None:
            job.state = DONE
            job.cache_hit = True
            job.simulations = 0
            job.started_at = job.finished_at = job.submitted_at
            self.queue.submit(job)
            self._results[job.id] = cached
            await self._maybe_splice(job, cached)
            return job.to_dict()
        self._ensure_started()
        self.queue.submit(job)
        self._wakeup.set()
        return job.to_dict()

    def status(self, job_id: str) -> Dict:
        return self.queue.get(job_id).to_dict()

    def result(self, job_id: str) -> Dict:
        """The finished job's artifact, with the job's own accounting
        stamped into the provenance block.  Falls back to the store for
        jobs completed by a previous daemon process."""
        job = self.queue.get(job_id)
        if job.state != DONE:
            raise ServeError(
                f"job {job_id} is {job.state}"
                + (f": {job.error}" if job.error else ""))
        artifact = self._results.get(job_id)
        if artifact is None:
            # Completed before the last restart: the registry came from
            # the WAL, the artifact from the content-addressed store.
            artifact = self.store.get(job.cache_key)
        if artifact is None:
            raise ServeError(
                f"job {job_id} finished but its artifact was evicted "
                f"from the store; resubmit to recompute")
        stamped = dict(artifact)
        provenance = dict(stamped.get("provenance", {}))
        provenance["job"] = {
            "id": job.id,
            "tenant": job.tenant,
            "cache_hit": job.cache_hit,
            "simulations": job.simulations,
            "shards": job.shards,
            "attempt": job.attempt,
            "recovered": job.recovered,
        }
        stamped["provenance"] = provenance
        return stamped

    def cancel(self, job_id: str) -> Dict:
        """Cancel a job.  A queued job never runs; a running job's pool
        futures are cancelled and, when a worker already picked the
        task up, the pool is killed — the attempt dies with it (caught
        siblings are retried by the supervision path)."""
        job = self.queue.get(job_id)
        was_running = job.state == RUNNING
        job = self.queue.cancel(job_id)
        if was_running and job.state == CANCELLED:
            live = [future for future in self._futures.get(job_id, ())
                    if not future.cancel() and not future.done()]
            if live:
                self._kill_pool()
        return job.to_dict()

    def stats(self) -> Dict:
        now = time.time()
        active = []
        for job in self.queue.active_jobs():
            beat = job.heartbeat_at or job.started_at
            active.append({
                "id": job.id,
                "kind": job.kind,
                "state": job.state,
                "tenant": job.tenant,
                "attempt": job.attempt,
                "recovered": job.recovered,
                "heartbeat_age_s": (round(now - beat, 3)
                                    if job.state == RUNNING and beat
                                    else None),
            })
        return {
            "queue": self.queue.stats(),
            "store": self.store.stats(),
            "workers": self.workers,
            "running": len(self._running),
            "active": active,
            "pool_kills": self.pool_kills,
            "wal": {"appends": self.wal.appends,
                    "compactions": self.wal.compactions,
                    "torn_lines": self.wal.torn_lines},
        }

    async def wait_idle(self) -> None:
        """Block until no job is queued or running (test helper)."""
        while True:
            states = self.queue.stats()["by_state"]
            if not states.get("queued") and not states.get("running") \
                    and not self._running:
                return
            await asyncio.sleep(0.01)

    # -- dispatch --------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while not self._closing:
            self._wakeup.clear()
            while len(self._running) < self._max_concurrent \
                    and not self._draining:
                job = self.queue.pop_next()
                if job is None:
                    break
                self._running.add(job.id)
                asyncio.get_running_loop().create_task(
                    self._run_job(job))
            await self._wakeup.wait()

    async def _run_job(self, job: Job) -> None:
        try:
            deadline = (job.budget or {}).get("deadline_s")
            artifact = await asyncio.wait_for(
                self._execute(job),
                timeout=float(deadline) if deadline else None)
        except asyncio.TimeoutError:
            self.queue.finish(job.id, error="deadline exceeded")
        except asyncio.CancelledError:
            # Our pool future was cancelled: either the job itself was
            # cancelled (terminal already) or the daemon is closing.
            if job.state != CANCELLED and not self._closing:
                raise
        except (ReproError, OSError, RuntimeError, ValueError) as exc:
            await self._handle_failure(job, exc)
        else:
            if job.state == CANCELLED:
                # Cancelled mid-flight: the result is discarded, not
                # stored — the caller asked for it to not exist.
                return
            result = artifact.get("result") or {}
            job.simulations = int(
                result.get("simulations")
                or result.get("total_simulations") or 0)
            max_sims = (job.budget or {}).get("max_simulations")
            if max_sims is not None and job.simulations > int(max_sims):
                job.budget_exceeded = True
            self.store.put(job.cache_key, artifact)
            self._results[job.id] = artifact
            try:
                await self._maybe_splice(job, artifact)
            except ReproError as exc:
                self.queue.finish(
                    job.id, error=f"splice failed: {exc}")
                return
            self.queue.finish(job.id)
        finally:
            self._running.discard(job.id)
            self._futures.pop(job.id, None)
            self._remove_heartbeat(job)
            self._wakeup.set()

    async def _handle_failure(self, job: Job,
                              exc: BaseException) -> None:
        """Failed attempt: retry transient faults with exponential
        backoff, fail structural ones immediately."""
        error = f"{type(exc).__name__}: {exc}"
        if job.state == CANCELLED:
            return
        if self._draining and isinstance(exc, _POOL_FAULTS):
            # Drain killed the pool under this attempt: leave the job
            # `running` in the WAL so the next start recovers it.
            return
        if job.attempt < self.max_attempts and _is_retryable(exc):
            delay = self.retry_backoff_s * (2 ** (job.attempt - 1))
            await asyncio.sleep(delay)
            if job.state == CANCELLED or self._closing:
                return
            self.queue.requeue(job.id, error=error)
        else:
            self.queue.finish(job.id, error=error)

    def _worker_payload(self, job: Job) -> Dict:
        payload = {
            "request": dict(job.request),
            "heartbeat": self.store.heartbeat_path(job.id),
            "attempt": job.attempt,
        }
        if job.kind == "optimize":
            payload["checkpoint"] = job.checkpoint
        return payload

    def _remove_heartbeat(self, job: Job) -> None:
        try:
            os.unlink(self.store.heartbeat_path(job.id))
        except (OSError, ArtifactError):
            pass

    async def _execute(self, job: Job) -> Dict:
        """Run the job's attempt on the pool; pool futures are tracked
        in ``self._futures`` so cancel/supervision can reach them."""
        if job.kind == "optimize":
            worker, payloads = execute_optimize_job, \
                [self._worker_payload(job)]
        elif job.shards <= 1:
            worker, payloads = execute_yield_job, \
                [self._worker_payload(job)]
        else:
            worker = execute_yield_job
            payloads = []
            for index in range(job.shards):
                payload = self._worker_payload(job)
                payload["request"]["shard"] = \
                    f"{index + 1}/{job.shards}"
                payloads.append(payload)
        pool = self._pool()
        futures = [pool.submit(worker, payload)
                   for payload in payloads]
        self._futures[job.id] = futures
        artifacts = await asyncio.gather(
            *(asyncio.wrap_future(future) for future in futures))
        if job.shards <= 1 or job.kind == "optimize":
            return artifacts[0]
        return merge_artifacts(artifacts,
                               YieldRequest.from_dict(job.request),
                               shards=job.shards)

    async def _maybe_splice(self, job: Job, artifact: Dict) -> None:
        """Splice a merged sharded verification into the optimizer
        checkpoint the job names (the shard-launcher absorbing the
        manual ``merge-verify --checkpoint`` step)."""
        if not job.splice_checkpoint:
            return
        from ..runtime import splice_merged_result
        from ..yieldsim import YieldResult
        merged = YieldResult.from_dict(artifact["result"])
        await asyncio.get_running_loop().run_in_executor(
            None, splice_merged_result, job.splice_checkpoint, merged)

    # -- supervision -----------------------------------------------------------
    async def _supervise_loop(self) -> None:
        while not self._closing:
            await asyncio.sleep(self.supervise_interval_s)
            if self._draining:
                continue
            self._check_heartbeats()
            self._maybe_compact()
            self._maybe_gc()

    def _check_heartbeats(self) -> None:
        """Refresh each running job's heartbeat from its file's mtime;
        kill the pool when any beat is stale (wedged or dead worker —
        the broken futures route every affected job into retry)."""
        now = time.time()
        stale = False
        for job_id in list(self._running):
            try:
                job = self.queue.get(job_id)
            except ServeError:
                continue
            if job.state != RUNNING:
                continue
            try:
                job.heartbeat_at = os.stat(
                    self.store.heartbeat_path(job_id)).st_mtime
            except (OSError, ArtifactError):
                pass  # worker hasn't beaten yet: age from started_at
            beat = job.heartbeat_at or job.started_at
            if beat and now - beat > self.heartbeat_timeout_s:
                stale = True
        if stale and self._executor is not None:
            self._kill_pool()

    def _maybe_compact(self) -> None:
        if self.wal.appends - self._compacted_appends >= _COMPACT_EVERY:
            self._compact_wal()

    def _maybe_gc(self) -> None:
        if self.store.max_bytes is None and self.store.max_age_s is None:
            return
        if time.monotonic() - self._last_gc < self.gc_interval_s:
            return
        self._last_gc = time.monotonic()
        protect = []
        for job in self.queue.active_jobs():
            if job.checkpoint:
                protect.append(job.checkpoint)
            protect.append(self.store.heartbeat_path(job.id))
        self.store.gc(protect=protect)


# -- HTTP layer ---------------------------------------------------------------
_STATUS_TEXT = {200: "OK", 202: "Accepted", 400: "Bad Request",
                404: "Not Found", 409: "Conflict",
                500: "Internal Server Error",
                503: "Service Unavailable"}

#: job states a client should poll again after
_NONTERMINAL = (QUEUED, RUNNING)


class ServeDaemon:
    """Minimal HTTP/1.1 JSON front end over :class:`ServeApp`."""

    def __init__(self, app: ServeApp, host: str = "127.0.0.1",
                 port: int = 0):
        self.app = app
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        # Dispatcher + supervisor must run even before the first
        # submission: recovered jobs dispatch immediately.
        self.app.start()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.app.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # -- request handling ------------------------------------------------------
    def _retry_after(self) -> Dict[str, str]:
        return {"Retry-After":
                str(max(1, int(round(self.app.retry_after_s))))}

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        headers: Dict[str, str] = {}
        try:
            response = await self._respond(reader)
            status, body = response[0], response[1]
            if len(response) > 2:
                headers = response[2]
        except Exception as exc:  # pragma: no cover - defensive
            status, body = 500, {"error": f"{type(exc).__name__}: {exc}"}
        payload = json.dumps(body).encode("utf-8")
        extra = "".join(f"{name}: {value}\r\n"
                        for name, value in headers.items())
        head = (f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, '')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"{extra}"
                f"Connection: close\r\n\r\n").encode("ascii")
        try:
            writer.write(head + payload)
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _respond(self, reader: asyncio.StreamReader):
        request_line = (await reader.readline()).decode(
            "latin-1").strip()
        if not request_line:
            return 400, {"error": "empty request"}
        try:
            method, path, _ = request_line.split(" ", 2)
        except ValueError:
            return 400, {"error": f"malformed request line "
                                  f"{request_line!r}"}
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": "bad Content-Length"}
        body: Optional[Dict] = None
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                body = json.loads(raw.decode("utf-8"))
            except ValueError as exc:
                return 400, {"error": f"request body is not JSON: {exc}"}
        return await self._route(method.upper(), path, body)

    async def _route(self, method: str, path: str,
                     body: Optional[Dict]):
        parts = [part for part in path.split("/") if part]
        try:
            if parts == ["v1", "health"] and method == "GET":
                return 200, {"status": "ok",
                             "jobs": self.app.queue.stats()["by_state"]}
            if parts == ["v1", "stats"] and method == "GET":
                return 200, self.app.stats()
            if parts == ["v1", "jobs"] and method == "POST":
                job = await self.app.submit(body or {})
                if job.get("state") in _NONTERMINAL:
                    # Accepted but not done: tell pollers how long to
                    # hold off (the client's backoff floor).
                    return 202, job, self._retry_after()
                return 202, job
            if len(parts) == 3 and parts[:2] == ["v1", "jobs"] \
                    and method == "GET":
                job = self.app.status(parts[2])
                if job.get("state") in _NONTERMINAL:
                    return 200, job, self._retry_after()
                return 200, job
            if len(parts) == 4 and parts[:2] == ["v1", "jobs"] \
                    and parts[3] == "result" and method == "GET":
                return 200, self.app.result(parts[2])
            if len(parts) == 4 and parts[:2] == ["v1", "jobs"] \
                    and parts[3] == "cancel" and method == "POST":
                return 200, self.app.cancel(parts[2])
        except ServeError as exc:
            text = str(exc)
            if "unknown job id" in text:
                return 404, {"error": text}
            if "draining" in text:
                return 503, {"error": text}, self._retry_after()
            if text.startswith("job ") and (" is queued" in text
                                            or " is running" in text):
                return 409, {"error": text}, self._retry_after()
            return 400, {"error": text}
        except (ArtifactError, ReproError) as exc:
            return 400, {"error": f"{type(exc).__name__}: {exc}"}
        return 404, {"error": f"no route {method} {path}"}


class ServerThread:
    """Run a daemon on a background thread (tests and ``--wait`` CLI
    flows); context manager yielding the base URL via ``self.url``."""

    def __init__(self, store_dir: str, workers: int = 1,
                 host: str = "127.0.0.1", port: int = 0,
                 max_queued_per_tenant: Optional[int] = None,
                 store_options: Optional[Dict] = None,
                 **app_options):
        self.store_dir = store_dir
        self.workers = workers
        self.host = host
        self.port = port
        self.max_queued_per_tenant = max_queued_per_tenant
        self.store_options = dict(store_options or {})
        self.app_options = app_options
        self.url = ""
        self.app: Optional[ServeApp] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._main, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ServeError("serve daemon failed to start in 30 s")
        if self._error is not None:
            raise ServeError(f"serve daemon failed to start: "
                             f"{self._error}")
        return self

    def __exit__(self, *exc) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def _main(self) -> None:
        try:
            asyncio.run(self._run())
        except BaseException as exc:  # pragma: no cover - startup bugs
            self._error = exc
            self._ready.set()

    async def _run(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.app = ServeApp(
            ResultStore(self.store_dir, **self.store_options),
            workers=self.workers,
            max_queued_per_tenant=self.max_queued_per_tenant,
            **self.app_options)
        daemon = ServeDaemon(self.app, host=self.host, port=self.port)
        await daemon.start()
        self.port = daemon.port
        self.url = f"http://{self.host}:{daemon.port}"
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await daemon.stop()


async def run_daemon(store_dir: str, host: str = "127.0.0.1",
                     port: int = 8754, workers: int = 2,
                     max_queued_per_tenant: Optional[int] = None,
                     store_max_bytes: Optional[int] = None,
                     store_max_age_s: Optional[float] = None,
                     heartbeat_timeout_s: float = 60.0,
                     max_attempts: int = 3,
                     drain_grace_s: float = 10.0,
                     announce=print) -> None:
    """Foreground daemon entry point of ``repro serve``.

    Installs a ``SIGTERM``/``SIGINT`` handler that drains gracefully:
    stop accepting, give running jobs ``drain_grace_s``, compact the
    WAL, exit (interrupted jobs recover on the next start).
    """
    app = ServeApp(
        ResultStore(store_dir, max_bytes=store_max_bytes,
                    max_age_s=store_max_age_s),
        workers=workers, max_queued_per_tenant=max_queued_per_tenant,
        heartbeat_timeout_s=heartbeat_timeout_s,
        max_attempts=max_attempts)
    daemon = ServeDaemon(app, host=host, port=port)
    await daemon.start()
    recovered = f", recovered: {len(app.recovered_jobs)} job(s)" \
        if app.recovered_jobs else ""
    announce(f"repro serve listening on http://{host}:{daemon.port} "
             f"(store: {app.store.root}, workers: {workers}"
             f"{recovered})")
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    server_task = asyncio.ensure_future(daemon.serve_forever())
    stop_task = asyncio.ensure_future(stop.wait())
    try:
        await asyncio.wait({server_task, stop_task},
                           return_when=asyncio.FIRST_COMPLETED)
        if stop.is_set():
            announce("repro serve draining "
                     f"(grace: {drain_grace_s:.0f} s)")
            await app.drain(grace_s=drain_grace_s)
    finally:
        for task in (server_task, stop_task):
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        await daemon.stop()


__all__ = ["API_PREFIX", "ServeApp", "ServeDaemon", "ServerThread",
           "run_daemon"]
