"""The ``repro.serve`` daemon: asyncio HTTP front end, job dispatch,
shard orchestration, and the content-addressed cache path.

Layering::

    ServeDaemon   -- minimal HTTP/1.1 on asyncio streams (stdlib only)
      ServeApp    -- submit/status/result/cancel/stats; owns the queue,
                     the result store, and the worker process pool
        JobQueue  -- priority scheduling (repro.serve.queue)
        ResultStore -- content-addressed artifacts (repro.serve.store)
        workers   -- repro.serve.jobs.execute_yield_job in a
                     ProcessPoolExecutor

A submitted job is first looked up in the store under its canonical
request hash; a hit completes the job instantly with ``cache_hit=True``
and zero fresh simulations.  A miss enqueues the job; the dispatcher
runs it on the pool, splitting ``shards > 1`` verifications into
``ShardPlan(i, N)`` child workers whose artifacts are pooled exactly by
:func:`~repro.yieldsim.merge_results` — and, when the job names a
``splice_checkpoint``, spliced into that optimizer checkpoint via
:func:`~repro.runtime.splice_merged_result`, so a long optimization can
outsource its verification to the fleet and resume with the merged
estimate in place.

Budgets and cancellation are enforced at the dispatch layer: a job's
``deadline_s`` cancels the await (the job fails with a ``deadline``
error; worker processes are not killed mid-simulation), and
``max_simulations`` flags ``budget_exceeded`` when the fresh spend went
over (a yield estimate is one atomic batch, so the overshoot is
reported rather than truncated).  Cancelling a running job discards its
result; cancelling a queued job prevents it from ever starting.
"""

from __future__ import annotations

import asyncio
import json
import threading
import uuid
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Mapping, Optional

from ..errors import ArtifactError, ReproError, ServeError
from .jobs import (YieldRequest, cache_key, execute_yield_job,
                   merge_artifacts)
from .queue import CANCELLED, DONE, Job, JobQueue
from .store import ResultStore

#: API version prefix of every route
API_PREFIX = "/v1"


class ServeApp:
    """The daemon's protocol-independent core (one per event loop)."""

    def __init__(self, store: ResultStore, workers: int = 2,
                 max_concurrent: Optional[int] = None,
                 max_queued_per_tenant: Optional[int] = None):
        self.store = store
        self.workers = max(1, int(workers))
        self.queue = JobQueue(max_queued_per_tenant=max_queued_per_tenant)
        self._max_concurrent = max_concurrent or self.workers
        self._executor: Optional[ProcessPoolExecutor] = None
        self._results: Dict[str, Dict] = {}
        self._running: set = set()
        self._wakeup = asyncio.Event()
        self._closing = False
        self._dispatcher: Optional[asyncio.Task] = None

    # -- lifecycle -------------------------------------------------------------
    def _ensure_started(self) -> None:
        if self._dispatcher is None:
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop())

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers)
        return self._executor

    async def close(self) -> None:
        self._closing = True
        self._wakeup.set()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except (asyncio.CancelledError, Exception):
                pass
            self._dispatcher = None
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # -- API methods -----------------------------------------------------------
    async def submit(self, payload: Mapping) -> Dict:
        """Submit a job; returns the job record (already ``done`` on a
        cache hit)."""
        if not isinstance(payload, Mapping):
            raise ServeError("job submission must be a JSON object")
        kind = payload.get("kind", "yield")
        if kind != "yield":
            raise ServeError(
                f"unsupported job kind {kind!r}; this build serves "
                f"'yield' jobs")
        request = YieldRequest.from_dict(payload.get("request", {}))
        if request.shard is not None:
            raise ServeError(
                "submit the unsharded request and set 'shards': N; the "
                "service orchestrates the shard fan-out itself")
        shards = int(payload.get("shards", 1))
        if shards < 1:
            raise ServeError(f"shards must be >= 1, got {shards}")
        if shards > request.n_samples:
            raise ServeError(
                f"cannot split {request.n_samples} samples into "
                f"{shards} non-empty shards")
        budget = payload.get("budget")
        if budget is not None and not isinstance(budget, Mapping):
            raise ServeError("budget must be an object")
        job = Job(
            id=uuid.uuid4().hex[:12],
            kind=kind,
            request=request.to_dict(),
            tenant=str(payload.get("tenant", "default")),
            priority=int(payload.get("priority", 0)),
            shards=shards,
            budget=dict(budget) if budget else None,
            splice_checkpoint=payload.get("splice_checkpoint"),
            cache_key=cache_key(request, shards=shards))
        cached = self.store.get(job.cache_key)
        if cached is not None:
            job.state = DONE
            job.cache_hit = True
            job.simulations = 0
            job.started_at = job.finished_at = job.submitted_at
            self.queue.submit(job)
            self._results[job.id] = cached
            await self._maybe_splice(job, cached)
            return job.to_dict()
        self._ensure_started()
        self.queue.submit(job)
        self._wakeup.set()
        return job.to_dict()

    def status(self, job_id: str) -> Dict:
        return self.queue.get(job_id).to_dict()

    def result(self, job_id: str) -> Dict:
        """The finished job's artifact, with the job's own accounting
        stamped into the provenance block."""
        job = self.queue.get(job_id)
        if job.state != DONE:
            raise ServeError(
                f"job {job_id} is {job.state}"
                + (f": {job.error}" if job.error else ""))
        artifact = self._results.get(job_id)
        if artifact is None:  # pragma: no cover - done implies stored
            raise ServeError(f"job {job_id} has no stored artifact")
        stamped = dict(artifact)
        provenance = dict(stamped.get("provenance", {}))
        provenance["job"] = {
            "id": job.id,
            "tenant": job.tenant,
            "cache_hit": job.cache_hit,
            "simulations": job.simulations,
            "shards": job.shards,
        }
        stamped["provenance"] = provenance
        return stamped

    def cancel(self, job_id: str) -> Dict:
        return self.queue.cancel(job_id).to_dict()

    def stats(self) -> Dict:
        return {
            "queue": self.queue.stats(),
            "store": self.store.stats(),
            "workers": self.workers,
            "running": len(self._running),
        }

    async def wait_idle(self) -> None:
        """Block until no job is queued or running (test helper)."""
        while True:
            states = self.queue.stats()["by_state"]
            if not states.get("queued") and not states.get("running") \
                    and not self._running:
                return
            await asyncio.sleep(0.01)

    # -- dispatch --------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while not self._closing:
            self._wakeup.clear()
            while len(self._running) < self._max_concurrent:
                job = self.queue.pop_next()
                if job is None:
                    break
                self._running.add(job.id)
                asyncio.get_running_loop().create_task(
                    self._run_job(job))
            await self._wakeup.wait()

    async def _run_job(self, job: Job) -> None:
        try:
            request = YieldRequest.from_dict(job.request)
            deadline = (job.budget or {}).get("deadline_s")
            artifact = await asyncio.wait_for(
                self._execute(job, request),
                timeout=float(deadline) if deadline else None)
        except asyncio.TimeoutError:
            self.queue.finish(job.id, error="deadline exceeded")
        except (ReproError, OSError, RuntimeError, ValueError) as exc:
            self.queue.finish(job.id,
                              error=f"{type(exc).__name__}: {exc}")
        else:
            if job.state == CANCELLED:
                # Cancelled mid-flight: the result is discarded, not
                # stored — the caller asked for it to not exist.
                return
            job.simulations = int(
                (artifact.get("result") or {}).get("simulations", 0))
            max_sims = (job.budget or {}).get("max_simulations")
            if max_sims is not None and job.simulations > int(max_sims):
                job.budget_exceeded = True
            self.store.put(job.cache_key, artifact)
            self._results[job.id] = artifact
            try:
                await self._maybe_splice(job, artifact)
            except ReproError as exc:
                self.queue.finish(
                    job.id, error=f"splice failed: {exc}")
                return
            self.queue.finish(job.id)
        finally:
            self._running.discard(job.id)
            self._wakeup.set()

    async def _execute(self, job: Job, request: YieldRequest) -> Dict:
        loop = asyncio.get_running_loop()
        if job.shards <= 1:
            return await loop.run_in_executor(
                self._pool(), execute_yield_job, request.to_dict())
        payloads = []
        for index in range(job.shards):
            payload = request.to_dict()
            payload["shard"] = f"{index + 1}/{job.shards}"
            payloads.append(payload)
        futures = [loop.run_in_executor(self._pool(), execute_yield_job,
                                        payload)
                   for payload in payloads]
        artifacts = await asyncio.gather(*futures)
        return merge_artifacts(artifacts, request, shards=job.shards)

    async def _maybe_splice(self, job: Job, artifact: Dict) -> None:
        """Splice a merged sharded verification into the optimizer
        checkpoint the job names (the shard-launcher absorbing the
        manual ``merge-verify --checkpoint`` step)."""
        if not job.splice_checkpoint:
            return
        from ..runtime import splice_merged_result
        from ..yieldsim import YieldResult
        merged = YieldResult.from_dict(artifact["result"])
        await asyncio.get_running_loop().run_in_executor(
            None, splice_merged_result, job.splice_checkpoint, merged)


# -- HTTP layer ---------------------------------------------------------------
_STATUS_TEXT = {200: "OK", 202: "Accepted", 400: "Bad Request",
                404: "Not Found", 409: "Conflict",
                500: "Internal Server Error"}


class ServeDaemon:
    """Minimal HTTP/1.1 JSON front end over :class:`ServeApp`."""

    def __init__(self, app: ServeApp, host: str = "127.0.0.1",
                 port: int = 0):
        self.app = app
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.app.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # -- request handling ------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            status, body = await self._respond(reader)
        except Exception as exc:  # pragma: no cover - defensive
            status, body = 500, {"error": f"{type(exc).__name__}: {exc}"}
        payload = json.dumps(body).encode("utf-8")
        head = (f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, '')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n").encode("ascii")
        try:
            writer.write(head + payload)
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _respond(self, reader: asyncio.StreamReader):
        request_line = (await reader.readline()).decode(
            "latin-1").strip()
        if not request_line:
            return 400, {"error": "empty request"}
        try:
            method, path, _ = request_line.split(" ", 2)
        except ValueError:
            return 400, {"error": f"malformed request line "
                                  f"{request_line!r}"}
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": "bad Content-Length"}
        body: Optional[Dict] = None
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                body = json.loads(raw.decode("utf-8"))
            except ValueError as exc:
                return 400, {"error": f"request body is not JSON: {exc}"}
        return await self._route(method.upper(), path, body)

    async def _route(self, method: str, path: str,
                     body: Optional[Dict]):
        parts = [part for part in path.split("/") if part]
        try:
            if parts == ["v1", "health"] and method == "GET":
                return 200, {"status": "ok",
                             "jobs": self.app.queue.stats()["by_state"]}
            if parts == ["v1", "stats"] and method == "GET":
                return 200, self.app.stats()
            if parts == ["v1", "jobs"] and method == "POST":
                return 202, await self.app.submit(body or {})
            if len(parts) == 3 and parts[:2] == ["v1", "jobs"] \
                    and method == "GET":
                return 200, self.app.status(parts[2])
            if len(parts) == 4 and parts[:2] == ["v1", "jobs"] \
                    and parts[3] == "result" and method == "GET":
                return 200, self.app.result(parts[2])
            if len(parts) == 4 and parts[:2] == ["v1", "jobs"] \
                    and parts[3] == "cancel" and method == "POST":
                return 200, self.app.cancel(parts[2])
        except ServeError as exc:
            text = str(exc)
            if "unknown job id" in text:
                return 404, {"error": text}
            if text.startswith("job ") and (" is queued" in text
                                            or " is running" in text):
                return 409, {"error": text}
            return 400, {"error": text}
        except (ArtifactError, ReproError) as exc:
            return 400, {"error": f"{type(exc).__name__}: {exc}"}
        return 404, {"error": f"no route {method} {path}"}


class ServerThread:
    """Run a daemon on a background thread (tests and ``--wait`` CLI
    flows); context manager yielding the base URL via ``self.url``."""

    def __init__(self, store_dir: str, workers: int = 1,
                 host: str = "127.0.0.1", port: int = 0,
                 max_queued_per_tenant: Optional[int] = None):
        self.store_dir = store_dir
        self.workers = workers
        self.host = host
        self.port = port
        self.max_queued_per_tenant = max_queued_per_tenant
        self.url = ""
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._main, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ServeError("serve daemon failed to start in 30 s")
        if self._error is not None:
            raise ServeError(f"serve daemon failed to start: "
                             f"{self._error}")
        return self

    def __exit__(self, *exc) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def _main(self) -> None:
        try:
            asyncio.run(self._run())
        except BaseException as exc:  # pragma: no cover - startup bugs
            self._error = exc
            self._ready.set()

    async def _run(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        app = ServeApp(
            ResultStore(self.store_dir), workers=self.workers,
            max_queued_per_tenant=self.max_queued_per_tenant)
        daemon = ServeDaemon(app, host=self.host, port=self.port)
        await daemon.start()
        self.port = daemon.port
        self.url = f"http://{self.host}:{daemon.port}"
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await daemon.stop()


async def run_daemon(store_dir: str, host: str = "127.0.0.1",
                     port: int = 8754, workers: int = 2,
                     max_queued_per_tenant: Optional[int] = None,
                     announce=print) -> None:
    """Foreground daemon entry point of ``repro serve``."""
    app = ServeApp(ResultStore(store_dir), workers=workers,
                   max_queued_per_tenant=max_queued_per_tenant)
    daemon = ServeDaemon(app, host=host, port=port)
    await daemon.start()
    announce(f"repro serve listening on http://{host}:{daemon.port} "
             f"(store: {app.store.root}, workers: {workers})")
    try:
        await daemon.serve_forever()
    except asyncio.CancelledError:  # pragma: no cover - shutdown path
        pass
    finally:
        await daemon.stop()


__all__ = ["API_PREFIX", "ServeApp", "ServeDaemon", "ServerThread",
           "run_daemon"]
