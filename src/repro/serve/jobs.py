"""Job specifications and the request-execution path of ``repro.serve``.

The central object is :class:`YieldRequest`: one fully parameterized
yield estimation.  ``repro yield`` on the command line and a worker
process of the job server both execute a request through
:func:`execute_yield`, so an API-submitted job produces *exactly* the
result the equivalent local command would — bit for bit, including the
telemetry counters.

Requests also define the service's **cache identity**:
:func:`canonical_request` reduces a request to the fields that determine
its result (template + spec set, seed, estimator configuration, code
schema version) and :func:`cache_key` hashes the canonical form, so the
content-addressed result store serves identical requests without
simulation.  Sharding is an execution detail for QMC (skip-ahead shards
reproduce the unsharded point set exactly) but changes the sample
streams of MC/IS (independent ``SeedSequence.spawn`` sub-streams), so
the shard count enters the key only for stream-splitting estimators.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..circuits import CIRCUITS
from ..errors import ServeError
from .contract import (KIND_MERGED, KIND_YIELD, SCHEMA_VERSION,
                       make_provenance, wrap_result)

#: estimators whose shard decomposition reproduces the unsharded sample
#: stream exactly (Sobol skip-ahead); their cache key ignores ``shards``
_STREAM_INVARIANT_ESTIMATORS = ("qmc",)


@dataclass(frozen=True)
class YieldRequest:
    """One fully parameterized yield estimation."""

    circuit: str
    estimator: str = "mc"
    n_samples: int = 300
    seed: int = 2001
    jobs: int = 1
    linsolve: Optional[str] = None
    chunk_timeout: Optional[float] = None
    #: 1-based ``i/N`` shard label (None = the full stream)
    shard: Optional[str] = None
    #: optional fault-policy override: ``{"lenient": bool,
    #: "retry_attempts": int, "jitter": float, "backoff": float}``.
    #: None runs the bare evaluator, exactly like the local CLI.
    policy: Optional[Mapping] = None

    def __post_init__(self):
        if self.circuit not in CIRCUITS:
            raise ServeError(
                f"unknown circuit {self.circuit!r}; choose from "
                f"{', '.join(sorted(CIRCUITS))}")
        from ..yieldsim import ESTIMATORS
        if self.estimator not in ESTIMATORS:
            raise ServeError(
                f"unknown estimator {self.estimator!r}; choose from "
                f"{', '.join(sorted(ESTIMATORS))}")
        if self.n_samples < 1:
            raise ServeError(
                f"n_samples must be >= 1, got {self.n_samples}")

    def to_dict(self) -> Dict:
        return {
            "circuit": self.circuit,
            "estimator": self.estimator,
            "n_samples": self.n_samples,
            "seed": self.seed,
            "jobs": self.jobs,
            "linsolve": self.linsolve,
            "chunk_timeout": self.chunk_timeout,
            "shard": self.shard,
            "policy": None if self.policy is None else dict(self.policy),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "YieldRequest":
        try:
            return cls(
                circuit=data["circuit"],
                estimator=data.get("estimator", "mc"),
                n_samples=int(data.get("n_samples", 300)),
                seed=int(data.get("seed", 2001)),
                jobs=int(data.get("jobs", 1)),
                linsolve=data.get("linsolve"),
                chunk_timeout=data.get("chunk_timeout"),
                shard=data.get("shard"),
                policy=data.get("policy"))
        except (KeyError, TypeError, ValueError) as exc:
            raise ServeError(f"invalid yield request: {exc}")


def spec_signature(template) -> list:
    """The template's spec set in canonical, hashable form."""
    return [[spec.performance, spec.kind, float(spec.bound)]
            for spec in template.specs]


def canonical_request(request: YieldRequest,
                      shards: int = 1) -> Dict:
    """The result-determining canonical form of a (possibly sharded)
    request.

    Instantiates the template to capture the spec set: two builds that
    register different specs under one circuit name must never share a
    cache entry.  Execution-only knobs (worker counts, timeouts) are
    excluded — they change wall clock, not the result.
    """
    template = CIRCUITS[request.circuit]()
    canonical: Dict = {
        "schema_version": SCHEMA_VERSION,
        "circuit": request.circuit,
        "specs": spec_signature(template),
        "statistical_dim": int(template.statistical_space.dim),
        "seed": request.seed,
        "estimator": request.estimator,
        "n_samples": request.n_samples,
        "linsolve": request.linsolve or "auto",
    }
    if request.policy is not None:
        # A fault policy changes results whenever a sample faults (the
        # faults themselves are deterministic in the point), so it is
        # part of the result's identity.
        canonical["policy"] = {key: request.policy[key]
                               for key in sorted(request.policy)}
    if shards > 1 and request.estimator not in \
            _STREAM_INVARIANT_ESTIMATORS:
        # MC/IS shards draw independent sub-streams: the pooled result
        # depends on the partition, so the partition is part of the key.
        canonical["shards"] = int(shards)
    return canonical


def cache_key(request: YieldRequest, shards: int = 1) -> str:
    """Content hash of the canonical request (the result-store key)."""
    text = json.dumps(canonical_request(request, shards=shards),
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# -- execution ----------------------------------------------------------------
def execute_yield(request: YieldRequest):
    """Run one yield estimation; the single execution path shared by
    ``repro yield`` and the job-server workers.

    Returns the :class:`~repro.yieldsim.YieldResult`.
    """
    from ..evaluation import Evaluator
    from ..spec.operating import find_worst_case_operating_points
    from ..yieldsim import ShardPlan, make_estimator

    template = CIRCUITS[request.circuit]()
    evaluator = Evaluator(template, linsolve=request.linsolve)
    target = evaluator
    guarded = None
    if request.policy is not None:
        # Per-job fault policy: route every evaluation through the
        # runtime's retry/count-as-fail machinery.  Left off by default
        # so an unadorned request behaves exactly like the local CLI.
        from ..runtime import (FaultPolicy, FaultTolerantEvaluator,
                               RetryConfig)
        policy = dict(request.policy)
        retry = RetryConfig(
            attempts=int(policy.get("retry_attempts", 2)),
            jitter=float(policy.get("jitter", 1e-6)),
            backoff=float(policy.get("backoff", 8.0)))
        guarded = FaultTolerantEvaluator(evaluator,
                                         FaultPolicy(retry=retry))
        target = guarded
    d = template.initial_design()
    s0 = template.statistical_space.nominal()
    theta_wc = find_worst_case_operating_points(
        lambda theta: target.evaluate(d, s0, theta),
        template.specs, template.operating_range)
    shard = ShardPlan.parse(request.shard) if request.shard else None
    worst_case = None
    if request.estimator == "is":
        # Mean-shift IS centers its proposal on the Eq. 8 worst-case
        # points; the search is seed-deterministic, so every shard of a
        # fleet reconstructs the same mixture components.
        from ..core import find_all_worst_case_points
        worst_case = find_all_worst_case_points(
            target, d, theta_wc, seed=request.seed)
    estimator = make_estimator(request.estimator, jobs=request.jobs,
                               timeout_s=request.chunk_timeout)
    if guarded is not None and dict(request.policy).get("lenient", True):
        with guarded.lenient():
            return estimator.estimate(guarded, d, theta_wc,
                                      n_samples=request.n_samples,
                                      seed=request.seed,
                                      worst_case=worst_case, shard=shard)
    return estimator.estimate(target, d, theta_wc,
                              n_samples=request.n_samples,
                              seed=request.seed,
                              worst_case=worst_case, shard=shard)


def yield_artifact(request: YieldRequest, result,
                   command: str = "yield") -> Dict:
    """Wrap an executed request's result in a provenance-carrying
    artifact (the wire/store format)."""
    shard_label = None
    if result.shard_index is not None and result.shard_total:
        shard_label = f"{result.shard_index + 1}/{result.shard_total}"
    provenance = make_provenance(
        template=request.circuit, seed=request.seed,
        estimator=request.estimator, n_samples=request.n_samples,
        command=command, shard=shard_label,
        linsolve=request.linsolve)
    return wrap_result(result, provenance, kind=KIND_YIELD)


def execute_yield_job(payload: Mapping) -> Dict:
    """Process-pool entry point: run one (shard of a) yield request and
    return its artifact dict (picklable either way, but JSON keeps the
    worker boundary identical to the wire format)."""
    request = YieldRequest.from_dict(payload)
    result = execute_yield(request)
    return yield_artifact(request, result, command="serve")


def merge_artifacts(artifacts, request: YieldRequest,
                    shards: int) -> Dict:
    """Pool per-shard artifacts into one merged artifact via the exact
    :func:`~repro.yieldsim.merge_results` algebra."""
    from ..yieldsim import YieldResult, merge_results
    results = [YieldResult.from_dict(artifact["result"])
               for artifact in artifacts]
    merged = merge_results(results)
    provenance = make_provenance(
        template=request.circuit, seed=request.seed,
        estimator=request.estimator, n_samples=request.n_samples,
        command="serve", shards=shards, linsolve=request.linsolve)
    return wrap_result(merged, provenance, kind=KIND_MERGED)


__all__ = [
    "YieldRequest", "cache_key", "canonical_request", "execute_yield",
    "execute_yield_job", "merge_artifacts", "spec_signature",
    "yield_artifact",
]
