"""Job specifications and the request-execution path of ``repro.serve``.

The central objects are :class:`YieldRequest` — one fully parameterized
yield estimation — and :class:`OptimizeRequest` — one full Fig. 6
feasibility-guided yield optimization.  ``repro yield`` / ``repro
optimize`` on the command line and a worker process of the job server
both execute a request through :func:`execute_yield` /
:func:`execute_optimize`, so an API-submitted job produces *exactly*
the result the equivalent local command would — bit for bit for the
trajectory (see :func:`trace_fingerprint` for what "bit for bit" means
across process restarts: wall-clock timings and evaluator-cache effort
counters are process-local and excluded).

Requests also define the service's **cache identity**:
:func:`canonical_request` reduces a request to the fields that determine
its result (template + spec set, seed, estimator configuration, code
schema version) and :func:`cache_key` hashes the canonical form, so the
content-addressed result store serves identical requests without
simulation.  Sharding is an execution detail for QMC (skip-ahead shards
reproduce the unsharded point set exactly) but changes the sample
streams of MC/IS (independent ``SeedSequence.spawn`` sub-streams), so
the shard count enters the key only for stream-splitting estimators.

Worker processes run :func:`execute_yield_job` /
:func:`execute_optimize_job`, which accept a wrapped payload carrying a
``heartbeat`` path: a daemon thread touches that file once a second so
the server-side supervisor can distinguish a slow worker from a dead
one.  Optimize workers additionally own a ``checkpoint`` path inside
the result store; they resume from it when it exists, which is exactly
how a crash-recovered job continues instead of restarting.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..circuits import CIRCUITS
from ..errors import ServeError
from .contract import (KIND_MERGED, KIND_OPTIMIZE, KIND_YIELD,
                       SCHEMA_VERSION, make_provenance, wrap_result)

#: estimators whose shard decomposition reproduces the unsharded sample
#: stream exactly (Sobol skip-ahead); their cache key ignores ``shards``
_STREAM_INVARIANT_ESTIMATORS = ("qmc",)


@dataclass(frozen=True)
class YieldRequest:
    """One fully parameterized yield estimation."""

    circuit: str
    estimator: str = "mc"
    n_samples: int = 300
    seed: int = 2001
    jobs: int = 1
    linsolve: Optional[str] = None
    chunk_timeout: Optional[float] = None
    #: samples per vectorized simulation chunk (None = template default,
    #: 1 = scalar path); execution-only — bit-identical results either
    #: way, so it stays out of the cache key
    batch_samples: Optional[int] = None
    #: 1-based ``i/N`` shard label (None = the full stream)
    shard: Optional[str] = None
    #: disable warm-start DC anchors: every sample solves through the
    #: cold homotopy chain (newton -> gmin -> source stepping).  Changes
    #: the bit pattern of the results (different Newton trajectories),
    #: so it is part of the cache key.
    cold_dc: bool = False
    #: optional fault-policy override: ``{"lenient": bool,
    #: "retry_attempts": int, "jitter": float, "backoff": float}``.
    #: None runs the bare evaluator, exactly like the local CLI.
    policy: Optional[Mapping] = None

    def __post_init__(self):
        if self.circuit not in CIRCUITS:
            raise ServeError(
                f"unknown circuit {self.circuit!r}; choose from "
                f"{', '.join(sorted(CIRCUITS))}")
        from ..yieldsim import ESTIMATORS
        if self.estimator not in ESTIMATORS:
            raise ServeError(
                f"unknown estimator {self.estimator!r}; choose from "
                f"{', '.join(sorted(ESTIMATORS))}")
        if self.n_samples < 1:
            raise ServeError(
                f"n_samples must be >= 1, got {self.n_samples}")
        if self.batch_samples is not None and self.batch_samples < 1:
            raise ServeError(
                f"batch_samples must be >= 1, got {self.batch_samples}")

    def to_dict(self) -> Dict:
        return {
            "circuit": self.circuit,
            "estimator": self.estimator,
            "n_samples": self.n_samples,
            "seed": self.seed,
            "jobs": self.jobs,
            "linsolve": self.linsolve,
            "chunk_timeout": self.chunk_timeout,
            "batch_samples": self.batch_samples,
            "shard": self.shard,
            "cold_dc": self.cold_dc,
            "policy": None if self.policy is None else dict(self.policy),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "YieldRequest":
        try:
            batch = data.get("batch_samples")
            return cls(
                circuit=data["circuit"],
                estimator=data.get("estimator", "mc"),
                n_samples=int(data.get("n_samples", 300)),
                seed=int(data.get("seed", 2001)),
                jobs=int(data.get("jobs", 1)),
                linsolve=data.get("linsolve"),
                chunk_timeout=data.get("chunk_timeout"),
                batch_samples=None if batch is None else int(batch),
                shard=data.get("shard"),
                cold_dc=bool(data.get("cold_dc", False)),
                policy=data.get("policy"))
        except (KeyError, TypeError, ValueError) as exc:
            raise ServeError(f"invalid yield request: {exc}")


def spec_signature(template) -> list:
    """The template's spec set in canonical, hashable form."""
    return [[spec.performance, spec.kind, float(spec.bound)]
            for spec in template.specs]


def canonical_request(request: YieldRequest,
                      shards: int = 1) -> Dict:
    """The result-determining canonical form of a (possibly sharded)
    request.

    Instantiates the template to capture the spec set: two builds that
    register different specs under one circuit name must never share a
    cache entry.  Execution-only knobs (worker counts, timeouts) are
    excluded — they change wall clock, not the result.
    """
    template = CIRCUITS[request.circuit]()
    canonical: Dict = {
        "schema_version": SCHEMA_VERSION,
        "circuit": request.circuit,
        "specs": spec_signature(template),
        "statistical_dim": int(template.statistical_space.dim),
        "seed": request.seed,
        "estimator": request.estimator,
        "n_samples": request.n_samples,
        "linsolve": request.linsolve or "auto",
    }
    if request.cold_dc:
        # Cold DC changes Newton trajectories (and hence result bits);
        # only present when set so existing cache keys stay stable.
        canonical["cold_dc"] = True
    if request.policy is not None:
        # A fault policy changes results whenever a sample faults (the
        # faults themselves are deterministic in the point), so it is
        # part of the result's identity.
        canonical["policy"] = {key: request.policy[key]
                               for key in sorted(request.policy)}
    if shards > 1 and request.estimator not in \
            _STREAM_INVARIANT_ESTIMATORS:
        # MC/IS shards draw independent sub-streams: the pooled result
        # depends on the partition, so the partition is part of the key.
        canonical["shards"] = int(shards)
    return canonical


def cache_key(request: YieldRequest, shards: int = 1) -> str:
    """Content hash of the canonical request (the result-store key)."""
    text = json.dumps(canonical_request(request, shards=shards),
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# -- execution ----------------------------------------------------------------
def execute_yield(request: YieldRequest):
    """Run one yield estimation; the single execution path shared by
    ``repro yield`` and the job-server workers.

    Returns the :class:`~repro.yieldsim.YieldResult`.
    """
    from ..evaluation import Evaluator
    from ..spec.operating import find_worst_case_operating_points
    from ..yieldsim import ShardPlan, make_estimator

    template = CIRCUITS[request.circuit]()
    if request.cold_dc and hasattr(template, "warm_dc"):
        template.warm_dc = False
    evaluator = Evaluator(template, linsolve=request.linsolve)
    target = evaluator
    guarded = None
    if request.policy is not None:
        # Per-job fault policy: route every evaluation through the
        # runtime's retry/count-as-fail machinery.  Left off by default
        # so an unadorned request behaves exactly like the local CLI.
        from ..runtime import (FaultPolicy, FaultTolerantEvaluator,
                               RetryConfig)
        policy = dict(request.policy)
        retry = RetryConfig(
            attempts=int(policy.get("retry_attempts", 2)),
            jitter=float(policy.get("jitter", 1e-6)),
            backoff=float(policy.get("backoff", 8.0)))
        guarded = FaultTolerantEvaluator(evaluator,
                                         FaultPolicy(retry=retry))
        target = guarded
    d = template.initial_design()
    s0 = template.statistical_space.nominal()
    theta_wc = find_worst_case_operating_points(
        lambda theta: target.evaluate(d, s0, theta),
        template.specs, template.operating_range)
    shard = ShardPlan.parse(request.shard) if request.shard else None
    worst_case = None
    if request.estimator == "is":
        # Mean-shift IS centers its proposal on the Eq. 8 worst-case
        # points; the search is seed-deterministic, so every shard of a
        # fleet reconstructs the same mixture components.
        from ..core import find_all_worst_case_points
        worst_case = find_all_worst_case_points(
            target, d, theta_wc, seed=request.seed)
    estimator = make_estimator(request.estimator, jobs=request.jobs,
                               timeout_s=request.chunk_timeout,
                               batch_samples=request.batch_samples)
    if guarded is not None and dict(request.policy).get("lenient", True):
        with guarded.lenient():
            return estimator.estimate(guarded, d, theta_wc,
                                      n_samples=request.n_samples,
                                      seed=request.seed,
                                      worst_case=worst_case, shard=shard)
    return estimator.estimate(target, d, theta_wc,
                              n_samples=request.n_samples,
                              seed=request.seed,
                              worst_case=worst_case, shard=shard)


def yield_artifact(request: YieldRequest, result,
                   command: str = "yield") -> Dict:
    """Wrap an executed request's result in a provenance-carrying
    artifact (the wire/store format)."""
    shard_label = None
    if result.shard_index is not None and result.shard_total:
        shard_label = f"{result.shard_index + 1}/{result.shard_total}"
    provenance = make_provenance(
        template=request.circuit, seed=request.seed,
        estimator=request.estimator, n_samples=request.n_samples,
        command=command, shard=shard_label,
        linsolve=request.linsolve)
    return wrap_result(result, provenance, kind=KIND_YIELD)


@contextlib.contextmanager
def worker_heartbeat(path: Optional[str], interval_s: float = 1.0):
    """Touch ``path`` every ``interval_s`` while the body runs (a daemon
    thread, so a wedged body stops the beat — which is the point: the
    supervisor reads staleness as "worker dead or stuck")."""
    if not path:
        yield
        return
    stop = threading.Event()

    def beat() -> None:
        while True:
            try:
                with open(path, "w") as handle:
                    handle.write(f"{time.time():.6f}\n")
            except OSError:  # pragma: no cover - store dir vanished
                pass
            if stop.wait(interval_s):
                return

    thread = threading.Thread(target=beat, daemon=True)
    thread.start()
    try:
        yield
    finally:
        stop.set()
        thread.join(timeout=interval_s + 1.0)


def _unwrap_payload(payload: Mapping) -> tuple:
    """``(request_dict, extras)`` from a worker payload.  Accepts both
    the wrapped form ``{"request": {...}, "heartbeat": ..., ...}`` and
    the legacy bare request dict."""
    if "request" in payload and isinstance(payload["request"], Mapping):
        return payload["request"], payload
    return payload, {}


def execute_yield_job(payload: Mapping) -> Dict:
    """Process-pool entry point: run one (shard of a) yield request and
    return its artifact dict (picklable either way, but JSON keeps the
    worker boundary identical to the wire format)."""
    request_dict, extras = _unwrap_payload(payload)
    request = YieldRequest.from_dict(request_dict)
    with worker_heartbeat(extras.get("heartbeat")):
        result = execute_yield(request)
    return yield_artifact(request, result, command="serve")


# -- optimize jobs ------------------------------------------------------------
@dataclass(frozen=True)
class OptimizeRequest:
    """One fully parameterized Fig. 6 yield optimization.

    Carries only the *result-determining* knobs (they all enter the
    cache key); execution details — worker pools, budgets, checkpoint
    locations — are passed to :func:`execute_optimize` separately.
    """

    circuit: str
    iterations: int = 5
    #: N of the Eq. 17 linearized-model estimate
    samples_linear: int = 10000
    #: N of the Y_tilde verification per iteration
    samples_verify: int = 150
    seed: int = 2001
    #: verification estimator ("mc"/"is"/"qmc")
    estimator: str = "mc"
    #: Table 3 / Table 4 ablation switches
    use_constraints: bool = True
    linearize_at: str = "worst_case"
    linsolve: Optional[str] = None
    #: worker processes of the run's shared pool (execution knob —
    #: results are bit-identical serial or pooled, so it is *not* part
    #: of the cache key)
    jobs: int = 1
    #: samples per vectorized verification-MC chunk (execution knob:
    #: batched and scalar paths are bit-identical, so it too stays out
    #: of the cache key); None = template default, 1 = scalar
    batch_samples: Optional[int] = None

    def __post_init__(self):
        if self.circuit not in CIRCUITS:
            raise ServeError(
                f"unknown circuit {self.circuit!r}; choose from "
                f"{', '.join(sorted(CIRCUITS))}")
        if self.iterations < 1:
            raise ServeError(
                f"iterations must be >= 1, got {self.iterations}")
        if self.samples_linear < 1 or self.samples_verify < 0:
            raise ServeError("sample counts must be positive")
        from ..yieldsim import ESTIMATORS
        if self.estimator not in ESTIMATORS:
            raise ServeError(
                f"unknown estimator {self.estimator!r}; choose from "
                f"{', '.join(sorted(ESTIMATORS))}")
        if self.linearize_at not in ("worst_case", "nominal"):
            raise ServeError(
                f"linearize_at must be 'worst_case' or 'nominal', got "
                f"{self.linearize_at!r}")
        if self.batch_samples is not None and self.batch_samples < 1:
            raise ServeError(
                f"batch_samples must be >= 1, got {self.batch_samples}")

    def to_dict(self) -> Dict:
        return {
            "circuit": self.circuit,
            "iterations": self.iterations,
            "samples_linear": self.samples_linear,
            "samples_verify": self.samples_verify,
            "seed": self.seed,
            "estimator": self.estimator,
            "use_constraints": self.use_constraints,
            "linearize_at": self.linearize_at,
            "linsolve": self.linsolve,
            "jobs": self.jobs,
            "batch_samples": self.batch_samples,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "OptimizeRequest":
        try:
            batch = data.get("batch_samples")
            return cls(
                circuit=data["circuit"],
                iterations=int(data.get("iterations", 5)),
                samples_linear=int(data.get("samples_linear", 10000)),
                samples_verify=int(data.get("samples_verify", 150)),
                seed=int(data.get("seed", 2001)),
                estimator=data.get("estimator", "mc"),
                use_constraints=bool(data.get("use_constraints", True)),
                linearize_at=data.get("linearize_at", "worst_case"),
                linsolve=data.get("linsolve"),
                jobs=int(data.get("jobs", 1)),
                batch_samples=None if batch is None else int(batch))
        except (KeyError, TypeError, ValueError) as exc:
            raise ServeError(f"invalid optimize request: {exc}")


def canonical_optimize_request(request: OptimizeRequest) -> Dict:
    """The result-determining canonical form of an optimize request
    (same discipline as :func:`canonical_request`: instantiated spec
    set in, execution knobs out)."""
    template = CIRCUITS[request.circuit]()
    return {
        "kind": "optimize",
        "schema_version": SCHEMA_VERSION,
        "circuit": request.circuit,
        "specs": spec_signature(template),
        "statistical_dim": int(template.statistical_space.dim),
        "seed": request.seed,
        "iterations": request.iterations,
        "samples_linear": request.samples_linear,
        "samples_verify": request.samples_verify,
        "estimator": request.estimator,
        "use_constraints": bool(request.use_constraints),
        "linearize_at": request.linearize_at,
        "linsolve": request.linsolve or "auto",
    }


def optimize_cache_key(request: OptimizeRequest) -> str:
    """Content hash of the canonical optimize request."""
    text = json.dumps(canonical_optimize_request(request),
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def execute_optimize(request: OptimizeRequest,
                     checkpoint_path: Optional[str] = None,
                     resume: bool = False, budget=None, evaluator=None,
                     verify_shard=None):
    """Run one Fig. 6 optimization; the single execution path shared by
    ``repro optimize`` and the job-server workers.

    ``checkpoint_path``/``resume``/``budget``/``evaluator``/
    ``verify_shard`` are execution details: they control where the run
    checkpoints, whether it continues an interrupted trajectory, and
    how it spends effort — never what the uninterrupted trajectory *is*
    (the runtime's determinism contract).  Returns the
    :class:`~repro.core.optimizer.OptimizationResult`.
    """
    from ..core import OptimizerConfig, YieldOptimizer
    from ..yieldsim import make_estimator

    template = CIRCUITS[request.circuit]()
    config = OptimizerConfig(
        n_samples_linear=request.samples_linear,
        n_samples_verify=request.samples_verify,
        max_iterations=request.iterations,
        seed=request.seed,
        use_constraints=request.use_constraints,
        linearize_at=request.linearize_at,
        jobs=request.jobs,
        verify_shard=verify_shard,
        linsolve=request.linsolve,
        batch_samples=request.batch_samples)
    # The optimizer owns a persistent shared pool when jobs >= 2 and the
    # stack is worker-replicable; the estimator's own per-call pool is
    # kept only for externally supplied evaluation stacks the shared
    # pool cannot serve (e.g. fault injection, which must stay serial in
    # the parent).
    verifier = make_estimator(
        request.estimator,
        jobs=1 if evaluator is None else request.jobs,
        batch_samples=request.batch_samples)
    return YieldOptimizer(
        template, config, evaluator=evaluator, verifier=verifier,
        budget=budget, checkpoint_path=checkpoint_path,
        resume=resume).run()


def optimize_result_dict(result) -> Dict:
    """JSON form of an :class:`~repro.core.optimizer.OptimizationResult`
    (the ``result`` block of a :data:`KIND_OPTIMIZE` artifact)."""
    from ..runtime import record_to_dict
    return {
        "template_name": result.template_name,
        "d_final": {key: float(value)
                    for key, value in result.d_final.items()},
        "converged": bool(result.converged),
        "stop_reason": result.stop_reason,
        "final_yield": result.final_yield(),
        "records": [record_to_dict(record) for record in result.records],
        "wall_time_s": float(result.wall_time_s),
        "total_simulations": int(result.total_simulations),
        "total_constraint_simulations":
            int(result.total_constraint_simulations),
        "total_cache_hits": int(result.total_cache_hits),
        "total_requests": int(result.total_requests),
        "total_failed_samples": int(result.total_failed_samples),
        "total_retried_evaluations":
            int(result.total_retried_evaluations),
        "pool_jobs": int(result.pool_jobs),
        "pool_tasks": int(result.pool_tasks),
        "pool_died": bool(result.pool_died),
        "warm_cache": dict(result.warm_cache or {}),
        "dc_effort": dict(getattr(result, "dc_effort", None) or {}),
    }


def optimize_artifact(request: OptimizeRequest, result,
                      command: str = "optimize") -> Dict:
    """Wrap an optimization trace in a :data:`KIND_OPTIMIZE` artifact."""
    provenance = make_provenance(
        template=request.circuit, seed=request.seed,
        estimator=request.estimator, n_samples=request.samples_verify,
        command=command, linsolve=request.linsolve,
        extra={"iterations": request.iterations,
               "samples_linear": request.samples_linear,
               "stop_reason": result.stop_reason})
    return wrap_result(optimize_result_dict(result), provenance,
                       kind=KIND_OPTIMIZE)


def execute_optimize_job(payload: Mapping) -> Dict:
    """Process-pool entry point: run (or resume) one optimize request
    and return its artifact dict.

    The payload's ``checkpoint`` names the job's store-owned checkpoint
    file; the run always writes it per iteration and resumes from it
    when it already exists — which is exactly the crash-recovery path:
    a re-dispatched job continues the interrupted trajectory and, by
    the runtime's determinism contract, reproduces the uninterrupted
    trace bit-identically.
    """
    request_dict, extras = _unwrap_payload(payload)
    request = OptimizeRequest.from_dict(request_dict)
    checkpoint = extras.get("checkpoint")
    with worker_heartbeat(extras.get("heartbeat")):
        result = execute_optimize(request, checkpoint_path=checkpoint,
                                  resume=bool(checkpoint))
    return optimize_artifact(request, result, command="serve")


#: keys stripped (recursively) by :func:`trace_fingerprint`: wall-clock
#: phase timings and evaluator/cache *effort* counters.  Both are
#: process-local — an interrupted-and-resumed run re-pays cache warmup
#: it cannot recover — while every trajectory field (designs, margins,
#: worst-case blocks, verification estimates and their sufficient
#: statistics) is deterministic and kept.
VOLATILE_TRACE_KEYS = frozenset({
    "report", "phase_seconds", "wall_time_s", "simulations",
    "constraint_simulations", "requests", "cache_hits", "cache_misses",
    "counters", "warm_cache", "dc_effort", "total_simulations",
    "total_constraint_simulations", "total_cache_hits",
    "total_requests", "total_failed_samples",
    "total_retried_evaluations", "pool_jobs", "pool_tasks", "pool_died",
})


def _strip_volatile(value):
    if isinstance(value, Mapping):
        return {key: _strip_volatile(item)
                for key, item in value.items()
                if key not in VOLATILE_TRACE_KEYS}
    if isinstance(value, (list, tuple)):
        return [_strip_volatile(item) for item in value]
    return value


def trace_fingerprint(result_block: Mapping) -> str:
    """Canonical sha256 of an optimize artifact's ``result`` block with
    volatile (timing/effort) fields removed.

    Two runs of the same request — uninterrupted, or killed and resumed
    from the checkpoint any number of times — must produce the same
    fingerprint; this is the bit-identity the crash-recovery tests and
    the ``service-recovery`` CI gate assert.
    """
    text = json.dumps(_strip_volatile(result_block), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def merge_artifacts(artifacts, request: YieldRequest,
                    shards: int) -> Dict:
    """Pool per-shard artifacts into one merged artifact via the exact
    :func:`~repro.yieldsim.merge_results` algebra."""
    from ..yieldsim import YieldResult, merge_results
    results = [YieldResult.from_dict(artifact["result"])
               for artifact in artifacts]
    merged = merge_results(results)
    provenance = make_provenance(
        template=request.circuit, seed=request.seed,
        estimator=request.estimator, n_samples=request.n_samples,
        command="serve", shards=shards, linsolve=request.linsolve)
    return wrap_result(merged, provenance, kind=KIND_MERGED)


__all__ = [
    "OptimizeRequest", "VOLATILE_TRACE_KEYS", "YieldRequest",
    "cache_key", "canonical_optimize_request", "canonical_request",
    "execute_optimize", "execute_optimize_job", "execute_yield",
    "execute_yield_job", "merge_artifacts", "optimize_artifact",
    "optimize_cache_key", "optimize_result_dict", "spec_signature",
    "trace_fingerprint", "worker_heartbeat", "yield_artifact",
]
