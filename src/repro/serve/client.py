"""Stdlib HTTP client for the ``repro.serve`` API.

A thin synchronous wrapper over :mod:`urllib.request` — the same wire
contract any other client (a CI job, a DSE sweep driver, ``curl``)
speaks.  Every method returns the decoded JSON body; protocol and
HTTP-level failures raise :class:`~repro.errors.ServeError` with the
server's error message when one was sent.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Dict, Mapping, Optional

from ..errors import ServeError

#: job states the poller treats as terminal
_TERMINAL = ("done", "failed", "cancelled")

#: multiplicative growth of the poll interval between idle polls
_BACKOFF_FACTOR = 1.6
#: fractional uniform jitter applied to every computed poll interval
_JITTER = 0.25
#: floor on every sleep between polls: clamping the sleep to the time
#: remaining before the deadline must never degenerate into a zero-sleep
#: busy loop hammering ``/v1/status``
_MIN_SLEEP_S = 0.05


class ServeClient:
    """Client for one ``repro serve`` daemon at ``base_url``."""

    def __init__(self, base_url: str, timeout_s: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        #: response headers of the most recent call (lower-cased names);
        #: :meth:`wait` reads ``retry-after`` from here
        self.last_headers: Dict[str, str] = {}

    # -- transport -------------------------------------------------------------
    def _call(self, method: str, path: str,
              body: Optional[Mapping] = None) -> Dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers,
            method=method)
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout_s) as response:
                raw = response.read()
                self.last_headers = {
                    name.lower(): value
                    for name, value in response.headers.items()}
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get(
                    "error", str(exc))
            except (ValueError, OSError):
                message = str(exc)
            raise ServeError(f"{method} {path} -> {exc.code}: {message}")
        except urllib.error.URLError as exc:
            raise ServeError(
                f"cannot reach serve daemon at {self.base_url}: "
                f"{exc.reason}")
        try:
            return json.loads(raw.decode("utf-8"))
        except ValueError as exc:
            raise ServeError(f"non-JSON response from {path}: {exc}")

    def retry_after_s(self) -> Optional[float]:
        """The last response's ``Retry-After`` in seconds, or None."""
        value = self.last_headers.get("retry-after")
        if value is None:
            return None
        try:
            return max(0.0, float(value))
        except ValueError:
            return None

    # -- API -------------------------------------------------------------------
    def health(self) -> Dict:
        return self._call("GET", "/v1/health")

    def stats(self) -> Dict:
        return self._call("GET", "/v1/stats")

    def submit(self, payload: Mapping) -> Dict:
        """Submit a job specification; returns the job record."""
        return self._call("POST", "/v1/jobs", body=payload)

    def status(self, job_id: str) -> Dict:
        return self._call("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> Dict:
        """The finished job's provenance-stamped artifact."""
        return self._call("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict:
        return self._call("POST", f"/v1/jobs/{job_id}/cancel")

    def next_poll_s(self, interval_s: float,
                    max_poll_s: float) -> float:
        """The jittered, ``Retry-After``-respecting sleep before the
        next poll of an unfinished job.

        Exponential growth capped at ``max_poll_s`` keeps an idle
        client from hammering a busy daemon; uniform ±25% jitter
        decorrelates a fleet of waiting clients; and a server-sent
        ``Retry-After`` acts as a floor — the daemon knows its own
        load better than the client's schedule does.
        """
        interval = min(interval_s, max_poll_s)
        retry_after = self.retry_after_s()
        if retry_after is not None:
            interval = max(interval, min(retry_after, max_poll_s))
        return interval * (1.0 + _JITTER * (2.0 * random.random() - 1.0))

    def wait(self, job_id: str, timeout_s: float = 600.0,
             poll_s: float = 0.2, max_poll_s: float = 5.0) -> Dict:
        """Poll until the job reaches a terminal state; returns the
        final job record (check ``state`` before fetching the result).

        Polling starts at ``poll_s`` and backs off exponentially with
        jitter up to ``max_poll_s`` (see :meth:`next_poll_s`).  Near the
        deadline the sleep is clamped to the time remaining but never
        below :data:`_MIN_SLEEP_S`, so the final iterations cannot
        collapse into a zero-sleep busy loop; the one poll issued after
        that last (possibly overshooting) sleep counts against the
        deadline and is the final check before timing out.
        """
        deadline = time.monotonic() + timeout_s
        interval = max(1e-3, poll_s)
        while True:
            job = self.status(job_id)
            if job.get("state") in _TERMINAL:
                return job
            remaining = deadline - time.monotonic()
            if remaining <= 0.0:
                raise ServeError(
                    f"job {job_id} still {job.get('state')!r} after "
                    f"{timeout_s:.0f} s")
            time.sleep(max(min(self.next_poll_s(interval, max_poll_s),
                               remaining), _MIN_SLEEP_S))
            interval *= _BACKOFF_FACTOR


__all__ = ["ServeClient"]
