"""Stdlib HTTP client for the ``repro.serve`` API.

A thin synchronous wrapper over :mod:`urllib.request` — the same wire
contract any other client (a CI job, a DSE sweep driver, ``curl``)
speaks.  Every method returns the decoded JSON body; protocol and
HTTP-level failures raise :class:`~repro.errors.ServeError` with the
server's error message when one was sent.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Mapping, Optional

from ..errors import ServeError

#: job states the poller treats as terminal
_TERMINAL = ("done", "failed", "cancelled")


class ServeClient:
    """Client for one ``repro serve`` daemon at ``base_url``."""

    def __init__(self, base_url: str, timeout_s: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- transport -------------------------------------------------------------
    def _call(self, method: str, path: str,
              body: Optional[Mapping] = None) -> Dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers,
            method=method)
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout_s) as response:
                raw = response.read()
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get(
                    "error", str(exc))
            except (ValueError, OSError):
                message = str(exc)
            raise ServeError(f"{method} {path} -> {exc.code}: {message}")
        except urllib.error.URLError as exc:
            raise ServeError(
                f"cannot reach serve daemon at {self.base_url}: "
                f"{exc.reason}")
        try:
            return json.loads(raw.decode("utf-8"))
        except ValueError as exc:
            raise ServeError(f"non-JSON response from {path}: {exc}")

    # -- API -------------------------------------------------------------------
    def health(self) -> Dict:
        return self._call("GET", "/v1/health")

    def stats(self) -> Dict:
        return self._call("GET", "/v1/stats")

    def submit(self, payload: Mapping) -> Dict:
        """Submit a job specification; returns the job record."""
        return self._call("POST", "/v1/jobs", body=payload)

    def status(self, job_id: str) -> Dict:
        return self._call("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> Dict:
        """The finished job's provenance-stamped artifact."""
        return self._call("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict:
        return self._call("POST", f"/v1/jobs/{job_id}/cancel")

    def wait(self, job_id: str, timeout_s: float = 600.0,
             poll_s: float = 0.2) -> Dict:
        """Poll until the job reaches a terminal state; returns the
        final job record (check ``state`` before fetching the result)."""
        deadline = time.monotonic() + timeout_s
        while True:
            job = self.status(job_id)
            if job.get("state") in _TERMINAL:
                return job
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"job {job_id} still {job.get('state')!r} after "
                    f"{timeout_s:.0f} s")
            time.sleep(poll_s)


__all__ = ["ServeClient"]
