"""Write-ahead log of the ``repro.serve`` job queue.

Every job state transition (submitted, started, done/failed, cancelled,
retried) is appended to a JSONL log under the store directory *before*
the daemon acts on it, so a ``kill -9`` at any instant loses at most the
in-flight simulation work — never the knowledge of which jobs existed
and where they stood.  On startup the daemon replays the log, restores
terminal jobs to the registry (their artifacts live in the result
store), and re-enqueues every job that was queued or running when the
previous process died; interrupted attempts are marked
``recovered: true`` with an incremented ``attempt`` counter.

Durability discipline:

* **Appends** are single ``json.dumps`` lines written to a file opened
  in append mode, flushed and ``fsync``-ed before the call returns — a
  crash can truncate only the final line, and :meth:`replay` tolerates
  (and reports) exactly one trailing partial line.
* **Compaction** rewrites the log as one ``snapshot`` event per job via
  the same atomic tempfile+rename discipline as
  :class:`~repro.serve.store.ResultStore`, so a crash mid-compaction
  leaves the previous complete log in place.

The log is an *event* log, not a registry: replay folds events in order
(submit -> start -> retry* -> finish/cancel) into the latest job record.
Unknown event types and unknown fields are ignored, so newer daemons can
extend the format without breaking older readers.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import ServeError

#: event types the replayer understands
EVENT_SUBMIT = "submit"
EVENT_START = "start"
EVENT_RETRY = "retry"
EVENT_FINISH = "finish"
EVENT_CANCEL = "cancel"
EVENT_SNAPSHOT = "snapshot"


class WriteAheadLog:
    """Append-only JSONL job-transition log (see module docstring)."""

    def __init__(self, path: str):
        self.path = os.path.abspath(path)
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        #: telemetry since this process opened the log
        self.appends = 0
        self.compactions = 0
        #: partial trailing lines discarded by the last :meth:`replay`
        self.torn_lines = 0

    # -- writing ---------------------------------------------------------------
    def append(self, event: str, **fields) -> None:
        """Durably append one event line (flushed + fsynced)."""
        record = {"at": time.time(), "event": event}
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"))
        if "\n" in line:  # defensive: JSONL integrity
            raise ServeError("WAL event serialized with an embedded "
                             "newline")
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self.appends += 1

    def compact(self, jobs: Iterable[Mapping]) -> None:
        """Atomically rewrite the log as one ``snapshot`` event per job
        (temp file + rename, like the result store)."""
        directory = os.path.dirname(self.path)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=directory, suffix=".tmp", delete=False,
            encoding="utf-8")
        try:
            with handle:
                for job in jobs:
                    handle.write(json.dumps(
                        {"at": time.time(), "event": EVENT_SNAPSHOT,
                         "job": dict(job)},
                        separators=(",", ":")) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(handle.name, self.path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self.compactions += 1

    # -- reading ---------------------------------------------------------------
    def _events(self) -> List[Dict]:
        """All complete event records, oldest first.  A torn final line
        (crash mid-append) is discarded and counted; a torn line
        *followed by* complete lines means real corruption and raises."""
        try:
            with open(self.path, encoding="utf-8") as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return []
        events: List[Dict] = []
        self.torn_lines = 0
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                if index == len(lines) - 1:
                    self.torn_lines += 1
                    break
                raise ServeError(
                    f"WAL {self.path!r} is corrupt at line {index + 1}: "
                    f"unparseable non-final entry")
            if isinstance(record, dict):
                events.append(record)
        return events

    def replay(self) -> List[Dict]:
        """Fold the event log into the latest record per job, in
        submission order.  Events referencing unknown job ids (their
        submit line was lost or compacted away) are skipped."""
        jobs: Dict[str, Dict] = {}
        order: List[str] = []
        for event in self._events():
            kind = event.get("event")
            if kind in (EVENT_SUBMIT, EVENT_SNAPSHOT):
                job = event.get("job")
                if not isinstance(job, dict) or "id" not in job:
                    continue
                job_id = job["id"]
                if job_id not in jobs:
                    order.append(job_id)
                jobs[job_id] = dict(job)
                continue
            job = jobs.get(event.get("id"))
            if job is None:
                continue
            if kind == EVENT_START:
                job["state"] = "running"
                job["started_at"] = event.get("at")
                if event.get("attempt") is not None:
                    job["attempt"] = int(event["attempt"])
            elif kind == EVENT_RETRY:
                job["state"] = "queued"
                job["started_at"] = None
                if event.get("attempt") is not None:
                    job["attempt"] = int(event["attempt"])
                if event.get("error"):
                    job["error"] = event["error"]
            elif kind == EVENT_FINISH:
                job["state"] = event.get("state", "done")
                job["finished_at"] = event.get("at")
                job["error"] = event.get("error")
                for field in ("simulations", "cache_hit",
                              "budget_exceeded", "stop_reason"):
                    if event.get(field) is not None:
                        job[field] = event[field]
            elif kind == EVENT_CANCEL:
                job["state"] = "cancelled"
                job["finished_at"] = event.get("at")
                job["stop_reason"] = event.get("stop_reason", "cancelled")
        return [jobs[job_id] for job_id in order]

    def entries(self) -> int:
        """Number of complete event lines currently in the log."""
        return len(self._events())

    def orphans(self) -> List[Tuple[str, str]]:
        """``(job_id, state)`` of every replayed job not in a terminal
        state — empty after a clean recovery cycle."""
        return [(job["id"], job.get("state", "?"))
                for job in self.replay()
                if job.get("state") in ("queued", "running")]


__all__ = ["EVENT_CANCEL", "EVENT_FINISH", "EVENT_RETRY",
           "EVENT_SNAPSHOT", "EVENT_START", "EVENT_SUBMIT",
           "WriteAheadLog"]
