"""The versioned wire format of stored yield-result artifacts.

Every JSON result that leaves this package over a file or the
``repro.serve`` API is wrapped in a self-describing **artifact**::

    {
      "schema_version": 1,
      "kind": "yield-result",
      "provenance": {
        "template": "folded-cascode",
        "seed": 2001,
        "estimator": "qmc",
        "n_samples": 64,
        ...
      },
      "result": { ... YieldResult.to_dict() ... }
    }

The provenance block answers "what request produced this result" without
re-reading any other file: the template and seed identify the sample
stream, the estimator/config fields identify the reduction, and
``code_version`` pins the producing code.  :func:`load_result_artifact`
validates an artifact on load and also accepts the *bare*
``YieldResult.to_dict()`` files older releases wrote (returning an empty
provenance), so pre-contract shard files keep merging.

``merge-verify`` uses the provenance to reject incompatible shard files
(:func:`check_merge_compatible`): pooling sufficient statistics from
different templates, seeds, or estimators would silently produce a
statistically meaningless "merged" estimate.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ArtifactError

#: Current artifact schema version.  Bump on any incompatible change to
#: the wrapper or to ``YieldResult.to_dict()``; the version participates
#: in the ``repro.serve`` cache key, so results produced by a different
#: schema are never served from cache.
SCHEMA_VERSION = 1

#: ``kind`` of a single (possibly sharded) yield estimation artifact.
KIND_YIELD = "yield-result"
#: ``kind`` of a ``merge_results`` pooled artifact.
KIND_MERGED = "merged-yield-result"
#: ``kind`` of an optimization-trace artifact (the serve layer's
#: ``optimize`` job output).
KIND_OPTIMIZE = "optimize-result"

#: every artifact must carry these top-level fields
_REQUIRED_FIELDS = ("schema_version", "kind", "provenance", "result")
#: provenance fields every yield/optimize artifact must carry
_REQUIRED_PROVENANCE = ("template", "seed", "estimator")


def make_provenance(template: str, seed: Optional[int], estimator: str,
                    n_samples: int, command: str,
                    shard: Optional[str] = None,
                    shards: Optional[int] = None,
                    linsolve: Optional[str] = None,
                    extra: Optional[Mapping] = None) -> Dict:
    """Build a provenance block for a yield artifact.

    ``command`` names the producing entry point (``"yield"``,
    ``"merge-verify"``, ``"serve"``); ``shard`` is the 1-based ``i/N``
    label of a shard artifact, ``shards`` the shard count of a merged
    one.  ``extra`` merges additional keys (e.g. the serve layer's job
    accounting) without displacing the required ones.
    """
    from .. import __version__ as code_version
    provenance: Dict = {
        "template": template,
        "seed": seed,
        "estimator": estimator,
        "n_samples": int(n_samples),
        "command": command,
        "code_version": code_version,
    }
    if shard is not None:
        provenance["shard"] = shard
    if shards is not None:
        provenance["shards"] = int(shards)
    if linsolve is not None:
        provenance["linsolve"] = linsolve
    if extra:
        for key, value in extra.items():
            provenance.setdefault(key, value)
    return provenance


def wrap_result(result, provenance: Mapping,
                kind: str = KIND_YIELD) -> Dict:
    """Wrap a :class:`~repro.yieldsim.YieldResult` (or any object with a
    compatible ``to_dict``) into a versioned artifact."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": kind,
        "provenance": dict(provenance),
        "result": result.to_dict() if hasattr(result, "to_dict")
        else dict(result),
    }


def validate_artifact(data: Mapping, source: str = "artifact") -> None:
    """Raise :class:`ArtifactError` unless ``data`` is a structurally
    valid artifact of a schema version this build reads."""
    if not isinstance(data, Mapping):
        raise ArtifactError(f"{source}: artifact must be a JSON object, "
                            f"got {type(data).__name__}")
    missing = [key for key in _REQUIRED_FIELDS if key not in data]
    if missing:
        raise ArtifactError(
            f"{source}: artifact is missing field(s) "
            f"{', '.join(missing)}")
    version = data["schema_version"]
    if version != SCHEMA_VERSION:
        raise ArtifactError(
            f"{source}: artifact schema version {version!r} is not "
            f"readable by this build (expects {SCHEMA_VERSION})")
    provenance = data["provenance"]
    if not isinstance(provenance, Mapping):
        raise ArtifactError(f"{source}: provenance must be an object")
    if data["kind"] in (KIND_YIELD, KIND_MERGED, KIND_OPTIMIZE):
        absent = [key for key in _REQUIRED_PROVENANCE
                  if key not in provenance]
        if absent:
            raise ArtifactError(
                f"{source}: provenance is missing field(s) "
                f"{', '.join(absent)}")
    if not isinstance(data["result"], Mapping):
        raise ArtifactError(f"{source}: result must be an object")


def load_result_artifact(data: Mapping, source: str = "artifact"
                         ) -> Tuple["object", Optional[Dict]]:
    """Parse a loaded JSON document into ``(YieldResult, provenance)``.

    Accepts both the wrapped artifact format (validated, provenance
    returned) and the bare ``YieldResult.to_dict()`` files written
    before the contract existed (``provenance = None``).
    """
    from ..yieldsim import YieldResult
    if isinstance(data, Mapping) and "schema_version" in data:
        validate_artifact(data, source=source)
        try:
            result = YieldResult.from_dict(data["result"])
        except (KeyError, ValueError, TypeError) as exc:
            raise ArtifactError(
                f"{source}: result block does not parse as a "
                f"YieldResult: {exc}")
        return result, dict(data["provenance"])
    try:
        return YieldResult.from_dict(data), None
    except (AttributeError, KeyError, ValueError, TypeError) as exc:
        raise ArtifactError(
            f"{source}: neither a versioned artifact nor a bare "
            f"YieldResult record: {exc}")


def check_merge_compatible(
        provenances: Sequence[Optional[Mapping]],
        sources: Optional[Sequence[str]] = None) -> None:
    """Reject shard artifacts whose provenance disagrees on the fields
    that define one logical sample stream.

    Shards of one verification run share the template, the root seed,
    and the estimator; pooling anything else produces a well-formed but
    meaningless estimate.  Artifacts without provenance (legacy bare
    files) are skipped — there is nothing to check against.
    """
    if sources is None:
        sources = [f"shard {i + 1}" for i in range(len(provenances))]
    reference: Optional[Tuple[int, Mapping]] = None
    for index, provenance in enumerate(provenances):
        if provenance is None:
            continue
        if reference is None:
            reference = (index, provenance)
            continue
        ref_index, ref = reference
        for field in _REQUIRED_PROVENANCE:
            ours, theirs = ref.get(field), provenance.get(field)
            if ours != theirs:
                raise ArtifactError(
                    f"cannot merge incompatible shard results: "
                    f"{sources[ref_index]} has {field}={ours!r} but "
                    f"{sources[index]} has {field}={theirs!r}; shards "
                    f"of one run must share template, seed, and "
                    f"estimator")


def merged_provenance(provenances: Sequence[Optional[Mapping]],
                      n_samples: int, shards: int) -> Dict:
    """Provenance of a ``merge_results`` artifact, derived from its
    inputs (first non-None provenance wins the shared fields)."""
    base = next((p for p in provenances if p is not None), None)
    return make_provenance(
        template=base.get("template") if base else "unknown",
        seed=base.get("seed") if base else None,
        estimator=base.get("estimator") if base else "unknown",
        n_samples=n_samples,
        command="merge-verify",
        shards=shards,
        linsolve=base.get("linsolve") if base else None)


__all__: List[str] = [
    "KIND_MERGED", "KIND_OPTIMIZE", "KIND_YIELD", "SCHEMA_VERSION",
    "check_merge_compatible", "load_result_artifact", "make_provenance",
    "merged_provenance", "validate_artifact", "wrap_result",
]
