"""Opamp measurement testbench helpers.

High-gain opamps cannot be operating-point-solved open loop — any offset
rails the output.  The classic characterization trick (used by production
analog decks, and here) closes the feedback path through a *huge inductor*
and couples the small-signal drive through a *huge capacitor*:

* at DC the inductor is a short -> unity-gain feedback biases the output
  near the input common mode even under mismatch,
* at every analysis frequency of interest the inductor is effectively open
  and the capacitor a short -> the measured transfer is the open-loop gain.

:class:`OpenLoopOpampBench` runs the standard measurement set on such a
testbench: differential gain A0, transit frequency f_t, phase margin,
common-mode gain / CMRR, supply power.  Templates build the netlist (core +
bench elements) and delegate the extraction here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..circuit.ac import AcSystem, phase_margin, unity_gain_frequency
from ..circuit.dc import DCResult, solve_dc
from ..circuit.devices import Vsource
from ..circuit.netlist import Circuit
from ..errors import ExtractionError
from ..units import db

#: Feedback inductor / coupling capacitor for the DC-closed, AC-open loop.
FEEDBACK_INDUCTANCE = 1e9
COUPLING_CAPACITANCE = 1.0

#: Frequency at which "DC" gains are measured.  Low enough to sit on the
#: gain plateau of any opamp in this package, high enough that the bench
#: reactances are ideal.
GAIN_MEASURE_HZ = 1.0


def add_openloop_bench(circuit: Circuit, inp: str, inn: str, out: str,
                       vcm: float) -> None:
    """Attach the open-loop bench elements to an opamp core.

    Drives ``inp`` from source ``VIP`` directly and ``inn`` from source
    ``VIN`` through the coupling capacitor, and closes ``out -> inn`` with
    the feedback inductor.  Both sources sit at the common-mode voltage
    ``vcm`` at DC.
    """
    circuit.vsource("VIP", inp, "0", dc=vcm, ac=0.0)
    circuit.vsource("VIN", "_vin_src", "0", dc=vcm, ac=0.0)
    circuit.capacitor("CIN", "_vin_src", inn, COUPLING_CAPACITANCE)
    circuit.inductor("LFB", out, inn, FEEDBACK_INDUCTANCE)


@dataclass
class OpampMeasurements:
    """Extracted opamp performances (presentation units noted per field)."""

    a0_db: float
    ft_hz: float
    pm_deg: float
    cmrr_db: float
    power_w: float
    output_dc: float


class OpenLoopOpampBench:
    """Measurement driver for a circuit built with
    :func:`add_openloop_bench`."""

    def __init__(self, circuit: Circuit, out: str = "out",
                 supply_source: str = "VDD", temp_c: float = 27.0):
        self.circuit = circuit
        self.out = out
        self.supply_source = supply_source
        self.temp_c = temp_c
        self._op: Optional[DCResult] = None
        self._systems: dict = {}

    @property
    def op(self) -> DCResult:
        """The (lazily solved) DC operating point."""
        if self._op is None:
            self._op = solve_dc(self.circuit, temp_c=self.temp_c)
        return self._op

    def _system(self, ac_p: complex, ac_n: complex) -> AcSystem:
        """Assembled AC system for one input drive (cached per drive)."""
        key = (ac_p, ac_n)
        system = self._systems.get(key)
        if system is None:
            vip = self.circuit.device("VIP")
            vin = self.circuit.device("VIN")
            assert isinstance(vip, Vsource) and isinstance(vin, Vsource)
            vip.ac = ac_p
            vin.ac = ac_n
            system = AcSystem(self.circuit, self.op)
            self._systems[key] = system
        return system

    def differential_gain(self, freq: float = GAIN_MEASURE_HZ) -> complex:
        """Open-loop differential gain at ``freq`` (+0.5 / -0.5 drive)."""
        return self._system(0.5, -0.5).transfer(self.out, freq)

    def common_mode_gain(self, freq: float = GAIN_MEASURE_HZ) -> complex:
        """Open-loop common-mode gain at ``freq`` (+1 / +1 drive)."""
        return self._system(1.0, 1.0).transfer(self.out, freq)

    def transit_frequency(self) -> float:
        """Unity-gain frequency of the differential path [Hz]."""
        return unity_gain_frequency(self._system(0.5, -0.5), self.out)

    def phase_margin(self, ft_hz: Optional[float] = None) -> float:
        """Phase margin of the differential path [degrees]."""
        return phase_margin(self._system(0.5, -0.5), self.out,
                            f_unity=ft_hz)

    def supply_power(self, vdd: float) -> float:
        """Static power drawn from the supply source [W]."""
        current = self.op.source_current(self.supply_source)
        return abs(current * vdd)

    def measure(self, vdd: float, with_pm: bool = True,
                cmrr_floor_db: float = 0.0) -> OpampMeasurements:
        """Run the full measurement set.

        ``cmrr_floor_db`` guards the pathological case of a dead circuit
        whose differential gain is below its common-mode gain.
        """
        adm = abs(self.differential_gain())
        acm = abs(self.common_mode_gain())
        if adm <= 0.0:
            raise ExtractionError("differential gain is zero; dead circuit?")
        a0_db = db(adm)
        cmrr_db = db(adm / acm) if acm > 0.0 else 200.0
        cmrr_db = max(cmrr_db, cmrr_floor_db)
        ft_hz = self.transit_frequency() if adm > 1.0 else 0.0
        pm_deg = self.phase_margin(ft_hz) if (with_pm and ft_hz > 0.0) \
            else 0.0
        return OpampMeasurements(
            a0_db=a0_db,
            ft_hz=ft_hz,
            pm_deg=pm_deg,
            cmrr_db=cmrr_db,
            power_w=self.supply_power(vdd),
            output_dc=self.op.voltage(self.out),
        )
