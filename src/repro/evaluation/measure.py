"""Opamp measurement testbench helpers.

High-gain opamps cannot be operating-point-solved open loop — any offset
rails the output.  The classic characterization trick (used by production
analog decks, and here) closes the feedback path through a *huge inductor*
and couples the small-signal drive through a *huge capacitor*:

* at DC the inductor is a short -> unity-gain feedback biases the output
  near the input common mode even under mismatch,
* at every analysis frequency of interest the inductor is effectively open
  and the capacitor a short -> the measured transfer is the open-loop gain.

:class:`OpenLoopOpampBench` runs the standard measurement set on such a
testbench: differential gain A0, transit frequency f_t, phase margin,
common-mode gain / CMRR, supply power.  Templates build the netlist (core +
bench elements) and delegate the extraction here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..circuit.ac import (AcSystem, phase_margin, shared_matrix_transfers,
                          unity_gain_frequency, warm_unity_crossing)
from ..circuit.dc import DCResult, solve_dc
from ..circuit.devices import Vsource
from ..circuit.netlist import Circuit
from ..errors import ExtractionError
from ..units import db

#: Feedback inductor / coupling capacitor for the DC-closed, AC-open loop.
FEEDBACK_INDUCTANCE = 1e9
COUPLING_CAPACITANCE = 1.0

#: Frequency at which "DC" gains are measured.  Low enough to sit on the
#: gain plateau of any opamp in this package, high enough that the bench
#: reactances are ideal.
GAIN_MEASURE_HZ = 1.0

#: Log10 tolerance of the transit-frequency search at the measurement
#: layer: f_t to 0.001 % relative — orders of magnitude below both the
#: spec granularity and the f_t shift of any mismatch sample, at roughly
#: two-thirds the solve count of the solver default.
UGF_TOL = 1e-5

#: Half-width (as a frequency ratio) of the warm-started unity-gain
#: bracket around an anchor's transit frequency.  2x each side covers
#: many sigma of mismatch-induced f_t shift; a miss falls back to the
#: full sweep, so the hint can only cost solves, never correctness.
WARM_FT_SPAN = 2.0


def add_openloop_bench(circuit: Circuit, inp: str, inn: str, out: str,
                       vcm: float) -> None:
    """Attach the open-loop bench elements to an opamp core.

    Drives ``inp`` from source ``VIP`` directly and ``inn`` from source
    ``VIN`` through the coupling capacitor, and closes ``out -> inn`` with
    the feedback inductor.  Both sources sit at the common-mode voltage
    ``vcm`` at DC.
    """
    circuit.vsource("VIP", inp, "0", dc=vcm, ac=0.0)
    circuit.vsource("VIN", "_vin_src", "0", dc=vcm, ac=0.0)
    circuit.capacitor("CIN", "_vin_src", inn, COUPLING_CAPACITANCE)
    circuit.inductor("LFB", out, inn, FEEDBACK_INDUCTANCE)


@dataclass
class OpampMeasurements:
    """Extracted opamp performances (presentation units noted per field)."""

    a0_db: float
    ft_hz: float
    pm_deg: float
    cmrr_db: float
    power_w: float
    output_dc: float


class OpenLoopOpampBench:
    """Measurement driver for a circuit built with
    :func:`add_openloop_bench`."""

    def __init__(self, circuit: Circuit, out: str = "out",
                 supply_source: str = "VDD", temp_c: float = 27.0,
                 x0=None, ft_hint: Optional[float] = None,
                 linsolve=None, dc_effort=None):
        self.circuit = circuit
        self.out = out
        self.supply_source = supply_source
        self.temp_c = temp_c
        #: linear-solver backend spec for the DC solve and all AC systems
        #: (``None``/``"auto"`` selects by node count; see
        #: :mod:`repro.circuit.linsolve`)
        self.linsolve = linsolve
        #: optional Newton warm start for the DC solve (a nearby operating
        #: point, e.g. a cached anchor solution); the solver falls back to
        #: the full homotopy chain when it does not converge from here
        self.x0 = x0
        #: optional transit-frequency estimate (e.g. the anchor cell's
        #: f_t) used to bracket the unity-gain search tightly; a bracket
        #: miss falls back to the full sweep
        self.ft_hint = ft_hint
        #: optional :class:`repro.circuit.dc.DcEffort` counter bundle the
        #: lazy DC solve reports its winning strategy into
        self.dc_effort = dc_effort
        self._op: Optional[DCResult] = None
        self._systems: dict = {}

    @property
    def op(self) -> DCResult:
        """The (lazily solved) DC operating point."""
        if self._op is None:
            self._op = solve_dc(self.circuit, temp_c=self.temp_c,
                                x0=self.x0, backend=self.linsolve,
                                effort=self.dc_effort)
        return self._op

    def _system(self, ac_p: complex, ac_n: complex) -> AcSystem:
        """Assembled AC system for one input drive (cached per drive)."""
        key = (ac_p, ac_n)
        system = self._systems.get(key)
        if system is None:
            vip = self.circuit.device("VIP")
            vin = self.circuit.device("VIN")
            assert isinstance(vip, Vsource) and isinstance(vin, Vsource)
            vip.ac = ac_p
            vin.ac = ac_n
            if self._systems:
                # (G, B) are drive-independent: re-stamp only the rhs.
                base = next(iter(self._systems.values()))
                system = base.with_drives()
            else:
                system = AcSystem(self.circuit, self.op,
                                  backend=self.linsolve)
            self._systems[key] = system
        return system

    def differential_gain(self, freq: float = GAIN_MEASURE_HZ) -> complex:
        """Open-loop differential gain at ``freq`` (+0.5 / -0.5 drive)."""
        return self._system(0.5, -0.5).transfer(self.out, freq)

    def common_mode_gain(self, freq: float = GAIN_MEASURE_HZ) -> complex:
        """Open-loop common-mode gain at ``freq`` (+1 / +1 drive)."""
        return self._system(1.0, 1.0).transfer(self.out, freq)

    def transit_frequency(self) -> float:
        """Unity-gain frequency of the differential path [Hz]."""
        system = self._system(0.5, -0.5)
        if self.ft_hint is not None and self.ft_hint > 0.0:
            try:
                # Tight hinted bracket: the Illinois secant refiner needs
                # ~5 solves where the sectioned sweep needs ~30.
                return warm_unity_crossing(
                    system, self.out, f_lo=self.ft_hint / WARM_FT_SPAN,
                    f_hi=self.ft_hint * WARM_FT_SPAN, tol=UGF_TOL)
            except ExtractionError:
                pass  # the crossing moved outside the warm bracket
        return unity_gain_frequency(system, self.out, tol=UGF_TOL)

    def phase_margin(self, ft_hz: Optional[float] = None) -> float:
        """Phase margin of the differential path [degrees]."""
        return phase_margin(self._system(0.5, -0.5), self.out,
                            f_unity=ft_hz)

    def supply_power(self, vdd: float) -> float:
        """Static power drawn from the supply source [W]."""
        current = self.op.source_current(self.supply_source)
        return abs(current * vdd)

    def measure(self, vdd: float, with_pm: bool = True,
                cmrr_floor_db: float = 0.0) -> OpampMeasurements:
        """Run the full measurement set.

        ``cmrr_floor_db`` guards the pathological case of a dead circuit
        whose differential gain is below its common-mode gain.
        """
        # The differential and common-mode benches share (G, B) — only the
        # source drives (rhs) differ — so both gains come from one
        # factorization (bitwise identical to two separate solves).
        h_dm, h_cm = shared_matrix_transfers(
            [self._system(0.5, -0.5), self._system(1.0, 1.0)],
            self.out, GAIN_MEASURE_HZ)
        adm = abs(h_dm)
        acm = abs(h_cm)
        if adm <= 0.0:
            raise ExtractionError("differential gain is zero; dead circuit?")
        a0_db = db(adm)
        cmrr_db = db(adm / acm) if acm > 0.0 else 200.0
        cmrr_db = max(cmrr_db, cmrr_floor_db)
        ft_hz = self.transit_frequency() if adm > 1.0 else 0.0
        pm_deg = self.phase_margin(ft_hz) if (with_pm and ft_hz > 0.0) \
            else 0.0
        return OpampMeasurements(
            a0_db=a0_db,
            ft_hz=ft_hz,
            pm_deg=pm_deg,
            cmrr_db=cmrr_db,
            power_w=self.supply_power(vdd),
            output_dc=self.op.voltage(self.out),
        )
