"""PVT corner analysis on circuit templates.

A classic pre-statistical sanity check that complements the paper's
Monte-Carlo view: evaluate every performance at the nominal statistical
point and at one-at-a-time ``+-k sigma`` excursions of each *global*
process parameter, across all operating-box corners, then report the
worst value and the responsible corner per spec.

This is what designers call "corners" (SS/FF/SF/FS plus temperature and
supply); it costs ``(2 n_global + 1) * (2^dim(Theta) + 1)`` simulations
and gives a quick, distribution-free robustness picture before the full
yield machinery runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..spec.operating import spec_key
from .evaluator import Evaluator


@dataclass(frozen=True)
class CornerObservation:
    """One (process corner, operating point) evaluation of one spec."""

    corner: str  # e.g. "gvtn+3.0", "typ"
    theta: Mapping[str, float]
    value: float
    margin: float


@dataclass
class CornerReport:
    """Worst-case corner view of a design."""

    worst: Dict[str, CornerObservation]  # per spec key
    observations: Dict[str, List[CornerObservation]]
    simulations: int

    def passes(self) -> bool:
        """True when every spec holds at every evaluated corner."""
        return all(obs.margin >= 0.0 for obs in self.worst.values())

    def failing_specs(self) -> List[str]:
        return sorted(key for key, obs in self.worst.items()
                      if obs.margin < 0.0)

    def summary(self) -> str:
        """Human-readable corner table."""
        lines = [f"{'spec':>10} | {'worst value':>12} | {'margin':>9} | "
                 f"corner / theta"]
        lines.append("-" * len(lines[0]))
        for key, obs in sorted(self.worst.items()):
            theta = ", ".join(f"{k}={v:g}" for k, v in obs.theta.items())
            lines.append(f"{key:>10} | {obs.value:>12.3f} | "
                         f"{obs.margin:>+9.3f} | {obs.corner} @ {theta}")
        return "\n".join(lines)


def corner_analysis(evaluator: Evaluator, d: Mapping[str, float],
                    sigma_level: float = 3.0) -> CornerReport:
    """Run the one-at-a-time global-corner sweep described above."""
    template = evaluator.template
    space = template.statistical_space
    dim = space.dim

    corners: List[Tuple[str, np.ndarray]] = [("typ", np.zeros(dim))]
    for index in range(space.n_global):
        name = space.names[index]
        for sign in (+1.0, -1.0):
            s_hat = np.zeros(dim)
            s_hat[index] = sign * sigma_level
            corners.append((f"{name}{sign * sigma_level:+g}", s_hat))

    thetas = template.operating_range.corners() + \
        [template.operating_range.nominal()]

    observations: Dict[str, List[CornerObservation]] = {
        spec_key(spec): [] for spec in template.specs}
    simulations = 0
    for corner_name, s_hat in corners:
        for theta in thetas:
            values = evaluator.evaluate(d, s_hat, theta)
            simulations += 1
            for spec in template.specs:
                key = spec_key(spec)
                value = values[spec.performance]
                observations[key].append(CornerObservation(
                    corner=corner_name, theta=dict(theta), value=value,
                    margin=spec.margin(value)))
    worst = {key: min(entries, key=lambda o: o.margin)
             for key, entries in observations.items()}
    return CornerReport(worst=worst, observations=observations,
                        simulations=simulations)
