"""Circuit-template abstraction: the black-box ``f(d, s, theta)``.

A :class:`CircuitTemplate` bundles everything the optimization algorithm
needs about one sizing problem:

* the design space ``d`` (parameter names, bounds, initial values),
* the statistical space ``s`` (global + local, Sec. 4 transform inside),
* the operating range ``Theta``,
* the performance/spec list,
* ``evaluate(d, s_hat, theta)``   — simulate and extract all performances,
* ``constraints(d)``              — the functional constraints c(d) >= 0
  that define the feasibility region F (Sec. 5.1).

Concrete templates (folded-cascode, Miller) live in :mod:`repro.circuits`.
The algorithmic layers never touch a netlist directly; they only see this
interface, which is exactly the structure the paper assumes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError
from ..spec.operating import OperatingRange
from ..spec.specification import Performance, Spec, check_unique_performances
from ..statistics.space import StatisticalSpace


@dataclass(frozen=True)
class DesignParameter:
    """One designable parameter (transistor width/length, capacitor, ...)."""

    name: str
    lower: float
    upper: float
    initial: float
    unit: str = "m"

    def __post_init__(self):
        if not self.lower < self.upper:
            raise ReproError(
                f"design parameter {self.name!r}: lower bound must be below "
                f"upper bound")
        if not self.lower <= self.initial <= self.upper:
            raise ReproError(
                f"design parameter {self.name!r}: initial value "
                f"{self.initial} outside [{self.lower}, {self.upper}]")

    def clip(self, value: float) -> float:
        return min(max(value, self.lower), self.upper)


class CircuitTemplate(abc.ABC):
    """Abstract sizing problem; see module docstring."""

    #: Problem name (used in reports).
    name: str = "unnamed"

    def __init__(self,
                 design_parameters: Sequence[DesignParameter],
                 performances: Sequence[Performance],
                 specs: Sequence[Spec],
                 operating_range: OperatingRange,
                 statistical_space: StatisticalSpace,
                 constraint_names: Sequence[str]):
        self.design_parameters: Tuple[DesignParameter, ...] = \
            tuple(design_parameters)
        self.performances: Tuple[Performance, ...] = tuple(performances)
        self.specs: Tuple[Spec, ...] = tuple(specs)
        check_unique_performances(self.specs)
        self.operating_range = operating_range
        self.statistical_space = statistical_space
        self.constraint_names: Tuple[str, ...] = tuple(constraint_names)
        names = [p.name for p in self.design_parameters]
        if len(set(names)) != len(names):
            raise ReproError("duplicate design parameter names")
        performance_names = {p.name for p in self.performances}
        for spec in self.specs:
            if spec.performance not in performance_names:
                raise ReproError(
                    f"spec references unknown performance "
                    f"{spec.performance!r}")

    # -- design-space helpers ------------------------------------------------
    @property
    def design_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.design_parameters)

    def initial_design(self) -> Dict[str, float]:
        """The (possibly infeasible) starting design d0."""
        return {p.name: p.initial for p in self.design_parameters}

    def clip_design(self, d: Mapping[str, float]) -> Dict[str, float]:
        """Clamp a design dict into the box bounds."""
        return {p.name: p.clip(float(d[p.name]))
                for p in self.design_parameters}

    def design_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Lower/upper bound vectors in design-parameter order."""
        lower = np.array([p.lower for p in self.design_parameters])
        upper = np.array([p.upper for p in self.design_parameters])
        return lower, upper

    def design_vector(self, d: Mapping[str, float]) -> np.ndarray:
        """Dict -> vector in canonical parameter order."""
        return np.array([float(d[name]) for name in self.design_names])

    def design_dict(self, vector: np.ndarray) -> Dict[str, float]:
        """Vector -> dict in canonical parameter order."""
        return {name: float(value)
                for name, value in zip(self.design_names, vector)}

    # -- the black box --------------------------------------------------------
    @abc.abstractmethod
    def evaluate(self, d: Mapping[str, float], s_hat: np.ndarray,
                 theta: Mapping[str, float]) -> Dict[str, float]:
        """Simulate at ``(d, s_hat, theta)``; return all performance values.

        ``s_hat`` is in normalized coordinates (Sec. 4); the template
        applies ``G(d)`` via its statistical space.  Must return a value
        for every declared performance, in presentation units.
        """

    @abc.abstractmethod
    def constraints(self, d: Mapping[str, float],
                    theta: Optional[Mapping[str, float]] = None
                    ) -> Dict[str, float]:
        """Evaluate the functional constraints c(d) at the nominal
        statistical point; values >= 0 mean satisfied.  Keys must match
        :attr:`constraint_names`."""

    def evaluate_batch(self, d: Mapping[str, float],
                       rows: Sequence[np.ndarray],
                       theta: Mapping[str, float],
                       batch_samples: Optional[int] = None) -> list:
        """Evaluate many statistical points at one ``(d, theta)``.

        Returns one entry per row, **in row order**: the performance
        dict on success, or the raised exception object on failure (the
        caller owns fault classification — a batch must report every
        sample's outcome, not die at the first bad one).  The base
        implementation is a serial loop; templates with a vectorized
        simulation path (see
        :meth:`repro.circuits.base.OpampTemplate.evaluate_batch`)
        override it and must preserve these exact semantics.

        ``batch_samples`` caps the vectorized chunk size for overriding
        implementations; the serial default ignores it.
        """
        entries: list = []
        for row in rows:
            try:
                entries.append(self.evaluate(d, row, theta))
            except Exception as exc:
                entries.append(exc)
        return entries

    # -- convenience -----------------------------------------------------------
    def spec_for(self, performance: str) -> Spec:
        """The (first) spec bounding a performance."""
        for spec in self.specs:
            if spec.performance == performance:
                return spec
        raise ReproError(f"no spec on performance {performance!r}")
