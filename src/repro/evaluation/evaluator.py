"""Counted, cached performance evaluator.

Wraps a :class:`~repro.evaluation.template.CircuitTemplate` and

* counts every underlying simulation (Table 7 of the paper reports these
  counts; one "simulation" = one full testbench evaluation at a
  ``(d, s, theta)`` point, as an industrial flow would count netlist runs),
* memoizes results, so e.g. the repeated nominal-point evaluations of the
  worst-case search and the verification Monte-Carlo do not re-simulate.

All algorithmic modules accept an :class:`Evaluator` rather than a raw
template, so simulation accounting is automatic and consistent.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..spec.specification import Spec
from .template import CircuitTemplate

#: Mantissa scale (2^40) used for cache-key quantization: values are keyed
#: by ``(round(mantissa * 2^40), exponent)``, i.e. rounded at a relative
#: resolution of 2^-40 ~ 9.1e-13 — coarse enough to absorb float
#: round-trip noise (~2.2e-16 relative), fine enough never to collide for
#: distinct finite-difference steps (1e-3 relative).  frexp + an integer
#: round is several times cheaper than the ``f"{v:.12e}"`` string
#: round-trip it replaces; this key is built on every single evaluation.
_MANTISSA_SCALE = float(1 << 40)


def _quantize(value: float):
    if not math.isfinite(value):
        # round() of NaN/inf raises; key on the raw float (inf compares
        # equal to itself, NaN never — matching the old string behavior).
        return value
    mantissa, exponent = math.frexp(value)
    return round(mantissa * _MANTISSA_SCALE), exponent


class Evaluator:
    """Counting/caching façade over a circuit template."""

    def __init__(self, template: CircuitTemplate, cache: bool = True,
                 linsolve=None):
        self.template = template
        self.cache_enabled = cache
        #: linear-solver backend override ("dense"/"sparse"/"auto").
        #: ``None`` leaves the template's own setting untouched; anything
        #: else is pushed onto the template so every solve it runs —
        #: including warm-anchor solves — uses the requested backend.
        self.linsolve = linsolve
        if linsolve is not None:
            template.linsolve = linsolve
        self._cache: Dict[Tuple, Dict[str, float]] = {}
        # Key-building hot path: freeze the design-name order and the
        # operating-parameter order once instead of re-deriving (and, for
        # theta, re-sorting) them on every evaluation.
        self._design_names: Tuple[str, ...] = tuple(template.design_names)
        try:
            self._theta_names: Optional[Tuple[str, ...]] = tuple(
                p.name for p in template.operating_range.parameters)
        except AttributeError:
            self._theta_names = None
        #: number of performance simulations actually run (cache misses)
        self.simulation_count = 0
        #: number of evaluate() requests (including cache hits)
        self.request_count = 0
        #: number of constraint evaluations (DC-only simulations)
        self.constraint_count = 0
        #: number of evaluate() requests answered from the cache
        self.cache_hits = 0
        #: number of evaluate() requests that had to simulate
        self.cache_misses = 0

    # -- core ------------------------------------------------------------------
    def _key(self, d: Mapping[str, float], s_hat: np.ndarray,
             theta: Mapping[str, float]) -> Tuple:
        dk = tuple(_quantize(d[name]) for name in self._design_names)
        sk = tuple(_quantize(float(v))
                   for v in np.asarray(s_hat, dtype=float))
        names = self._theta_names
        if names is not None and len(names) == len(theta):
            # Template-declared parameter order: no per-call sort, and the
            # names themselves need not be part of the key.
            try:
                tk = tuple(_quantize(theta[name]) for name in names)
            except KeyError:
                tk = tuple(sorted((k, _quantize(v))
                                  for k, v in theta.items()))
        else:
            # Theta carries extra/unknown entries: fall back to the
            # order-independent named form.
            tk = tuple(sorted((k, _quantize(v)) for k, v in theta.items()))
        return dk, sk, tk

    def evaluate(self, d: Mapping[str, float], s_hat: np.ndarray,
                 theta: Mapping[str, float]) -> Dict[str, float]:
        """All performance values at ``(d, s_hat, theta)``."""
        self.request_count += 1
        if not self.cache_enabled:
            self.simulation_count += 1
            self.cache_misses += 1
            return self.template.evaluate(d, s_hat, theta)
        key = self._key(d, s_hat, theta)
        hit = self._cache.get(key)
        if hit is not None:
            self.cache_hits += 1
            return dict(hit)
        result = self.template.evaluate(d, s_hat, theta)
        self.simulation_count += 1
        self.cache_misses += 1
        self._cache[key] = dict(result)
        return result

    def evaluate_batch(self, d: Mapping[str, float],
                       rows: List[np.ndarray],
                       theta: Mapping[str, float],
                       batch_samples: Optional[int] = None) -> List:
        """Evaluate many statistical points at one ``(d, theta)``.

        Returns one entry per row, in row order: the performance dict,
        or the exception the evaluation raised (never raised here — the
        caller owns fault handling; see
        :meth:`~repro.evaluation.template.CircuitTemplate.evaluate_batch`).

        Counter and cache semantics replicate the serial
        ``evaluate()``-per-row loop exactly: every row counts one
        request; cache hits count as hits; every simulated row counts
        one simulation + one miss, and successful results enter the
        cache in row order.  Only *first-occurrence uncached* rows go
        through the template's batched path; a duplicate of a failed row
        re-attempts serially, exactly as the serial loop would (the
        failure left nothing in the cache).
        """
        if not self.cache_enabled:
            self.request_count += len(rows)
            self.simulation_count += len(rows)
            self.cache_misses += len(rows)
            return self.template.evaluate_batch(
                d, rows, theta, batch_samples=batch_samples)
        keys = [self._key(d, row, theta) for row in rows]
        todo: List[int] = []
        seen = set()
        for i, key in enumerate(keys):
            if key not in self._cache and key not in seen:
                seen.add(key)
                todo.append(i)
        produced: Dict[Tuple, object] = {}
        if todo:
            entries = self.template.evaluate_batch(
                d, [rows[i] for i in todo], theta,
                batch_samples=batch_samples)
            produced = {keys[i]: entry
                        for i, entry in zip(todo, entries)}
        results: List = []
        for i, key in enumerate(keys):
            self.request_count += 1
            hit = self._cache.get(key)
            if hit is not None:
                self.cache_hits += 1
                results.append(dict(hit))
                continue
            entry = produced.pop(key, None)
            if entry is None:
                # Duplicate of a row whose batched attempt failed: the
                # serial loop would re-simulate it (nothing was cached),
                # so replicate that — including the repeated failure.
                try:
                    entry = self.template.evaluate(d, rows[i], theta)
                except Exception as exc:
                    entry = exc
            if isinstance(entry, BaseException):
                # Serial parity: in the cached path ``evaluate`` bumps
                # simulation/miss only *after* the template returns, so
                # a raising evaluation counts the request alone.
                results.append(entry)
                continue
            self.simulation_count += 1
            self.cache_misses += 1
            self._cache[key] = dict(entry)
            results.append(dict(entry))
        return results

    def constraints(self, d: Mapping[str, float]) -> Dict[str, float]:
        """Functional constraint values c(d) (>= 0 feasible)."""
        self.constraint_count += 1
        return self.template.constraints(d)

    # -- conveniences -----------------------------------------------------------
    def performance(self, name: str, d: Mapping[str, float],
                    s_hat: np.ndarray,
                    theta: Mapping[str, float]) -> float:
        """One performance value."""
        return self.evaluate(d, s_hat, theta)[name]

    def margins(self, d: Mapping[str, float], s_hat: np.ndarray,
                theta_per_spec: Mapping[str, Mapping[str, float]]
                ) -> Dict[str, float]:
        """Signed spec margins, each evaluated at its own worst-case
        operating point (keyed by :func:`repro.spec.spec_key`)."""
        from ..spec.operating import spec_key
        result: Dict[str, float] = {}
        for spec in self.template.specs:
            key = spec_key(spec)
            values = self.evaluate(d, s_hat, theta_per_spec[key])
            result[key] = spec.margin(values[spec.performance])
        return result

    def reset_counters(self) -> None:
        """Zero the simulation counters (cache is kept)."""
        self.simulation_count = 0
        self.request_count = 0
        self.constraint_count = 0
        self.cache_hits = 0
        self.cache_misses = 0

    def absorb_counts(self, simulations: int = 0, requests: int = 0,
                      constraint: int = 0, cache_hits: int = 0,
                      cache_misses: int = 0) -> None:
        """Fold counters produced elsewhere (e.g. by process-pool workers,
        each of which simulates against its own evaluator copy) into this
        evaluator's accounting, so Table-7 effort reports stay complete."""
        self.simulation_count += simulations
        self.request_count += requests
        self.constraint_count += constraint
        self.cache_hits += cache_hits
        self.cache_misses += cache_misses

    def clear_cache(self) -> None:
        self._cache.clear()

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    # -- worker-cache folding ----------------------------------------------------
    def cache_items_since(self, start: int
                          ) -> List[Tuple[Tuple, Dict[str, float]]]:
        """Cache entries inserted at position ``start`` or later, in
        insertion order (dicts preserve it).  Pool workers snapshot
        ``cache_size`` before a task and ship only the entries the task
        added."""
        return list(itertools.islice(self._cache.items(), start, None))

    def absorb_cache(self, entries: Iterable[Tuple[Tuple, Dict[str, float]]]
                     ) -> Tuple[int, int]:
        """Merge worker-produced cache entries into this cache, in order.

        Returns ``(new, duplicate)`` counts.  A *new* key is a simulation
        the parent would also have had to run serially; a *duplicate* is
        one the parent cache (or an earlier-folded worker) already holds —
        serially it would have been a cache hit.  Folding tasks in a
        deterministic order therefore reproduces the serial run's cache
        contents and its exact Table-7 counters.
        """
        new = duplicate = 0
        for key, values in entries:
            if key in self._cache:
                duplicate += 1
            else:
                self._cache[key] = dict(values)
                new += 1
        return new, duplicate
