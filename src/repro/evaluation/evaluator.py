"""Counted, cached performance evaluator.

Wraps a :class:`~repro.evaluation.template.CircuitTemplate` and

* counts every underlying simulation (Table 7 of the paper reports these
  counts; one "simulation" = one full testbench evaluation at a
  ``(d, s, theta)`` point, as an industrial flow would count netlist runs),
* memoizes results, so e.g. the repeated nominal-point evaluations of the
  worst-case search and the verification Monte-Carlo do not re-simulate.

All algorithmic modules accept an :class:`Evaluator` rather than a raw
template, so simulation accounting is automatic and consistent.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..spec.specification import Spec
from .template import CircuitTemplate

#: Significant digits used for cache keys.  Coarse enough to absorb float
#: round-trip noise, fine enough never to collide for distinct FD steps.
_KEY_DIGITS = 12


def _round_sig(value: float) -> float:
    return float(f"{value:.{_KEY_DIGITS}e}")


class Evaluator:
    """Counting/caching façade over a circuit template."""

    def __init__(self, template: CircuitTemplate, cache: bool = True):
        self.template = template
        self.cache_enabled = cache
        self._cache: Dict[Tuple, Dict[str, float]] = {}
        #: number of performance simulations actually run (cache misses)
        self.simulation_count = 0
        #: number of evaluate() requests (including cache hits)
        self.request_count = 0
        #: number of constraint evaluations (DC-only simulations)
        self.constraint_count = 0
        #: number of evaluate() requests answered from the cache
        self.cache_hits = 0
        #: number of evaluate() requests that had to simulate
        self.cache_misses = 0

    # -- core ------------------------------------------------------------------
    def _key(self, d: Mapping[str, float], s_hat: np.ndarray,
             theta: Mapping[str, float]) -> Tuple:
        dk = tuple(_round_sig(d[name]) for name in self.template.design_names)
        sk = tuple(_round_sig(v) for v in np.asarray(s_hat, dtype=float))
        tk = tuple(sorted((k, _round_sig(v)) for k, v in theta.items()))
        return dk, sk, tk

    def evaluate(self, d: Mapping[str, float], s_hat: np.ndarray,
                 theta: Mapping[str, float]) -> Dict[str, float]:
        """All performance values at ``(d, s_hat, theta)``."""
        self.request_count += 1
        if not self.cache_enabled:
            self.simulation_count += 1
            self.cache_misses += 1
            return self.template.evaluate(d, s_hat, theta)
        key = self._key(d, s_hat, theta)
        hit = self._cache.get(key)
        if hit is not None:
            self.cache_hits += 1
            return dict(hit)
        result = self.template.evaluate(d, s_hat, theta)
        self.simulation_count += 1
        self.cache_misses += 1
        self._cache[key] = dict(result)
        return result

    def constraints(self, d: Mapping[str, float]) -> Dict[str, float]:
        """Functional constraint values c(d) (>= 0 feasible)."""
        self.constraint_count += 1
        return self.template.constraints(d)

    # -- conveniences -----------------------------------------------------------
    def performance(self, name: str, d: Mapping[str, float],
                    s_hat: np.ndarray,
                    theta: Mapping[str, float]) -> float:
        """One performance value."""
        return self.evaluate(d, s_hat, theta)[name]

    def margins(self, d: Mapping[str, float], s_hat: np.ndarray,
                theta_per_spec: Mapping[str, Mapping[str, float]]
                ) -> Dict[str, float]:
        """Signed spec margins, each evaluated at its own worst-case
        operating point (keyed by :func:`repro.spec.spec_key`)."""
        from ..spec.operating import spec_key
        result: Dict[str, float] = {}
        for spec in self.template.specs:
            key = spec_key(spec)
            values = self.evaluate(d, s_hat, theta_per_spec[key])
            result[key] = spec.margin(values[spec.performance])
        return result

    def reset_counters(self) -> None:
        """Zero the simulation counters (cache is kept)."""
        self.simulation_count = 0
        self.request_count = 0
        self.constraint_count = 0
        self.cache_hits = 0
        self.cache_misses = 0

    def absorb_counts(self, simulations: int = 0, requests: int = 0,
                      constraint: int = 0, cache_hits: int = 0,
                      cache_misses: int = 0) -> None:
        """Fold counters produced elsewhere (e.g. by process-pool workers,
        each of which simulates against its own evaluator copy) into this
        evaluator's accounting, so Table-7 effort reports stay complete."""
        self.simulation_count += simulations
        self.request_count += requests
        self.constraint_count += constraint
        self.cache_hits += cache_hits
        self.cache_misses += cache_misses

    def clear_cache(self) -> None:
        self._cache.clear()

    @property
    def cache_size(self) -> int:
        return len(self._cache)
