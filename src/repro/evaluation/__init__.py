"""Evaluation layer: templates, counted evaluator, testbenches, gradients,
and PVT corner analysis."""

from .corners import CornerObservation, CornerReport, corner_analysis
from .evaluator import Evaluator
from .gradient import (all_gradients_d, all_gradients_s, constraint_jacobian,
                       performance_gradient_d, performance_gradient_s)
from .measure import (OpampMeasurements, OpenLoopOpampBench,
                      add_openloop_bench)
from .template import CircuitTemplate, DesignParameter

__all__ = ["CircuitTemplate", "CornerObservation", "CornerReport",
           "DesignParameter", "Evaluator", "corner_analysis",
           "OpampMeasurements", "OpenLoopOpampBench", "add_openloop_bench",
           "all_gradients_d", "all_gradients_s", "constraint_jacobian",
           "performance_gradient_d", "performance_gradient_s"]
