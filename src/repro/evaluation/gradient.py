"""Finite-difference gradients of performances.

The worst-case point search (Eq. 8) needs ``grad_s f`` and the spec-wise
linear models (Eq. 16) additionally need ``grad_d f``.  The paper's
industrial simulator provided sensitivities; here they are computed by
forward differences on the counted evaluator, which keeps the simulation
accounting honest (each probe is one simulation, as it would be in the
industrial flow).

Normalized statistical coordinates are all O(1) (unit variance), so one
absolute step works for ``s``.  Design parameters span decades of physical
magnitude, so their step is relative.

The probes of one gradient are mutually independent, so every gradient
function accepts an optional ``pool``
(:class:`~repro.yieldsim.executor.PoolHandle`) and then evaluates its
probes concurrently via
:func:`~repro.yieldsim.executor.dispatch_points`; the arithmetic on the
returned values is unchanged, so pooled gradients are bit-identical to
serial ones.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from .evaluator import Evaluator

#: Absolute step in normalized statistical coordinates (unit variance).
STEP_S = 1e-3

#: Relative step for design parameters.
STEP_D_REL = 1e-3


def _design_step(parameter, value: float, rel_step: float) -> float:
    """Finite-difference step for one design parameter.

    Relative to the current value, but floored at a fraction of the
    parameter's box span so parameters sitting at (or near) zero still get
    a numerically meaningful probe."""
    span = parameter.upper - parameter.lower
    return max(abs(value) * rel_step, span * rel_step * 1e-2, 1e-15)


def _pooled_values(pool, evaluator, points):
    """Probe values via the shared pool, or None (caller loops serially)."""
    if pool is None:
        return None
    from ..yieldsim.executor import dispatch_points
    return dispatch_points(pool, evaluator, points)


def performance_gradient_s(
    evaluator: Evaluator,
    performance: str,
    d: Mapping[str, float],
    s_hat: np.ndarray,
    theta: Mapping[str, float],
    base_value: Optional[float] = None,
    step: float = STEP_S,
    pool=None,
) -> np.ndarray:
    """``grad_s_hat f`` by forward differences (dim(s) extra simulations).

    Pass ``base_value`` to reuse an already simulated value at ``s_hat``.
    """
    s_hat = np.asarray(s_hat, dtype=float)
    if base_value is None:
        base_value = evaluator.performance(performance, d, s_hat, theta)
    probes = []
    for k in range(len(s_hat)):
        probe = s_hat.copy()
        probe[k] += step
        probes.append(probe)
    values = _pooled_values(pool, evaluator,
                            [(d, probe, theta) for probe in probes])
    if values is None:
        values = [evaluator.evaluate(d, probe, theta) for probe in probes]
    gradient = np.empty(len(s_hat))
    for k, probe_values in enumerate(values):
        gradient[k] = (probe_values[performance] - base_value) / step
    return gradient


def all_gradients_s(
    evaluator: Evaluator,
    d: Mapping[str, float],
    s_hat: np.ndarray,
    theta: Mapping[str, float],
    step: float = STEP_S,
    pool=None,
) -> Dict[str, np.ndarray]:
    """Gradients of *all* template performances w.r.t. ``s_hat`` from one
    shared set of probes (dim(s)+1 simulations total).

    One simulation evaluates every performance at once (as in a real
    testbench), so when several specs share an operating point their
    gradients come at no extra cost.
    """
    s_hat = np.asarray(s_hat, dtype=float)
    base = evaluator.evaluate(d, s_hat, theta)
    names = list(base.keys())
    probes = []
    for k in range(len(s_hat)):
        probe = s_hat.copy()
        probe[k] += step
        probes.append(probe)
    values = _pooled_values(pool, evaluator,
                            [(d, probe, theta) for probe in probes])
    if values is None:
        values = [evaluator.evaluate(d, probe, theta) for probe in probes]
    gradients = {name: np.empty(len(s_hat)) for name in names}
    for k, probe_values in enumerate(values):
        for name in names:
            gradients[name][k] = (probe_values[name] - base[name]) / step
    return gradients


def performance_gradient_d(
    evaluator: Evaluator,
    performance: str,
    d: Mapping[str, float],
    s_hat: np.ndarray,
    theta: Mapping[str, float],
    base_value: Optional[float] = None,
    rel_step: float = STEP_D_REL,
    pool=None,
) -> Dict[str, float]:
    """``grad_d f`` by forward differences (dim(d) extra simulations).

    Returns a dict keyed by design-parameter name.  Probes respect the box
    bounds by stepping backwards at the upper bound.
    """
    if base_value is None:
        base_value = evaluator.performance(performance, d, s_hat, theta)
    probes = []
    for parameter in evaluator.template.design_parameters:
        name = parameter.name
        step = _design_step(parameter, d[name], rel_step)
        if d[name] + step > parameter.upper:
            step = -step
        probe = dict(d)
        probe[name] = d[name] + step
        probes.append((name, step, probe))
    values = _pooled_values(pool, evaluator,
                            [(probe, s_hat, theta)
                             for _, _, probe in probes])
    if values is None:
        values = [evaluator.evaluate(probe, s_hat, theta)
                  for _, _, probe in probes]
    gradient: Dict[str, float] = {}
    for (name, step, _), probe_values in zip(probes, values):
        gradient[name] = (probe_values[performance] - base_value) / step
    return gradient


def all_gradients_d(
    evaluator: Evaluator,
    d: Mapping[str, float],
    s_hat: np.ndarray,
    theta: Mapping[str, float],
    rel_step: float = STEP_D_REL,
    pool=None,
) -> Dict[str, Dict[str, float]]:
    """Gradients of all performances w.r.t. all design parameters from one
    shared set of probes (dim(d)+1 simulations)."""
    base = evaluator.evaluate(d, s_hat, theta)
    names = list(base.keys())
    probes = []
    for parameter in evaluator.template.design_parameters:
        pname = parameter.name
        step = _design_step(parameter, d[pname], rel_step)
        if d[pname] + step > parameter.upper:
            step = -step
        probe = dict(d)
        probe[pname] = d[pname] + step
        probes.append((pname, step, probe))
    values = _pooled_values(pool, evaluator,
                            [(probe, s_hat, theta)
                             for _, _, probe in probes])
    if values is None:
        values = [evaluator.evaluate(probe, s_hat, theta)
                  for _, _, probe in probes]
    gradients: Dict[str, Dict[str, float]] = {name: {} for name in names}
    for (pname, step, _), probe_values in zip(probes, values):
        for name in names:
            gradients[name][pname] = (probe_values[name] - base[name]) / step
    return gradients


def constraint_jacobian(
    evaluator: Evaluator,
    d: Mapping[str, float],
    rel_step: float = STEP_D_REL,
) -> tuple[Dict[str, float], Dict[str, Dict[str, float]]]:
    """Constraint values and their Jacobian w.r.t. ``d`` (Eq. 15 inputs).

    Returns ``(c0, jac)`` with ``jac[constraint][parameter]``.  Costs
    dim(d)+1 constraint (DC) simulations.
    """
    c0 = evaluator.constraints(d)
    jacobian: Dict[str, Dict[str, float]] = {name: {} for name in c0}
    for parameter in evaluator.template.design_parameters:
        pname = parameter.name
        step = _design_step(parameter, d[pname], rel_step)
        if d[pname] + step > parameter.upper:
            step = -step
        probe = dict(d)
        probe[pname] = d[pname] + step
        values = evaluator.constraints(probe)
        for cname in c0:
            jacobian[cname][pname] = (values[cname] - c0[cname]) / step
    return c0, jacobian
